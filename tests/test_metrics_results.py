"""Tests for metrics accounting and partial-result ergonomics."""

import math

import numpy as np
import pytest

from repro.core.result import PartialResult
from repro.core.values import UncertainValue
from repro.metrics import (
    RUN_METRICS_SCHEMA_VERSION,
    BatchMetrics,
    RunMetrics,
    validate_batch_metrics,
    validate_run_metrics,
)
from repro.relational import ColumnType, Schema


class TestBatchMetrics:
    def test_add_state_accumulates(self):
        bm = BatchMetrics(1)
        bm.add_state("join:1", 100)
        bm.add_state("join:1", 50)
        bm.add_state("select:2", 10)
        assert bm.state_bytes["join:1"] == 150
        assert bm.total_state_bytes == 160

    def test_state_bytes_matching_prefix(self):
        bm = BatchMetrics(1)
        bm.add_state("join:1", 100)
        bm.add_state("aggregate:2", 10)
        assert bm.state_bytes_matching("join") == 100
        assert bm.state_bytes_matching("") == 110


class TestRunMetrics:
    def make(self, seconds=(1.0, 2.0, 3.0)):
        rm = RunMetrics()
        for i, s in enumerate(seconds, 1):
            bm = rm.start_batch(i)
            bm.wall_seconds = s
            bm.recomputed_tuples = i * 10
            bm.shipped_bytes = i * 100
        return rm

    def test_totals(self):
        rm = self.make()
        assert rm.total_seconds == 6.0
        assert rm.total_recomputed == 60
        assert rm.total_shipped_bytes == 600

    def test_seconds_until_fraction(self):
        rm = self.make()
        assert rm.seconds_until_fraction(1 / 3) == 1.0
        assert rm.seconds_until_fraction(2 / 3) == 3.0
        assert rm.seconds_until_fraction(1.0) == 6.0

    def test_seconds_until_fraction_minimum_one_batch(self):
        rm = self.make()
        assert rm.seconds_until_fraction(0.0001) == 1.0

    def test_recoveries_counted(self):
        rm = self.make()
        rm.batches[1].recovered = True
        assert rm.num_recoveries == 1

    def test_state_aggregation(self):
        rm = self.make()
        rm.batches[0].add_state("join:x", 500)
        rm.batches[2].add_state("join:x", 900)
        assert rm.max_state_bytes("join") == 900
        assert rm.avg_state_bytes("join") == pytest.approx((500 + 900) / 3)

    def test_op_seconds_totals(self):
        rm = self.make()
        rm.batches[0].add_op_seconds("scan:t", 0.5)
        rm.batches[1].add_op_seconds("scan:t", 0.25)
        rm.batches[1].add_op_seconds("aggregate:1", 1.0)
        assert rm.total_op_seconds() == {"scan:t": 0.75, "aggregate:1": 1.0}

    def test_to_json_round_trips(self):
        import json

        rm = self.make()
        rm.batches[0].add_state("join:x", 500)
        rm.batches[0].add_op_seconds("scan:t", 0.5)
        rm.batches[1].recovered = True
        rm.pruning_disabled = True
        data = json.loads(rm.to_json())
        assert data["num_batches"] == 3
        assert data["total_seconds"] == 6.0
        assert data["num_recoveries"] == 1
        assert data["pruning_disabled"] is True
        assert data["batches"][0]["state_bytes"] == {"join:x": 500}
        assert data["batches"][0]["op_seconds"] == {"scan:t": 0.5}
        assert data["batches"][1]["recovered"] is True
        # indent only affects formatting, not content
        assert json.loads(rm.to_json(indent=2)) == data


class TestBatchMetricsMerge:
    def test_merge_from_sums_and_unions(self):
        a = BatchMetrics(1)
        a.recomputed_tuples = 5
        a.shipped_bytes = 10
        a.add_state("join:1", 100)
        a.add_op_seconds("scan:t", 0.5)
        b = BatchMetrics(1)
        b.recomputed_tuples = 7
        b.shipped_bytes = 20
        b.add_state("join:1", 50)
        b.add_state("select:2", 5)
        b.add_op_seconds("scan:t", 0.5)
        b.recovered = True
        b.recovery_seconds = 1.5
        a.merge_from(b)
        assert a.recomputed_tuples == 12
        assert a.shipped_bytes == 30
        assert a.state_bytes == {"join:1": 150, "select:2": 5}
        assert a.op_seconds == {"scan:t": 1.0}
        assert a.recovered
        assert a.recovery_seconds == 1.5


class TestMetricsSchema:
    """The --metrics-out artifact shape is pinned: golden field sets, a
    version constant, and a validator that rejects drift in either
    direction (missing AND unknown fields)."""

    def make(self):
        rm = RunMetrics()
        for i in (1, 2):
            bm = rm.start_batch(i)
            bm.wall_seconds = float(i)
            bm.unit_seconds = float(i) * 0.5
            bm.add_state("join:x", 100 * i)
            bm.add_op_seconds("scan:t", 0.1)
        rm.batches[1].recovered = True
        return rm

    def test_schema_version_pinned(self):
        assert RUN_METRICS_SCHEMA_VERSION == 4

    def test_golden_field_sets(self):
        # Adding/removing a metrics field must touch this test AND bump
        # RUN_METRICS_SCHEMA_VERSION — that is the point of the pin.
        rm = self.make()
        data = rm.to_dict()
        assert set(data) == {
            "schema_version", "num_batches", "total_seconds",
            "total_unit_seconds", "total_recomputed", "total_shipped_bytes",
            "num_recoveries", "pruning_disabled", "analysis_seconds",
            "sanitize_seconds", "profile_seconds", "cost_calibration",
            "op_seconds", "batches",
        }
        assert set(data["batches"][0]) == {
            "batch_no", "wall_seconds", "unit_seconds", "new_tuples",
            "recomputed_tuples", "shipped_bytes", "state_bytes",
            "total_state_bytes", "op_seconds", "recovered",
            "recovery_seconds", "predicted_seconds", "rollup_groups",
            "nd_groups",
        }
        assert data["schema_version"] == RUN_METRICS_SCHEMA_VERSION

    def test_v3_artifact_still_validates(self):
        # Archived artifacts outlive engine releases: a v3 dump (no
        # rollup fields) must keep validating against the v3 field set.
        data = self.make().to_dict()
        data["schema_version"] = 3
        for batch in data["batches"]:
            del batch["rollup_groups"]
            del batch["nd_groups"]
        validate_run_metrics(data)

    def test_v3_artifact_with_v4_fields_rejected(self):
        # Version claims are checked against that version's own field
        # set — a v3 artifact smuggling v4 fields is drift, not compat.
        data = self.make().to_dict()
        data["schema_version"] = 3
        with pytest.raises(ValueError, match="unknown field"):
            validate_run_metrics(data)

    def test_v4_artifact_missing_v4_fields_rejected(self):
        data = self.make().to_dict()
        for batch in data["batches"]:
            del batch["nd_groups"]
        with pytest.raises(ValueError, match="missing field"):
            validate_run_metrics(data)

    def test_v4_artifact_missing_run_fields_rejected(self):
        data = self.make().to_dict()
        del data["cost_calibration"]
        with pytest.raises(ValueError, match="missing field"):
            validate_run_metrics(data)

    def test_file_round_trip_validates(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        path.write_text(self.make().to_json(indent=2))
        reloaded = json.loads(path.read_text())
        validate_run_metrics(reloaded)  # raises on any drift
        assert reloaded == self.make().to_dict()
        assert reloaded["total_unit_seconds"] == pytest.approx(1.5)

    def test_unknown_field_rejected(self):
        data = self.make().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown field"):
            validate_run_metrics(data)

    def test_missing_field_rejected(self):
        data = self.make().to_dict()
        del data["total_seconds"]
        with pytest.raises(ValueError, match="missing field"):
            validate_run_metrics(data)

    def test_wrong_version_rejected(self):
        data = self.make().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            validate_run_metrics(data)

    def test_batch_count_mismatch_rejected(self):
        data = self.make().to_dict()
        data["num_batches"] = 5
        with pytest.raises(ValueError, match="num_batches"):
            validate_run_metrics(data)

    def test_bad_batch_field_located(self):
        data = self.make().to_dict()
        data["batches"][1]["wall_seconds"] = "fast"
        with pytest.raises(ValueError, match=r"batches\[1\]"):
            validate_run_metrics(data)

    def test_batch_validator_standalone(self):
        bm = BatchMetrics(3)
        bm.add_state("join:1", 10)
        validate_batch_metrics(bm.to_dict())
        bad = bm.to_dict()
        bad["state_bytes"] = {"join:1": "lots"}
        with pytest.raises(ValueError, match="state_bytes"):
            validate_batch_metrics(bad)

    def test_engine_run_artifact_validates(self):
        # End to end: a real engine run's artifact passes the validator.
        from repro.core import OnlineConfig, OnlineQueryEngine
        from repro.relational import Catalog, col, scan, sum_
        from tests.conftest import KX_SCHEMA, random_kx

        catalog = Catalog({"t": random_kx(200, seed=2, groups=3)})
        plan = scan("t", KX_SCHEMA).select(col("x") > 5.0).aggregate(
            ["k"], [sum_("y", "sy")]
        )
        engine = OnlineQueryEngine(catalog, "t", OnlineConfig(num_trials=5, seed=2))
        engine.run_to_completion(plan, 3)
        import json

        validate_run_metrics(json.loads(engine.metrics.to_json()))


SCHEMA = Schema([("k", ColumnType.INT), ("v", ColumnType.FLOAT)])


def make_partial(rows, batch_no=1, num_batches=4):
    return PartialResult(
        batch_no=batch_no,
        num_batches=num_batches,
        fraction_processed=batch_no / num_batches,
        schema=SCHEMA,
        rows=rows,
        metrics=BatchMetrics(batch_no),
    )


def uv(value, trials):
    return UncertainValue(value, np.asarray(trials, dtype=float))


class TestPartialResult:
    def test_to_plain_rows_collapses(self):
        p = make_partial([{"k": 1, "v": uv(2.0, [1.0, 3.0])}])
        assert p.to_plain_rows() == [{"k": 1, "v": 2.0}]

    def test_to_relation(self):
        p = make_partial([{"k": 1, "v": uv(2.0, [1.0, 3.0])}])
        rel = p.to_relation()
        assert rel.schema == SCHEMA
        assert rel.row(0)["v"] == 2.0

    def test_max_relative_stdev(self):
        p = make_partial(
            [
                {"k": 1, "v": uv(10.0, [9.0, 11.0])},
                {"k": 2, "v": uv(10.0, [5.0, 15.0])},
            ]
        )
        assert p.max_relative_stdev() == pytest.approx(0.5)

    def test_max_relative_stdev_nan_when_plain(self):
        p = make_partial([{"k": 1, "v": 2.0}])
        assert math.isnan(p.max_relative_stdev())

    def test_confidence_intervals_only_uncertain_cells(self):
        p = make_partial([{"k": 1, "v": uv(2.0, [1.0, 3.0])}])
        assert set(p.confidence_intervals()[0]) == {"v"}

    def test_sorted_plain_rows(self):
        p = make_partial([{"k": 2, "v": 1.0}, {"k": 1, "v": 2.0}])
        assert [r["k"] for r in p.sorted_plain_rows()] == [1, 2]
