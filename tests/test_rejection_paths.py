"""Every ``UnsupportedQueryError`` rejection path, one test per raise site.

The contract under test: rejected queries fail *at compile time* with a
message that names the unsupported construct (so the user can rewrite the
query), and plan-level rejections carry the offending plan node.
"""

import pytest

from repro.core.compiler import ExecutionUnit, OnlineCompiler, compile_online
from repro.errors import UnsupportedQueryError
from repro.relational import (
    AggSpec,
    Catalog,
    HolisticUDAF,
    avg,
    col,
    count,
    min_,
    scan,
    stddev,
)
from repro.relational.algebra import PlanNode
from repro.relational.expressions import Or
from repro.sql import plan_sql
from tests.conftest import KX_SCHEMA, random_kx


@pytest.fixture(scope="module")
def catalog():
    return Catalog({"t": random_kx(200, seed=0, groups=4)})


def _kx():
    return scan("t", KX_SCHEMA)


def _with_uncertain():
    """Stream joined with its own aggregate: column ``ax`` is uncertain."""
    inner = _kx().aggregate([], [avg("x", "ax")])
    return _kx().join(inner, keys=[])


def _compile(plan, catalog):
    return compile_online(plan, catalog, "t")


class Exotic(PlanNode):
    """A plan node type neither the analyzer nor the compiler knows."""

    def base_tables(self):
        return {"t"}


# -- uncertainty.py: the Section 3.3 supported-class fence ------------------------


def test_uncertain_join_key_rejected(catalog):
    right = _kx().aggregate([], [avg("x", "k2")])
    plan = _with_uncertain().join(right, keys=[("ax", "k2")])
    with pytest.raises(UnsupportedQueryError, match="join key 'ax'='k2'") as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_stream_stream_join_rejected(catalog):
    plan = _kx().join(_kx(), keys=[("k", "k")])
    with pytest.raises(
        UnsupportedQueryError, match="both join inputs stream"
    ) as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_uncertain_group_by_key_rejected(catalog):
    plan = _with_uncertain().aggregate(["ax"], [count("n")])
    with pytest.raises(UnsupportedQueryError, match="group-by key 'ax'") as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_non_hadamard_aggregate_rejected(catalog):
    plan = _kx().aggregate([], [min_("x", "mn")])
    with pytest.raises(
        UnsupportedQueryError, match="MIN is not Hadamard"
    ) as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_distinct_over_uncertain_column_rejected(catalog):
    plan = _with_uncertain().distinct(["ax"])
    with pytest.raises(
        UnsupportedQueryError, match="distinct over uncertain column 'ax'"
    ) as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_unknown_node_rejected_by_analyzer(catalog):
    with pytest.raises(
        UnsupportedQueryError, match="cannot analyze node Exotic"
    ) as exc:
        _compile(Exotic(), catalog)
    assert type(exc.value.node) is Exotic


# -- compiler.py: online-rewrite limitations --------------------------------------


def test_unknown_node_rejected_by_compiler(catalog):
    # The analyzer fences unknown nodes first, so reach the compiler's own
    # guard directly: a node the tag pass accepted but no handler compiles.
    compiler = OnlineCompiler(_kx().aggregate([], [avg("x", "ax")]), catalog, "t")
    exotic = Exotic()
    with pytest.raises(
        UnsupportedQueryError, match="cannot compile node Exotic"
    ) as exc:
        compiler._compile(exotic)
    assert exc.value.node is exotic


def test_compound_uncertain_predicate_rejected(catalog):
    plan = _with_uncertain().select(
        Or(col("x") > col("ax"), col("y") > col("ax"))
    )
    with pytest.raises(
        UnsupportedQueryError, match="simple comparison"
    ) as exc:
        _compile(plan, catalog)
    assert exc.value.node is not None


def test_union_of_aggregate_derived_inputs_rejected(catalog):
    left = _kx().aggregate([], [avg("x", "v")])
    right = _kx().aggregate([], [avg("y", "v")])
    with pytest.raises(
        UnsupportedQueryError, match="UNION between aggregate-derived"
    ) as exc:
        _compile(left.union(right), catalog)
    assert exc.value.node is not None


def test_abstract_execution_unit_rejected_at_runtime():
    class Bare(ExecutionUnit):
        label = "bare:unit"

    with pytest.raises(
        UnsupportedQueryError, match="'bare:unit' has no runnable implementation"
    ):
        Bare().run(None)


# -- operator constructors: shapes the tag pass admits but the engine
#    cannot maintain incrementally -------------------------------------------------


def test_computed_projection_over_uncertain_column_rejected(catalog):
    plan = _with_uncertain().project(
        [("z", col("ax") * 2.0), ("k", col("k"))]
    )
    with pytest.raises(UnsupportedQueryError, match="'z' computes over uncertain"):
        _compile(plan, catalog)


def test_holistic_udaf_over_uncertain_argument_rejected(catalog):
    udaf = HolisticUDAF("median", lambda values, weights: 0.0)
    plan = _with_uncertain().aggregate([], [AggSpec("md", udaf, col("ax"))])
    with pytest.raises(
        UnsupportedQueryError, match="holistic UDAF over an .*uncertain argument"
    ):
        _compile(plan, catalog)


def test_multi_feature_aggregate_over_uncertain_argument_rejected(catalog):
    plan = _with_uncertain().aggregate([], [stddev("ax", "sd")])
    with pytest.raises(
        UnsupportedQueryError, match="requires a single identity feature"
    ):
        _compile(plan, catalog)


# -- end to end: SQL in, named construct out --------------------------------------


def test_sql_query_rejected_with_named_construct(catalog):
    plan = plan_sql("SELECT MIN(x) AS mn FROM t", catalog.schemas())
    with pytest.raises(UnsupportedQueryError, match="MIN is not Hadamard"):
        _compile(plan, catalog)
