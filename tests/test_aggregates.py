"""Unit tests for aggregate functions, including UDAFs."""

import math

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational import (
    Avg,
    Count,
    DecomposableUDAF,
    GeometricMean,
    HolisticUDAF,
    Max,
    Min,
    Stddev,
    Sum,
    Variance,
    avg,
    col,
    count,
    geomean,
    max_,
    min_,
    stddev,
    sum_,
    var,
)
from repro.relational.aggregates import AGG_FUNCTIONS, AggSpec

VALUES = np.array([2.0, 4.0, 6.0])
W = np.array([1.0, 1.0, 1.0])


class TestBuiltins:
    def test_count_is_total_weight(self):
        assert Count().compute(VALUES, np.array([1.0, 2.0, 0.5])) == 3.5

    def test_sum_weighted(self):
        assert Sum().compute(VALUES, np.array([1.0, 0.0, 2.0])) == 14.0

    def test_avg(self):
        assert Avg().compute(VALUES, W) == 4.0

    def test_avg_weighted(self):
        assert Avg().compute(VALUES, np.array([3.0, 0.0, 1.0])) == 3.0

    def test_avg_zero_weight_is_nan(self):
        assert math.isnan(Avg().compute(VALUES, np.zeros(3)))

    def test_variance(self):
        assert Variance().compute(VALUES, W) == pytest.approx(8.0 / 3.0)

    def test_variance_non_negative_on_constant(self):
        assert Variance().compute(np.array([5.0, 5.0]), np.ones(2)) == 0.0

    def test_stddev(self):
        assert Stddev().compute(VALUES, W) == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_geomean(self):
        out = GeometricMean().compute(np.array([1.0, 8.0]), np.ones(2))
        assert out == pytest.approx(math.sqrt(8.0))

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ExpressionError):
            GeometricMean().compute(np.array([0.0, 1.0]), np.ones(2))

    def test_min_ignores_zero_weight(self):
        assert Min().compute(VALUES, np.array([0.0, 1.0, 1.0])) == 4.0

    def test_max(self):
        assert Max().compute(VALUES, W) == 6.0

    def test_min_empty_is_nan(self):
        assert math.isnan(Min().compute(np.array([]), np.array([])))

    def test_minmax_not_hadamard_differentiable(self):
        assert not Min().hadamard_differentiable
        assert not Max().hadamard_differentiable

    def test_scaling_flags(self):
        assert Sum().scales_with_m and Count().scales_with_m
        assert not Avg().scales_with_m
        assert not Stddev().scales_with_m

    def test_trial_broadcast_finalize(self):
        # finalize must broadcast over a leading trials axis.
        f = Avg()
        sums = np.array([[[6.0], [12.0]]])  # (1 group, 2 trials, 1 feature)
        weights = np.array([[3.0, 3.0]])
        out = f.finalize(sums, weights)
        assert out.shape == (1, 2)
        assert list(out[0]) == [2.0, 4.0]


class TestUDAF:
    def test_decomposable_udaf(self):
        harmonic = DecomposableUDAF(
            "harmonic",
            [lambda x: 1.0 / x],
            lambda sums, w: np.where(w != 0, w / sums[..., 0], np.nan),
        )
        out = harmonic.compute(np.array([1.0, 2.0]), np.ones(2))
        assert out == pytest.approx(4.0 / 3.0)

    def test_decomposable_udaf_is_decomposable(self):
        udaf = DecomposableUDAF("f", [lambda x: x], lambda s, w: s[..., 0])
        assert udaf.decomposable
        assert udaf.num_features == 1

    def test_holistic_udaf(self):
        median = HolisticUDAF(
            "median",
            lambda values, weights: float(
                np.median(np.repeat(values, weights.astype(int)))
            ),
        )
        assert median.compute(np.array([1.0, 2.0, 9.0]), np.ones(3)) == 2.0

    def test_holistic_not_decomposable(self):
        udaf = HolisticUDAF("f", lambda v, w: 0.0)
        assert not udaf.decomposable
        with pytest.raises(NotImplementedError):
            udaf.features(VALUES)


class TestAggSpec:
    def test_count_requires_no_arg(self):
        spec = count("n")
        assert spec.arg is None

    def test_non_count_requires_arg(self):
        with pytest.raises(ExpressionError):
            AggSpec("bad", Sum())

    def test_attrs(self):
        assert sum_(col("x") * col("y"), "s").attrs() == {"x", "y"}

    def test_attrs_empty_for_count(self):
        assert count().attrs() == set()

    def test_string_arg_becomes_col(self):
        assert avg("x").attrs() == {"x"}

    @pytest.mark.parametrize(
        "helper,fname",
        [
            (sum_, "sum"),
            (avg, "avg"),
            (var, "var"),
            (stddev, "stddev"),
            (geomean, "geomean"),
            (min_, "min"),
            (max_, "max"),
        ],
    )
    def test_helpers_name_defaults(self, helper, fname):
        assert helper("x").func.name == fname

    def test_registry_covers_builtins(self):
        for name in ["count", "sum", "avg", "var", "stddev", "geomean", "min", "max"]:
            assert name in AGG_FUNCTIONS
            assert AGG_FUNCTIONS[name]().name == name
