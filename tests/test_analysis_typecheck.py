"""The plan typechecker: clean on every bundled query, and every rule in
the TC catalog fires on a deliberately broken fixture (no dead rules)."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_query, check_plan
from repro.analysis.typecheck import (
    TYPECHECK_RULES,
    check_pipeline,
    check_units,
    infer_tags,
)
from repro.core.compiler import ExecutionUnit, StreamPipelineUnit, compile_online
from repro.core.operators import (
    AggregateOp,
    FilterOp,
    ScanOp,
    StateRule,
    UncertainFilterOp,
    iter_ops,
)
from repro.core.uncertainty import NodeTags
from repro.errors import UnsupportedQueryError
from repro.relational import (
    HolisticUDAF,
    AggSpec,
    avg,
    col,
    count,
    lit,
    min_,
    scan,
    stddev,
    sum_,
)
from repro.relational.algebra import PlanNode
from repro.relational.expressions import Or
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)
from tests.conftest import KX_SCHEMA

STREAMED = {"t"}


def _kx():
    return scan("t", KX_SCHEMA)


def _with_uncertain():
    """Stream joined with its own aggregate: column ``ax`` is uncertain."""
    inner = _kx().aggregate([], [avg("x", "ax")])
    return _kx().join(inner, keys=[])


def _rules_of(diags) -> set[str]:
    return {d.rule_id for d in diags}


# ---------------------------------------------------------------------------
# Acceptance: every bundled workload query typechecks clean.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_catalog():
    return generate_tpch(scale=0.05, seed=1).catalog()


@pytest.fixture(scope="module")
def conviva_catalog():
    return generate_conviva(scale=0.05, seed=1).catalog()


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_queries_clean(name, tpch_catalog):
    spec = TPCH_QUERIES[name]
    report = check_plan(spec.plan, tpch_catalog, spec.streamed_table, subject=name)
    assert report.ok, report.format()
    assert report.wall_seconds > 0


@pytest.mark.parametrize("name", sorted(CONVIVA_QUERIES))
def test_conviva_queries_clean(name, conviva_catalog):
    spec = CONVIVA_QUERIES[name]
    report = check_plan(spec.plan, conviva_catalog, spec.streamed_table, subject=name)
    assert report.ok, report.format()


def test_analyze_query_sql_roundtrip(conviva_catalog):
    report = analyze_query(
        "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
        conviva_catalog,
        "sessions",
    )
    assert report.ok, report.format()


def test_analyze_query_bad_sql_reports_tc101(conviva_catalog):
    report = analyze_query("FROBNICATE everything", conviva_catalog, "sessions")
    assert not report.ok
    assert _rules_of(report.diagnostics) == {"TC101"}


# ---------------------------------------------------------------------------
# TC1xx: tag-inference rules, one broken plan per rule.
# ---------------------------------------------------------------------------


def test_tc101_unsupported_node():
    class Exotic(PlanNode):
        pass

    _, diags = infer_tags(Exotic(), STREAMED)
    assert "TC101" in _rules_of(diags)


def test_tc102_uncertain_join_key():
    inner = _kx().aggregate(["k"], [avg("x", "ax")]).rename({"k": "k2"})
    plan = _kx().join(inner, keys=[("x", "ax")])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC102" in _rules_of(diags)


def test_tc103_stream_stream_join():
    plan = _kx().join(_kx(), keys=[("k", "k")])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC103" in _rules_of(diags)


def test_tc104_uncertain_group_by():
    plan = _with_uncertain().aggregate(["ax"], [count("n")])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC104" in _rules_of(diags)


def test_tc105_non_hadamard_aggregate():
    plan = _kx().aggregate(["k"], [min_("x", "mn")])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC105" in _rules_of(diags)


def test_tc106_distinct_uncertain():
    plan = _with_uncertain().distinct(["ax"])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC106" in _rules_of(diags)


def test_tc107_non_comparison_uncertain_predicate():
    pred = Or(col("x") > col("ax"), col("y") > col("ax"))
    plan = _with_uncertain().select(pred)
    _, diags = infer_tags(plan, STREAMED)
    assert "TC107" in _rules_of(diags)


def test_tc108_projection_computes_over_uncertain():
    plan = _with_uncertain().project([("z", col("ax") * 2.0), ("k", col("k"))])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC108" in _rules_of(diags)


def test_tc109_multi_feature_uncertain_aggregate():
    plan = _with_uncertain().aggregate([], [stddev("ax", "sd")])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC109" in _rules_of(diags)


def test_tc110_holistic_uncertain_aggregate():
    udaf = HolisticUDAF("median", lambda values, weights: 0.0)
    plan = _with_uncertain().aggregate([], [AggSpec("md", udaf, col("ax"))])
    _, diags = infer_tags(plan, STREAMED)
    assert "TC110" in _rules_of(diags)


def test_tc111_union_with_aggregate_derived_input():
    inner = _kx().aggregate(["k"], [avg("x", "x"), avg("y", "y")])
    plan = _kx().union(_kx())  # clean
    _, diags = infer_tags(plan, STREAMED)
    assert not diags
    plan = inner.union(_kx())
    _, diags = infer_tags(plan, STREAMED)
    assert "TC111" in _rules_of(diags)


def test_clean_plan_has_no_findings(kx_catalog):
    plan = _with_uncertain().select(col("x") > col("ax")).aggregate(
        ["k"], [sum_("y", "sy")]
    )
    report = check_plan(plan, kx_catalog, "t")
    assert report.ok, report.format()


# ---------------------------------------------------------------------------
# TC2xx: cross-check against the engine's own analysis.
# ---------------------------------------------------------------------------


def test_tc201_tag_divergence(kx_catalog, monkeypatch):
    import repro.analysis.typecheck as tc

    real = tc.engine_analyze

    def skewed(plan, streamed):
        tags = real(plan, streamed)
        return {
            node_id: NodeTags(
                t.tuple_uncertain,
                t.uncertain_cols | frozenset({"__phantom"}),
                t.sample_weighted,
                t.raw_stream,
            )
            for node_id, t in tags.items()
        }

    monkeypatch.setattr(tc, "engine_analyze", skewed)
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    report = check_plan(plan, kx_catalog, "t")
    assert "TC201" in report.rule_ids()


def test_tc202_engine_rejects_what_typechecker_accepts(kx_catalog, monkeypatch):
    import repro.analysis.typecheck as tc

    def rejecting(plan, streamed):
        raise UnsupportedQueryError("engine says no")

    monkeypatch.setattr(tc, "engine_analyze", rejecting)
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    report = check_plan(plan, kx_catalog, "t")
    assert "TC202" in report.rule_ids()


def test_tc202_typechecker_rejects_what_engine_accepts(kx_catalog, monkeypatch):
    import repro.analysis.typecheck as tc

    real_infer = tc.infer_tags

    def overstrict(plan, streamed):
        tags, diags = real_infer(plan, streamed)
        diags = diags + [
            tc._diag("TC105", "synthetic", "injected overstrict finding")
        ]
        return tags, diags

    monkeypatch.setattr(tc, "infer_tags", overstrict)
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    report = check_plan(plan, kx_catalog, "t")
    assert "TC202" in report.rule_ids()


# ---------------------------------------------------------------------------
# TC3xx: compiled-operator checks on hand-broken pipelines/units.
# ---------------------------------------------------------------------------


def test_tc301_misplaced_uncertain_filter():
    scan_op = ScanOp("t", KX_SCHEMA)
    op = UncertainFilterOp(scan_op, [], [col("x") > lit(5.0)], node_id=901)
    assert "TC301" in _rules_of(check_pipeline(op))


def test_tc302_deterministic_filter_reads_uncertain():
    scan_op = ScanOp("t", KX_SCHEMA)
    scan_op.uncertain_cols.add("x")
    op = FilterOp(scan_op, col("x") > lit(5.0))
    assert "TC302" in _rules_of(check_pipeline(op))


def test_tc302_det_conjunct_in_uncertain_filter():
    scan_op = ScanOp("t", KX_SCHEMA)
    scan_op.uncertain_cols.add("x")
    op = UncertainFilterOp(
        scan_op, [col("x") > lit(1.0)], [col("x") > lit(5.0)], node_id=902
    )
    assert "TC302" in _rules_of(check_pipeline(op))


def test_tc303_stray_state_entry():
    op = FilterOp(ScanOp("t", KX_SCHEMA), col("x") > lit(5.0))
    op.state.put("stray", 123)
    assert "TC303" in _rules_of(check_pipeline(op))


def test_tc304_nd_declaration_contradiction():
    class BadFilter(FilterOp):
        state_rule = StateRule(frozenset({"nd"}), nd_entry="nd")

    op = BadFilter(ScanOp("t", KX_SCHEMA), col("x") > lit(5.0))
    op.state.put("nd", {})  # satisfy TC303; the contradiction is TC304
    assert "TC304" in _rules_of(check_pipeline(op))


def test_tc305_aggregate_split_mismatch(kx_catalog):
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    compiled = compile_online(plan, kx_catalog, "t")
    agg = next(
        op
        for unit in compiled.units
        if isinstance(unit, StreamPipelineUnit)
        for op in iter_ops(unit.root_op)
        if isinstance(op, AggregateOp)
    )
    assert not _rules_of(check_pipeline(agg))
    agg.lazy_specs.append(agg.sketch_specs.pop())  # misclassify 'sx'
    assert "TC305" in _rules_of(check_pipeline(agg))


def test_tc306_uncertain_cols_outside_schema():
    op = ScanOp("t", KX_SCHEMA)
    op.uncertain_cols.add("no_such_column")
    assert "TC306" in _rules_of(check_pipeline(op))


def test_tc307_tags_diverge_from_inference():
    scan_op = ScanOp("t", KX_SCHEMA)
    scan_op.uncertain_cols.add("x")
    op = UncertainFilterOp(scan_op, [], [col("x") > lit(5.0)], node_id=907)
    inferred = {907: NodeTags(True, frozenset({"x", "y"}), True, True)}
    assert "TC307" in _rules_of(check_pipeline(op, inferred))


class _FakeUnit(ExecutionUnit):
    def __init__(self, label, produces=(), consumes=()):
        self.label = label
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)


def test_tc308_duplicate_block_producer():
    units = [_FakeUnit("a", produces={1}), _FakeUnit("b", produces={1})]
    assert "TC308" in _rules_of(check_units(units))


def test_tc309_unproduced_block_consumed():
    units = [_FakeUnit("a", produces={1}, consumes={2})]
    assert "TC309" in _rules_of(check_units(units))


def test_shared_subplan_compiles_to_single_producer(kx_catalog):
    """Regression: an agg-of-agg plan reusing a subquery must not emit two
    units racing to publish the same lineage block (found by TC308)."""
    per_k = _kx().aggregate(["k"], [count("n")])
    overall = per_k.aggregate([], [avg("n", "an")])
    plan = per_k.join(overall, keys=[]).select(col("n") > col("an"))
    compiled = compile_online(plan, kx_catalog, "t")
    produced = [b for unit in compiled.units for b in unit.produces]
    assert len(produced) == len(set(produced))
    assert not _rules_of(check_units(compiled.units))


# ---------------------------------------------------------------------------
# No dead rules: the fixtures above cover the whole catalog.
# ---------------------------------------------------------------------------


def test_rule_catalog_is_fully_exercised():
    import ast
    import pathlib

    source = pathlib.Path(__file__).read_text()
    tree = ast.parse(source)
    asserted: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in TYPECHECK_RULES:
                asserted.add(node.value)
    assert asserted >= set(TYPECHECK_RULES), (
        f"rules without fixtures: {sorted(set(TYPECHECK_RULES) - asserted)}"
    )
