"""Unit tests for logical plan construction and validation."""

import pytest

from repro.errors import PlanError
from repro.relational import (
    Aggregate,
    ColumnType,
    Distinct,
    Join,
    Project,
    Rename,
    Scan,
    Schema,
    Select,
    Union,
    avg,
    col,
    count,
    scan,
    sum_,
    transform,
)

T = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
D = Schema([("k", ColumnType.INT), ("label", ColumnType.STRING)])
CATALOG = {}


class TestScan:
    def test_output_schema(self):
        assert scan("t", T).output_schema(CATALOG) == T

    def test_base_tables(self):
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        assert plan.base_tables() == {"t", "d"}

    def test_node_ids_unique(self):
        a, b = scan("t", T), scan("t", T)
        assert a.node_id != b.node_id


class TestSelect:
    def test_schema_passthrough(self):
        plan = scan("t", T).select(col("x") > 0)
        assert plan.output_schema(CATALOG) == T

    def test_missing_column_rejected(self):
        plan = scan("t", T).select(col("zzz") > 0)
        with pytest.raises(PlanError, match="missing columns"):
            plan.output_schema(CATALOG)


class TestProject:
    def test_schema(self):
        plan = scan("t", T).project([("k", "k"), ("x2", col("x") * 2)])
        out = plan.output_schema(CATALOG)
        assert out.names == ["k", "x2"]
        assert out.type_of("x2") is ColumnType.FLOAT

    def test_string_shorthand(self):
        plan = scan("t", T).project([("renamed", "x")])
        assert plan.output_schema(CATALOG).names == ["renamed"]

    def test_empty_projection_rejected(self):
        with pytest.raises(PlanError):
            scan("t", T).project([])

    def test_missing_column_rejected(self):
        plan = scan("t", T).project([("bad", col("zzz"))])
        with pytest.raises(PlanError):
            plan.output_schema(CATALOG)


class TestJoin:
    def test_natural_key_drops_right_copy(self):
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        assert plan.output_schema(CATALOG).names == ["k", "x", "label"]

    def test_cross_join_keeps_all(self):
        other = Schema([("y", ColumnType.FLOAT)])
        plan = scan("t", T).join(scan("o", other), keys=[])
        assert plan.output_schema(CATALOG).names == ["k", "x", "y"]

    def test_differently_named_keys(self):
        other = Schema([("k2", ColumnType.INT), ("y", ColumnType.FLOAT)])
        plan = scan("t", T).join(scan("o", other), keys=[("k", "k2")])
        assert plan.output_schema(CATALOG).names == ["k", "x", "y"]

    def test_missing_left_key(self):
        plan = scan("t", T).join(scan("d", D), keys=[("nope", "k")])
        with pytest.raises(PlanError, match="left join key"):
            plan.output_schema(CATALOG)

    def test_missing_right_key(self):
        plan = scan("t", T).join(scan("d", D), keys=[("k", "nope")])
        with pytest.raises(PlanError, match="right join key"):
            plan.output_schema(CATALOG)

    def test_key_type_mismatch(self):
        other = Schema([("k", ColumnType.STRING)])
        plan = scan("t", T).join(scan("o", other), keys=["k"])
        with pytest.raises(PlanError, match="type mismatch"):
            plan.output_schema(CATALOG)

    def test_non_key_collision_rejected(self):
        plan = scan("t", T).join(scan("t2", T), keys=[])
        with pytest.raises(PlanError, match="duplicate columns"):
            plan.output_schema(CATALOG)

    def test_key_accessors(self):
        j = Join(scan("t", T), scan("d", D), keys=[("k", "k")])
        assert j.left_keys == ["k"]
        assert j.right_keys == ["k"]


class TestUnion:
    def test_schema_match_required(self):
        with pytest.raises(PlanError, match="union schema mismatch"):
            scan("t", T).union(scan("d", D)).output_schema(CATALOG)

    def test_schema(self):
        plan = scan("t", T).union(scan("t2", T))
        assert plan.output_schema(CATALOG) == T


class TestAggregate:
    def test_scalar_schema(self):
        plan = scan("t", T).aggregate([], [avg("x", "ax")])
        assert plan.output_schema(CATALOG).names == ["ax"]

    def test_grouped_schema(self):
        plan = scan("t", T).aggregate(["k"], [sum_("x", "sx"), count("n")])
        assert plan.output_schema(CATALOG).names == ["k", "sx", "n"]

    def test_requires_aggs(self):
        with pytest.raises(PlanError):
            scan("t", T).aggregate(["k"], [])

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            scan("t", T).aggregate(["k"], [sum_("x", "k")])

    def test_missing_arg_column(self):
        plan = scan("t", T).aggregate([], [sum_("zzz", "s")])
        with pytest.raises(PlanError):
            plan.output_schema(CATALOG)


class TestRenameDistinct:
    def test_rename_schema(self):
        plan = scan("t", T).rename({"x": "value"})
        assert plan.output_schema(CATALOG).names == ["k", "value"]

    def test_rename_missing(self):
        with pytest.raises(PlanError):
            scan("t", T).rename({"zzz": "a"}).output_schema(CATALOG)

    def test_distinct_schema(self):
        plan = scan("t", T).distinct(["k"])
        assert plan.output_schema(CATALOG).names == ["k"]

    def test_distinct_requires_columns(self):
        with pytest.raises(PlanError):
            Distinct(scan("t", T), [])


class TestTraversal:
    def test_walk_preorder(self):
        plan = scan("t", T).select(col("x") > 0).aggregate([], [count("n")])
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["Aggregate", "Select", "Scan"]

    def test_describe_is_indented(self):
        plan = scan("t", T).select(col("x") > 0)
        lines = plan.describe().splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  Scan")

    def test_transform_identity(self):
        plan = scan("t", T).select(col("x") > 0)
        out = transform(plan, lambda n: None)
        assert type(out) is Select
        assert isinstance(out.child, Scan)

    def test_transform_replaces(self):
        plan = scan("t", T).select(col("x") > 0)

        def drop_selects(node):
            return node.child if isinstance(node, Select) else None

        out = transform(plan, drop_selects)
        assert isinstance(out, Scan)

    def test_transform_rebuilds_all_node_types(self):
        plan = (
            scan("t", T)
            .select(col("x") > 0)
            .project([("k", "k"), ("x", "x")])
            .rename({"x": "v"})
            .join(scan("d", D), keys=["k"])
            .aggregate(["k"], [count("n")])
        )
        out = transform(plan, lambda n: None)
        assert out.output_schema(CATALOG).names == ["k", "n"]
