"""The zero-copy aliasing sanitizer (``OnlineConfig(sanitize=True)``).

Unit tests drive :class:`BufferSanitizer` directly through its ownership
protocol; engine tests seed real in-place writes and assert the exact
SAN rule fires naming writer and owner; parity tests re-run the chaos
fault plan with the sanitizer on and require bit-identical results.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.sanitize import (
    SANITIZE_RULES,
    BufferSanitizer,
    _buffers_of,
)
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.operators.base import DeltaBatch
from repro.core.operators.scan import ScanOp
from repro.errors import SanitizerViolationError
from repro.relational import ColumnType, Schema, relation_from_columns
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

S = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])


def make_rel(n=8):
    return relation_from_columns(
        S, k=list(range(n)), x=[float(i) for i in range(n)]
    )


class _Op:
    label = "op:test"


# ---------------------------------------------------------------------------
# Ownership protocol unit tests.
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_before_process_freezes_and_release_restores(self):
        san = BufferSanitizer()
        rel = make_rel()
        assert all(a.flags.writeable for a in _buffers_of(rel))
        san.before_process(_Op(), rel)
        assert not any(a.flags.writeable for a in _buffers_of(rel))
        with pytest.raises(ValueError):
            rel.columns["x"][0] = 99.0
        san.release(_Op())
        assert all(a.flags.writeable for a in _buffers_of(rel))
        assert san.seconds > 0

    def test_begin_batch_freezes_delta_permanently(self):
        san = BufferSanitizer()
        rel = make_rel()
        san.begin_batch(1, rel)
        assert not any(a.flags.writeable for a in _buffers_of(rel))
        san.before_process(_Op(), rel)
        san.release(_Op())  # restore must not thaw the stream delta
        assert not any(a.flags.writeable for a in _buffers_of(rel))

    def test_begin_batch_is_idempotent_across_threads(self):
        san = BufferSanitizer()
        rel = make_rel()
        san.begin_batch(3, rel)
        owners = dict(san._owners)
        san.begin_batch(3, rel)  # second worker hitting the same batch
        assert san._owners == owners

    def test_slice_hook_freezes_both_sides(self):
        san = BufferSanitizer()
        san.begin_batch(1)
        san.activate()
        try:
            rel = make_rel()
            view = rel.slice(2, 6)
        finally:
            san.deactivate()
        for side in (rel, view):
            assert not any(a.flags.writeable for a in _buffers_of(side))
        with pytest.raises(ValueError):
            view.columns["x"][0] = -1.0

    def test_pass_through_claims_nothing(self):
        san = BufferSanitizer()
        rel = make_rel()
        san.begin_batch(1, rel)
        san.note_output(_Op(), rel)  # forwarding the stream delta
        assert not san._claims


# ---------------------------------------------------------------------------
# Rule fixtures: one per SAN id.
# ---------------------------------------------------------------------------


class TestRules:
    def test_san001_aliased_view_write(self):
        san = BufferSanitizer()
        san.begin_batch(1)
        san.activate()
        try:
            rel = make_rel()
            san.before_process(_Op(), None)  # writer context for the slice
            view = rel.slice(0, 4)
            san.release(_Op())
        finally:
            san.deactivate()
        with pytest.raises(ValueError) as excinfo:
            view.columns["x"][0] = 5.0
        violation = san.translate_write_error(
            _Op(), view, None, excinfo.value
        )
        assert isinstance(violation, SanitizerViolationError)
        assert violation.rule_id == "SAN001"
        assert violation.writer == "op:test"
        assert violation.owners == ["op:test"]  # the slicing frame
        assert "SAN001" in str(violation)

    def test_san002_memmapped_chunk_write(self, tmp_path):
        path = tmp_path / "chunk.bin"
        np.arange(8, dtype="<i8").tofile(path)
        mm = np.memmap(path, dtype="<i8", mode="r", shape=(8,))
        view = mm[2:6]
        san = BufferSanitizer()
        san.begin_batch(1)
        with pytest.raises(ValueError) as excinfo:
            view[0] = 1
        violation = san.translate_write_error(
            _Op(), [view], None, excinfo.value
        )
        assert violation.rule_id == "SAN002"
        assert str(path) in str(violation)
        assert violation.writer == "op:test"

    def test_san003_two_thread_claim(self):
        san = BufferSanitizer()
        san.begin_batch(1)
        buf = np.zeros(4)

        class _A:
            label = "op:a"

        class _B:
            label = "op:b"

        san.note_output(_A(), buf)
        raised: list[BaseException] = []

        def other():
            try:
                san.note_output(_B(), buf)
            except SanitizerViolationError as err:
                raised.append(err)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(raised) == 1
        assert raised[0].rule_id == "SAN003"
        assert "op:a" in raised[0].owners

    def test_wave_barrier_seals_claims(self):
        """A barrier orders earlier claims: a later-wave pass-through from
        another thread must NOT trip SAN003."""
        san = BufferSanitizer()
        san.begin_batch(1)
        buf = np.zeros(4)

        class _A:
            label = "op:a"

        san.note_output(_A(), buf)
        san.check_batch()  # wave barrier

        class _B:
            label = "op:b"

        done: list[bool] = []

        def other():
            san.note_output(_B(), buf)
            done.append(True)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert done == [True]
        san.check_batch()

    def test_translate_ignores_unrelated_value_errors(self):
        san = BufferSanitizer()
        err = ValueError("operands could not be broadcast together")
        assert san.translate_write_error(_Op(), None, None, err) is None


# ---------------------------------------------------------------------------
# Engine-level: a seeded in-place write is caught naming writer and owner.
# ---------------------------------------------------------------------------


def _mutating_scan_process(self, delta, ctx):
    batch = ctx.delta
    next(iter(batch.columns.values()))[0] = 0  # illegal in-place write
    return DeltaBatch(batch, self.empty(ctx))


class TestEngine:
    def test_seeded_write_raises_san001(self, kx_catalog, monkeypatch):
        monkeypatch.setattr(ScanOp, "process", _mutating_scan_process)
        engine = OnlineQueryEngine(
            kx_catalog,
            "t",
            OnlineConfig(num_trials=4, seed=3, sanitize=True),
        )
        from repro.relational import col, count, scan, sum_
        from tests.conftest import KX_SCHEMA

        plan = scan("t", KX_SCHEMA).select(col("x") > 2.0).aggregate(
            ["k"], [sum_("y", "sy"), count("n")]
        )
        with pytest.raises(SanitizerViolationError) as excinfo:
            engine.run_to_completion(plan, 3)
        violation = excinfo.value
        assert violation.rule_id == "SAN001"
        assert violation.writer
        assert violation.owners and violation.owners != ["unknown"]

    def test_without_sanitize_write_goes_unnoticed(self, kx_catalog, monkeypatch):
        """Documents why the sanitizer exists: the same seeded write is
        silent corruption when sanitize is off."""
        monkeypatch.setattr(ScanOp, "process", _mutating_scan_process)
        engine = OnlineQueryEngine(
            kx_catalog, "t", OnlineConfig(num_trials=4, seed=3)
        )
        from repro.relational import col, count, scan, sum_
        from tests.conftest import KX_SCHEMA

        plan = scan("t", KX_SCHEMA).select(col("x") > 2.0).aggregate(
            ["k"], [sum_("y", "sy"), count("n")]
        )
        engine.run_to_completion(plan, 3)  # no error raised
        assert engine.metrics.sanitize_seconds == 0.0


# ---------------------------------------------------------------------------
# Parity: sanitized + faulted parallel == clean serial, bit for bit.
# ---------------------------------------------------------------------------

FAULTS = "unit@3:aggregate,batch@5,checkpoint@6,batch@8"
PARITY_QUERIES = [("tpch", "Q1"), ("tpch", "Q17"), ("conviva", "C8")]


class TestParity:
    @pytest.mark.parametrize("source,name", PARITY_QUERIES)
    def test_sanitized_faulted_parallel_matches_clean_serial(
        self, source, name, tpch_small, conviva_small
    ):
        spec = (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]
        catalog = (
            tpch_small if source == "tpch" else conviva_small
        ).catalog()

        def run(executor, sanitize, faults=None):
            engine = OnlineQueryEngine(
                catalog,
                spec.streamed_table,
                OnlineConfig(
                    num_trials=6,
                    seed=7,
                    faults=faults,
                    checkpoint_interval=3,
                    unit_retry_attempts=2,
                    sanitize=sanitize,
                ),
                executor=executor,
            )
            try:
                return engine, engine.run_to_completion(spec.plan, 8)
            finally:
                engine.executor.close()

        eng0, clean = run("serial", sanitize=False)
        eng1, faulted = run("parallel", sanitize=True, faults=FAULTS)
        assert faulted.to_relation().bag_equal(clean.to_relation(), 9), (
            f"{name}: sanitized faulted parallel diverged from clean serial"
        )
        assert eng1.metrics.num_recoveries >= 2
        assert eng1.metrics.sanitize_seconds > 0
        assert eng0.metrics.sanitize_seconds == 0.0


def test_rule_catalog_is_fully_exercised():
    import ast
    import pathlib

    source = pathlib.Path(__file__).read_text()
    asserted = {
        node.value
        for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in SANITIZE_RULES
    }
    assert asserted >= set(SANITIZE_RULES), (
        f"rules without fixtures: {sorted(set(SANITIZE_RULES) - asserted)}"
    )
