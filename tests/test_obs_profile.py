"""Continuous profiler + predictive cost model (``repro.obs.profile`` /
``repro.obs.costmodel``).

The two load-bearing claims:

* **bit-identical when on** — ``OnlineConfig(profile=True)`` changes no
  result: every workload query, under both executors, yields the same
  points and bootstrap trials with profiling on and off;
* **the model predicts** — after the warm-up quota the cost model issues
  per-batch predictions, scores them against actuals, excludes recovery
  replay from what it learns, and inverts the measured ``c/√n`` CI
  trajectory into a batches-to-target estimate.

Scale knobs (for the CI smoke jobs): ``IOLAP_PROFILE_BATCHES`` (default
6) and ``IOLAP_PROFILE_TRIALS`` (default 8).
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.metrics.stats import BatchMetrics
from repro.obs import NULL_OBS, MetricsObservability
from repro.obs.costmodel import CostModel
from repro.obs.profile import (
    MAX_SAMPLES,
    PROFILES_SCHEMA,
    ContinuousProfiler,
    Ewma,
    ProfileStore,
    QueryProfile,
    normalize_label,
    plan_signature,
)
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES
from tests.test_executor import _assert_rows_identical

BATCHES = int(os.environ.get("IOLAP_PROFILE_BATCHES", "6"))
TRIALS = int(os.environ.get("IOLAP_PROFILE_TRIALS", "8"))

ALL_QUERIES = [("tpch", name) for name in TPCH_QUERIES] + [
    ("conviva", name) for name in CONVIVA_QUERIES
]


@pytest.fixture(scope="module")
def catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


def spec_of(source, name):
    return (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]


def run_query(spec, catalog, executor, profile=False, path=None,
              batches=BATCHES, **config):
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(num_trials=TRIALS, seed=7, profile=profile,
                     profile_path=path, **config),
        executor=executor,
    )
    try:
        return engine, list(engine.run(spec.plan, batches))
    finally:
        engine.executor.close()


class TestEwma:
    def test_first_sample_is_the_value(self):
        ew = Ewma(alpha=0.5)
        assert ew.update(10.0) == 10.0
        assert ew.count == 1

    def test_smoothing(self):
        ew = Ewma(alpha=0.5)
        ew.update(10.0)
        assert ew.update(20.0) == pytest.approx(15.0)

    def test_default_when_empty(self):
        assert Ewma().get(3.5) == 3.5

    def test_round_trip(self):
        ew = Ewma()
        ew.update(1.0)
        ew.update(2.0)
        back = Ewma.from_dict(ew.to_dict())
        assert back.value == ew.value
        assert back.count == 2


class TestPlanSignature:
    def test_stable_for_same_shape(self):
        spec = TPCH_QUERIES["Q17"]
        assert plan_signature(spec.plan) == plan_signature(spec.plan)
        assert len(plan_signature(spec.plan)) == 16

    def test_distinguishes_plans(self):
        sigs = {plan_signature(TPCH_QUERIES[n].plan) for n in TPCH_QUERIES}
        assert len(sigs) == len(TPCH_QUERIES)

    def test_describe_carries_no_process_ids(self):
        # The signature key must survive process restarts: object ids
        # (0x... or bare id() digits) may not leak into describe().
        text = TPCH_QUERIES["Q17"].plan.describe()
        assert "0x" not in text


class TestNormalizeLabel:
    def test_strips_id_suffix(self):
        assert normalize_label("filter:140234567890") == "filter"

    def test_keeps_symbolic_suffix(self):
        assert normalize_label("scan:lineorder") == "scan:lineorder"
        assert normalize_label("aggregate") == "aggregate"


class TestProfileStore:
    def test_round_trip(self, tmp_path):
        store = ProfileStore()
        prof = store.get_or_create("abc123", "aggregate <- scan")
        prof.runs = 2
        prof.batch_seconds.update(0.5)
        prof.operator("agg:1").self_seconds.update(0.25)
        prof.kernel("probe.calls").update(100.0)
        prof.add_sample(500, 20, 4096, 0.5)
        path = str(tmp_path / "profiles.json")
        store.save(path)
        back = ProfileStore.load(path)
        prof2 = back.queries["abc123"]
        assert prof2.runs == 2
        assert prof2.batch_seconds.get() == pytest.approx(0.5)
        assert prof2.operator("agg:1").self_seconds.get() == pytest.approx(0.25)
        assert prof2.kernels["probe.calls"].get() == pytest.approx(100.0)
        assert prof2.samples == [[500.0, 20.0, 4096.0, 0.5]]
        assert json.load(open(path))["schema"] == PROFILES_SCHEMA

    def test_missing_file_yields_empty(self, tmp_path):
        assert ProfileStore.load(str(tmp_path / "nope.json")).queries == {}

    def test_garbage_yields_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert ProfileStore.load(str(path)).queries == {}
        path.write_text(json.dumps({"schema": "other-v9", "queries": {}}))
        assert ProfileStore.load(str(path)).queries == {}

    def test_sample_cap(self):
        prof = QueryProfile("sig")
        for i in range(MAX_SAMPLES + 50):
            prof.add_sample(i, 0, 0, 0.001)
        assert len(prof.samples) == MAX_SAMPLES
        assert prof.samples[-1][0] == MAX_SAMPLES + 49


def _warmed_profile(n=40, base=0.001, per_row=2e-6):
    """A profile whose batch cost is exactly linear in rows."""
    prof = QueryProfile("sig")
    for i in range(n):
        rows = 500 + (i % 10) * 100
        seconds = base + per_row * rows
        prof.batch_rows.update(rows)
        prof.batch_seconds.update(seconds)
        prof.add_sample(rows, 0.0, 4096.0, seconds)
    return prof


class TestCostModel:
    def test_silent_before_warmup(self):
        prof = QueryProfile("sig")
        for _ in range(3):
            prof.batch_seconds.update(0.01)
            prof.add_sample(100, 0, 0, 0.01)
        model = CostModel(prof, warmup_batches=5)
        assert model.predict_batch_seconds(100) == 0.0

    def test_learns_row_scaling(self):
        model = CostModel(_warmed_profile())
        # In-range and mildly extrapolated row counts both track the
        # planted linear law (clamped around the EWMA, so within ~2x).
        for rows in (600, 1000, 1400):
            expected = 0.001 + 2e-6 * rows
            got = model.predict_batch_seconds(rows, nd_rows=0.0,
                                              state_bytes=4096.0)
            assert got == pytest.approx(expected, rel=0.15), rows

    def test_prediction_clamped_to_ewma_band(self):
        prof = _warmed_profile()
        model = CostModel(prof)
        ewma = prof.batch_seconds.get()
        wild = model.predict_batch_seconds(10_000_000)
        assert wild <= ewma * 2.0 + 1e-12

    def test_ewma_fallback_when_fit_unavailable(self):
        prof = QueryProfile("sig")
        for _ in range(6):  # identical samples: collinear, fit may be flat
            prof.batch_seconds.update(0.02)
            prof.add_sample(100, 0, 0, 0.02)
        model = CostModel(prof)
        assert model.predict_batch_seconds(100) == pytest.approx(0.02, rel=0.5)

    def test_batches_to_ci_inversion(self):
        prof = QueryProfile("sig")
        prof.ci_c.update(10.0)  # rsd = 10/sqrt(n)
        model = CostModel(prof)
        # at n=10_000 rsd=0.1; target 0.05 needs n=40_000 -> 30 batches of 1k
        assert model.predict_batches_to_ci(0.05, 1000, 10_000) == 30
        assert model.predict_batches_to_ci(0.2, 1000, 10_000) == 0
        assert model.predict_batches_to_ci(0.05, 0, 10_000) is None

    def test_no_ci_constant_means_no_estimate(self):
        model = CostModel(QueryProfile("sig"))
        assert model.predict_batches_to_ci(0.05, 1000, 10_000) is None

    def test_calibration_accumulates(self):
        model = CostModel(QueryProfile("sig"))
        model.score(1.0, 2.0)
        model.score(3.0, 2.0)
        cal = model.calibration()
        assert cal["predictions"] == 2
        assert cal["mae_seconds"] == pytest.approx(1.0)
        assert cal["mape"] == pytest.approx(0.5)


def _stub_partial(rsd=float("nan")):
    return SimpleNamespace(max_relative_stdev=lambda: rsd)


class TestObserveBatch:
    def test_recovery_time_excluded(self):
        profiler = ContinuousProfiler(QueryProfile("sig"))
        ctx = SimpleNamespace(obs=NULL_OBS, seen_rows=100)
        bm = BatchMetrics(1)
        bm.wall_seconds = 1.0
        bm.recovery_seconds = 0.4
        bm.new_tuples = 10
        profiler.observe_batch(ctx, bm, _stub_partial())
        assert profiler.profile.batch_seconds.get() == pytest.approx(0.6)
        assert profiler.profile.samples[-1][3] == pytest.approx(0.6)

    def test_registry_counters_profiled_as_deltas(self):
        profiler = ContinuousProfiler(QueryProfile("sig"))
        obs = MetricsObservability()
        ctx = SimpleNamespace(obs=obs, seen_rows=100)
        obs.metrics.gauge("nd.rows", op="sel:1").set(30)
        obs.metrics.counter("op.rows_in", op="sel:1").inc(100)
        bm = BatchMetrics(1)
        bm.wall_seconds = 0.01
        profiler.observe_batch(ctx, bm, _stub_partial())
        obs.metrics.gauge("nd.rows", op="sel:1").set(50)
        obs.metrics.counter("op.rows_in", op="sel:1").inc(100)  # cum. 200
        bm2 = BatchMetrics(2)
        bm2.wall_seconds = 0.01
        profiler.observe_batch(ctx, bm2, _stub_partial())
        op = profiler.profile.operator("sel:1")
        # nd gauge is a level (EWMA over 30, 50); rows_in is cumulative,
        # so both updates must be the per-batch delta of 100.
        assert op.nd_rows.get() == pytest.approx(0.3 * 50 + 0.7 * 30)
        assert op.nd_delta.count == 2
        assert op.rows_in.get() == pytest.approx(100.0)
        assert profiler.last_nd_rows == 50.0

    def test_ci_constant_measured_from_rsd(self):
        profiler = ContinuousProfiler(QueryProfile("sig"))
        ctx = SimpleNamespace(obs=NULL_OBS, seen_rows=10_000)
        bm = BatchMetrics(1)
        bm.wall_seconds = 0.01
        profiler.observe_batch(ctx, bm, _stub_partial(rsd=0.1))
        assert profiler.profile.ci_c.get() == pytest.approx(10.0)


class TestEngineProfiling:
    def _spec_catalog(self, catalogs):
        return TPCH_QUERIES["Q1"], catalogs["tpch"]

    def test_zero_cost_when_off(self, catalogs):
        spec, catalog = self._spec_catalog(catalogs)
        engine, _ = run_query(spec, catalog, "serial", profile=False)
        assert engine.profiler is None
        assert engine.metrics.profile_seconds == 0.0
        assert engine.metrics.cost_calibration == {}
        assert all(b.predicted_seconds == 0.0 for b in engine.metrics.batches)

    def test_profiles_and_calibration_recorded(self, catalogs):
        spec, catalog = self._spec_catalog(catalogs)
        engine, _ = run_query(spec, catalog, "serial", profile=True,
                              batches=8)
        assert engine.profiler is not None
        assert engine.metrics.profile_seconds > 0.0
        cal = engine.metrics.cost_calibration
        assert cal["predictions"] == 8 - cal["warmup_batches"]
        # Warm-up gate: no prediction for the first 5 batches, one each
        # after.
        predicted = [b.predicted_seconds for b in engine.metrics.batches]
        assert all(p == 0.0 for p in predicted[:5])
        assert all(p > 0.0 for p in predicted[5:])
        prof = engine.profiler.profile
        assert prof.batch_seconds.count == 8
        assert prof.hot_operators()
        assert any(op.self_seconds.get() > 0 for op in prof.hot_operators())

    def test_profiles_persist_and_warm_start(self, catalogs, tmp_path):
        spec, catalog = self._spec_catalog(catalogs)
        path = str(tmp_path / "profiles.json")
        run_query(spec, catalog, "serial", profile=True, path=path)
        doc = json.load(open(path))
        assert doc["schema"] == PROFILES_SCHEMA
        sig = plan_signature(spec.plan)
        assert doc["queries"][sig]["runs"] == 1
        # Warm run: the reloaded profile predicts from the first batch.
        engine, _ = run_query(spec, catalog, "serial", profile=True,
                              path=path)
        assert engine.metrics.batches[0].predicted_seconds > 0.0
        assert json.load(open(path))["queries"][sig]["runs"] == 2

    def test_profile_key_isolates_queries(self, catalogs, tmp_path):
        path = str(tmp_path / "profiles.json")
        run_query(TPCH_QUERIES["Q1"], catalogs["tpch"], "serial",
                  profile=True, path=path)
        run_query(TPCH_QUERIES["Q6"], catalogs["tpch"], "serial",
                  profile=True, path=path)
        doc = json.load(open(path))
        assert len(doc["queries"]) == 2

    def test_stack_sampler_smoke(self, catalogs):
        spec, catalog = self._spec_catalog(catalogs)
        engine, _ = run_query(spec, catalog, "serial", profile=True,
                              profile_stack=True)
        report = engine.profiler.stack_report()
        assert report is not None
        assert set(report) == {"samples", "interval_seconds", "top_stacks"}

    def test_recovery_batches_do_not_poison_the_model(self, catalogs):
        spec, catalog = self._spec_catalog(catalogs)
        engine, _ = run_query(
            spec, catalog, "serial", profile=True, batches=8,
            faults="batch@7", checkpoint_interval=3,
        )
        assert engine.metrics.num_recoveries == 1
        bm = engine.metrics.batches[6]
        assert bm.recovered
        # The profiled sample for the recovered batch is its net time.
        sample_seconds = engine.profiler.profile.samples[6][3]
        assert sample_seconds == pytest.approx(
            max(0.0, bm.wall_seconds - bm.recovery_seconds), abs=1e-9
        )


class TestBitIdenticalWithProfiling:
    """Acceptance sweep: profiling changes no bits on any workload query
    under either executor."""

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial(self, source, name, catalogs, tmp_path):
        self._check(source, name, catalogs, "serial", tmp_path)

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_parallel(self, source, name, catalogs, tmp_path):
        self._check(source, name, catalogs, "parallel", tmp_path)

    def _check(self, source, name, catalogs, executor, tmp_path):
        spec = spec_of(source, name)
        catalog = catalogs[source]
        _, plain = run_query(spec, catalog, executor, profile=False)
        _, profiled = run_query(
            spec, catalog, executor, profile=True,
            path=str(tmp_path / "profiles.json"), profile_stack=True,
        )
        assert len(plain) == len(profiled)
        names = plain[0].schema.names if plain else []
        for pp, pq in zip(plain, profiled):
            assert pp.batch_no == pq.batch_no
            _assert_rows_identical(
                pp.rows, pq.rows, names,
                f"{name} ({executor}) batch {pp.batch_no}",
            )
