"""Tests for the columnar storage plane.

Covers the dictionary pages / encoded columns, the structured lineage
sidecar, zero-copy relation slicing (and the aliasing hazard ENG006
guards), and the on-disk chunk format round-trip. Property-based tests
at the bottom fuzz the encode/decode and disk round-trips over the nasty
corners: None (null masks), NaN (identity-distinct), empty batches, and
single-distinct-key columns.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.lint import lint_source
from repro.batching import Partitioner
from repro.core.values import LineageRef
from repro.errors import ReproError
from repro.kernels.codec import factorize_cells
from repro.relational import ColumnType, Relation, Schema, relation_from_columns
from repro.storage import (
    DictPage,
    DiskTable,
    EncodedColumn,
    LineageColumn,
    encode_relation,
    ingest_chunks,
    lineage_from_refs,
    open_table,
    write_relation,
)
from tests.conftest import KX_SCHEMA, random_kx

fuzz = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SALES_SCHEMA = Schema(
    [
        ("region", ColumnType.STRING),
        ("qty", ColumnType.INT),
        ("price", ColumnType.FLOAT),
        ("returned", ColumnType.BOOL),
    ]
)


def sales(n: int = 30, seed: int = 0, nulls: bool = False) -> Relation:
    rng = np.random.default_rng(seed)
    region = np.array(
        [f"r{i}" for i in rng.integers(0, 4, n)], dtype=object
    )
    if nulls:
        region[rng.random(n) < 0.2] = None
    return relation_from_columns(
        SALES_SCHEMA,
        region=region,
        qty=rng.integers(1, 50, n),
        price=np.round(rng.gamma(3.0, 4.0, n), 3),
        returned=rng.random(n) < 0.1,
    )


def assert_same_rows(a: Relation, b: Relation) -> None:
    assert [c.name for c in a.schema] == [c.name for c in b.schema]
    assert len(a) == len(b)
    for c in a.schema:
        x, y = a.columns[c.name], b.columns[c.name]
        if x.dtype.kind == "O":
            assert x.tolist() == y.tolist()
        else:
            np.testing.assert_array_equal(np.asarray(x), np.asarray(y))
    np.testing.assert_array_equal(np.asarray(a.mult), np.asarray(b.mult))


# ---------------------------------------------------------------------------
# DictPage / EncodedColumn
# ---------------------------------------------------------------------------


class TestDictPage:
    def test_first_appearance_codes(self):
        page = DictPage()
        codes = page.encode_values(["b", "a", "b", "c", "a"])
        assert codes.tolist() == [0, 1, 0, 2, 1]
        assert page.tolist() == ["b", "a", "c"]

    def test_append_only_across_calls(self):
        page = DictPage()
        first = page.encode_values(["x", "y"])
        second = page.encode_values(["z", "y", "x"])
        assert first.tolist() == [0, 1]
        assert second.tolist() == [2, 1, 0]
        assert page.gather(first).tolist() == ["x", "y"]

    def test_none_is_a_legal_value_and_masks(self):
        page = DictPage()
        arr = np.array(["a", None, "a", None], dtype=object)
        codes, mask = page.encode_array(arr)
        assert mask is not None
        assert mask.tolist() == [False, True, False, True]
        assert page.gather(codes).tolist() == ["a", None, "a", None]

    def test_no_nulls_means_no_mask(self):
        page = DictPage()
        _, mask = page.encode_array(np.array(["a", "b"], dtype=object))
        assert mask is None

    def test_nan_objects_stay_identity_distinct(self):
        # Two distinct NaN objects are distinct dict keys (NaN != NaN but
        # dict lookup short-circuits on identity) — exactly the codec's
        # _dict_factorize_column semantics.
        nan1, nan2 = float("nan"), float("nan")
        page = DictPage()
        codes = page.encode_values([nan1, nan2, nan1])
        assert codes.tolist() == [0, 1, 0]

    def test_unhashable_values_raise(self):
        with pytest.raises(TypeError):
            DictPage().encode_values([["not", "hashable"]])


class TestEncodedColumn:
    def test_round_trip_and_canonical_objects(self):
        arr = np.array(["u", "v", "u", "w"], dtype=object)
        enc = EncodedColumn.encode(arr)
        out = enc.materialize()
        assert out.tolist() == arr.tolist()
        assert out[0] is out[2]  # page gather canonicalizes cells

    def test_take_and_slice_share_the_page(self):
        enc = EncodedColumn.encode(np.array(["a", "b", "c", "a"], dtype=object))
        taken = enc.take(np.array([3, 1]))
        sliced = enc.slice(1, 3)
        assert taken.page is enc.page and sliced.page is enc.page
        assert taken.materialize().tolist() == ["a", "b"]
        assert sliced.materialize().tolist() == ["b", "c"]
        assert np.shares_memory(sliced.codes, enc.codes)

    def test_concat_same_page(self):
        enc = EncodedColumn.encode(np.array(["a", "b"], dtype=object))
        out = enc.concat(enc.slice(0, 1))
        assert out.page is enc.page
        assert out.materialize().tolist() == ["a", "b", "a"]

    def test_concat_translates_foreign_page(self):
        left = EncodedColumn.encode(np.array(["a", "b"], dtype=object))
        right = EncodedColumn.encode(np.array(["c", "b"], dtype=object))
        out = left.concat(right)
        assert out.page is left.page
        assert out.materialize().tolist() == ["a", "b", "c", "b"]
        # Translation extends left's page append-only: old codes intact.
        assert left.materialize().tolist() == ["a", "b"]

    def test_concat_merges_null_masks(self):
        left = EncodedColumn.encode(np.array(["a", None], dtype=object))
        right = EncodedColumn.encode(np.array(["b", "c"], dtype=object))
        out = left.concat(right)
        assert out.null_mask.tolist() == [False, True, False, False]
        both = right.concat(left)
        assert both.null_mask.tolist() == [False, False, False, True]


# ---------------------------------------------------------------------------
# encode_relation + sidecar flow through Relation operations
# ---------------------------------------------------------------------------


class TestEncodeRelation:
    def test_encodes_object_columns_only(self):
        rel = encode_relation(sales())
        assert set(rel.encodings) == {"region"}
        assert_same_rows(rel, sales())

    def test_unhashable_cells_leave_column_unencoded(self):
        schema = Schema([("k", ColumnType.STRING), ("x", ColumnType.FLOAT)])
        k = np.empty(2, dtype=object)
        k[:] = [["a"], ["b"]]  # lists are unhashable
        rel = Relation(schema, {"k": k, "x": np.ones(2)})
        assert encode_relation(rel).encodings == {}

    def test_sidecar_survives_take_filter_slice(self):
        rel = encode_relation(sales())
        page = rel.encodings["region"].page
        taken = rel.take(np.array([5, 1, 8]))
        filtered = rel.filter(np.asarray(rel.columns["qty"]) > 10)
        sliced = rel.slice(4, 20)
        for out in (taken, filtered, sliced):
            assert out.encodings["region"].page is page
            assert (
                out.encodings["region"].materialize().tolist()
                == out.columns["region"].tolist()
            )

    def test_sidecar_survives_concat(self):
        rel = encode_relation(sales())
        out = rel.slice(0, 10).concat(rel.slice(10, 30))
        assert out.encodings["region"].page is rel.encodings["region"].page
        assert_same_rows(out, rel)

    def test_concat_with_unencoded_relation_drops_sidecar(self):
        rel = encode_relation(sales(10))
        plain = sales(5, seed=3)
        out = rel.concat(plain)
        assert "region" not in out.encodings
        assert len(out) == 15


# ---------------------------------------------------------------------------
# Zero-copy slicing and the aliasing hazard
# ---------------------------------------------------------------------------


class TestZeroCopySlice:
    def test_slice_aliases_parent_buffers(self):
        rel = random_kx(100, seed=1)
        view = rel.slice(10, 60)
        assert len(view) == 50
        for name in ("k", "x", "y"):
            assert np.shares_memory(view.columns[name], rel.columns[name])
        assert np.shares_memory(view.mult, rel.mult)

    def test_take_copies(self):
        rel = random_kx(50, seed=1)
        out = rel.take(np.arange(10, 20))
        for name in ("k", "x", "y"):
            assert not np.shares_memory(out.columns[name], rel.columns[name])

    def test_slice_then_mutate_is_caught_by_eng006(self):
        # The hazard the lint exists for: writing through a slice would
        # corrupt the parent (they alias). ENG006 flags the write site.
        hazard = """
def poke(rel):
    view = rel.slice(0, 10)
    view.columns["x"][0] = -1.0
"""
        diags = lint_source(hazard, path="src/repro/core/somewhere.py")
        assert [d.rule_id for d in diags] == ["ENG006"]

    def test_slice_bit_identical_to_take(self):
        rel = encode_relation(sales(40, seed=2, nulls=True))
        assert_same_rows(rel.slice(7, 31), rel.take(np.arange(7, 31)))


class TestPartitionerZeroCopy:
    def test_sequential_mode_yields_views(self):
        rel = random_kx(200, seed=4)
        batches = Partitioner(mode="sequential").partition(rel, 4)
        assert sum(len(b) for b in batches) == 200
        for b in batches:
            assert np.shares_memory(b.columns["x"], rel.columns["x"])
        joined = batches[0]
        for b in batches[1:]:
            joined = joined.concat(b)
        assert_same_rows(joined, rel)

    def test_shuffle_mode_still_gathers(self):
        rel = random_kx(100, seed=4)
        batches = Partitioner(mode="shuffle", seed=9).partition(rel, 3)
        assert sum(len(b) for b in batches) == 100
        # A shuffled batch is almost surely non-contiguous -> copied.
        assert not np.shares_memory(batches[0].columns["x"], rel.columns["x"])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            Partitioner(mode="bogus")


# ---------------------------------------------------------------------------
# LineageColumn
# ---------------------------------------------------------------------------


def _ref_column(n: int, groups: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    pool = np.empty(groups, dtype=object)
    pool[:] = [LineageRef(block_id=0, key=(g,), column="v") for g in range(groups)]
    slots = rng.integers(0, groups, n).astype(np.int32)
    return pool, slots


class TestLineageColumn:
    def test_factorized_honours_factorize_cells_contract(self):
        # The contract is ``cells[codes[i]] is column[i]`` — the code
        # *numbering* is free (factorize_cells sorts by id, the sidecar
        # by first appearance); consumers only gather and re-partition.
        pool, slots = _ref_column(50, 5, seed=3)
        lin = lineage_from_refs("b", pool, slots)
        column = pool[slots]
        codes, cells = lin.factorized()
        assert all(cells[c] is obj for c, obj in zip(codes, column))
        ref_codes, ref_cells = factorize_cells(column)
        assert len(cells) == len(ref_cells)
        # Identical partitions: same-code pairs agree between the two.
        np.testing.assert_array_equal(
            codes[:, None] == codes[None, :],
            ref_codes[:, None] == ref_codes[None, :],
        )

    def test_nd_mask_and_all_refs(self):
        pool, slots = _ref_column(10, 3)
        slots[4] = -1
        lin = LineageColumn(pool, slots, np.zeros(10, np.int32), ("b",))
        assert lin.nd_mask.tolist() == (slots >= 0).tolist()
        assert not lin.all_refs
        assert lin.factorized() is None  # mixed columns fall back

    def test_take_slice_preserve_pool(self):
        pool, slots = _ref_column(20, 4)
        lin = lineage_from_refs("b", pool, slots)
        assert lin.take(np.array([3, 7])).pool is pool
        assert lin.slice(5, 15).pool is pool
        assert len(lin.slice(5, 15)) == 10

    def test_concat_requires_shared_pool(self):
        pool, slots = _ref_column(10, 3)
        lin = lineage_from_refs("b", pool, slots)
        assert len(lin.concat(lin.slice(0, 4))) == 14
        other_pool, other_slots = _ref_column(10, 3, seed=1)
        assert lin.concat(lineage_from_refs("b", other_pool, other_slots)) is None

    def test_empty_factorized(self):
        pool, _ = _ref_column(1, 2)
        lin = lineage_from_refs("b", pool, np.empty(0, dtype=np.int32))
        codes, cells = lin.factorized()
        assert len(codes) == 0 and len(cells) == 0


# ---------------------------------------------------------------------------
# On-disk chunk tables
# ---------------------------------------------------------------------------


class TestDiskRoundTrip:
    def test_write_relation_round_trip(self, tmp_path):
        rel = sales(100, seed=5, nulls=True)
        table = write_relation(str(tmp_path / "t"), rel, chunk_rows=32)
        assert table.num_rows == 100
        assert table.num_chunks == 4
        assert_same_rows(table.relation(), rel)

    def test_chunks_concat_to_whole(self, tmp_path):
        rel = sales(50, seed=6)
        table = write_relation(str(tmp_path / "t"), rel, chunk_rows=20)
        joined = None
        for chunk in table.iter_chunks():
            joined = chunk if joined is None else joined.concat(chunk)
        assert_same_rows(joined, rel)

    def test_one_page_shared_across_chunks(self, tmp_path):
        rel = sales(60, seed=7)
        table = write_relation(str(tmp_path / "t"), rel, chunk_rows=16)
        page = table.page("region")
        for chunk in table.iter_chunks():
            assert chunk.encodings["region"].page is page

    def test_numeric_chunks_are_memmap_views(self, tmp_path):
        rel = sales(40, seed=8)
        table = write_relation(str(tmp_path / "t"), rel, chunk_rows=10)
        chunk = table.chunk(1)
        base = chunk.columns["price"]
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap)
        with pytest.raises(ValueError):
            chunk.columns["price"][0] = 0.0  # mode="r" maps are read-only

    def test_ingest_mapping_chunks(self, tmp_path):
        schema = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
        chunks = [
            {"k": np.array([1, 2]), "x": np.array([0.5, 1.5])},
            {"k": np.array([3]), "x": np.array([2.5])},
        ]
        table = ingest_chunks(str(tmp_path / "t"), schema, chunks)
        assert table.num_rows == 3
        assert table.relation().columns["k"].tolist() == [1, 2, 3]

    def test_dictionary_grows_across_chunks(self, tmp_path):
        schema = Schema([("s", ColumnType.STRING)])
        chunks = [
            {"s": np.array(["a", "b"], dtype=object)},
            {"s": np.array(["c", "a"], dtype=object)},
        ]
        table = ingest_chunks(str(tmp_path / "t"), schema, chunks)
        assert table.page("s").tolist() == ["a", "b", "c"]
        assert table.relation().columns["s"].tolist() == ["a", "b", "c", "a"]

    def test_empty_relation_round_trip(self, tmp_path):
        rel = sales(30, seed=1).slice(0, 0)
        table = write_relation(str(tmp_path / "t"), rel)
        assert table.num_rows == 0
        assert len(table.relation()) == 0

    def test_open_table_rejects_non_table(self, tmp_path):
        (tmp_path / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(ReproError):
            open_table(str(tmp_path))

    def test_ragged_chunk_rejected(self, tmp_path):
        schema = Schema([("a", ColumnType.INT), ("b", ColumnType.INT)])
        with pytest.raises(ReproError):
            ingest_chunks(
                str(tmp_path / "t"),
                schema,
                [{"a": np.array([1, 2]), "b": np.array([1])}],
            )

    def test_chunk_index_out_of_range(self, tmp_path):
        table = write_relation(str(tmp_path / "t"), sales(10), chunk_rows=5)
        with pytest.raises(ReproError):
            table.chunk(2)

    def test_reopen_by_path(self, tmp_path):
        rel = sales(25, seed=9, nulls=True)
        write_relation(str(tmp_path / "t"), rel, chunk_rows=8)
        assert_same_rows(open_table(str(tmp_path / "t")).relation(), rel)
        assert isinstance(open_table(str(tmp_path / "t")), DiskTable)


# ---------------------------------------------------------------------------
# _from_parts
# ---------------------------------------------------------------------------


class TestFromParts:
    def test_matches_public_constructor(self):
        rel = random_kx(20, seed=2)
        rebuilt = Relation._from_parts(
            rel.schema, dict(rel.columns), rel.mult, rel.trial_mults
        )
        assert_same_rows(rebuilt, rel)
        assert rebuilt.encodings == {} and rebuilt.lineage == {}

    def test_sidecars_attach(self):
        rel = encode_relation(sales(10))
        rebuilt = Relation._from_parts(
            rel.schema,
            dict(rel.columns),
            rel.mult,
            None,
            encodings=dict(rel.encodings),
        )
        assert rebuilt.encodings["region"].page is rel.encodings["region"].page

    def test_default_sidecar_dicts_are_not_shared_mutable_state(self):
        a = Relation._from_parts(
            KX_SCHEMA,
            {
                "k": np.zeros(1, dtype=np.int64),
                "x": np.zeros(1),
                "y": np.zeros(1),
            },
            np.ones(1),
            None,
        )
        assert a.encodings == {}
        # The shared empty default must never be written to; attaching
        # goes through _from_parts kwargs, giving a fresh dict.
        b = encode_relation(sales(3))
        assert b.encodings and a.encodings == {}


# ---------------------------------------------------------------------------
# Property-based round trips
# ---------------------------------------------------------------------------

cell = st.one_of(
    st.none(),
    st.text(max_size=6),
    st.sampled_from(["dup", "dup2"]),  # force repeats
)


@fuzz
@given(st.lists(cell, max_size=60))
def test_prop_page_round_trip(values):
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    page = DictPage()
    codes, mask = page.encode_array(arr)
    assert page.gather(codes).tolist() == values
    if mask is not None:
        assert mask.tolist() == [v is None for v in values]
    else:
        assert all(v is not None for v in values)
    # Re-encoding through a fresh page agrees cell for cell.
    again = EncodedColumn.encode(arr)
    assert again.materialize().tolist() == values


@fuzz
@given(st.lists(cell, max_size=40), st.lists(cell, max_size=40))
def test_prop_cross_page_concat(left_vals, right_vals):
    def col(values):
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return EncodedColumn.encode(arr)

    out = col(left_vals).concat(col(right_vals))
    assert out.materialize().tolist() == left_vals + right_vals
    nulls = [v is None for v in left_vals + right_vals]
    if out.null_mask is not None:
        assert out.null_mask.tolist() == nulls
    else:
        assert not any(nulls)


@fuzz
@given(
    values=st.lists(
        st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
        max_size=50,
    ),
    chunk_rows=st.integers(min_value=1, max_value=16),
)
def test_prop_disk_round_trip(values, chunk_rows, tmp_path_factory):
    strings = np.empty(len(values), dtype=object)
    strings[:] = values
    rel = relation_from_columns(
        Schema([("s", ColumnType.STRING), ("x", ColumnType.FLOAT)]),
        s=strings,
        x=np.arange(len(values), dtype=np.float64),
    )
    path = str(tmp_path_factory.mktemp("chunks") / "t")
    table = write_relation(path, rel, chunk_rows=chunk_rows)
    assert_same_rows(table.relation(), rel)
    total = 0
    for chunk in table.iter_chunks():
        total += len(chunk)
        enc = chunk.encodings.get("s")
        if enc is not None and enc.null_mask is not None:
            assert enc.null_mask.tolist() == [
                v is None for v in chunk.columns["s"].tolist()
            ]
    assert total == table.num_rows


@fuzz
@given(
    n=st.integers(min_value=0, max_value=40),
    chunk_rows=st.integers(min_value=1, max_value=5),
)
def test_prop_single_distinct_key(n, chunk_rows, tmp_path_factory):
    strings = np.empty(n, dtype=object)
    strings[:] = ["only"] * n
    rel = relation_from_columns(
        Schema([("s", ColumnType.STRING)]), s=strings
    )
    path = str(tmp_path_factory.mktemp("single") / "t")
    table = write_relation(path, rel, chunk_rows=chunk_rows)
    assert table.page("s").tolist() == (["only"] if n else [])
    assert_same_rows(table.relation(), rel)


@fuzz
@given(st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=40))
def test_prop_lineage_round_trip(raw_slots):
    groups = 4
    pool = np.empty(groups, dtype=object)
    pool[:] = [LineageRef(block_id=0, key=(g,), column="v") for g in range(groups)]
    slots = np.asarray([abs(s) % groups for s in raw_slots], dtype=np.int32)
    lin = lineage_from_refs("b", pool, slots)
    column = pool[slots]
    codes, cells = lin.factorized()
    assert all(cells[c] is obj for c, obj in zip(codes, column))
    assert len(cells) == len(set(slots.tolist()))
    # Slicing then concatenating reproduces the original factorization.
    half = len(slots) // 2
    rejoined = lin.slice(0, half).concat(lin.slice(half, len(slots)))
    np.testing.assert_array_equal(rejoined.slots, lin.slots)
