"""The two-tier rollup aggregation plane (``OnlineConfig(rollup=True)``).

The contract under test, end to end: folding pruning-resolved (quiescent)
groups into the per-sink :class:`~repro.rollup.ResolvedRollupStore` must be
*invisible* in every published ``PartialResult`` — bit-identical points,
bootstrap trials, and row order against the rollup-off reference — across
both executors, both kernel modes, checkpoint/restore replay, and injected
mid-run recoveries. What may change is only the per-batch cost profile
(covered by ``benchmarks/test_perf_rollup.py``) and the obs counters that
expose the resolved/ND split.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.operators.aggregate import AggregateOp
from repro.core.sentinels import QuiescenceTracker
from repro.obs import Observability
from repro.rollup import ResolvedRollupStore, demote_restored_rollups
from repro.relational import (
    Catalog,
    avg,
    col,
    count,
    relation_from_columns,
    scan,
    sum_,
)
from repro.state import InMemoryStateStore, StateRegistry, estimate_nbytes
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES
from tests.conftest import KX_SCHEMA, random_kx
from tests.test_kernels import assert_partials_identical

ALL_QUERIES = [("tpch", name) for name in TPCH_QUERIES] + [
    ("conviva", name) for name in CONVIVA_QUERIES
]

fuzz = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def small_catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


def run_partials(
    spec_plan,
    catalog,
    streamed,
    *,
    rollup,
    vectorize=True,
    executor="serial",
    num_batches=6,
    num_trials=8,
    partition_mode="shuffle",
    faults=None,
    checkpoint_interval=0,
    quiesce=2,
):
    engine = OnlineQueryEngine(
        catalog,
        streamed,
        OnlineConfig(
            num_trials=num_trials,
            seed=7,
            rollup=rollup,
            rollup_quiesce=quiesce,
            vectorize=vectorize,
            faults=faults,
            checkpoint_interval=checkpoint_interval,
        ),
        executor=executor,
        partition_mode=partition_mode,
    )
    try:
        return engine, list(engine.run(spec_plan, num_batches))
    finally:
        engine.executor.close()


def wave_catalog(n=30000, groups=1500, seed=0) -> Catalog:
    """kx data sorted by group: sequential partitioning delivers each
    group in one contiguous wave, so groups quiesce and migrate."""
    rel = random_kx(n, seed=seed, groups=groups)
    order = np.argsort(rel.column("k"), kind="stable")
    return Catalog({"t": rel.take(order)})


def wave_plan():
    return scan("t", KX_SCHEMA).aggregate(
        ["k"], [avg("x", "ax"), avg("y", "ay")]
    )


def rollup_group_batches(engine) -> int:
    return sum(bm.rollup_groups for bm in engine.metrics.batches)


# ---------------------------------------------------------------------------
# Acceptance gate: every workload query, bit-identical with rollups on,
# across both executors and both kernel modes.
# ---------------------------------------------------------------------------


class TestWorkloadParity:
    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial_vectorized(self, source, name, small_catalogs):
        self._check(source, name, small_catalogs, True, "serial")

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial_reference_kernels(self, source, name, small_catalogs):
        self._check(source, name, small_catalogs, False, "serial")

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_parallel(self, source, name, small_catalogs):
        self._check(source, name, small_catalogs, True, "parallel")

    def _check(self, source, name, catalogs, vectorize, executor):
        spec = (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]
        catalog = catalogs[source]
        _, ref = run_partials(
            spec.plan, catalog, spec.streamed_table,
            rollup=False, vectorize=vectorize, executor=executor,
        )
        _, got = run_partials(
            spec.plan, catalog, spec.streamed_table,
            rollup=True, vectorize=vectorize, executor=executor,
        )
        assert got, f"{name}: no partial results"
        assert_partials_identical(
            got, ref, f"{name} {executor} vectorize={vectorize} rollup"
        )


# ---------------------------------------------------------------------------
# Migration actually happens — and is still invisible.
# ---------------------------------------------------------------------------


class TestMigration:
    def test_sequential_waves_migrate_and_stay_identical(self):
        catalog = wave_catalog()
        plan = wave_plan()
        _, ref = run_partials(
            plan, catalog, "t", rollup=False,
            partition_mode="sequential", num_batches=15,
        )
        engine, got = run_partials(
            plan, catalog, "t", rollup=True,
            partition_mode="sequential", num_batches=15,
        )
        assert rollup_group_batches(engine) > 0, "no group ever migrated"
        assert_partials_identical(got, ref, "sequential waves")

    def test_rollup_shrinks_hot_tier(self):
        catalog = wave_catalog()
        plan = wave_plan()
        ref_engine, _ = run_partials(
            plan, catalog, "t", rollup=False,
            partition_mode="sequential", num_batches=15,
        )
        engine, _ = run_partials(
            plan, catalog, "t", rollup=True,
            partition_mode="sequential", num_batches=15,
        )
        hot_ref = sum(bm.nd_groups for bm in ref_engine.metrics.batches)
        hot = sum(bm.nd_groups for bm in engine.metrics.batches)
        assert hot < hot_ref / 2, (hot, hot_ref)
        # Conservation: every published group-batch lands in exactly one
        # tier, so the per-batch tier split sums to the reference count.
        for bm_r, bm_t in zip(ref_engine.metrics.batches, engine.metrics.batches):
            assert bm_t.rollup_groups + bm_t.nd_groups == bm_r.nd_groups

    def test_structural_flip_demotes(self):
        """A group whose rows reappear after it migrated must be demoted
        back into the hot tier — and the answer must not wobble."""
        rng = np.random.default_rng(3)
        n = 6000
        k = rng.integers(0, 40, n)
        # Group 0 gets a burst at the very start and another at the very
        # end of the stream; sequential partitioning turns that into
        # touch → quiesce → migrate → late touch → demote.
        k[: n // 10] = 0
        k[-n // 10:] = 0
        rel = relation_from_columns(
            KX_SCHEMA,
            k=np.concatenate([k[: n // 10], np.sort(k[n // 10: -n // 10]),
                              k[-n // 10:]]),
            x=np.round(rng.gamma(3.0, 4.0, n), 3),
            y=np.round(rng.normal(50.0, 15.0, n), 3),
        )
        catalog = Catalog({"t": rel})
        plan = wave_plan()
        _, ref = run_partials(
            plan, catalog, "t", rollup=False,
            partition_mode="sequential", num_batches=12,
        )
        engine, got = run_partials(
            plan, catalog, "t", rollup=True,
            partition_mode="sequential", num_batches=12,
        )
        assert rollup_group_batches(engine) > 0
        demoted = sum(
            1 for bm in engine.metrics.batches if bm.rollup_groups
        )
        assert demoted, "expected at least one batch with a live rollup tier"
        assert_partials_identical(got, ref, "structural flip")

    def test_rollup_counters_exported(self):
        obs, sink = Observability.in_memory()
        catalog = wave_catalog(n=8000, groups=400)
        engine = OnlineQueryEngine(
            catalog, "t",
            OnlineConfig(num_trials=8, seed=7, rollup=True),
            partition_mode="sequential",
            obs=obs,
        )
        try:
            engine.run_to_completion(wave_plan(), 10)
        finally:
            engine.executor.close()
            obs.close()
        names = {
            e["name"].split("{", 1)[0]
            for e in sink.events
            if e.get("kind") == "counter"
        }
        assert {"rollup.groups", "rollup.nd_groups", "rollup.hits",
                "rollup.migrations"} <= names


# ---------------------------------------------------------------------------
# The sketch-level migration primitives are bit-exact.
# ---------------------------------------------------------------------------


def make_sketch_op(n=2000, groups=10, seed=1):
    """Drive a standalone grouped-AVG aggregate for two batches; the op's
    rollup-eligible persistent output and sketch are then inspectable."""
    from repro.core.blocks import RuntimeContext
    from repro.core.operators import ScanOp
    from repro.metrics import BatchMetrics

    rel = random_kx(n, seed=seed, groups=groups)
    ctx = RuntimeContext(
        Catalog({"t": rel}), "t", n,
        OnlineConfig(num_trials=8, seed=7, rollup=True),
    )
    specs = [avg("x", "ax"), avg("y", "ay")]
    node = scan("t", KX_SCHEMA).aggregate(["k"], specs)
    op = AggregateOp(
        ScanOp("t", KX_SCHEMA), ["k"], specs, node.output_schema({}),
        block_id=99, sample_weighted=True,
    )
    assert op.rollup_eligible
    half = n // 2
    ctx.begin_batch(1, rel.take(np.arange(half)), BatchMetrics(1))
    op.run(ctx)
    ctx.begin_batch(2, rel.take(np.arange(half, n)), BatchMetrics(2))
    op.run(ctx)
    return op


class TestSketchRoundTrip:
    def test_extract_reinsert_is_identity(self):
        op = make_sketch_op(seed=1, groups=12)
        sketch = op.sketch
        before = {
            key: (
                float(sketch.weight[gid]),
                sketch.trial_weight[gid].copy(),
                [a[gid].copy() for a in sketch.sums],
                [a[gid].copy() for a in sketch.trial_sums],
            )
            for key, gid in sketch.key_to_gid.items()
        }
        victims = sorted(before)[::2]
        rows = sketch.extract_groups(victims)
        assert sorted(rows) == sorted(victims)
        for key in victims:
            assert key not in sketch.key_to_gid
        sketch.reinsert_groups(rows)
        assert set(sketch.key_to_gid) == set(before)
        for key, (w, tw, sums, tsums) in before.items():
            gid = sketch.key_to_gid[key]
            assert sketch.weight[gid] == w, key
            assert np.array_equal(sketch.trial_weight[gid], tw)
            for a, b in zip(sketch.sums, sums):
                assert np.array_equal(a[gid], b, equal_nan=True)
            for a, b in zip(sketch.trial_sums, tsums):
                assert np.array_equal(a[gid], b, equal_nan=True)

    def test_store_migrate_demote_round_trip(self):
        op = make_sketch_op(seed=2, groups=10)
        sketch, output = op.sketch, op._output
        key = sorted(sketch.key_to_gid)[0]
        store = ResolvedRollupStore()
        rows = sketch.extract_groups([key])
        store.migrate(key, output.groups[key], rows[key], batch_no=3)
        assert key in store and len(store) == 1
        assert store.migrations == 1
        with pytest.raises(AssertionError):
            store.migrate(key, output.groups[key], rows[key], batch_no=4)
        back = store.demote([key])
        assert store.demotions == 1 and len(store) == 0
        assert back[key] is rows[key]

    def test_demote_all_empties_store(self):
        op = make_sketch_op(seed=3, groups=10)
        sketch, output = op.sketch, op._output
        keys = sorted(sketch.key_to_gid)[:4]
        store = ResolvedRollupStore()
        for key, accum in sketch.extract_groups(keys).items():
            store.migrate(key, output.groups[key], accum, batch_no=1)
        rows = store.demote_all()
        assert sorted(rows) == sorted(keys)
        assert len(store) == 0


# ---------------------------------------------------------------------------
# Byte accounting: an accumulator shared between tiers is counted once.
# ---------------------------------------------------------------------------


class TestNbytesDedup:
    def test_shared_group_value_counted_once(self):
        op = make_sketch_op(seed=4, groups=10)
        output = op._output
        key = sorted(output.groups)[0]
        rollup = ResolvedRollupStore()
        accum = op.sketch.extract_groups([key])[key]
        rollup.migrate(key, output.groups[key], accum, batch_no=1)

        store = InMemoryStateStore()
        store.put("rollup", rollup)
        store.put("output", output)
        both = estimate_nbytes(store)

        alone = InMemoryStateStore()
        alone.put("output", output)
        separate = estimate_nbytes(alone) + rollup.estimated_bytes(seen=set())

        # The GroupValue aliased from both tiers must not be billed twice:
        # the shared-store total is smaller than summing the tiers blind.
        assert both < separate
        # And the dedup can only remove what the rollup tier itself holds.
        assert separate - both <= rollup.estimated_bytes(seen=set())

    def test_seen_set_is_per_call(self):
        rollup = ResolvedRollupStore()
        store = InMemoryStateStore()
        store.put("rollup", rollup)
        assert estimate_nbytes(store) == estimate_nbytes(store)


# ---------------------------------------------------------------------------
# Recovery: restored rollup entries are demoted before the replay suffix.
# ---------------------------------------------------------------------------


class TestRestoreDemotion:
    def test_demote_restored_rollups_sweeps_registry(self):
        op = make_sketch_op(seed=5, groups=10)
        keys = sorted(op.sketch.key_to_gid)[:3]
        rollup = op._rollup
        tracker = op.state.get("quiesce")
        assert isinstance(tracker, QuiescenceTracker)
        for key, accum in op.sketch.extract_groups(keys).items():
            rollup.migrate(key, op._output.groups[key], accum, batch_no=2)
        registry = StateRegistry()
        registry.adopt("agg:test", op.state)
        assert demote_restored_rollups(registry) == len(keys)
        assert len(rollup) == 0
        for key in keys:
            assert key in op.sketch.key_to_gid
        assert demote_restored_rollups(registry) == 0

    def test_faulted_run_with_migrations_matches_clean_reference(self):
        catalog = wave_catalog(n=12000, groups=600)
        plan = wave_plan()
        _, ref = run_partials(
            plan, catalog, "t", rollup=False,
            partition_mode="sequential", num_batches=12,
        )
        engine, got = run_partials(
            plan, catalog, "t", rollup=True,
            partition_mode="sequential", num_batches=12,
            faults="batch@7", checkpoint_interval=3,
        )
        assert engine.metrics.num_recoveries >= 1
        assert rollup_group_batches(engine) > 0
        final_ref, final = ref[-1], got[-1]
        assert final.to_relation().bag_equal(final_ref.to_relation(), 9)


# ---------------------------------------------------------------------------
# Report schema v2: the rollup section round-trips and validates.
# ---------------------------------------------------------------------------


class TestReportRollup:
    def _summary(self, rollup):
        from repro.obs.report import TraceSummary

        obs, sink = Observability.in_memory()
        catalog = wave_catalog(n=6000, groups=300)
        engine = OnlineQueryEngine(
            catalog, "t",
            OnlineConfig(num_trials=8, seed=7, rollup=rollup),
            partition_mode="sequential",
            obs=obs,
        )
        try:
            engine.run_to_completion(wave_plan(), 10)
        finally:
            engine.executor.close()
            obs.close()
        return TraceSummary(sink.events)

    def test_rollup_section_present_and_valid(self):
        from repro.obs.report import validate_report

        summary = self._summary(rollup=True)
        doc = summary.to_dict()
        validate_report(doc)
        section = doc["rollup"]
        assert section["served_group_batches"] > 0
        assert section["hot_group_batches"] > 0
        assert section["migrations"] >= 1
        assert 0.0 < section["hit_rate"] <= 1.0

    def test_rollup_section_empty_when_disabled(self):
        from repro.obs.report import validate_report

        summary = self._summary(rollup=False)
        doc = summary.to_dict()
        validate_report(doc)
        assert doc["rollup"] == {}

    def test_top_frame_shows_tier_split(self):
        from repro.obs.export import TopView
        from repro.obs.profile import ContinuousProfiler, QueryProfile

        profiler = ContinuousProfiler(QueryProfile("shape"))
        view = TopView(target_rsd=0.01)
        frame = view.frame(
            profiler, batch_no=5, num_batches=10,
            rsd=0.02, batch_rows=100, seen_rows=500, wall_seconds=0.01,
            rollup_groups=75, nd_groups=25,
        )
        assert "rollup tier: 75 resolved / 25 ND group(s)" in frame
        assert "75.0%" in frame  # hit rate
        off = view.frame(
            profiler, batch_no=5, num_batches=10,
            rsd=0.02, batch_rows=100, seen_rows=500, wall_seconds=0.01,
        )
        assert "rollup tier" not in off


# ---------------------------------------------------------------------------
# Property: under fuzzed datasets, arrival orders, and quiescence knobs —
# with and without an injected mid-run recovery — rollup-merged results
# are indistinguishable from the rollup-disabled reference.
# ---------------------------------------------------------------------------


@fuzz
@given(
    seed=st.integers(0, 10_000),
    groups=st.integers(2, 200),
    quiesce=st.integers(0, 4),
    mode=st.sampled_from(["sequential", "blocks", "shuffle"]),
)
def test_property_rollup_is_invisible(seed, groups, quiesce, mode):
    rng = np.random.default_rng(seed)
    n = 4000
    rel = relation_from_columns(
        KX_SCHEMA,
        k=np.sort(rng.integers(0, groups, n)),
        x=np.round(rng.gamma(3.0, 4.0, n), 3),
        y=np.round(rng.normal(50.0, 15.0, n), 3),
    )
    catalog = Catalog({"t": rel})
    plan = wave_plan()
    _, ref = run_partials(
        plan, catalog, "t", rollup=False, partition_mode=mode,
        num_batches=10, quiesce=quiesce,
    )
    _, got = run_partials(
        plan, catalog, "t", rollup=True, partition_mode=mode,
        num_batches=10, quiesce=quiesce,
    )
    assert_partials_identical(got, ref, f"fuzz seed={seed} mode={mode}")


@fuzz
@given(
    seed=st.integers(0, 10_000),
    fault_batch=st.integers(3, 9),
)
def test_property_recovery_demotes_and_converges(seed, fault_batch):
    """Random resolution orders + an injected mid-run integrity failure:
    the replayed run (which demotes restored rollup entries) must land on
    the fault-free reference, and per-batch prefixes before the fault are
    bit-identical."""
    rng = np.random.default_rng(seed)
    n = 4000
    rel = relation_from_columns(
        KX_SCHEMA,
        k=np.sort(rng.integers(0, 80, n)),
        x=np.round(rng.gamma(3.0, 4.0, n), 3),
        y=np.round(rng.normal(50.0, 15.0, n), 3),
    )
    catalog = Catalog({"t": rel})
    # An uncertain SELECT (x > streaming per-group AVG) gives the sentinel
    # fault a probe site, and keeps groups ND until their range resolves.
    inner = (
        scan("t", KX_SCHEMA)
        .aggregate(["k"], [avg("x", "ax")])
        .rename({"k": "k2"})
    )
    plan = (
        scan("t", KX_SCHEMA)
        .join(inner, keys=[("k", "k2")])
        .select(col("x") > col("ax"))
        .aggregate(["k"], [avg("y", "ay")])
    )
    _, ref = run_partials(
        plan, catalog, "t", rollup=False, partition_mode="sequential",
        num_batches=10, checkpoint_interval=3, quiesce=1,
    )
    engine, got = run_partials(
        plan, catalog, "t", rollup=True, partition_mode="sequential",
        num_batches=10, checkpoint_interval=3, quiesce=1,
        faults=f"sentinel@{fault_batch}",
    )
    assert engine.metrics.num_recoveries >= 1
    assert len(got) == len(ref)
    final_ref, final = ref[-1], got[-1]
    assert final.to_relation().bag_equal(final_ref.to_relation(), 9), (
        f"seed={seed} fault@{fault_batch}"
    )
