"""Tests for the tracer, sinks, and the Chrome trace exporter."""

import io
import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    EventBus,
    JsonlSink,
    MemorySink,
    Observability,
    TraceBuffer,
    to_chrome,
    validate_events,
    write_chrome,
)
from repro.obs.tracer import Tracer


class FakeClock:
    """A deterministic clock the tests advance by hand."""

    def __init__(self):
        self.t = 100.0  # non-zero epoch: ts must still start at 0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_tracer():
    sink = MemorySink()
    clock = FakeClock()
    tracer = Tracer(EventBus([sink]), clock=clock)
    return tracer, sink, clock


class TestSpans:
    def test_span_records_on_exit(self):
        tracer, sink, clock = make_tracer()
        with tracer.span("batch", cat="exec", batch=2, rows=10):
            clock.advance(0.5)
        tracer.flush()
        [event] = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "batch"
        assert event["batch"] == 2
        assert event["ts"] == 0.0
        assert event["dur"] == 0.5
        assert event["args"] == {"rows": 10}
        validate_events(sink.events)

    def test_nested_spans_close_inner_first(self):
        tracer, sink, clock = make_tracer()
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        tracer.flush()
        inner, outer = sink.events
        assert inner["name"] == "inner" and outer["name"] == "outer"
        # Per-track time containment: inner lies within outer.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_span_set_attaches_args(self):
        tracer, sink, _ = make_tracer()
        with tracer.span("batch") as span:
            span.set(recovered=True)
        tracer.flush()
        assert sink.events[0]["args"] == {"recovered": True}

    def test_exception_recorded_and_propagated(self):
        tracer, sink, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("unit"):
                raise RuntimeError("boom")
        tracer.flush()
        assert "RuntimeError: boom" in sink.events[0]["args"]["error"]

    def test_events_flush_in_order(self):
        tracer, sink, clock = make_tracer()
        tracer.instant("a")
        clock.advance(0.1)
        tracer.warning("b", batch=1, message="careful")
        clock.advance(0.1)
        tracer.counter("c", 3.0)
        tracer.convergence("d", batch=1, estimate=1.0)
        tracer.flush()
        assert [e["kind"] for e in sink.events] == [
            "instant", "warning", "counter", "convergence"
        ]
        validate_events(sink.events)

    def test_counter_drops_nonfinite(self):
        tracer, sink, _ = make_tracer()
        tracer.counter("x", float("nan"))
        tracer.counter("x", float("inf"))
        tracer.counter("x", 1.0)
        tracer.flush()
        assert len(sink.events) == 1

    def test_flush_drains(self):
        tracer, sink, _ = make_tracer()
        tracer.instant("a")
        tracer.flush()
        tracer.flush()
        assert len(sink.events) == 1


class TestBufferRouting:
    """The deterministic parallel-collection design: per-unit scratch
    buffers, thread-local routing, merge in unit order."""

    def test_pushed_buffer_captures_thread_events(self):
        tracer, sink, _ = make_tracer()
        buf = TraceBuffer("unit:select:1")
        tracer.push_buffer(buf)
        tracer.instant("inside")
        tracer.pop_buffer()
        tracer.instant("outside")
        assert [e["name"] for e in buf.events] == ["inside"]
        assert buf.events[0]["track"] == "unit:select:1"
        tracer.merge([buf])
        tracer.flush()
        # Merge appends scratches after the main-track events.
        assert [e["name"] for e in sink.events] == ["outside", "inside"]

    def test_merge_order_is_caller_order(self):
        tracer, sink, _ = make_tracer()
        bufs = []
        for i in (2, 0, 1):
            buf = TraceBuffer(f"unit:{i}")
            tracer.push_buffer(buf)
            tracer.instant(f"u{i}")
            tracer.pop_buffer()
            bufs.append((i, buf))
        tracer.merge(b for _, b in sorted(bufs))
        tracer.flush()
        assert [e["name"] for e in sink.events] == ["u0", "u1", "u2"]

    def test_buffer_stack_is_thread_local(self):
        tracer, sink, _ = make_tracer()
        worker_buf = TraceBuffer("unit:w")
        done = threading.Event()

        def worker():
            tracer.push_buffer(worker_buf)
            tracer.instant("worker-event")
            tracer.pop_buffer()
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        tracer.instant("main-event")  # must land in root, not worker_buf
        t.join()
        assert done.wait(1)
        tracer.flush()
        assert [e["name"] for e in sink.events] == ["main-event"]
        assert [e["name"] for e in worker_buf.events] == ["worker-event"]

    def test_merged_parallel_sequence_deterministic(self):
        # Two interleavings of the same per-unit work produce the same
        # final event sequence after an ordered merge.
        sequences = []
        for _ in range(2):
            tracer, sink, _ = make_tracer()
            bufs = [TraceBuffer(f"unit:{i}") for i in range(3)]

            def run_unit(i):
                tracer.push_buffer(bufs[i])
                with tracer.span("unit", unit=str(i)):
                    tracer.instant(f"work-{i}")
                tracer.pop_buffer()

            threads = [
                threading.Thread(target=run_unit, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            tracer.merge(bufs)
            tracer.flush()
            sequences.append([(e["kind"], e["name"], e["track"])
                              for e in sink.events])
        assert sequences[0] == sequences[1]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", batch=1, rows=5)
        assert not span  # falsy: call sites skip arg computation
        with span as s:
            s.set(x=1)
        NULL_TRACER.instant("x")
        NULL_TRACER.warning("x")
        NULL_TRACER.counter("x", 1.0)
        NULL_TRACER.flush()

    def test_shared_span_no_allocation(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestSinks:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(EventBus([JsonlSink.open(str(path))]))
        with tracer.span("run"):
            tracer.instant("mark")
        tracer.flush()
        tracer.bus.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in lines] == ["mark", "run"]
        validate_events(lines)

    def test_bus_fans_out(self):
        a, b = MemorySink(), MemorySink()
        bus = EventBus([a, b])
        bus.emit({"kind": "instant"})
        assert a.events == b.events == [{"kind": "instant"}]

    def test_observability_in_memory(self):
        obs, sink = Observability.in_memory()
        assert obs.enabled
        obs.tracer.instant("x")
        obs.metrics.gauge("g").set(5)
        obs.emit_metrics(batch=1)
        obs.close()
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["instant", "counter"]
        counter = sink.events[1]
        assert counter["name"] == "g"
        assert counter["value"] == 5.0
        assert counter["batch"] == 1


class TestChromeExport:
    def trace_events(self):
        tracer, sink, clock = make_tracer()
        with tracer.span("run", cat="run"):
            clock.advance(1.0)
            with tracer.span("batch", cat="exec", batch=1):
                clock.advance(0.5)
        buf = TraceBuffer("unit:select:1")
        tracer.push_buffer(buf)
        with tracer.span("unit", cat="exec", batch=1):
            clock.advance(0.2)
        tracer.pop_buffer()
        tracer.merge([buf])
        tracer.counter("state.total_bytes", 1024, batch=1)
        tracer.warning("pruning-disabled", batch=1, message="m")
        tracer.flush()
        return sink.events

    def test_structure(self):
        doc = to_chrome(self.trace_events())
        assert doc["displayTimeUnit"] == "ms"
        by_ph = {}
        for e in doc["traceEvents"]:
            by_ph.setdefault(e["ph"], []).append(e)
        assert {"M", "X", "C", "i"} <= set(by_ph)
        # One thread-name metadata record per track, stable tids.
        names = {e["args"]["name"]: e["tid"] for e in by_ph["M"]}
        assert set(names) == {"main", "unit:select:1"}
        assert names["main"] == 0

    def test_span_timestamps_in_microseconds(self):
        doc = to_chrome(self.trace_events())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["batch"]["ts"] == pytest.approx(1.0e6)
        assert spans["batch"]["dur"] == pytest.approx(0.5e6)
        assert spans["batch"]["args"]["batch"] == 1
        # Containment on the main track: batch within run.
        run, batch = spans["run"], spans["batch"]
        assert run["ts"] <= batch["ts"]
        assert batch["ts"] + batch["dur"] <= run["ts"] + run["dur"]

    def test_counter_and_instant_mapping(self):
        doc = to_chrome(self.trace_events())
        [counter] = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counter["args"] == {"value": 1024}
        [instant] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "pruning-disabled"
        assert instant["s"] == "t"

    def test_write_chrome_valid_json(self):
        fh = io.StringIO()
        count = write_chrome(self.trace_events(), fh)
        doc = json.loads(fh.getvalue())
        assert len(doc["traceEvents"]) == count
