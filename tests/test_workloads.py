"""Workload generators and the 22 benchmark queries.

Each query is checked for the strongest property: the final online result
equals the batch evaluator's answer on the full dataset.
"""

import numpy as np
import pytest

from repro.baselines import HDAExecutor, run_batch
from repro.core import OnlineConfig, OnlineQueryEngine
from tests.conftest import bags_close
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)


class TestTPCHGenerator:
    def test_deterministic(self):
        a = generate_tpch(scale=0.1, seed=5)
        b = generate_tpch(scale=0.1, seed=5)
        assert a.lineorder.bag_equal(b.lineorder)

    def test_seeds_differ(self):
        a = generate_tpch(scale=0.1, seed=5)
        b = generate_tpch(scale=0.1, seed=6)
        assert not a.lineorder.bag_equal(b.lineorder)

    def test_scale_controls_size(self):
        small = generate_tpch(scale=0.1, seed=1)
        large = generate_tpch(scale=0.3, seed=1)
        assert len(large.lineorder) > len(small.lineorder)

    def test_foreign_keys_resolve(self, tpch_small):
        lo = tpch_small.lineorder
        assert lo.column("custkey").max() < len(tpch_small.customer)
        assert lo.column("partkey").max() < len(tpch_small.part)
        assert lo.column("suppkey").max() < len(tpch_small.supplier)

    def test_catalog_tables(self, tpch_small):
        cat = tpch_small.catalog()
        for name in ["lineorder", "customer", "supplier", "nation", "part", "partsupp"]:
            assert name in cat

    def test_shipdate_after_orderdate(self, tpch_small):
        lo = tpch_small.lineorder
        assert (lo.column("shipdate") > lo.column("orderdate")).all()

    def test_order_lines_share_customer(self, tpch_small):
        lo = tpch_small.lineorder
        seen = {}
        for ok, ck in zip(lo.column("orderkey"), lo.column("custkey")):
            assert seen.setdefault(ok, ck) == ck


class TestConvivaGenerator:
    def test_deterministic(self):
        a = generate_conviva(scale=0.1, seed=5)
        b = generate_conviva(scale=0.1, seed=5)
        assert a.sessions.bag_equal(b.sessions)

    def test_buffering_suppresses_play(self, conviva_small):
        s = conviva_small.sessions
        buf = s.column("buffer_time")
        play = s.column("play_time")
        fast = play[buf < np.median(buf)].mean()
        slow = play[buf >= np.median(buf)].mean()
        assert slow < fast  # the SBI effect the paper measures

    def test_content_popularity_skewed(self, conviva_small):
        counts = np.bincount(conviva_small.sessions.column("content_id"))
        assert counts.max() > 4 * np.median(counts[counts > 0])

    def test_cdn_info_covers_cdns(self, conviva_small):
        cdns = set(conviva_small.sessions.column("cdn"))
        assert cdns <= set(conviva_small.cdn_info.column("cdn"))

    def test_positive_measures(self, conviva_small):
        s = conviva_small.sessions
        assert (s.column("bitrate") > 0).all()
        assert (s.column("play_time") >= 0).all()


class TestQueryCatalogs:
    def test_tpch_has_ten_queries(self):
        assert len(TPCH_QUERIES) == 10
        assert {q for q, s in TPCH_QUERIES.items() if s.nested} == {
            "Q11", "Q17", "Q18", "Q20", "Q22",
        }

    def test_conviva_has_twelve_queries(self):
        assert len(CONVIVA_QUERIES) == 12

    def test_specs_build_fresh_plans(self):
        a = TPCH_QUERIES["Q1"].plan
        b = TPCH_QUERIES["Q1"].plan
        assert a.node_id != b.node_id


@pytest.mark.parametrize("name", list(TPCH_QUERIES))
def test_tpch_query_online_exact(name, tpch_small):
    spec = TPCH_QUERIES[name]
    cat = tpch_small.catalog()
    exact = run_batch(spec.plan, cat).relation
    eng = OnlineQueryEngine(
        cat, spec.streamed_table, OnlineConfig(num_trials=20, seed=11)
    )
    final = eng.run_to_completion(spec.plan, num_batches=5)
    assert bags_close(exact, final.to_relation(), sig=7)


@pytest.mark.parametrize("name", list(CONVIVA_QUERIES))
def test_conviva_query_online_exact(name, conviva_small):
    spec = CONVIVA_QUERIES[name]
    cat = conviva_small.catalog()
    exact = run_batch(spec.plan, cat).relation
    eng = OnlineQueryEngine(
        cat, spec.streamed_table, OnlineConfig(num_trials=20, seed=11)
    )
    final = eng.run_to_completion(spec.plan, num_batches=5)
    assert bags_close(exact, final.to_relation(), sig=7)


@pytest.mark.parametrize("name", ["Q1", "Q17", "Q18"])
def test_tpch_query_hda_exact(name, tpch_small):
    spec = TPCH_QUERIES[name]
    cat = tpch_small.catalog()
    exact = run_batch(spec.plan, cat).relation
    final = HDAExecutor(cat, spec.streamed_table, seed=11).run_to_completion(
        spec.plan, 5
    )
    assert bags_close(exact, final.relation, sig=7)


@pytest.mark.parametrize("name", ["C1", "C8", "C9"])
def test_conviva_query_hda_exact(name, conviva_small):
    spec = CONVIVA_QUERIES[name]
    cat = conviva_small.catalog()
    exact = run_batch(spec.plan, cat).relation
    final = HDAExecutor(cat, spec.streamed_table, seed=11).run_to_completion(
        spec.plan, 5
    )
    assert bags_close(exact, final.relation, sig=7)
