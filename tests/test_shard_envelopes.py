"""Pickle round-trips for everything that crosses the shard pipe.

The worker protocol ships full engine types between processes: the
catalog's relations (with encoding and lineage sidecars), disk-table
chunk views (memmap-backed buffers), partial-result rows holding
:class:`UncertainValue` cells, batch metrics, and the task/result
envelopes themselves. Each round-trip must preserve value bits — the
shard layer's determinism contract starts at the pipe.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import OnlineConfig
from repro.core.values import UncertainValue
from repro.engine.shards import (
    BatchTask,
    InitTask,
    ShardFailure,
    ShardResult,
    ShardSpec,
    StopTask,
)
from repro.metrics.stats import BatchMetrics
from repro.relational import ColumnType, Schema, relation_from_columns
from repro.relational.relation import Relation
from repro.storage import ingest_chunks
from repro.storage.lineage import lineage_from_refs
from repro.workloads import TPCH_QUERIES


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def assert_relation_equal(a: Relation, b: Relation):
    assert a.schema.names == b.schema.names
    assert len(a) == len(b)
    for name in a.schema.names:
        ca, cb = a.columns[name], b.columns[name]
        assert ca.dtype == cb.dtype
        if ca.dtype.kind == "f":
            assert np.array_equal(ca, cb, equal_nan=True), name
        else:
            assert all(
                x == y or (x != x and y != y) for x, y in zip(ca, cb)
            ), name
    assert np.array_equal(a.mult, b.mult)
    if a.trial_mults is None:
        assert b.trial_mults is None
    else:
        assert np.array_equal(a.trial_mults, b.trial_mults)


class TestRelationRoundTrip:
    def test_plain(self, kx_relation):
        assert_relation_equal(kx_relation, roundtrip(kx_relation))

    def test_with_trials(self, kx_relation):
        trials = np.arange(len(kx_relation) * 3, dtype=np.float64).reshape(
            len(kx_relation), 3
        )
        tagged = kx_relation.with_mult(kx_relation.mult, trials)
        assert_relation_equal(tagged, roundtrip(tagged))

    def test_sidecars_survive(self, tmp_path):
        """A DiskTable chunk view (encoded strings + memmap numerics)
        pickles into a self-contained relation, sidecars intact."""
        schema = Schema(
            [("k", ColumnType.INT), ("s", ColumnType.STRING),
             ("x", ColumnType.FLOAT)]
        )
        src = relation_from_columns(
            schema,
            k=[1, 2, 3, 4], s=["a", "b", "a", "c"], x=[1.5, 2.5, 3.5, 4.5],
        )
        table = ingest_chunks(str(tmp_path / "t"), schema, [src, src])
        view = table.chunk(0)
        assert "s" in view.encodings  # precondition: sidecar attached
        back = roundtrip(view)
        assert_relation_equal(view, back)
        assert "s" in back.encodings
        enc_a, enc_b = view.encodings["s"], back.encodings["s"]
        assert np.array_equal(enc_a.codes, enc_b.codes)
        assert enc_a.page.tolist() == enc_b.page.tolist()
        # The unpickled sidecar dict must be private, not the shared
        # empty-dict singleton or an alias of the original.
        back.encodings["__probe__"] = None
        assert "__probe__" not in view.encodings
        assert "__probe__" not in Relation._from_parts(
            schema, dict(src.columns), src.mult, None
        ).encodings

    def test_lineage_sidecar(self, kx_relation):
        pool = np.array(["g0", "g1"], dtype=object)
        slots = np.array([0, 1] * 6)
        lin = lineage_from_refs("blk", pool, slots)
        rel = Relation._from_parts(
            kx_relation.schema,
            dict(kx_relation.columns),
            kx_relation.mult,
            None,
            lineage={"k": lin},
        )
        back = roundtrip(rel)
        assert "k" in back.lineage
        assert np.array_equal(back.lineage["k"].slots, lin.slots)
        assert list(back.lineage["k"].blocks) == ["blk"]

    def test_whole_disk_table_relation(self, tmp_path):
        schema = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
        src = relation_from_columns(schema, k=[1, 2], x=[0.25, -0.5])
        table = ingest_chunks(str(tmp_path / "t2"), schema, [src])
        back = roundtrip(table.relation())
        assert_relation_equal(table.relation(), back)

    @settings(max_examples=40, deadline=None)
    @given(
        xs=st.lists(
            st.one_of(
                st.floats(allow_infinity=False), st.just(float("nan"))
            ),
            max_size=30,
        )
    )
    def test_float_columns_bitwise(self, xs):
        schema = Schema([("x", ColumnType.FLOAT)])
        rel = relation_from_columns(schema, x=np.array(xs, dtype=np.float64))
        back = roundtrip(rel)
        a, b = rel.columns["x"], back.columns["x"]
        # bit-level equality, not just value equality (NaN payloads, -0.0)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64))

    @settings(max_examples=40, deadline=None)
    @given(
        ss=st.lists(
            st.one_of(st.text(max_size=8), st.none()), max_size=30
        )
    )
    def test_object_columns_with_none(self, ss):
        schema = Schema([("s", ColumnType.STRING)])
        rel = relation_from_columns(schema, s=np.array(ss, dtype=object))
        back = roundtrip(rel)
        assert list(back.columns["s"]) == list(rel.columns["s"])

    def test_empty_relation(self):
        schema = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
        rel = relation_from_columns(schema, k=[], x=[])
        back = roundtrip(rel)
        assert len(back) == 0
        assert back.schema.names == ["k", "x"]


class TestResultRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        point=st.one_of(
            st.floats(allow_infinity=False), st.just(float("nan"))
        ),
        trials=st.lists(
            st.floats(allow_infinity=False, allow_nan=False), max_size=16
        ),
    )
    def test_uncertain_value(self, point, trials):
        uv = UncertainValue(point, np.array(trials, dtype=np.float64))
        back = roundtrip(uv)
        assert back.value == point or (
            back.value != back.value and point != point
        )
        assert np.array_equal(back.trials, uv.trials, equal_nan=True)

    def test_batch_metrics(self):
        bm = BatchMetrics(3)
        bm.new_tuples = 128
        bm.wall_seconds = 0.125
        bm.recovered = True
        back = roundtrip(bm)
        assert back.batch_no == 3
        assert back.new_tuples == 128
        assert back.wall_seconds == 0.125
        assert back.recovered

    def test_shard_result(self):
        rows = [
            {"k": 1, "v": UncertainValue(2.5, np.array([2.0, 3.0]))},
            {"k": 2, "v": UncertainValue(math.nan, np.array([math.nan]))},
        ]
        bm = BatchMetrics(1)
        res = ShardResult(
            shard_index=1, batch_no=1, rows=rows, metrics=bm,
            counters={"seen_rows": 10.0}, cpu_seconds=0.5,
        )
        back = roundtrip(res)
        assert back.shard_index == 1 and back.cpu_seconds == 0.5
        assert back.counters == {"seen_rows": 10.0}
        assert back.rows[0]["v"].value == 2.5
        assert np.array_equal(
            back.rows[1]["v"].trials, rows[1]["v"].trials, equal_nan=True
        )


class TestEnvelopeRoundTrip:
    def test_init_task(self, tpch_small):
        catalog = tpch_small.catalog()
        spec = TPCH_QUERIES["Q1"]
        task = InitTask(
            tables={name: catalog.get(name) for name in catalog},
            streamed_table=spec.streamed_table,
            plan=spec.plan,
            config=OnlineConfig(num_trials=8, seed=3, shards=2),
            num_batches=4,
            partition_mode="shuffle",
            executor="serial",
            shard=ShardSpec(index=1, count=2, key=("returnflag",)),
        )
        back = roundtrip(task)
        assert back.shard == ShardSpec(1, 2, ("returnflag",))
        assert back.config.num_trials == 8 and back.config.shards == 2
        assert set(back.tables) == set(task.tables)
        assert_relation_equal(
            task.tables["lineorder"], back.tables["lineorder"]
        )
        # The plan must compile identically after crossing the pipe.
        from repro.core.compiler import compile_online
        from repro.relational.catalog import Catalog

        compiled = compile_online(
            back.plan, Catalog(back.tables), back.streamed_table
        )
        reference = compile_online(spec.plan, catalog, spec.streamed_table)
        assert compiled.result_schema.names == reference.result_schema.names

    def test_control_tasks(self):
        assert roundtrip(BatchTask(7)) == BatchTask(7)
        assert roundtrip(BatchTask(2, replay=True)).replay
        assert isinstance(roundtrip(StopTask()), StopTask)
        fail = ShardFailure(0, 3, "ReproError", "boom", "Traceback ...")
        back = roundtrip(fail)
        assert (back.kind, back.batch_no, back.traceback) == (
            "ReproError", 3, "Traceback ...",
        )

    def test_fault_plan_in_config(self):
        cfg = OnlineConfig(faults="shard@3:1,sentinel@2", shards=2)
        back = roundtrip(cfg)
        assert back.faults == "shard@3:1,sentinel@2"


@pytest.mark.parametrize("protocol", [2, pickle.HIGHEST_PROTOCOL])
def test_protocol_compat(kx_relation, protocol):
    """multiprocessing pipes use the default protocol, but the envelopes
    must not depend on a specific one."""
    data = pickle.dumps(kx_relation, protocol=protocol)
    assert_relation_equal(kx_relation, pickle.loads(data))
