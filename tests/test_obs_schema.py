"""Golden tests pinning the observability event schema.

These tests freeze the event-schema version and field sets: any change
to the wire format must touch this file (and bump the version constant)
deliberately, so saved traces and the CI smoke job never drift silently.
"""

import json
import math

import pytest

from repro.obs.events import (
    COMMON_FIELDS,
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    KIND_FIELDS,
    OPTIONAL_FIELDS,
    jsonable,
    read_events,
    validate_event,
    validate_events,
)


def make_span(**over):
    event = {
        "v": EVENT_SCHEMA_VERSION,
        "kind": "span",
        "name": "batch",
        "cat": "exec",
        "track": "main",
        "ts": 0.5,
        "dur": 0.1,
    }
    event.update(over)
    return event


class TestGoldenSchema:
    """The frozen shape of the trace wire format (version 1)."""

    def test_version_pinned(self):
        assert EVENT_SCHEMA_VERSION == 1

    def test_kinds_pinned(self):
        assert EVENT_KINDS == {
            "span", "instant", "counter", "warning", "convergence"
        }

    def test_common_fields_pinned(self):
        assert set(COMMON_FIELDS) == {"v", "kind", "name", "cat", "track", "ts"}

    def test_kind_fields_pinned(self):
        assert set(KIND_FIELDS) == set(EVENT_KINDS)
        assert set(KIND_FIELDS["span"]) == {"dur"}
        assert set(KIND_FIELDS["counter"]) == {"value"}
        assert KIND_FIELDS["instant"] == {}
        assert KIND_FIELDS["warning"] == {}
        assert KIND_FIELDS["convergence"] == {}

    def test_optional_fields_pinned(self):
        assert set(OPTIONAL_FIELDS) == {"batch", "args"}


class TestValidateEvent:
    def test_valid_span_accepted(self):
        validate_event(make_span(batch=3, args={"rows": 10}))

    def test_valid_counter_accepted(self):
        validate_event({
            "v": 1, "kind": "counter", "name": "state.total_bytes",
            "cat": "metric", "track": "main", "ts": 0.0, "value": 42,
        })

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_event([1, 2])

    def test_missing_field_rejected(self):
        event = make_span()
        del event["track"]
        with pytest.raises(ValueError, match="missing required field 'track'"):
            validate_event(event)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            validate_event(make_span(surprise=1))

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event(make_span(v=2))

    def test_unknown_kind_rejected(self):
        event = make_span(kind="gauge")
        del event["dur"]
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event(event)

    def test_bool_not_accepted_as_number(self):
        with pytest.raises(ValueError, match="'ts'"):
            validate_event(make_span(ts=True))

    def test_negative_ts_rejected(self):
        with pytest.raises(ValueError, match="ts must be"):
            validate_event(make_span(ts=-1.0))

    def test_negative_dur_rejected(self):
        with pytest.raises(ValueError, match="dur must be"):
            validate_event(make_span(dur=-0.1))

    def test_nonfinite_counter_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            validate_event({
                "v": 1, "kind": "counter", "name": "x", "cat": "metric",
                "track": "main", "ts": 0.0, "value": math.nan,
            })

    def test_bad_optional_type_rejected(self):
        with pytest.raises(ValueError, match="'batch'"):
            validate_event(make_span(batch="three"))

    def test_validate_events_counts(self):
        assert validate_events([make_span(), make_span()]) == 2


class TestJsonable:
    def test_passthrough(self):
        assert jsonable(3) == 3
        assert jsonable("x") == "x"
        assert jsonable(None) is None
        assert jsonable(True) is True
        assert jsonable(1.5) == 1.5

    def test_nonfinite_floats_become_none(self):
        assert jsonable(math.nan) is None
        assert jsonable(math.inf) is None

    def test_containers_recursive(self):
        assert jsonable({"a": [1, math.nan]}) == {"a": [1, None]}
        assert jsonable((1, 2)) == [1, 2]

    def test_numpy_scalars_unwrap(self):
        import numpy as np

        assert jsonable(np.int64(7)) == 7
        assert jsonable(np.float64(2.5)) == 2.5

    def test_unknown_objects_repr(self):
        class Thing:
            def __repr__(self):
                return "<thing>"

        assert jsonable(Thing()) == "<thing>"

    def test_span_args_json_serializable(self):
        # The whole point: whatever lands in args must survive json.dumps
        # with allow_nan=False (the JsonlSink contract).
        args = jsonable({"w": math.inf, "k": (1, 2), "o": object()})
        json.dumps(args, allow_nan=False)


class TestReadEvents:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [make_span(), make_span(name="op", batch=1)]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert list(read_events(path)) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(make_span()) + "\n\n\n")
        assert len(list(read_events(path))) == 1

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(make_span()) + "\n{oops\n")
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            list(read_events(path))

    def test_invalid_event_reports_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(make_span(v=9)) + "\n")
        with pytest.raises(ValueError, match=r":1: "):
            list(read_events(path))

    def test_validation_can_be_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(make_span(v=9)) + "\n")
        assert list(read_events(path, validate=False))[0]["v"] == 9
