"""Tests for range-based predicate classification (Section 5.2)."""

import numpy as np
import pytest

from repro.core.blocks import BlockOutput, GroupValue, OnlineConfig, RuntimeContext
from repro.core.classify import (
    FALSE,
    PENDING,
    TRUE,
    UNKNOWN,
    classify_comparison,
    combine_conjuncts,
    evaluate_side,
)
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.relational import Catalog, ColumnType, Relation, Schema
from repro.relational.expressions import Col, Comparison, Literal, col

SCHEMA = Schema([("d", ColumnType.FLOAT), ("u", ColumnType.FLOAT)])


def make_ctx(t=4):
    ctx = RuntimeContext(Catalog({}), "t", 100, OnlineConfig(num_trials=t))
    ctx.batch_no = 1
    return ctx


def publish(ctx, value, trials, lo, hi, key=(), block=1, colname="v"):
    out = ctx.blocks.get(block) or BlockOutput(block, [], [colname])
    uv = UncertainValue(
        value,
        np.asarray(trials, dtype=float),
        VariationRange(lo, hi),
        LineageRef(block, key, colname),
    )
    out.publish(GroupValue(key, {colname: uv}, True), is_new=True)
    ctx.blocks[block] = out


def rel(d_values, keys=None, block=1, colname="v"):
    n = len(d_values)
    refs = np.empty(n, dtype=object)
    for i in range(n):
        key = () if keys is None else (keys[i],)
        refs[i] = LineageRef(block, key, colname)
    return Relation(
        SCHEMA, {"d": np.asarray(d_values, dtype=float), "u": refs}
    )


class TestEvaluateSide:
    def test_deterministic_side(self):
        ctx = make_ctx()
        side = evaluate_side(col("d") * 2, rel([1.0, 2.0]), {"u"}, ctx)
        assert list(side.point) == [2.0, 4.0]
        assert (side.lo == side.hi).all()
        assert side.trials is None

    def test_bare_uncertain_column(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [9.0, 10.0, 11.0, 10.0], 8.0, 12.0)
        side = evaluate_side(Col("u"), rel([0.0, 0.0]), {"u"}, ctx)
        assert list(side.point) == [10.0, 10.0]
        assert side.lo[0] == 8.0 and side.hi[0] == 12.0
        assert side.trials.shape == (2, 4)

    def test_expression_over_uncertain(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [10.0] * 4, 8.0, 12.0)
        side = evaluate_side(Col("u") * 0.5, rel([0.0]), {"u"}, ctx)
        assert side.point[0] == 5.0
        assert side.lo[0] == 4.0 and side.hi[0] == 6.0

    def test_pending_unresolved_ref(self):
        ctx = make_ctx()  # nothing published
        side = evaluate_side(Col("u"), rel([0.0]), {"u"}, ctx)
        assert side.pending[0]

    def test_refs_collected(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [10.0] * 4, 8.0, 12.0)
        side = evaluate_side(Col("u"), rel([0.0]), {"u"}, ctx)
        assert side.refs == {LineageRef(1, (), "v")}


class TestClassifyComparison:
    def setup_ctx(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [9.0, 10.0, 11.0, 10.0], 8.0, 12.0)
        return ctx

    def test_greater_partitions(self):
        ctx = self.setup_ctx()
        # d > u with R(u) = [8, 12]
        r = rel([20.0, 1.0, 10.5])
        res = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        assert list(res.status) == [TRUE, FALSE, UNKNOWN]

    def test_point_decisions(self):
        ctx = self.setup_ctx()
        r = rel([20.0, 1.0, 10.5])
        res = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        assert list(res.point) == [True, False, True]  # current estimate 10

    def test_trial_decisions(self):
        ctx = self.setup_ctx()
        r = rel([10.5])
        res = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        # trials are [9, 10, 11, 10]: 10.5 > trial?
        assert list(res.trials[0]) == [True, True, False, True]

    def test_less_than(self):
        ctx = self.setup_ctx()
        r = rel([1.0, 20.0, 9.0])
        res = classify_comparison(Comparison("<", Col("d"), Col("u")), r, {"u"}, ctx)
        assert list(res.status) == [TRUE, FALSE, UNKNOWN]

    def test_boundary_is_unknown_for_ge(self):
        ctx = self.setup_ctx()
        res = classify_comparison(
            Comparison(">=", Col("d"), Col("u")), rel([12.0]), {"u"}, ctx
        )
        assert res.status[0] == TRUE  # 12 >= hi(R)=12 always

    def test_equality_disjoint_false(self):
        ctx = self.setup_ctx()
        res = classify_comparison(
            Comparison("==", Col("d"), Col("u")), rel([99.0]), {"u"}, ctx
        )
        assert res.status[0] == FALSE

    def test_equality_overlapping_unknown(self):
        ctx = self.setup_ctx()
        res = classify_comparison(
            Comparison("==", Col("d"), Col("u")), rel([10.0]), {"u"}, ctx
        )
        assert res.status[0] == UNKNOWN

    def test_pending_rows_marked(self):
        ctx = self.setup_ctx()
        r = rel([5.0], keys=["missing"], block=1)
        res = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        assert res.status[0] == PENDING
        assert not res.point[0]

    def test_per_group_ranges(self):
        ctx = make_ctx()
        publish(ctx, 5.0, [5.0] * 4, 4.0, 6.0, key=("a",))
        publish(ctx, 50.0, [50.0] * 4, 40.0, 60.0, key=("b",))
        r = rel([10.0, 10.0], keys=["a", "b"])
        res = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        assert list(res.status) == [TRUE, FALSE]

    def test_expression_range_arithmetic(self):
        ctx = self.setup_ctx()
        # d > 2*u: R(2u) = [16, 24]
        res = classify_comparison(
            Comparison(">", Col("d"), Col("u") * 2), rel([30.0, 10.0, 20.0]), {"u"}, ctx
        )
        assert list(res.status) == [TRUE, FALSE, UNKNOWN]


class TestCombineConjuncts:
    def make_results(self, ctx, d1, d2):
        r = rel(d1)
        c1 = classify_comparison(Comparison(">", Col("d"), Col("u")), r, {"u"}, ctx)
        r2 = rel(d2)
        c2 = classify_comparison(Comparison("<", Col("d"), Col("u")), r2, {"u"}, ctx)
        return c1, c2

    def test_single_passthrough(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [10.0] * 4, 8.0, 12.0)
        res = classify_comparison(
            Comparison(">", Col("d"), Col("u")), rel([20.0]), {"u"}, ctx
        )
        assert combine_conjuncts([res], 4) is res

    def test_false_dominates(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [10.0] * 4, 8.0, 12.0)
        a, b = self.make_results(ctx, [20.0], [20.0])  # TRUE and FALSE
        combined = combine_conjuncts([a, b], 4)
        assert combined.status[0] == FALSE

    def test_unknown_beats_true(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [9.0, 11.0, 10.0, 10.0], 8.0, 12.0)
        a, b = self.make_results(ctx, [20.0], [5.0])  # TRUE and TRUE? no: 5<u TRUE
        combined = combine_conjuncts([a, b], 4)
        assert combined.status[0] == TRUE
        c = classify_comparison(
            Comparison(">", Col("d"), Col("u")), rel([10.0]), {"u"}, ctx
        )
        combined2 = combine_conjuncts([a, c], 4)
        assert combined2.status[0] == UNKNOWN

    def test_points_and_together(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [10.0] * 4, 8.0, 12.0)
        a, b = self.make_results(ctx, [11.0], [11.0])
        combined = combine_conjuncts([a, b], 4)
        assert combined.point[0] == (a.point[0] and b.point[0])

    def test_trials_and_together(self):
        ctx = make_ctx()
        publish(ctx, 10.0, [9.0, 10.0, 11.0, 12.0], 8.0, 12.0)
        a, _ = self.make_results(ctx, [10.5], [10.5])
        b = classify_comparison(
            Comparison("<", Col("d"), Col("u")), rel([10.5]), {"u"}, ctx
        )
        combined = combine_conjuncts([a, b], 4)
        expected = a.trial_matrix(4)[0] & b.trial_matrix(4)[0]
        assert list(combined.trial_matrix(4)[0]) == list(expected)
