"""Tests for the per-group per-trial aggregate sketches."""

import numpy as np
import pytest

from repro.core.sketch import AggBundle
from repro.relational import avg, count, sum_
from repro.relational.relation import Relation
from tests.conftest import KX_SCHEMA, random_kx


def with_trials(rel: Relation, value: float = 1.0, t: int = 3) -> Relation:
    return rel.with_mult(rel.mult, np.full((len(rel), t), value))


SPECS = [sum_("x", "sx"), avg("x", "ax"), count("n")]


class TestFold:
    def test_fold_accumulates_keys(self):
        rel = with_trials(random_kx(100, seed=1, groups=4))
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        assert len(b) == 4

    def test_fold_weight_sums(self):
        rel = with_trials(random_kx(100, seed=1, groups=4))
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        assert b.weight.sum() == pytest.approx(100.0)

    def test_incremental_fold_equals_single_fold(self):
        rel = with_trials(random_kx(200, seed=1, groups=4))
        first = rel.filter(np.arange(200) < 120)
        second = rel.filter(np.arange(200) >= 120)
        inc = AggBundle(SPECS, 3)
        inc.fold(first, ["k"])
        inc.fold(second, ["k"])
        once = AggBundle(SPECS, 3)
        once.fold(rel, ["k"])
        for s in range(len(SPECS)):
            vi, ti = inc.finalize(s, 1.0)
            vo, to = once.finalize(s, 1.0)
            order_i = {k: i for i, k in enumerate(inc.keys)}
            order_o = {k: i for i, k in enumerate(once.keys)}
            for key in order_o:
                assert vi[order_i[key]] == pytest.approx(vo[order_o[key]])

    def test_scalar_group(self):
        rel = with_trials(random_kx(50, seed=2))
        b = AggBundle(SPECS, 3)
        b.fold(rel, [])
        assert b.keys == [()]

    def test_empty_fold_noop(self):
        b = AggBundle(SPECS, 3)
        b.fold(Relation.empty(KX_SCHEMA, num_trials=3), ["k"])
        assert len(b) == 0


class TestFinalize:
    def test_sum_matches_numpy(self):
        rel = with_trials(random_kx(100, seed=3, groups=2))
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        values, trials = b.finalize(0, 1.0)
        for gi, key in enumerate(b.keys):
            mask = rel.column("k") == key[0]
            assert values[gi] == pytest.approx(rel.column("x")[mask].sum())

    def test_trial_values_use_trial_weights(self):
        rel = with_trials(random_kx(60, seed=3, groups=2), value=2.0)
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        values, trials = b.finalize(0, 1.0)
        assert trials[0, 0] == pytest.approx(2.0 * values[0])

    def test_avg_trials_unscaled(self):
        rel = with_trials(random_kx(60, seed=3, groups=2), value=2.0)
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        values, trials = b.finalize(1, 5.0)  # scale must NOT apply to AVG
        assert trials[0, 0] == pytest.approx(values[0])

    def test_scale_applies_to_sum_and_count(self):
        rel = with_trials(random_kx(60, seed=3, groups=2))
        b = AggBundle(SPECS, 3)
        b.fold(rel, ["k"])
        unscaled, _ = b.finalize(0, 1.0)
        scaled, _ = b.finalize(0, 4.0)
        assert scaled[0] == pytest.approx(4.0 * unscaled[0])
        cn_unscaled, _ = b.finalize(2, 1.0)
        cn_scaled, _ = b.finalize(2, 4.0)
        assert cn_scaled[0] == pytest.approx(4.0 * cn_unscaled[0])


class TestFoldValues:
    def test_uncertain_argument_path(self):
        b = AggBundle([sum_("x", "sx")], 2)
        keys = [("g",), ("g",)]
        b.fold_values(
            keys,
            0,
            values=np.array([3.0, 4.0]),
            trial_values=np.array([[3.0, 30.0], [4.0, 40.0]]),
            mult=np.ones(2),
            trial_mults=np.ones((2, 2)),
        )
        values, trials = b.finalize(0, 1.0)
        assert values[0] == 7.0
        assert list(trials[0]) == [7.0, 70.0]


class TestMerge:
    def test_merged_with_none(self):
        b = AggBundle(SPECS, 3)
        assert b.merged_with(None) is b

    def test_merge_unions_keys(self):
        rel = with_trials(random_kx(100, seed=5, groups=4))
        left = AggBundle(SPECS, 3)
        left.fold(rel.filter(rel.column("k") < 2), ["k"])
        right = AggBundle(SPECS, 3)
        right.fold(rel.filter(rel.column("k") >= 2), ["k"])
        merged = left.merged_with(right)
        assert len(merged) == 4

    def test_merge_sums_overlapping_groups(self):
        rel = with_trials(random_kx(100, seed=5, groups=2))
        a = AggBundle(SPECS, 3)
        a.fold(rel, ["k"])
        merged = a.merged_with(a)
        va, _ = a.finalize(0, 1.0)
        vm, _ = merged.finalize(0, 1.0)
        order_a = {k: i for i, k in enumerate(a.keys)}
        order_m = {k: i for i, k in enumerate(merged.keys)}
        for key in order_a:
            assert vm[order_m[key]] == pytest.approx(2.0 * va[order_a[key]])

    def test_merge_does_not_mutate_inputs(self):
        rel = with_trials(random_kx(50, seed=5, groups=2))
        a = AggBundle(SPECS, 3)
        a.fold(rel, ["k"])
        before = a.weight.copy()
        a.merged_with(a)
        assert (a.weight == before).all()


class TestBytes:
    def test_estimated_bytes_grow_with_groups(self):
        small = AggBundle(SPECS, 3)
        small.fold(with_trials(random_kx(50, seed=1, groups=2)), ["k"])
        big = AggBundle(SPECS, 3)
        big.fold(with_trials(random_kx(50, seed=1, groups=20)), ["k"])
        assert big.estimated_bytes() > small.estimated_bytes()
