"""Golden fixtures: every diagnostic rule the analysis layer can emit —
typechecker TC1xx/TC2xx/TC3xx, engine lint ENG001–006, race detector
RACE0xx/1xx/2xx, sanitizer SAN00x — has exactly one minimal triggering
fixture here, and each fired diagnostic is pinned down to its rule id,
a non-empty location, and (where the rule carries one) a repair hint.

A rule added to any catalog without a fixture fails
``test_every_rule_has_a_fixture``; a fixture that stops triggering its
rule fails its parametrized case. This is the contract that keeps the
rule tables in DESIGN.md honest.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np
import pytest

from repro.analysis import check_plan
from repro.analysis.diagnostics import AnalysisDiagnostic
from repro.analysis.lint import ENGINE_LINT_RULES, lint_source
from repro.analysis.races import RACE_RULES, analyze_query_races, check_races
from repro.analysis.sanitize import SANITIZE_RULES, BufferSanitizer
from repro.analysis.typecheck import (
    TYPECHECK_RULES,
    check_pipeline,
    check_units,
    infer_tags,
)
from repro.core.compiler import ExecutionUnit
from repro.core.operators import (
    FilterOp,
    ScanOp,
    StateRule,
    UncertainFilterOp,
)
from repro.core.uncertainty import NodeTags
from repro.core.values import LineageRef
from repro.errors import UnsupportedQueryError
from repro.relational import (
    AggSpec,
    HolisticUDAF,
    avg,
    col,
    count,
    lit,
    min_,
    scan,
    stddev,
    sum_,
)
from repro.relational.algebra import PlanNode
from repro.relational.expressions import Or
from repro.state import InMemoryStateStore
from tests.conftest import KX_SCHEMA

STREAMED = {"t"}

#: Rules whose diagnostics legitimately carry no hint: RACE000 wraps the
#: planner/compiler exception verbatim, TC201 dumps the diverging tag
#: pair, TC306/TC307 are self-explanatory schema/tag mismatches.
#: Everything else must carry a repair hint.
HINTLESS: set[str] = {"RACE000", "TC201", "TC306", "TC307"}


@dataclass
class Ctx:
    """What a fixture may use: a monkeypatch and a small catalog."""

    monkeypatch: pytest.MonkeyPatch
    catalog: Any


def _kx():
    return scan("t", KX_SCHEMA)


def _with_uncertain():
    inner = _kx().aggregate([], [avg("x", "ax")])
    return _kx().join(inner, keys=[])


def _infer(plan):
    _, diags = infer_tags(plan, STREAMED)
    return diags


def _lint(source: str):
    return lint_source(textwrap.dedent(source))


# -- typechecker fixtures ---------------------------------------------------


def _tc101(ctx):
    class Exotic(PlanNode):
        pass

    return _infer(Exotic())


def _tc102(ctx):
    inner = _kx().aggregate(["k"], [avg("x", "ax")]).rename({"k": "k2"})
    return _infer(_kx().join(inner, keys=[("x", "ax")]))


def _tc103(ctx):
    return _infer(_kx().join(_kx(), keys=[("k", "k")]))


def _tc104(ctx):
    return _infer(_with_uncertain().aggregate(["ax"], [count("n")]))


def _tc105(ctx):
    return _infer(_kx().aggregate(["k"], [min_("x", "mn")]))


def _tc106(ctx):
    return _infer(_with_uncertain().distinct(["ax"]))


def _tc107(ctx):
    pred = Or(col("x") > col("ax"), col("y") > col("ax"))
    return _infer(_with_uncertain().select(pred))


def _tc108(ctx):
    return _infer(
        _with_uncertain().project([("z", col("ax") * 2.0), ("k", col("k"))])
    )


def _tc109(ctx):
    return _infer(_with_uncertain().aggregate([], [stddev("ax", "sd")]))


def _tc110(ctx):
    udaf = HolisticUDAF("median", lambda values, weights: 0.0)
    return _infer(
        _with_uncertain().aggregate([], [AggSpec("md", udaf, col("ax"))])
    )


def _tc111(ctx):
    inner = _kx().aggregate(["k"], [avg("x", "x"), avg("y", "y")])
    return _infer(inner.union(_kx()))


def _tc201(ctx):
    import repro.analysis.typecheck as tc

    real = tc.engine_analyze

    def skewed(plan, streamed):
        return {
            node_id: NodeTags(
                t.tuple_uncertain,
                t.uncertain_cols | frozenset({"__phantom"}),
                t.sample_weighted,
                t.raw_stream,
            )
            for node_id, t in real(plan, streamed).items()
        }

    ctx.monkeypatch.setattr(tc, "engine_analyze", skewed)
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    return check_plan(plan, ctx.catalog, "t").diagnostics


def _tc202(ctx):
    import repro.analysis.typecheck as tc

    def rejecting(plan, streamed):
        raise UnsupportedQueryError("engine says no")

    ctx.monkeypatch.setattr(tc, "engine_analyze", rejecting)
    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    return check_plan(plan, ctx.catalog, "t").diagnostics


def _tc301(ctx):
    scan_op = ScanOp("t", KX_SCHEMA)
    return check_pipeline(
        UncertainFilterOp(scan_op, [], [col("x") > lit(5.0)], node_id=901)
    )


def _tc302(ctx):
    scan_op = ScanOp("t", KX_SCHEMA)
    scan_op.uncertain_cols.add("x")
    return check_pipeline(FilterOp(scan_op, col("x") > lit(5.0)))


def _tc303(ctx):
    op = FilterOp(ScanOp("t", KX_SCHEMA), col("x") > lit(5.0))
    op.state.put("stray", 123)
    return check_pipeline(op)


def _tc304(ctx):
    class BadFilter(FilterOp):
        state_rule = StateRule(frozenset({"nd"}), nd_entry="nd")

    op = BadFilter(ScanOp("t", KX_SCHEMA), col("x") > lit(5.0))
    op.state.put("nd", {})
    return check_pipeline(op)


def _tc305(ctx):
    from repro.core.compiler import StreamPipelineUnit, compile_online
    from repro.core.operators import AggregateOp, iter_ops

    plan = _kx().aggregate(["k"], [sum_("x", "sx")])
    compiled = compile_online(plan, ctx.catalog, "t")
    agg = next(
        op
        for unit in compiled.units
        if isinstance(unit, StreamPipelineUnit)
        for op in iter_ops(unit.root_op)
        if isinstance(op, AggregateOp)
    )
    agg.lazy_specs.append(agg.sketch_specs.pop())
    return check_pipeline(agg)


def _tc306(ctx):
    op = ScanOp("t", KX_SCHEMA)
    op.uncertain_cols.add("no_such_column")
    return check_pipeline(op)


def _tc307(ctx):
    scan_op = ScanOp("t", KX_SCHEMA)
    scan_op.uncertain_cols.add("x")
    op = UncertainFilterOp(scan_op, [], [col("x") > lit(5.0)], node_id=907)
    inferred = {907: NodeTags(True, frozenset({"x", "y"}), True, True)}
    return check_pipeline(op, inferred)


class _Unit(ExecutionUnit):
    def __init__(self, label, produces=(), consumes=(), ops=()):
        self.label = label
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)
        self.ops = list(ops)


def _tc308(ctx):
    return check_units([_Unit("a", produces={1}), _Unit("b", produces={1})])


def _tc309(ctx):
    return check_units([_Unit("a", produces={1}, consumes={2})])


# -- engine-lint fixtures ---------------------------------------------------


def _eng001(ctx):
    return _lint(
        """
        class BadOp:
            def process(self, delta, ctx):
                delta.rows.append(1)
                return delta
        """
    )


def _eng002(ctx):
    return _lint(
        """
        class BadOp:
            def process(self, delta, ctx):
                self.seen = self.seen + len(delta.rows)
                return delta
        """
    )


def _eng003(ctx):
    return _lint(
        """
        class BadOp:
            def process(self, delta, ctx):
                ctx.blocks[3] = delta
                return delta
        """
    )


def _eng004(ctx):
    return _lint(
        """
        import time

        class BadOp:
            def process(self, delta, ctx):
                self.state.put("stamp", time.time())
                return delta
        """
    )


def _eng005(ctx):
    return _lint(
        """
        class BadOp:
            def process(self, delta, ctx):
                for key in set(delta.keys) - self.published:
                    self.state.put(key, 1)
                return delta
        """
    )


def _eng006(ctx):
    return _lint(
        """
        def patch(rel, mask):
            rel.columns["x"][mask] = 0.0
        """
    )


# -- race-detector fixtures -------------------------------------------------


class _StoreOp:
    label = "agg:golden"
    state_rule = StateRule(entries=("sketch",))

    def __init__(self, store):
        self.state = store


class _CarrierOp:
    label = "carrier:golden"

    def __init__(self, src_id):
        self.src_id = src_id

    def process(self, delta, ctx):
        return LineageRef(self.src_id, (0,), "v")


def _race000(ctx):
    return analyze_query_races(
        "FROBNICATE everything", ctx.catalog, "t"
    ).diagnostics


def _race001(ctx):
    store = InMemoryStateStore()
    return check_races(
        [
            _Unit("a", produces={1}, ops=[_StoreOp(store)]),
            _Unit("b", produces={2}, ops=[_StoreOp(store)]),
        ]
    )


def _race002(ctx):
    return check_races([_Unit("a", produces={5}), _Unit("b", produces={5})])


def _race101(ctx):
    store = InMemoryStateStore()
    return check_races(
        [
            _Unit("a", produces={1}, ops=[_StoreOp(store)]),
            _Unit("b", produces={2}),
            _Unit("c", consumes={2}, ops=[_StoreOp(store)]),
        ]
    )


def _race201(ctx):
    return check_races(
        [
            _Unit("prod", produces={7}),
            _Unit("carrier", produces={8}, ops=[_CarrierOp(7)]),
        ]
    )


class _BackedOp:
    label = "agg:golden-backed"
    state_rule = StateRule(
        entries=("sketch", "output"), block_backed=frozenset({"output"})
    )

    def __init__(self, store, block_id):
        self.state = store
        self.block_id = block_id


def _race301(ctx):
    store = InMemoryStateStore()
    return check_races(
        [
            _Unit("prod", produces={9}),
            _Unit("backed", produces={8}, consumes={9},
                  ops=[_BackedOp(store, 9)]),
        ]
    )


# -- sanitizer fixtures -----------------------------------------------------
#
# SAN rules are runtime violations, not report diagnostics; the fixtures
# trigger the real SanitizerViolationError and adapt it so the same
# id/location/hint assertions apply (location = writing operator,
# hint = the catalog's one-line repair description).


def _san_diag(err):
    return [
        AnalysisDiagnostic(
            err.rule_id,
            err.writer,
            str(err),
            hint=SANITIZE_RULES[err.rule_id],
        )
    ]


class _WriterOp:
    label = "op:golden-writer"


def _san001(ctx):
    from repro.relational import relation_from_columns
    from repro.relational.schema import ColumnType, Schema

    rel = relation_from_columns(
        Schema([("x", ColumnType.FLOAT)]), x=[1.0, 2.0, 3.0, 4.0]
    )
    san = BufferSanitizer()
    san.begin_batch(1)
    san.activate()
    try:
        san.before_process(_WriterOp(), None)
        view = rel.slice(0, 2)
        san.release(_WriterOp())
    finally:
        san.deactivate()
    with pytest.raises(ValueError) as excinfo:
        view.columns["x"][0] = 9.0
    return _san_diag(
        san.translate_write_error(_WriterOp(), view, None, excinfo.value)
    )


def _san002(ctx, tmp_path=None):
    import tempfile

    san = BufferSanitizer()
    san.begin_batch(1)
    with tempfile.NamedTemporaryFile(suffix=".bin") as f:
        np.arange(8, dtype="<i8").tofile(f.name)
        mm = np.memmap(f.name, dtype="<i8", mode="r", shape=(8,))
        view = mm[2:6]
        with pytest.raises(ValueError) as excinfo:
            view[0] = 1
        return _san_diag(
            san.translate_write_error(
                _WriterOp(), [view], None, excinfo.value
            )
        )


def _san003(ctx):
    import threading

    san = BufferSanitizer()
    san.begin_batch(1)
    buf = np.zeros(4)

    class _Other:
        label = "op:golden-other"

    san.note_output(_Other(), buf)
    caught: list[Any] = []

    def clash():
        try:
            san.note_output(_WriterOp(), buf)
        except Exception as err:  # noqa: BLE001 - the violation is the fixture
            caught.append(err)

    t = threading.Thread(target=clash)
    t.start()
    t.join()
    return _san_diag(caught[0])


# -- the registry -----------------------------------------------------------

FIXTURES: dict[str, Callable[[Ctx], list[AnalysisDiagnostic]]] = {
    "TC101": _tc101,
    "TC102": _tc102,
    "TC103": _tc103,
    "TC104": _tc104,
    "TC105": _tc105,
    "TC106": _tc106,
    "TC107": _tc107,
    "TC108": _tc108,
    "TC109": _tc109,
    "TC110": _tc110,
    "TC111": _tc111,
    "TC201": _tc201,
    "TC202": _tc202,
    "TC301": _tc301,
    "TC302": _tc302,
    "TC303": _tc303,
    "TC304": _tc304,
    "TC305": _tc305,
    "TC306": _tc306,
    "TC307": _tc307,
    "TC308": _tc308,
    "TC309": _tc309,
    "ENG001": _eng001,
    "ENG002": _eng002,
    "ENG003": _eng003,
    "ENG004": _eng004,
    "ENG005": _eng005,
    "ENG006": _eng006,
    "RACE000": _race000,
    "RACE001": _race001,
    "RACE002": _race002,
    "RACE101": _race101,
    "RACE201": _race201,
    "RACE301": _race301,
    "SAN001": _san001,
    "SAN002": _san002,
    "SAN003": _san003,
}

ALL_RULES = (
    set(TYPECHECK_RULES)
    | set(ENGINE_LINT_RULES)
    | set(RACE_RULES)
    | set(SANITIZE_RULES)
)


def test_every_rule_has_a_fixture():
    missing = sorted(ALL_RULES - set(FIXTURES))
    stale = sorted(set(FIXTURES) - ALL_RULES)
    assert not missing, f"rules without golden fixtures: {missing}"
    assert not stale, f"fixtures for rules no longer in any catalog: {stale}"


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_golden_fixture(rule_id, monkeypatch, kx_catalog):
    diags = FIXTURES[rule_id](Ctx(monkeypatch, kx_catalog))
    fired = [d for d in diags if d.rule_id == rule_id]
    assert fired, (
        f"fixture for {rule_id} fired {sorted({d.rule_id for d in diags})} "
        f"instead"
    )
    diag = fired[0]
    assert diag.location, f"{rule_id} diagnostic has no location"
    assert diag.message, f"{rule_id} diagnostic has no message"
    assert diag.severity in ("error", "warning")
    if rule_id not in HINTLESS:
        assert diag.hint, f"{rule_id} diagnostic has no repair hint"
