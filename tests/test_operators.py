"""Unit tests for individual online operators, driven by a manual context."""

import numpy as np
import pytest

from repro.core.blocks import OnlineConfig, RuntimeContext
from repro.core.compiler import compile_online
from repro.core.operators import (
    AggregateOp,
    DeltaBatch,
    FilterOp,
    ProjectOp,
    RowSinkOp,
    ScanOp,
    SpineOp,
    StaticEmitOp,
    StaticJoinOp,
    UnionOp,
    empty_relation,
)
from repro.errors import RangeIntegrityError
from repro.metrics import BatchMetrics
from repro.relational import (
    Catalog,
    Project,
    avg,
    col,
    count,
    evaluate,
    relation_from_columns,
    scan,
    sum_,
)
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx

T = 5


def make_ctx(catalog=None, total=100):
    ctx = RuntimeContext(
        catalog or Catalog({}), "t", total, OnlineConfig(num_trials=T, seed=1)
    )
    return ctx


def feed(ctx, batch_no, delta):
    ctx.begin_batch(batch_no, delta, BatchMetrics(batch_no))


class _Fixed(SpineOp):
    """Test double: replays a queued sequence of DeltaBatches."""

    def __init__(self, schema, batches, uncertain_cols=()):
        super().__init__("fixed", schema, set(uncertain_cols))
        self.batches = list(batches)

    def process(self, delta, ctx):
        return self.batches.pop(0)


class TestScanOp:
    def test_emits_delta_with_trials(self):
        rel = random_kx(40, seed=1)
        ctx = make_ctx(total=40)
        feed(ctx, 1, rel)
        out = ScanOp("t", KX_SCHEMA).run(ctx)
        assert len(out.certain) == 40
        assert out.certain.trial_mults.shape == (40, T)
        assert len(out.volatile) == 0

    def test_trials_shared_across_scans(self):
        rel = random_kx(10, seed=1)
        ctx = make_ctx(total=10)
        feed(ctx, 1, rel)
        a = ScanOp("t", KX_SCHEMA).run(ctx)
        b = ScanOp("t", KX_SCHEMA).run(ctx)
        assert (a.certain.trial_mults == b.certain.trial_mults).all()

    def test_scale_tracks_seen_rows(self):
        ctx = make_ctx(total=100)
        feed(ctx, 1, random_kx(25, seed=1))
        assert ctx.scale == 4.0
        feed(ctx, 2, random_kx(25, seed=2))
        assert ctx.scale == 2.0


class TestFilterProjectUnion:
    def run_one(self, op_factory, rel):
        ctx = make_ctx(total=len(rel))
        feed(ctx, 1, rel)
        child = _Fixed(
            KX_SCHEMA,
            [DeltaBatch(ctx.delta, empty_relation(KX_SCHEMA, set(), T))],
        )
        return op_factory(child).run(ctx)

    def test_filter_applies_to_certain(self):
        rel = random_kx(50, seed=2)
        out = self.run_one(lambda c: FilterOp(c, col("x") > 20.0), rel)
        expected = (rel.column("x") > 20.0).sum()
        assert len(out.certain) == expected

    def test_project_computes(self):
        rel = random_kx(10, seed=2)
        node = Project(scan("t", KX_SCHEMA), [("k", "k"), ("double", col("x") * 2)])
        out = self.run_one(
            lambda c: ProjectOp(c, node, node.output_schema({})), rel
        )
        assert list(out.certain.column("double")) == list(rel.column("x") * 2)

    def test_union_concats(self):
        rel = random_kx(10, seed=2)
        ctx = make_ctx(total=10)
        feed(ctx, 1, rel)
        empty = empty_relation(KX_SCHEMA, set(), T)
        left = _Fixed(KX_SCHEMA, [DeltaBatch(ctx.delta, empty)])
        right = _Fixed(KX_SCHEMA, [DeltaBatch(ctx.delta, empty)])
        out = UnionOp(left, right).run(ctx)
        assert len(out.certain) == 20

    def test_static_emit_fires_once(self):
        rel = random_kx(5, seed=2)
        ctx = make_ctx(total=5)
        feed(ctx, 1, rel)
        op = StaticEmitOp(rel)
        assert len(op.run(ctx).certain) == 5
        assert len(op.run(ctx).certain) == 0
        op.reset()
        assert len(op.run(ctx).certain) == 5


class TestStaticJoinOp:
    def test_joins_against_dimension(self):
        dim = relation_from_columns(DIM_SCHEMA, k=[0, 1], label=["a", "b"])
        rel = random_kx(30, seed=3, groups=4)
        ctx = make_ctx(total=30)
        feed(ctx, 1, rel)
        child = _Fixed(
            KX_SCHEMA, [DeltaBatch(ctx.delta, empty_relation(KX_SCHEMA, set(), T))]
        )
        node = scan("t", KX_SCHEMA).join(scan("d", DIM_SCHEMA), keys=["k"])
        op = StaticJoinOp(child, dim, [("k", "k")], node.output_schema({}), True, 1)
        out = op.run(ctx)
        matched = np.isin(rel.column("k"), [0, 1]).sum()
        assert len(out.certain) == matched
        assert "label" in out.certain.schema

    def test_reports_state_bytes(self):
        dim = relation_from_columns(DIM_SCHEMA, k=[0], label=["a"])
        rel = random_kx(5, seed=3)
        ctx = make_ctx(total=5)
        feed(ctx, 1, rel)
        child = _Fixed(
            KX_SCHEMA, [DeltaBatch(ctx.delta, empty_relation(KX_SCHEMA, set(), T))]
        )
        node = scan("t", KX_SCHEMA).join(scan("d", DIM_SCHEMA), keys=["k"])
        op = StaticJoinOp(child, dim, [("k", "k")], node.output_schema({}), True, 1)
        op.run(ctx)
        op.record_state(ctx)
        assert ctx.metrics.state_bytes_matching("join:") > 0


class TestAggregateOp:
    def make_op(self, ctx, rel, group_by=("k",), specs=None):
        specs = specs or [sum_("x", "sx"), count("n")]
        child = _Fixed(
            KX_SCHEMA, [DeltaBatch(rel, empty_relation(KX_SCHEMA, set(), T))]
        )
        node = scan("t", KX_SCHEMA).aggregate(list(group_by), specs)
        return AggregateOp(
            child, list(group_by), specs, node.output_schema({}),
            block_id=99, sample_weighted=True,
        )

    def test_publishes_block_output(self):
        rel = random_kx(40, seed=4, groups=3)
        ctx = make_ctx(total=40)
        feed(ctx, 1, rel)
        op = self.make_op(ctx, ctx.delta)
        op.run(ctx)
        assert 99 in ctx.blocks
        assert len(ctx.blocks[99]) == 3

    def test_values_scaled_by_m(self):
        rel = random_kx(40, seed=4, groups=2)
        ctx = make_ctx(total=80)  # seeing half the data -> m = 2
        feed(ctx, 1, rel)
        op = self.make_op(ctx, ctx.delta)
        op.run(ctx)
        total_sx = sum(
            g.values["sx"].value for g in ctx.blocks[99].groups.values()
        )
        assert total_sx == pytest.approx(2.0 * rel.column("x").sum())

    def test_groups_marked_certain(self):
        rel = random_kx(40, seed=4, groups=2)
        ctx = make_ctx(total=40)
        feed(ctx, 1, rel)
        op = self.make_op(ctx, ctx.delta)
        op.run(ctx)
        assert all(g.certain for g in ctx.blocks[99].groups.values())

    def test_new_keys_tracked_across_batches(self):
        ctx = make_ctx(total=20)
        first = random_kx(10, seed=4, groups=1)
        second = random_kx(10, seed=5, groups=3)
        child = _Fixed(
            KX_SCHEMA,
            [
                DeltaBatch(first.with_mult(first.mult, np.ones((10, T))),
                           empty_relation(KX_SCHEMA, set(), T)),
                DeltaBatch(second.with_mult(second.mult, np.ones((10, T))),
                           empty_relation(KX_SCHEMA, set(), T)),
            ],
        )
        node = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
        op = AggregateOp(child, ["k"], [count("n")], node.output_schema({}), 99, True)
        feed(ctx, 1, first)
        op.run(ctx)
        first_new = list(ctx.blocks[99].new_keys)
        feed(ctx, 2, second)
        op.run(ctx)
        second_new = list(ctx.blocks[99].new_keys)
        assert set(first_new).isdisjoint(second_new)

    def test_vanished_volatile_group_tombstoned(self):
        ctx = make_ctx(total=20)
        rel = random_kx(10, seed=4, groups=2)
        vol = random_kx(4, seed=6, groups=4).with_mult(
            np.ones(4), np.ones((4, T))
        )
        empty = empty_relation(KX_SCHEMA, set(), T)
        child = _Fixed(
            KX_SCHEMA,
            [DeltaBatch(empty, vol), DeltaBatch(empty, empty)],
        )
        node = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
        op = AggregateOp(child, ["k"], [count("n")], node.output_schema({}), 99, True)
        feed(ctx, 1, rel.take(np.arange(0)))
        op.run(ctx)
        keys_before = set(ctx.blocks[99].groups)
        feed(ctx, 2, rel.take(np.arange(0)))
        op.run(ctx)
        # Groups that lost all (volatile) contributors stay resolvable but
        # report non-existence.
        for key in keys_before:
            group = ctx.blocks[99].groups[key]
            assert not group.member_point or group.certain


class TestRowSink:
    def test_accumulates(self):
        rel = random_kx(10, seed=4)
        ctx = make_ctx(total=20)
        empty = empty_relation(KX_SCHEMA, set(), T)
        child = _Fixed(
            KX_SCHEMA,
            [DeltaBatch(rel, empty), DeltaBatch(rel, empty)],
        )
        sink = RowSinkOp(child)
        feed(ctx, 1, rel)
        sink.run(ctx)
        assert len(sink.result(ctx)) == 10
        feed(ctx, 2, rel)
        sink.run(ctx)
        assert len(sink.result(ctx)) == 20


class TestFailureRecovery:
    def test_forced_recovery_still_exact(self):
        """Slack 0 + few trials force integrity failures; the final result
        must still equal the batch answer (Theorem 1 via recovery)."""
        from repro.core import OnlineQueryEngine

        rel = random_kx(2000, seed=8, groups=6)
        dim = relation_from_columns(
            DIM_SCHEMA, k=list(range(6)), label=list("abcdef")
        )
        catalog = Catalog({"t": rel, "dim": dim})
        inner = (
            scan("t", KX_SCHEMA).aggregate(["k"], [avg("x", "ax")]).rename({"k": "k2"})
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[("k", "k2")])
            .select(col("x") > col("ax"))
            .aggregate(["k"], [count("n")])
        )
        recoveries = 0
        for seed in range(4):
            engine = OnlineQueryEngine(
                catalog, "t", OnlineConfig(num_trials=8, seed=seed, slack=0.0)
            )
            final = engine.run_to_completion(plan, 12)
            exact = evaluate(plan, catalog)
            assert final.to_relation().bag_equal(exact, 3)
            recoveries += engine.metrics.num_recoveries
        assert recoveries > 0  # the failure path was actually exercised

    def test_recovery_metrics_flagged(self):
        from repro.core import OnlineQueryEngine

        rel = random_kx(2000, seed=8, groups=6)
        catalog = Catalog({"t": rel})
        inner = (
            scan("t", KX_SCHEMA).aggregate(["k"], [avg("x", "ax")]).rename({"k": "k2"})
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[("k", "k2")])
            .select(col("x") > col("ax"))
            .aggregate(["k"], [count("n")])
        )
        found = False
        for seed in range(6):
            engine = OnlineQueryEngine(
                catalog, "t", OnlineConfig(num_trials=8, seed=seed, slack=0.0)
            )
            engine.run_to_completion(plan, 12)
            for bm in engine.metrics.batches:
                if bm.recovered:
                    assert bm.recovery_seconds > 0
                    found = True
        assert found
