"""Live telemetry export (``repro.obs.export``) and its CLI surfaces:
Prometheus text rendering + parsing, the /metrics HTTP endpoint, the
textfile exporter, the ``iolap top`` frame renderer, and the pinned
``report --json`` artifact."""

from __future__ import annotations

import json
import os
from urllib.request import urlopen

import pytest

from repro.cli import main
from repro.obs import MetricsObservability, MetricsRegistry
from repro.obs.export import (
    MetricsHTTPServer,
    TextfileExporter,
    TopView,
    parse_listen,
    parse_prometheus_text,
    prom_name,
    prometheus_text,
)
from repro.obs.report import (
    REPORT_FIELDS,
    REPORT_SCHEMA_VERSION,
    TraceSummary,
    validate_report,
)


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.gauge("nd.rows", op="select:1").set(42)
    reg.gauge("nd.rows", op="join:2").set(7)
    reg.counter("op.rows_in", op="select:1").inc(1000)
    reg.counter("recovery.failures").inc(2)
    reg.histogram("batch.seconds").observe(0.5)
    reg.histogram("batch.seconds").observe(1.5)
    reg.gauge("costmodel.predicted_seconds").set(0.25)
    return reg


class TestPrometheusText:
    def test_names_prefixed_and_sanitized(self):
        assert prom_name("nd.rows") == "iolap_nd_rows"
        assert prom_name("state.bytes{x}") == "iolap_state_bytes_x_"

    def test_round_trip(self):
        text = prometheus_text(make_registry())
        parsed = parse_prometheus_text(text)
        assert parsed['iolap_nd_rows{op="select:1"}'] == 42.0
        assert parsed['iolap_nd_rows{op="join:2"}'] == 7.0
        assert parsed['iolap_op_rows_in_total{op="select:1"}'] == 1000.0
        assert parsed["iolap_recovery_failures_total"] == 2.0
        assert parsed["iolap_costmodel_predicted_seconds"] == 0.25

    def test_histogram_expansion(self):
        parsed = parse_prometheus_text(prometheus_text(make_registry()))
        assert parsed["iolap_batch_seconds_count"] == 2.0
        assert parsed["iolap_batch_seconds_sum"] == 2.0
        assert parsed["iolap_batch_seconds_min"] == 0.5
        assert parsed["iolap_batch_seconds_max"] == 1.5

    def test_type_comments_and_counter_suffix(self):
        text = prometheus_text(make_registry())
        assert "# TYPE iolap_nd_rows gauge" in text
        assert "# TYPE iolap_recovery_failures_total counter" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("state.bytes", entry='we"ird\\x').set(1)
        text = prometheus_text(reg)
        assert r'entry="we\"ird\\x"' in text
        parse_prometheus_text(text)  # must stay parseable

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus_text("") == {}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus_text("iolap_ok 1\nwhat even is this?!")

    def test_deterministic_output(self):
        assert prometheus_text(make_registry()) == prometheus_text(
            make_registry()
        )


class TestTextfileExporter:
    def test_atomic_write_and_rewrite(self, tmp_path):
        reg = make_registry()
        path = str(tmp_path / "iolap.prom")
        exporter = TextfileExporter(path, reg)
        exporter.write()
        assert parse_prometheus_text(open(path).read())["iolap_nd_rows"
                                                        '{op="select:1"}'] == 42.0
        reg.gauge("nd.rows", op="select:1").set(50)
        exporter.write()
        assert exporter.writes == 2
        parsed = parse_prometheus_text(open(path).read())
        assert parsed['iolap_nd_rows{op="select:1"}'] == 50.0
        assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]


class TestMetricsHTTPServer:
    def test_scrape(self):
        reg = make_registry()
        server = MetricsHTTPServer(reg).start()
        try:
            with urlopen(server.url) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode("utf-8")
        finally:
            server.stop()
        assert parse_prometheus_text(body)["iolap_recovery_failures_total"] == 2.0

    def test_scrape_is_live(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("nd.rows", op="x")
        server = MetricsHTTPServer(reg).start()
        try:
            gauge.set(1)
            first = parse_prometheus_text(
                urlopen(server.url).read().decode())
            gauge.set(2)
            second = parse_prometheus_text(
                urlopen(server.url).read().decode())
        finally:
            server.stop()
        assert first['iolap_nd_rows{op="x"}'] == 1.0
        assert second['iolap_nd_rows{op="x"}'] == 2.0

    def test_unknown_path_404(self):
        server = MetricsHTTPServer(MetricsRegistry()).start()
        try:
            host, port = server.address
            with pytest.raises(Exception) as err:
                urlopen(f"http://{host}:{port}/other")
            assert "404" in str(err.value)
        finally:
            server.stop()


class TestParseListen:
    def test_host_and_port(self):
        assert parse_listen("0.0.0.0:9110") == ("0.0.0.0", 9110)

    def test_port_only(self):
        assert parse_listen(":9110") == ("127.0.0.1", 9110)

    def test_rejects_garbage(self):
        for bad in ("9110", "host:", "host:port"):
            with pytest.raises(ValueError):
                parse_listen(bad)


class TestTopView:
    def _profiler(self):
        from repro.obs.profile import ContinuousProfiler, QueryProfile

        prof = QueryProfile("sig")
        for _ in range(6):
            prof.batch_seconds.update(0.02)
            prof.add_sample(1000, 10, 2048, 0.02)
        prof.ci_c.update(10.0)
        prof.operator("aggregate:1").self_seconds.update(0.015)
        prof.operator("scan:t").self_seconds.update(0.002)
        return ContinuousProfiler(prof)

    def test_frame_contents(self):
        view = TopView(target_rsd=0.05, top=5)
        frame = view.frame(self._profiler(), batch_no=3, num_batches=10,
                           rsd=0.1, batch_rows=1000, seen_rows=10_000,
                           wall_seconds=0.02)
        assert "batch 3/10" in frame
        assert "rsd 0.1000" in frame
        assert "~30 batch(es)" in frame  # (10/0.05)^2 rows at 1k/batch
        lines = frame.splitlines()
        # Hottest operator leads the table.
        assert lines[4].startswith("aggregate:1")
        assert "scan:t" in frame
        assert view.frames == 1

    def test_target_met(self):
        frame = TopView(target_rsd=0.2).frame(
            self._profiler(), 3, 10, 0.1, 1000, 10_000, 0.02)
        assert "met" in frame


class TestCliMetrics:
    ARGS = ["--workload", "tpch", "--query", "Q1", "--scale", "0.05",
            "--batches", "4", "--trials", "8", "-q"]

    def test_requires_an_export_target(self, capsys):
        assert main(["metrics", *self.ARGS]) == 2
        assert "--listen" in capsys.readouterr().err

    def test_textfile_export(self, tmp_path):
        path = str(tmp_path / "iolap.prom")
        assert main(["metrics", *self.ARGS, "--metrics-textfile", path]) == 0
        parsed = parse_prometheus_text(open(path).read())
        assert any(k.startswith("iolap_op_rows_in_total") for k in parsed)
        assert any(k.startswith("iolap_state_") for k in parsed)

    def test_textfile_with_profile_has_costmodel_series(self, tmp_path):
        path = str(tmp_path / "iolap.prom")
        assert main(["metrics", *self.ARGS, "--metrics-textfile", path,
                     "--profile", "--batches", "7"]) == 0
        parsed = parse_prometheus_text(open(path).read())
        assert parsed["iolap_costmodel_predictions"] >= 1.0
        assert parsed["iolap_costmodel_predicted_seconds"] > 0.0
        assert "iolap_costmodel_actual_seconds" in parsed

    def test_listen_serves_while_running(self, tmp_path):
        # Port 0 binds a free port; --hold 0 stops right after the run.
        assert main(["metrics", *self.ARGS, "--listen", "127.0.0.1:0"]) == 0

    def test_bad_listen_spec(self):
        assert main(["metrics", *self.ARGS, "--listen", "nope"]) == 2


class TestCliTop:
    def test_plain_frames(self, capsys):
        rc = main(["top", "--workload", "tpch", "--query", "Q1",
                   "--scale", "0.05", "--batches", "6", "--trials", "8",
                   "--plain", "-q"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iolap top — batch 6/6" in out
        assert "cost model:" in out
        assert "\x1b" not in out  # --plain means no ANSI control codes

    def test_ansi_frames_by_default(self, capsys):
        rc = main(["top", "--workload", "tpch", "--query", "Q1",
                   "--scale", "0.05", "--batches", "2", "--trials", "8",
                   "-q"])
        assert rc == 0
        assert "\x1b[2J" in capsys.readouterr().out


def _trace_file(tmp_path) -> str:
    path = str(tmp_path / "run.jsonl")
    assert main(["--workload", "tpch", "--query", "Q1", "--scale", "0.05",
                 "--batches", "4", "--trials", "8", "--trace-out", path,
                 "-q"]) == 0
    return path


class TestReportJson:
    def test_cli_emits_pinned_schema(self, tmp_path, capsys):
        path = _trace_file(tmp_path)
        capsys.readouterr()
        assert main(["report", path, "--json", "-q"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_report(doc)
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["num_batches"] == 4
        assert doc["run_seconds"] > 0
        rollup_names = {row["name"] for row in doc["span_rollup"]}
        assert {"run", "batch", "unit"} <= rollup_names
        assert doc["state_series"]
        assert doc["recovery"] == []

    def test_summary_to_dict_matches_text_report(self, tmp_path):
        path = _trace_file(tmp_path)
        summary = TraceSummary.from_file(path)
        doc = summary.to_dict()
        assert doc["num_events"] == len(summary.events)
        assert doc["by_kind"] == summary.by_kind

    def test_validator_rejects_unknown_field(self, tmp_path):
        doc = TraceSummary.from_file(_trace_file(tmp_path)).to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="unknown field"):
            validate_report(doc)

    def test_validator_rejects_missing_field(self, tmp_path):
        doc = TraceSummary.from_file(_trace_file(tmp_path)).to_dict()
        del doc["span_rollup"]
        with pytest.raises(ValueError, match="missing field"):
            validate_report(doc)

    def test_validator_rejects_wrong_version(self):
        doc = TraceSummary([]).to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            validate_report(doc)

    def test_empty_trace_still_valid(self):
        doc = TraceSummary([]).to_dict()
        validate_report(doc)
        assert set(doc) == set(REPORT_FIELDS)


class TestMetricsObservability:
    def test_metrics_only_session_shape(self):
        obs = MetricsObservability()
        assert obs.enabled
        assert not obs.tracer.enabled
        assert obs.metrics.enabled
        obs.emit_metrics(1)  # no-ops must accept the session protocol
        obs.flush()
        obs.close()
