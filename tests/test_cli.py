"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["SELECT 1 FROM t"])
        assert args.workload == "conviva"
        assert args.engine == "iolap"
        assert args.batches == 20

    def test_named_query(self):
        args = build_parser().parse_args(["--query", "Q17", "--workload", "tpch"])
        assert args.query == "Q17"


class TestMain:
    def run(self, argv, capsys):
        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_list_queries(self, capsys):
        code, out = self.run(["--workload", "tpch", "--list-queries"], capsys)
        assert code == 0
        assert "Q17" in out and "nested" in out

    def test_sql_online(self, capsys):
        code, out = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "4", "--trials", "10",
            ],
            capsys,
        )
        assert code == 0
        assert "batch   4/4" in out
        assert "exact" in out
        assert "cdn=" in out

    def test_named_query_online(self, capsys):
        code, out = self.run(
            ["--workload", "tpch", "--query", "Q22",
             "--scale", "0.05", "--batches", "3", "--trials", "10"],
            capsys,
        )
        assert code == 0
        assert "exact" in out

    def test_batch_engine(self, capsys):
        code, out = self.run(
            ["--workload", "tpch", "--query", "Q6", "--engine", "batch",
             "--scale", "0.05"],
            capsys,
        )
        assert code == 0
        assert "batch engine" in out

    def test_hda_engine(self, capsys):
        code, out = self.run(
            ["--workload", "tpch", "--query", "Q6", "--engine", "hda",
             "--scale", "0.05", "--batches", "3"],
            capsys,
        )
        assert code == 0
        assert "exact" in out

    def test_early_stop(self, capsys):
        code, out = self.run(
            [
                "SELECT AVG(play_time) AS apt FROM sessions",
                "--scale", "0.3", "--batches", "20", "--trials", "60",
                "--stop-rsd", "0.05",
            ],
            capsys,
        )
        assert code == 0
        assert "stopping early" in out

    def test_unknown_named_query(self, capsys):
        code = main(["--workload", "tpch", "--query", "Q99"])
        assert code == 2

    def test_bad_sql(self, capsys):
        code = main(["SELEKT oops", "--scale", "0.05"])
        assert code == 2

    def test_nothing_to_run(self):
        assert main(["--workload", "tpch"]) == 2

    def test_metrics_out_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code, out = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "3", "--trials", "5",
                "--metrics-out", str(path),
            ],
            capsys,
        )
        assert code == 0
        assert f"metrics written to {path}" in out
        data = json.loads(path.read_text())
        assert data["num_batches"] == 3
        assert len(data["batches"]) == 3
        assert all(b["op_seconds"] for b in data["batches"])

    def test_parallel_executor(self, capsys):
        code, out = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "3", "--trials", "5",
                "--executor", "parallel",
            ],
            capsys,
        )
        assert code == 0
        assert "exact" in out
        assert "slowest operators:" in out

    def test_max_rows_truncation(self, capsys):
        code, out = self.run(
            [
                "SELECT state, COUNT(*) AS n FROM sessions GROUP BY state",
                "--scale", "0.05", "--batches", "2", "--trials", "5",
                "--max-rows", "3",
            ],
            capsys,
        )
        assert code == 0
        assert "more rows" in out
