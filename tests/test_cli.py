"""Tests for the command-line interface.

Output discipline under test: result rows go to stdout; progress,
warnings, and errors go through the ``iolap`` logger to stderr.
"""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["SELECT 1 FROM t"])
        assert args.workload == "conviva"
        assert args.engine == "iolap"
        assert args.batches == 20
        assert args.trace_out is None
        assert args.log_level == "info"

    def test_named_query(self):
        args = build_parser().parse_args(["--query", "Q17", "--workload", "tpch"])
        assert args.query == "Q17"


class TestMain:
    def run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_list_queries(self, capsys):
        code, out, _ = self.run(["--workload", "tpch", "--list-queries"], capsys)
        assert code == 0
        assert "Q17" in out and "nested" in out

    def test_sql_online(self, capsys):
        code, out, err = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "4", "--trials", "10",
            ],
            capsys,
        )
        assert code == 0
        assert "batch   4/4" in err
        assert "exact" in err
        assert "cdn=" in out

    def test_named_query_online(self, capsys):
        code, out, err = self.run(
            ["--workload", "tpch", "--query", "Q22",
             "--scale", "0.05", "--batches", "3", "--trials", "10"],
            capsys,
        )
        assert code == 0
        assert "exact" in err

    def test_batch_engine(self, capsys):
        code, out, err = self.run(
            ["--workload", "tpch", "--query", "Q6", "--engine", "batch",
             "--scale", "0.05"],
            capsys,
        )
        assert code == 0
        assert "batch engine" in err

    def test_hda_engine(self, capsys):
        code, out, err = self.run(
            ["--workload", "tpch", "--query", "Q6", "--engine", "hda",
             "--scale", "0.05", "--batches", "3"],
            capsys,
        )
        assert code == 0
        assert "exact" in err

    def test_early_stop(self, capsys):
        code, out, err = self.run(
            [
                "SELECT AVG(play_time) AS apt FROM sessions",
                "--scale", "0.3", "--batches", "20", "--trials", "60",
                "--stop-rsd", "0.05",
            ],
            capsys,
        )
        assert code == 0
        assert "stopping early" in err

    def test_unknown_named_query(self, capsys):
        code = main(["--workload", "tpch", "--query", "Q99"])
        assert code == 2
        assert "unknown query" in capsys.readouterr().err

    def test_bad_sql(self, capsys):
        code = main(["SELEKT oops", "--scale", "0.05"])
        assert code == 2
        assert "SQL error" in capsys.readouterr().err

    def test_nothing_to_run(self):
        assert main(["--workload", "tpch"]) == 2

    def test_quiet_suppresses_progress(self, capsys):
        code, out, err = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "2", "--trials", "5", "-q",
            ],
            capsys,
        )
        assert code == 0
        assert "batch" not in err
        assert "cdn=" in out  # result rows stay on stdout

    def test_metrics_out_writes_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code, out, err = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "3", "--trials", "5",
                "--metrics-out", str(path),
            ],
            capsys,
        )
        assert code == 0
        assert f"metrics written to {path}" in err
        data = json.loads(path.read_text())
        assert data["num_batches"] == 3
        assert len(data["batches"]) == 3
        assert all(b["op_seconds"] for b in data["batches"])

    def test_parallel_executor(self, capsys):
        code, out, err = self.run(
            [
                "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "3", "--trials", "5",
                "--executor", "parallel",
            ],
            capsys,
        )
        assert code == 0
        assert "exact" in err
        assert "slowest operators:" in err

    def test_max_rows_truncation(self, capsys):
        code, out, err = self.run(
            [
                "SELECT state, COUNT(*) AS n FROM sessions GROUP BY state",
                "--scale", "0.05", "--batches", "2", "--trials", "5",
                "--max-rows", "3",
            ],
            capsys,
        )
        assert code == 0
        assert "more rows" in out

    def test_trace_out_requires_iolap(self, capsys):
        code = main([
            "--workload", "tpch", "--query", "Q6", "--engine", "batch",
            "--scale", "0.05", "--trace-out", "x.jsonl",
        ])
        assert code == 2
        assert "--trace-out requires --engine iolap" in capsys.readouterr().err

    def test_converge_logs_estimates(self, capsys):
        code, out, err = self.run(
            [
                "SELECT cdn, AVG(play_time) AS apt FROM sessions GROUP BY cdn",
                "--scale", "0.05", "--batches", "3", "--trials", "10",
                "--converge",
            ],
            capsys,
        )
        assert code == 0
        assert "convergence @ batch" in err
        assert "rsd" in err


class TestTraceWorkflow:
    """--trace-out -> `trace` conversion -> `report` summary."""

    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main([
            "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
            "--scale", "0.05", "--batches", "3", "--trials", "5",
            "--trace-out", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        return path

    def test_trace_out_writes_valid_events(self, trace_path):
        from repro.obs import read_events

        events = list(read_events(trace_path))  # validates every line
        kinds = {e["kind"] for e in events}
        assert "span" in kinds and "counter" in kinds
        names = {e["name"] for e in events if e["kind"] == "span"}
        assert {"run", "batch", "unit", "op", "bootstrap"} <= names

    def test_trace_subcommand_chrome(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(["trace", str(trace_path), "-o", str(out_path)])
        err = capsys.readouterr().err
        assert code == 0
        assert "validated" in err
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "C", "M"} <= phases

    def test_trace_subcommand_jsonl_stdout(self, trace_path, capsys):
        code = main(["trace", str(trace_path), "--format", "jsonl"])
        out = capsys.readouterr().out
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert lines and all("kind" in e for e in lines)

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_report_subcommand(self, trace_path, capsys):
        code = main(["report", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary" in out
        assert "span totals" in out
        assert "state growth" in out

    def test_report_subcommand_missing_file(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestAnalyzeExit:
    """Exit semantics of the analyze subcommand: errors fail the build,
    warnings do so only under --fail-on-warning (the CI setting)."""

    def run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_clean_typecheck_exits_zero(self, capsys):
        code, out, _ = self.run(
            ["analyze", "--workload", "tpch", "--query", "Q6",
             "--scale", "0.05"],
            capsys,
        )
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_clean_race_check_exits_zero(self, capsys):
        code, out, _ = self.run(
            ["analyze", "--races", "--workload", "tpch", "--query", "Q6",
             "--scale", "0.05"],
            capsys,
        )
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_error_diagnostic_exits_one(self, capsys):
        # Unplannable SQL is a TC101 *error* for the typechecker.
        code, out, _ = self.run(
            ["analyze", "FROBNICATE everything", "--scale", "0.05"], capsys
        )
        assert code == 1
        assert "1 error(s)" in out

    def test_warning_only_exits_zero(self, capsys):
        # The same SQL is only a RACE000 *warning* for the race detector:
        # there is nothing to schedule, hence nothing to race.
        code, out, _ = self.run(
            ["analyze", "FROBNICATE everything", "--races",
             "--scale", "0.05"],
            capsys,
        )
        assert code == 0
        assert "1 warning(s)" in out

    def test_fail_on_warning_promotes_to_one(self, capsys):
        code, out, _ = self.run(
            ["analyze", "FROBNICATE everything", "--races",
             "--scale", "0.05", "--fail-on-warning"],
            capsys,
        )
        assert code == 1
        assert "1 warning(s)" in out
