"""Tests for the metrics registry and the convergence reporter."""

import math

import numpy as np
import pytest

from repro.obs import (
    NULL_REGISTRY,
    ConvergenceReporter,
    MetricsRegistry,
    Observability,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("state.total_bytes", {}) == "state.total_bytes"

    def test_labels_sorted(self):
        assert (
            metric_key("nd.rows", {"op": "select:3"}) == "nd.rows{op=select:3}"
        )
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["c"] == 5.0

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        reg.gauge("g", op="a").set(10)
        reg.gauge("g", op="a").set(3)
        reg.gauge("g", op="b").set(7)
        snap = reg.snapshot()
        assert snap["g{op=a}"] == 3.0
        assert snap["g{op=b}"] == 7.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("range.width")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert reg.snapshot()["range.width"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_histogram_ignores_nonfinite(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(math.inf)
        h.observe(math.nan)
        assert h.count == 0
        assert reg.snapshot()["h"] == {"count": 0, "sum": 0.0}

    def test_histogram_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (5.0, 1.0, 3.0):
            a.histogram("h").observe(v)
        for v in (3.0, 5.0, 1.0):
            b.histogram("h").observe(v)
        assert a.snapshot() == b.snapshot()

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_scalar_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(2.0)
        reg.histogram("empty")  # no samples: omitted from the scalar view
        flat = reg.scalar_snapshot()
        assert flat == {
            "g": 1.0, "h.count": 1.0, "h.sum": 2.0, "h.min": 2.0, "h.max": 2.0,
        }

    def test_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2

    def test_concurrent_get_or_create(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for i in range(100):
                reg.counter("shared", op=str(i % 5)).inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(reg) == 5
        assert sum(reg.scalar_snapshot().values()) == 400.0


class TestNullRegistry:
    def test_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("x").set(1)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.scalar_snapshot() == {}
        assert len(NULL_REGISTRY) == 0

    def test_shared_instrument(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")


def make_partial(rows, batch_no=1, num_batches=4):
    from repro.core.result import PartialResult
    from repro.metrics import BatchMetrics
    from repro.relational import ColumnType, Schema

    schema = Schema([("k", ColumnType.INT), ("v", ColumnType.FLOAT)])
    return PartialResult(
        batch_no=batch_no,
        num_batches=num_batches,
        fraction_processed=batch_no / num_batches,
        schema=schema,
        rows=rows,
        metrics=BatchMetrics(batch_no),
    )


def uv(value, trials):
    from repro.core.values import UncertainValue

    return UncertainValue(value, np.asarray(trials, dtype=float))


class TestConvergenceReporter:
    def test_emits_events_and_lines(self):
        obs, sink = Observability.in_memory()
        lines_out = []
        reporter = ConvergenceReporter(obs=obs, emit_line=lines_out.append)
        partial = make_partial([{"k": 1, "v": uv(10.0, [9.0, 11.0])}])
        rendered = reporter.update(partial)
        obs.flush()
        assert len(rendered) == 1
        assert "v = 10" in rendered[0]
        assert any("convergence @ batch 1/4" in line for line in lines_out)
        [event] = [e for e in sink.events if e["kind"] == "convergence"]
        assert event["name"] == "v"
        assert event["batch"] == 1
        assert event["args"]["estimate"] == 10.0
        assert event["args"]["ci_lo"] <= 10.0 <= event["args"]["ci_hi"]

    def test_history_accumulates_per_series(self):
        reporter = ConvergenceReporter()
        for batch in (1, 2, 3):
            reporter.update(
                make_partial([{"k": 1, "v": uv(10.0, [9.0, 11.0])}], batch)
            )
        [points] = reporter.history.values()
        assert [p[0] for p in points] == [1, 2, 3]
        assert len(reporter.final_summary()) == 1
        assert "over 3 batches" in reporter.final_summary()[0]

    def test_max_groups_truncation(self):
        lines_out = []
        reporter = ConvergenceReporter(emit_line=lines_out.append, max_groups=2)
        rows = [{"k": i, "v": uv(float(i), [1.0, 2.0])} for i in range(5)]
        rendered = reporter.update(make_partial(rows))
        assert len(rendered) == 2
        assert any("3 more series" in line for line in lines_out)

    def test_plain_rows_no_output(self):
        lines_out = []
        reporter = ConvergenceReporter(emit_line=lines_out.append)
        assert reporter.update(make_partial([{"k": 1, "v": 2.0}])) == []
        assert lines_out == []

    def test_works_without_obs(self):
        # NULL_OBS default: console reporting still works, no events.
        reporter = ConvergenceReporter()
        rendered = reporter.update(
            make_partial([{"k": 1, "v": uv(10.0, [9.0, 11.0])}])
        )
        assert len(rendered) == 1
