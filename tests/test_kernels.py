"""Bit-identity tests for the vectorized kernel layer (repro.kernels).

Every kernel has a row-wise reference implementation in the engine; the
contract is *bit-identical* output, not approximate equality. These tests
pin each kernel against its reference on hand-picked edge cases; the
property suite (tests/test_properties.py) covers randomized inputs and
whole-engine runs with ``vectorize`` on/off.
"""

import numpy as np
import pytest

from repro.core import OnlineQueryEngine, classify
from repro.core.blocks import (
    MEMBER_FALSE,
    MEMBER_TRUE,
    MEMBER_UNKNOWN,
    BlockOutput,
    GroupValue,
    OnlineConfig,
    RuntimeContext,
)
from repro.core.operators.base import SpineOp, StateRule, TagRule
from repro.core.operators.join import UncertainJoinOp
from repro.core.sentinels import SentinelStore
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.kernels import views
from repro.kernels.codec import factorize_keys, recode_subset
from repro.kernels.holistic import (
    grouped_indices,
    weighted_quantile,
    weighted_quantile_trials,
)
from repro.kernels.joins import SideIndex, vectorized_join
from repro.kernels.stats import STATS
from repro.kernels.views import GroupTable, group_table
from repro.relational import Catalog, ColumnType, Relation, Schema, relation_from_columns
from repro.relational.aggregates import AGG_FUNCTIONS, AggregateFunction, Median, Quantile
from repro.relational.evaluator import join_relations
from repro.relational.expressions import Arith, Col, Comparison, col, lit
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES


def make_ctx(t=4, vectorize=True):
    ctx = RuntimeContext(
        Catalog({}), "t", 100, OnlineConfig(num_trials=t, vectorize=vectorize)
    )
    ctx.batch_no = 1
    return ctx


def reference_codes(rel, names):
    """The dict-based reference the codec must reproduce."""
    mapping, keys = {}, []
    keyed = rel.key_tuples(list(names)) if names else [()] * len(rel)
    codes = np.empty(len(rel), dtype=np.intp)
    for i, key in enumerate(keyed):
        gid = mapping.get(key)
        if gid is None:
            gid = len(keys)
            mapping[key] = gid
            keys.append(key)
        codes[i] = gid
    return keys, codes


def keys_equal(a, b):
    """Key-tuple list equality, NaN-aware (NaN keys group by identity in
    both paths, so positionally-matching NaNs are the same group)."""
    if len(a) != len(b):
        return False
    for ka, kb in zip(a, b):
        if len(ka) != len(kb):
            return False
        for va, vb in zip(ka, kb):
            if type(va) is not type(vb):
                return False
            if isinstance(va, float) and np.isnan(va) and np.isnan(vb):
                continue
            if va != vb:
                return False
    return True


class TestKeyCodec:
    def check(self, rel, names):
        kc = factorize_keys(rel, names)
        ref_keys, ref_codes = reference_codes(rel, names)
        # Keys must be value- and type-interchangeable with the reference's.
        assert keys_equal(kc.keys, ref_keys)
        assert np.array_equal(kc.codes, ref_codes)
        return kc

    def rel(self, **cols):
        names = list(cols)
        types = []
        for name in names:
            sample = cols[name][0] if len(cols[name]) else 0
            if isinstance(sample, str):
                types.append((name, ColumnType.STRING))
            elif isinstance(sample, float):
                types.append((name, ColumnType.FLOAT))
            else:
                types.append((name, ColumnType.INT))
        return relation_from_columns(Schema(types), **cols)

    def test_multi_column_int_keys(self):
        rel = self.rel(a=[3, 1, 3, 1, 2, 3], b=[0, 1, 0, 1, 0, 1])
        self.check(rel, ["a", "b"])

    def test_single_column(self):
        self.check(self.rel(a=[5, 5, 2, 9, 2]), ["a"])

    def test_string_keys(self):
        self.check(self.rel(s=["x", "y", "x", "z", "y"]), ["s"])

    def test_empty_relation(self):
        kc = self.check(self.rel(a=[]), ["a"])
        assert kc.num_keys == 0

    def test_single_row(self):
        self.check(self.rel(a=[7], b=[1]), ["a", "b"])

    def test_scalar_key_no_columns(self):
        rel = self.rel(a=[1, 2, 3])
        kc = factorize_keys(rel, [])
        assert kc.keys == [()]
        assert np.array_equal(kc.codes, np.zeros(3, dtype=np.intp))
        # Zero rows -> zero keys (reference derives keys from rows).
        assert factorize_keys(self.rel(a=[]), []).keys == []

    def test_nan_keys_fall_back_to_dict(self):
        # np.unique collapses NaNs; dict keys treat every NaN as distinct.
        rel = self.rel(f=[1.0, float("nan"), 1.0, float("nan")])
        self.check(rel, ["f"])

    def test_unorderable_object_keys_fall_back(self):
        schema = Schema([("o", ColumnType.STRING)])
        vals = np.empty(4, dtype=object)
        vals[0], vals[1], vals[2], vals[3] = "a", None, "a", None
        rel = Relation(schema, {"o": vals})
        self.check(rel, ["o"])

    def test_memoized_per_relation(self):
        rel = self.rel(a=[1, 2, 1])
        STATS.reset()
        first = factorize_keys(rel, ["a"])
        second = factorize_keys(rel, ["a"])
        assert first is second
        snap = STATS.snapshot()
        assert snap["codec_misses"] == 1 and snap["codec_hits"] == 1

    def test_recode_subset_matches_masked_reference(self):
        rel = self.rel(a=[3, 1, 3, 2, 1, 2, 3])
        kc = factorize_keys(rel, ["a"])
        mask = np.array([False, True, True, False, True, True, True])
        keys, codes = recode_subset(kc, mask)
        ref_keys, ref_codes = reference_codes(rel.filter(mask), ["a"])
        assert keys == ref_keys
        assert np.array_equal(codes, ref_codes)

    def test_recode_subset_empty(self):
        kc = factorize_keys(self.rel(a=[1, 2]), ["a"])
        keys, codes = recode_subset(kc, np.zeros(2, dtype=bool))
        assert keys == [] and len(codes) == 0


def _sides(seed=0, n_left=40, n_right=12):
    rng = np.random.default_rng(seed)
    left = relation_from_columns(
        Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)]),
        k=rng.integers(0, 8, n_left),
        x=rng.normal(0, 1, n_left),
    )
    right = relation_from_columns(
        Schema([("k2", ColumnType.INT), ("v", ColumnType.FLOAT)]),
        k2=rng.integers(0, 8, n_right),
        v=rng.normal(0, 1, n_right),
    )
    return left, right


def assert_rel_identical(a: Relation, b: Relation):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        assert np.array_equal(a.columns[name], b.columns[name]), name
    assert np.array_equal(a.mult, b.mult)
    if a.trial_mults is None:
        assert b.trial_mults is None
    else:
        assert np.array_equal(a.trial_mults, b.trial_mults)


class TestVectorizedJoin:
    def test_matches_reference_exactly(self):
        left, right = _sides()
        ref = join_relations(left, right, [("k", "k2")])
        out = vectorized_join(left, right, [("k", "k2")])
        assert_rel_identical(out, ref)

    def test_with_trial_mults(self):
        left, right = _sides(seed=3)
        rng = np.random.default_rng(9)
        left = left.with_mult(left.mult, rng.poisson(1.0, (len(left), 5)).astype(float))
        ref = join_relations(left, right, [("k", "k2")])
        out = vectorized_join(left, right, [("k", "k2")])
        assert_rel_identical(out, ref)

    def test_prebuilt_index(self):
        left, right = _sides(seed=5)
        index = SideIndex(right, ["k2"])
        out = vectorized_join(left, right, [("k", "k2")], index)
        assert_rel_identical(out, join_relations(left, right, [("k", "k2")]))

    def test_empty_left(self):
        left, right = _sides()
        left = left.filter(np.zeros(len(left), dtype=bool))
        assert_rel_identical(
            vectorized_join(left, right, [("k", "k2")]),
            join_relations(left, right, [("k", "k2")]),
        )

    def test_empty_right(self):
        left, right = _sides()
        right = right.filter(np.zeros(len(right), dtype=bool))
        assert_rel_identical(
            vectorized_join(left, right, [("k", "k2")]),
            join_relations(left, right, [("k", "k2")]),
        )

    def test_cross_join_delegates(self):
        left, right = _sides(n_left=4, n_right=3)
        assert_rel_identical(
            vectorized_join(left, right, []), join_relations(left, right, [])
        )

    def test_no_match_keys(self):
        left, right = _sides()
        right = Relation(
            right.schema,
            {"k2": right.columns["k2"] + 100, "v": right.columns["v"]},
            right.mult,
            right.trial_mults,
        )
        assert_rel_identical(
            vectorized_join(left, right, [("k", "k2")]),
            join_relations(left, right, [("k", "k2")]),
        )


def _view(t=4):
    out = BlockOutput(7, ["k2"], ["ax"])
    statuses = [
        (0, MEMBER_TRUE, True, True, None),
        (1, MEMBER_FALSE, True, False, None),
        (2, MEMBER_UNKNOWN, True, True, np.array([True, False, True, False])),
        (3, MEMBER_UNKNOWN, False, False, np.array([False, False, True, True])),
        (4, MEMBER_TRUE, False, True, np.array([True, True, False, True])),
    ]
    for k, status, certain, point, exist in statuses:
        uv = UncertainValue(
            float(k), np.full(t, float(k)), VariationRange(k - 1.0, k + 1.0),
            LineageRef(7, (k,), "ax"),
        )
        out.publish(
            GroupValue(
                (k,), {"ax": uv, "lbl": k * 10}, certain,
                member_status=status, member_point=point, exist_trials=exist,
            ),
            is_new=True,
        )
    return out


class TestGroupTable:
    def test_constants_align_with_classify(self):
        assert views.TRUE == classify.TRUE
        assert views.FALSE == classify.FALSE
        assert views.UNKNOWN == classify.UNKNOWN
        assert views.PENDING == classify.PENDING

    def test_probe_matches_view_get(self):
        view = _view()
        table = GroupTable(view)
        keys = [(0,), (99,), (3,), (2,)]
        slots = table.probe(keys)
        for key, slot in zip(keys, slots):
            if slot < 0:
                assert view.get(key) is None
            else:
                assert table.groups[slot] is view.get(key)

    def test_status_matches_group_flags(self):
        view = _view()
        table = GroupTable(view)
        for slot, group in enumerate(table.groups):
            if group.certainly_in:
                assert table.status[slot] == views.TRUE
            elif group.certainly_out:
                assert table.status[slot] == views.FALSE
            else:
                assert table.status[slot] == views.UNKNOWN
            assert table.member_point[slot] == group.member_point

    def test_exist_matrix(self):
        view = _view()
        table = GroupTable(view)
        mat = table.exist_matrix(4)
        for slot, group in enumerate(table.groups):
            assert np.array_equal(mat[slot], group.exist_in_trial(4))

    def test_memoized_per_view(self):
        view = _view()
        STATS.reset()
        assert group_table(view) is group_table(view)
        snap = STATS.snapshot()
        assert snap["view_table_misses"] == 1 and snap["view_table_hits"] == 1


class _StubChild(SpineOp):
    tag_rule = TagRule()
    state_rule = StateRule()


class TestAttachCoded:
    """Regression: vectorized attach equals the per-row reference fills."""

    def make_op(self):
        stream_schema = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
        out_schema = Schema(
            [
                ("k", ColumnType.INT),
                ("x", ColumnType.FLOAT),
                ("ax", ColumnType.FLOAT),
                ("lbl", ColumnType.INT),
            ]
        )
        child = _StubChild("src", stream_schema, set())
        return UncertainJoinOp(
            child, 7, ["k"], [("ax", True), ("lbl", False)], out_schema, 1
        )

    def stream(self, keys):
        return relation_from_columns(
            Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)]),
            k=keys,
            x=[float(i) for i in range(len(keys))],
        )

    def test_attach_equality(self):
        op = self.make_op()
        view = _view()
        table = GroupTable(view)
        rel = self.stream([0, 2, 4, 0, 3])
        slots = table.probe([(k,) for k in rel.columns["k"].tolist()])
        groups = [view.get((k,)) for k in rel.columns["k"].tolist()]
        ref = op._attach(rel, groups)
        out = op._attach_coded(rel, table, slots)
        assert out.schema.names == ref.schema.names
        assert np.array_equal(out.columns["lbl"], ref.columns["lbl"])
        assert out.columns["lbl"].dtype == ref.columns["lbl"].dtype
        # Lineage refs compare by value: pooled instances are equivalent.
        assert list(out.columns["ax"]) == list(ref.columns["ax"])
        assert np.array_equal(out.mult, ref.mult)

    def test_attach_empty(self):
        op = self.make_op()
        rel = self.stream([])
        out = op._attach_coded(rel, None, np.empty(0, dtype=np.intp))
        ref = op._attach(rel, [])
        assert out.schema.names == ref.schema.names
        for name in out.schema.names:
            assert out.columns[name].dtype == ref.columns[name].dtype
            assert len(out.columns[name]) == 0


def publish_block(ctx, block, key, value, trials, lo, hi, colname="v"):
    out = ctx.blocks.get(block) or BlockOutput(block, [], [colname])
    uv = UncertainValue(
        value,
        np.asarray(trials, dtype=float),
        VariationRange(lo, hi),
        LineageRef(block, key, colname),
    )
    out.publish(GroupValue(key, {colname: uv}, True), is_new=True)
    ctx.blocks[block] = out


class TestResolveKernel:
    """kernels.resolve vs the row-wise classify reference."""

    SCHEMA = Schema([("d", ColumnType.FLOAT), ("u", ColumnType.FLOAT)])

    def rel(self, d_values, keys):
        n = len(d_values)
        refs = np.empty(n, dtype=object)
        for i in range(n):
            refs[i] = LineageRef(1, (keys[i],), "v")
        return Relation(
            self.SCHEMA, {"d": np.asarray(d_values, dtype=float), "u": refs}
        )

    def contexts(self, publish_keys=(0, 1), t=4):
        pair = []
        for vectorize in (True, False):
            ctx = make_ctx(t=t, vectorize=vectorize)
            for k in publish_keys:
                publish_block(
                    ctx, 1, (k,), 10.0 + k, [10.0 + k + j * 0.5 for j in range(t)],
                    8.0 + k, 12.0 + k,
                )
            pair.append(ctx)
        return pair

    def assert_sides_equal(self, expr, rel, t=4, publish_keys=(0, 1)):
        vec_ctx, ref_ctx = self.contexts(publish_keys, t)
        vec = classify.evaluate_side(expr, rel, {"u"}, vec_ctx)
        ref = classify.evaluate_side(expr, rel, {"u"}, ref_ctx)
        assert np.array_equal(vec.lo, ref.lo, equal_nan=True)
        assert np.array_equal(vec.hi, ref.hi, equal_nan=True)
        assert np.array_equal(vec.point, ref.point, equal_nan=True)
        assert np.array_equal(
            np.asarray(vec.trial_matrix(t)), np.asarray(ref.trial_matrix(t)),
            equal_nan=True,
        )
        assert np.array_equal(vec.pending, ref.pending)
        assert vec.refs == ref.refs

    def test_bare_column(self):
        self.assert_sides_equal(Col("u"), self.rel([0.0, 0.0, 0.0], [0, 1, 0]))

    def test_arith_with_literal(self):
        rel = self.rel([2.0, 4.0], [0, 1])
        self.assert_sides_equal(Col("u") * 0.5 + lit(1.0), rel)
        self.assert_sides_equal(Col("u") - col("d"), rel)
        self.assert_sides_equal(col("d") * Col("u"), rel)

    def test_division_range_crossing_zero(self):
        vec_ctx, ref_ctx = self.contexts((0,))
        for ctx in (vec_ctx, ref_ctx):
            publish_block(ctx, 1, (9,), 0.5, [0.5] * 4, -1.0, 2.0)
        rel = self.rel([6.0, 6.0], [0, 9])
        expr = col("d") / Col("u")
        vec = classify.evaluate_side(expr, rel, {"u"}, vec_ctx)
        ref = classify.evaluate_side(expr, rel, {"u"}, ref_ctx)
        assert np.array_equal(vec.lo, ref.lo, equal_nan=True)
        assert np.array_equal(vec.hi, ref.hi, equal_nan=True)
        assert vec.lo[1] == -np.inf and vec.hi[1] == np.inf

    def test_pending_refs(self):
        # Key 5 never published: rows referencing it are pending, NaN-filled.
        rel = self.rel([1.0, 2.0, 3.0], [0, 5, 1])
        self.assert_sides_equal(Col("u") + lit(1.0), rel)
        self.assert_sides_equal(Col("u"), rel)

    def test_modulo_outside_kernel_dialect(self):
        # % has no interval rule; the kernel declines and classify keeps
        # the row-wise reference for such expressions.
        from repro.kernels import resolve as kresolve

        vec_ctx, _ = self.contexts((0,))
        rel = self.rel([2.0], [0])
        out = kresolve.try_evaluate_side(
            Arith("%", Col("u"), lit(3.0)), rel, {"u"}, vec_ctx
        )
        assert out is None

    def test_classification_identical(self):
        vec_ctx, ref_ctx = self.contexts()
        rel = self.rel([20.0, 1.0, 10.5], [0, 0, 0])
        cmp_ = Comparison(">", Col("d"), Col("u"))
        vec = classify.classify_comparison(cmp_, rel, {"u"}, vec_ctx)
        ref = classify.classify_comparison(cmp_, rel, {"u"}, ref_ctx)
        assert np.array_equal(vec.status, ref.status)
        assert np.array_equal(vec.point, ref.point)
        vt, rt = vec.trial_matrix(4), ref.trial_matrix(4)
        assert np.array_equal(np.asarray(vt), np.asarray(rt))


class TestHolisticKernels:
    def naive_quantile(self, values, weights, q):
        """Independent reference: linear scan over sorted values."""
        order = np.argsort(values, kind="stable")
        cum = np.cumsum(np.asarray(weights, dtype=float)[order])
        total = cum[-1] if len(cum) else 0.0
        if not total > 0.0:
            return float("nan")
        idx = int(np.count_nonzero(cum < q * total))
        return float(np.asarray(values)[order[min(idx, len(values) - 1)]])

    def test_weighted_quantile_matches_naive(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.normal(0, 10, 37)
            w = rng.poisson(1.0, 37).astype(float)
            for q in (0.1, 0.5, 0.9, 1.0):
                got = weighted_quantile(v, w, q)
                want = self.naive_quantile(v, w, q)
                assert got == want or (np.isnan(got) and np.isnan(want))

    def test_trials_equal_per_column_scalar(self):
        rng = np.random.default_rng(1)
        v = rng.normal(0, 5, 50)
        tw = rng.poisson(1.0, (50, 16)).astype(float)
        for q in (0.25, 0.5, 0.95):
            vec = weighted_quantile_trials(v, tw, q)
            ref = np.array([weighted_quantile(v, tw[:, j], q) for j in range(16)])
            assert np.array_equal(vec, ref, equal_nan=True)

    def test_zero_weight_trials_are_nan(self):
        v = np.array([1.0, 2.0])
        tw = np.array([[1.0, 0.0], [1.0, 0.0]])
        out = weighted_quantile_trials(v, tw, 0.5)
        assert out[0] == 1.0 and np.isnan(out[1])

    def test_empty_group(self):
        assert np.isnan(weighted_quantile(np.empty(0), np.empty(0), 0.5))
        out = weighted_quantile_trials(np.empty(0), np.empty((0, 3)), 0.5)
        assert np.isnan(out).all()

    def test_grouped_indices_match_dict_reference(self):
        rng = np.random.default_rng(2)
        codes_src = rng.integers(0, 6, 80)
        keys, codes = reference_codes(
            relation_from_columns(
                Schema([("k", ColumnType.INT)]), k=codes_src
            ),
            ["k"],
        )
        by_group = {}
        for i, c in enumerate(codes):
            by_group.setdefault(c, []).append(i)
        ix_lists = grouped_indices(codes, len(keys))
        assert len(ix_lists) == len(by_group)
        for g, ix in enumerate(ix_lists):
            assert ix.tolist() == by_group[g]

    def test_quantile_trial_compute_equals_base_loop(self):
        rng = np.random.default_rng(3)
        v = rng.normal(0, 3, 40)
        tw = rng.poisson(1.0, (40, 9)).astype(float)
        func = Quantile(0.9)
        base = AggregateFunction.trial_compute(func, v, tw)
        assert np.array_equal(func.trial_compute(v, tw), base, equal_nan=True)

    def test_registry_exposes_median_and_quantiles(self):
        assert isinstance(AGG_FUNCTIONS["median"](), Median)
        assert AGG_FUNCTIONS["p95"]().q == 0.95
        with pytest.raises(Exception):
            Quantile(0.0)


class TestVectorizedSentinels:
    def make_stores(self):
        cmp_ = Comparison(">", Col("d"), Col("u"))
        return (
            SentinelStore([cmp_], {"u"}),
            SentinelStore([cmp_], {"u"}),
        )

    def rel(self, d_values, keys):
        n = len(d_values)
        refs = np.empty(n, dtype=object)
        for i in range(n):
            refs[i] = LineageRef(1, (keys[i],), "v")
        return Relation(
            Schema([("d", ColumnType.FLOAT), ("u", ColumnType.FLOAT)]),
            {"d": np.asarray(d_values, dtype=float), "u": refs},
        )

    def assert_stores_equal(self, a, b):
        for sa, sb in zip(a._per_conjunct, b._per_conjunct):
            assert sa.true_side == sb.true_side
            assert sa.false_side == sb.false_side
            assert sa.ref_rows == sb.ref_rows

    def test_batched_fold_equals_sequential(self):
        rng = np.random.default_rng(4)
        vec, ref = self.make_stores()
        for _ in range(3):
            d = np.round(rng.normal(10, 5, 30), 3)
            keys = rng.integers(0, 4, 30)
            rel = self.rel(d, keys)
            rows = np.arange(30)
            expected = rng.random(30) > 0.5
            vec.record(0, rel, rows, expected, vectorize=True)
            ref.record(0, rel, rows, expected, vectorize=False)
        self.assert_stores_equal(vec, ref)

    def test_nan_det_values_use_reference(self):
        vec, ref = self.make_stores()
        d = np.array([1.0, float("nan"), 3.0])
        rel = self.rel(d, [0, 0, 1])
        rows = np.arange(3)
        expected = np.array([True, True, False])
        vec.record(0, rel, rows, expected, vectorize=True)
        ref.record(0, rel, rows, expected, vectorize=False)
        self.assert_stores_equal(vec, ref)

    def test_equality_op_uses_reference(self):
        cmp_ = Comparison("==", Col("d"), Col("u"))
        vec = SentinelStore([cmp_], {"u"})
        ref = SentinelStore([cmp_], {"u"})
        rel = self.rel([1.0, 2.0, 1.5], [0, 0, 0])
        rows = np.arange(3)
        expected = np.array([False, False, True])
        vec.record(0, rel, rows, expected, vectorize=True)
        ref.record(0, rel, rows, expected, vectorize=False)
        self.assert_stores_equal(vec, ref)


# -- whole-engine bit identity -----------------------------------------------------

ALL_QUERIES = [("tpch", name) for name in TPCH_QUERIES] + [
    ("conviva", name) for name in CONVIVA_QUERIES
]


def _run_spec(spec, catalog, vectorize, executor, num_batches=3, num_trials=8):
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(num_trials=num_trials, seed=7, vectorize=vectorize),
        executor=executor,
    )
    try:
        return list(engine.run(spec.plan, num_batches))
    finally:
        engine.executor.close()


def _scalar_eq(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return a == b


def assert_partials_identical(got, want, where):
    assert len(got) == len(want), where
    for pg, pw in zip(got, want):
        ctx = f"{where} batch {pw.batch_no}"
        assert pg.batch_no == pw.batch_no, ctx
        assert pg.fraction_processed == pw.fraction_processed, ctx
        assert pg.schema.names == pw.schema.names, ctx
        assert len(pg.rows) == len(pw.rows), ctx
        # Row order must match too: the vectorized codec assigns group ids
        # in the same first-appearance order as the dict reference.
        for rg, rw in zip(pg.rows, pw.rows):
            for name in pw.schema.names:
                vg, vw = rg[name], rw[name]
                if isinstance(vw, UncertainValue):
                    assert isinstance(vg, UncertainValue), f"{ctx}: {name}"
                    assert _scalar_eq(vg.value, vw.value), f"{ctx}: {name}"
                    assert np.array_equal(vg.trials, vw.trials, equal_nan=True), (
                        f"{ctx}: {name} trials"
                    )
                    assert _scalar_eq(vg.vrange.lo, vw.vrange.lo), f"{ctx}: {name} lo"
                    assert _scalar_eq(vg.vrange.hi, vw.vrange.hi), f"{ctx}: {name} hi"
                else:
                    assert _scalar_eq(vg, vw), f"{ctx}: {name}"


@pytest.fixture(scope="module")
def small_catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


class TestFullRunBitIdentity:
    """Vectorized and reference modes must agree bit for bit on every
    workload query — per batch, per row, per trial — under both executors."""

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial(self, source, name, small_catalogs):
        spec = (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]
        catalog = small_catalogs[source]
        vec = _run_spec(spec, catalog, True, "serial")
        ref = _run_spec(spec, catalog, False, "serial")
        assert vec, f"{name}: no partial results"
        assert_partials_identical(vec, ref, f"{name} serial")

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_parallel(self, source, name, small_catalogs):
        spec = (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]
        catalog = small_catalogs[source]
        vec = _run_spec(spec, catalog, True, "parallel")
        ref = _run_spec(spec, catalog, False, "parallel")
        assert vec, f"{name}: no partial results"
        assert_partials_identical(vec, ref, f"{name} parallel")
