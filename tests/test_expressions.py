"""Unit tests for the expression AST (vector and per-row evaluation)."""

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational import ColumnType, Schema, col, lit, relation_from_columns
from repro.relational.expressions import (
    And,
    Arith,
    Comparison,
    Func,
    InList,
    Literal,
    Not,
    Or,
    conjoin,
    conjuncts,
    is_uncertain,
    lift,
    point,
    walk,
)

S = Schema([("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT), ("s", ColumnType.STRING)])
REL = relation_from_columns(S, x=[1.0, 2.0, 3.0], y=[3.0, 2.0, 1.0], s=["a", "b", "a"])


class TestCol:
    def test_vector_eval(self):
        assert list(col("x").evaluate(REL)) == [1.0, 2.0, 3.0]

    def test_row_eval(self):
        assert col("x").evaluate_row({"x": 7.0}) == 7.0

    def test_row_eval_missing(self):
        with pytest.raises(ExpressionError, match="no column"):
            col("z").evaluate_row({"x": 1.0})

    def test_attrs(self):
        assert col("x").attrs() == {"x"}

    def test_output_type(self):
        assert col("s").output_type(S) is ColumnType.STRING


class TestLiteral:
    def test_vector_broadcast(self):
        assert list(lit(5).evaluate(REL)) == [5, 5, 5]

    def test_row(self):
        assert lit("q").evaluate_row({}) == "q"

    def test_attrs_empty(self):
        assert lit(1).attrs() == set()

    @pytest.mark.parametrize(
        "value,ctype",
        [
            (1, ColumnType.INT),
            (1.5, ColumnType.FLOAT),
            ("a", ColumnType.STRING),
            (True, ColumnType.BOOL),
        ],
    )
    def test_output_types(self, value, ctype):
        assert lit(value).output_type(S) is ctype

    def test_unsupported_literal_type(self):
        with pytest.raises(ExpressionError):
            lit([1, 2]).output_type(S)

    def test_lift_passthrough(self):
        expr = col("x")
        assert lift(expr) is expr

    def test_lift_wraps_scalar(self):
        assert isinstance(lift(3), Literal)


class TestArith:
    def test_add(self):
        assert list((col("x") + col("y")).evaluate(REL)) == [4.0, 4.0, 4.0]

    def test_sub(self):
        assert list((col("x") - 1).evaluate(REL)) == [0.0, 1.0, 2.0]

    def test_mul(self):
        assert list((2 * col("x")).evaluate(REL)) == [2.0, 4.0, 6.0]

    def test_div_promotes_to_float(self):
        out = (col("x") / 2).evaluate(REL)
        assert list(out) == [0.5, 1.0, 1.5]

    def test_rsub(self):
        assert list((10 - col("x")).evaluate(REL)) == [9.0, 8.0, 7.0]

    def test_rdiv(self):
        assert list((6 / col("x")).evaluate(REL)) == [6.0, 3.0, 2.0]

    def test_row_eval(self):
        assert (col("x") * col("y")).evaluate_row({"x": 3.0, "y": 4.0}) == 12.0

    def test_nested_attrs(self):
        assert ((col("x") + 1) * col("y")).attrs() == {"x", "y"}

    def test_unknown_op_rejected(self):
        with pytest.raises(ExpressionError):
            Arith("**", col("x"), col("y"))

    def test_string_arith_rejected(self):
        with pytest.raises(ExpressionError):
            (col("s") + 1).output_type(S)

    def test_type_promotion(self):
        si = Schema([("i", ColumnType.INT)])
        assert (col("i") + 1).output_type(si) is ColumnType.INT
        assert (col("i") + 1.5).output_type(si) is ColumnType.FLOAT
        assert (col("i") / 2).output_type(si) is ColumnType.FLOAT


class TestComparison:
    def test_gt(self):
        assert list((col("x") > col("y")).evaluate(REL)) == [False, False, True]

    def test_le(self):
        assert list((col("x") <= 2.0).evaluate(REL)) == [True, True, False]

    def test_eq_method(self):
        assert list(col("s").eq("a").evaluate(REL)) == [True, False, True]

    def test_ne_method(self):
        assert list(col("s").ne("a").evaluate(REL)) == [False, True, False]

    def test_row_eval_bool(self):
        assert (col("x") > 1).evaluate_row({"x": 2.0}) is True

    def test_flipped(self):
        flipped = (col("x") > col("y")).flipped()
        assert flipped.op == "<"
        assert flipped.left.name == "y"

    def test_output_type_bool(self):
        assert (col("x") > 1).output_type(S) is ColumnType.BOOL

    def test_unknown_op(self):
        with pytest.raises(ExpressionError):
            Comparison("~~", col("x"), col("y"))


class TestBoolOps:
    def test_and(self):
        expr = (col("x") > 1) & (col("y") > 1)
        assert list(expr.evaluate(REL)) == [False, True, False]

    def test_or(self):
        expr = (col("x") > 2) | (col("y") > 2)
        assert list(expr.evaluate(REL)) == [True, False, True]

    def test_not(self):
        expr = ~(col("x") > 1)
        assert list(expr.evaluate(REL)) == [True, False, False]

    def test_row_short_circuit_semantics(self):
        expr = And(col("x") > 0, col("y") > 0)
        assert expr.evaluate_row({"x": 1.0, "y": 1.0}) is True
        assert expr.evaluate_row({"x": -1.0, "y": 1.0}) is False

    def test_isin(self):
        expr = col("s").isin(["a"])
        assert list(expr.evaluate(REL)) == [True, False, True]

    def test_isin_row(self):
        assert col("x").isin([2.0]).evaluate_row({"x": 2.0}) is True

    def test_isin_output_type(self):
        assert col("s").isin(["a"]).output_type(S) is ColumnType.BOOL


class TestFunc:
    def test_vectorized(self):
        f = Func("double", lambda v: v * 2, [col("x")], vectorized=True)
        assert list(f.evaluate(REL)) == [2.0, 4.0, 6.0]

    def test_rowwise_fallback(self):
        f = Func("inc", lambda v: v + 1, [col("x")])
        assert list(f.evaluate(REL)) == [2.0, 3.0, 4.0]

    def test_row_eval(self):
        f = Func("add", lambda a, b: a + b, [col("x"), col("y")])
        assert f.evaluate_row({"x": 1.0, "y": 2.0}) == 3.0

    def test_attrs_unions_args(self):
        f = Func("add", lambda a, b: a + b, [col("x"), col("y") * 2])
        assert f.attrs() == {"x", "y"}

    def test_declared_output_type(self):
        f = Func("f", lambda v: v, [col("x")], out_type=ColumnType.INT)
        assert f.output_type(S) is ColumnType.INT


class TestHelpers:
    def test_point_passthrough(self):
        assert point(3.5) == 3.5

    def test_is_uncertain_false_for_plain(self):
        assert not is_uncertain(1.0)

    def test_walk_visits_all(self):
        expr = (col("x") + 1) > col("y")
        names = {type(n).__name__ for n in walk(expr)}
        assert {"Comparison", "Arith", "Col", "Literal"} <= names

    def test_conjuncts_splits_ands(self):
        expr = (col("x") > 1) & ((col("y") > 2) & (col("x") < 5))
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_keeps_or_whole(self):
        expr = (col("x") > 1) | (col("y") > 2)
        assert len(conjuncts(expr)) == 1

    def test_conjoin_roundtrip(self):
        parts = conjuncts((col("x") > 1) & (col("y") > 2))
        rebuilt = conjoin(parts)
        assert list(rebuilt.evaluate(REL)) == list(
            ((col("x") > 1) & (col("y") > 2)).evaluate(REL)
        )

    def test_conjoin_empty_is_true(self):
        assert conjoin([]).evaluate_row({}) is True

    def test_repr_smoke(self):
        assert "x" in repr((col("x") + 1) > 2)
