"""The plan-level race detector: clean on every bundled query, and every
RACE rule fires on a seeded-race fixture (no dead rules)."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_query_races, check_plan_races
from repro.analysis.races import (
    RACE_RULES,
    check_races,
    class_effects,
    summarize_effects,
)
from repro.core.compiler import ExecutionUnit, compile_online
from repro.core.operators import StateRule
from repro.core.values import LineageRef
from repro.state import InMemoryStateStore
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)


def _rules_of(diags) -> set[str]:
    return {d.rule_id for d in diags}


@pytest.fixture(scope="module")
def tpch_catalog():
    return generate_tpch(scale=0.05, seed=1).catalog()


@pytest.fixture(scope="module")
def conviva_catalog():
    return generate_conviva(scale=0.05, seed=1).catalog()


# ---------------------------------------------------------------------------
# Acceptance: every bundled workload query race-checks clean. The wave
# schedule is derived from the same declared produces/consumes edges both
# executors honor, so a clean report covers serial and parallel execution.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_queries_race_free(name, tpch_catalog):
    spec = TPCH_QUERIES[name]
    report = check_plan_races(
        spec.plan, tpch_catalog, spec.streamed_table, subject=name
    )
    assert report.ok, report.format()
    assert not report.diagnostics, report.format()
    assert report.wall_seconds > 0


@pytest.mark.parametrize("name", sorted(CONVIVA_QUERIES))
def test_conviva_queries_race_free(name, conviva_catalog):
    spec = CONVIVA_QUERIES[name]
    report = check_plan_races(
        spec.plan, conviva_catalog, spec.streamed_table, subject=name
    )
    assert report.ok, report.format()
    assert not report.diagnostics, report.format()


def test_analyze_query_races_sql_roundtrip(conviva_catalog):
    report = analyze_query_races(
        "SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn",
        conviva_catalog,
        "sessions",
    )
    assert report.ok, report.format()
    assert not report.diagnostics


# ---------------------------------------------------------------------------
# Effect summaries: plan metadata + the targeted AST walk, resolved
# against live operator instances.
# ---------------------------------------------------------------------------


def test_summaries_cover_declared_block_edges(tpch_catalog):
    spec = TPCH_QUERIES["Q17"]  # nested: pipeline -> small -> pipeline
    compiled = compile_online(spec.plan, tpch_catalog, spec.streamed_table)
    assert len(compiled.units) >= 3
    for unit in compiled.units:
        summary = summarize_effects(unit)
        assert set(unit.produces) <= summary.block_writes
        assert set(unit.consumes) <= summary.block_reads


def test_summary_resolves_uncertain_join_sidecar(tpch_catalog):
    """The join's carried lineage sidecar must surface as a sidecar
    source *and* as a consumed block — that is what keeps it ordered."""
    spec = TPCH_QUERIES["Q17"]
    compiled = compile_online(spec.plan, tpch_catalog, spec.streamed_table)
    joined = [
        summarize_effects(u)
        for u in compiled.units
        if "pipeline" in u.label and summarize_effects(u).sidecar_sources
    ]
    assert joined, "expected at least one pipeline with sidecar sources"
    for summary in joined:
        external = summary.sidecar_sources - summary.block_writes
        assert external <= summary.block_reads


class _SeededOp:
    """Operator with a declared store entry plus an AST-visible put."""

    label = "agg:seeded"
    state_rule = StateRule(entries=("sketch",))

    def __init__(self, store):
        self.state = store

    def process(self, delta, ctx):
        self.state.put("counter", 1)
        return delta


class _CarrierOp:
    """Operator baking a foreign block id into a carried sidecar."""

    label = "carrier:seeded"

    def __init__(self, src_id):
        self.src_id = src_id

    def process(self, delta, ctx):
        return LineageRef(self.src_id, (0,), "v")


class _SeededUnit(ExecutionUnit):
    def __init__(self, label, produces=(), consumes=(), ops=()):
        self.label = label
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)
        self.ops = list(ops)


def test_ast_walk_finds_undeclared_state_key():
    effects = class_effects(_SeededOp)
    assert "counter" in effects.state_keys
    store = InMemoryStateStore()
    summary = summarize_effects(_SeededUnit("u", ops=[_SeededOp(store)]))
    assert (id(store), "counter") in summary.store_writes
    assert (id(store), "sketch") in summary.store_writes  # declared rule


def test_ast_walk_finds_sidecar_source():
    assert "src_id" in class_effects(_CarrierOp).sidecar_attrs
    summary = summarize_effects(_SeededUnit("u", ops=[_CarrierOp(42)]))
    assert summary.sidecar_sources == {42}


# ---------------------------------------------------------------------------
# Seeded races: one fixture per rule.
# ---------------------------------------------------------------------------


def test_race001_same_wave_store_conflict():
    store = InMemoryStateStore()
    a = _SeededUnit("pipeline:a", produces={1}, ops=[_SeededOp(store)])
    b = _SeededUnit("pipeline:b", produces={2}, ops=[_SeededOp(store)])
    diags = check_races([a, b])
    assert _rules_of(diags) == {"RACE001"}
    diag = diags[0]
    assert diag.severity == "error"
    assert "pipeline:a" in diag.message and "pipeline:b" in diag.message
    assert "wave 0" in diag.message
    assert diag.hint


def test_race002_same_wave_block_conflict():
    a = _SeededUnit("pipeline:a", produces={5})
    b = _SeededUnit("pipeline:b", produces={5})
    diags = check_races([a, b])
    assert "RACE002" in _rules_of(diags)
    (diag,) = [d for d in diags if d.rule_id == "RACE002"]
    assert diag.severity == "error"
    assert "block 5" in diag.message


def test_race101_cross_wave_unordered_store():
    store = InMemoryStateStore()
    a = _SeededUnit("pipeline:a", produces={1}, ops=[_SeededOp(store)])
    b = _SeededUnit("pipeline:b", produces={2})
    c = _SeededUnit("small:c", consumes={2}, ops=[_SeededOp(store)])
    # a and c land in different waves (c waits for b), but share the
    # store with no produce/consume path between them.
    diags = check_races([a, b, c])
    assert _rules_of(diags) == {"RACE101"}
    assert all(d.severity == "warning" for d in diags)
    assert "no produce/consume path" in diags[0].message


def test_race101_silent_when_path_exists():
    store = InMemoryStateStore()
    a = _SeededUnit("pipeline:a", produces={1}, ops=[_SeededOp(store)])
    c = _SeededUnit("small:c", consumes={1}, ops=[_SeededOp(store)])
    assert check_races([a, c]) == []


def test_race201_unordered_sidecar_republish():
    producer = _SeededUnit("pipeline:prod", produces={7})
    carrier = _SeededUnit(
        "pipeline:carrier", produces={8}, ops=[_CarrierOp(7)]
    )
    diags = check_races([producer, carrier])
    assert _rules_of(diags) == {"RACE201"}
    diag = diags[0]
    assert diag.severity == "error"
    assert "block 7" in diag.message and "pipeline:prod" in diag.message
    assert diag.hint


def test_race201_silent_when_sidecar_block_consumed():
    producer = _SeededUnit("pipeline:prod", produces={7})
    carrier = _SeededUnit(
        "pipeline:carrier", produces={8}, consumes={7}, ops=[_CarrierOp(7)]
    )
    assert check_races([producer, carrier]) == []


class _BackedOp:
    """Operator whose store entry aliases a published block (rollup shape)."""

    label = "agg:backed"
    state_rule = StateRule(
        entries=("sketch", "output"), block_backed=frozenset({"output"})
    )

    def __init__(self, store, block_id):
        self.state = store
        self.block_id = block_id


def test_race301_block_backed_entry_with_foreign_producer():
    store = InMemoryStateStore()
    producer = _SeededUnit("pipeline:prod", produces={9})
    backed = _SeededUnit(
        "agg:backed-unit", produces={8}, consumes={9},
        ops=[_BackedOp(store, 9)],
    )
    diags = check_races([producer, backed])
    assert _rules_of(diags) == {"RACE301"}
    diag = diags[0]
    assert diag.severity == "error"
    assert "block 9" in diag.message and "'output'" in diag.message
    assert "pipeline:prod" in diag.message
    assert diag.hint


def test_race301_block_backed_entry_with_no_producer():
    store = InMemoryStateStore()
    backed = _SeededUnit("agg:backed-unit", ops=[_BackedOp(store, 9)])
    diags = check_races([backed])
    assert _rules_of(diags) == {"RACE301"}
    assert "no unit" in diags[0].message


def test_race301_silent_when_unit_produces_backing_block():
    store = InMemoryStateStore()
    backed = _SeededUnit(
        "agg:backed-unit", produces={8}, ops=[_BackedOp(store, 8)]
    )
    assert check_races([backed]) == []


def test_race000_bad_sql_is_warning(conviva_catalog):
    report = analyze_query_races(
        "FROBNICATE everything", conviva_catalog, "sessions"
    )
    assert _rules_of(report.diagnostics) == {"RACE000"}
    assert report.ok  # warning severity: exit 0 without --fail-on-warning
    assert report.diagnostics[0].severity == "warning"


def test_race000_uncompilable_plan_is_warning(conviva_catalog):
    report = analyze_query_races(
        "SELECT cdn, MEDIAN(play_time) AS m FROM sessions "
        "WHERE play_time > (SELECT AVG(play_time) FROM sessions) "
        "GROUP BY cdn",
        conviva_catalog,
        "sessions",
    )
    # Whether this plans or compiles, race analysis must degrade to a
    # warning rather than raise when the online compiler rejects it.
    if report.diagnostics:
        assert _rules_of(report.diagnostics) <= {"RACE000"}
        assert report.ok


# ---------------------------------------------------------------------------
# No dead rules: the fixtures above cover the whole catalog.
# ---------------------------------------------------------------------------


def test_rule_catalog_is_fully_exercised():
    import ast
    import pathlib

    source = pathlib.Path(__file__).read_text()
    asserted = {
        node.value
        for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in RACE_RULES
    }
    assert asserted >= set(RACE_RULES), (
        f"rules without fixtures: {sorted(set(RACE_RULES) - asserted)}"
    )
