"""Runtime contract verification (``OnlineConfig(verify=True)``).

Two halves: verified runs must be *observational* — bit-identical partial
results to unverified runs on flat and nested queries under both
executors — and each contract (input immutability, declared state
entries, single-writer store discipline) must actually fire on a
violating operator.
"""

import threading

import numpy as np
import pytest

from repro.analysis.verify import ContractVerifier, fingerprint_value
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.operators import DeltaBatch, StateRule
from repro.errors import ContractViolationError
from repro.state import InMemoryStateStore
from repro.workloads import TPCH_QUERIES, generate_tpch
from tests.conftest import random_kx


# -- verified runs are observational ----------------------------------------------


def _run(spec, catalog, *, verify, executor, num_batches=6):
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(num_trials=20, seed=3, verify=verify),
        executor=executor,
    )
    partials = list(engine.run(spec.plan, num_batches))
    engine.executor.close()
    return partials


@pytest.mark.parametrize("executor", ["serial", "parallel"])
@pytest.mark.parametrize("name", ["Q1", "Q17"])  # flat and nested
def test_verify_mode_is_bit_identical(name, executor):
    catalog = generate_tpch(scale=0.5, seed=3).catalog()
    spec = TPCH_QUERIES[name]
    plain = _run(spec, catalog, verify=False, executor=executor)
    checked = _run(spec, catalog, verify=True, executor=executor)
    assert len(plain) == len(checked)
    for pp, pc in zip(plain, checked):
        assert pp.batch_no == pc.batch_no
        assert len(pp.rows) == len(pc.rows)
        for ra, rb in zip(pp.rows, pc.rows):
            for col_name in pp.schema.names:
                va, vb = ra[col_name], rb[col_name]
                if hasattr(va, "trials"):
                    assert va.value == vb.value, f"{name} {col_name}"
                    assert np.array_equal(va.trials, vb.trials, equal_nan=True)
                else:
                    assert va == vb, f"{name} {col_name}"


def test_verify_flag_installs_verifier():
    from repro.core.blocks import RuntimeContext
    from repro.relational import Catalog

    def ctx(config):
        return RuntimeContext(Catalog({}), "t", 100, config)

    assert ctx(OnlineConfig(verify=True)).verifier is not None
    assert ctx(OnlineConfig()).verifier is None


# -- direct contract checks -------------------------------------------------------


class _FakeCtx:
    """Just enough RuntimeContext surface for the verifier hooks."""

    def __init__(self, delta=None):
        self.batch_no = 0
        self._delta = delta

    @property
    def delta(self):
        return self._delta


class _FakeOp:
    state_rule = StateRule(frozenset({"nd"}), nd_entry="nd")

    def __init__(self, label="fake:op"):
        self.label = label
        self.state = InMemoryStateStore()
        self.state.put("nd", {})

    def state_items(self):
        return list(self.state.items())


def _batch(seed=0):
    return DeltaBatch(certain=random_kx(16, seed=seed), volatile=random_kx(4, seed=seed + 1))


def test_clean_process_passes():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    verifier.after_process(op, batch, ctx)  # no mutation, declared state → fine


def test_input_mutation_detected():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    batch.certain.mult[0] += 1.0
    with pytest.raises(ContractViolationError, match="mutated its input"):
        verifier.after_process(op, batch, ctx)


def test_input_column_mutation_detected():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    batch.volatile.columns["x"][0] = -999.0
    with pytest.raises(ContractViolationError, match="mutated its input"):
        verifier.after_process(op, batch, ctx)


def test_ctx_delta_mutation_detected():
    delta = random_kx(32, seed=5)
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx(delta=delta)
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    delta.mult[0] += 1.0
    with pytest.raises(ContractViolationError, match="ctx.delta"):
        verifier.after_process(op, batch, ctx)


def test_multi_input_fingerprint_covers_all_children():
    batches = [_batch(seed=1), _batch(seed=2)]
    before = fingerprint_value(batches)
    batches[1].certain.mult[0] += 1.0
    assert fingerprint_value(batches) != before
    assert fingerprint_value(None) is None


def test_stray_state_entry_detected():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    op.state.put("stray", 123)
    with pytest.raises(ContractViolationError, match="StateRule"):
        verifier.after_process(op, batch, ctx)


def test_missing_state_entry_detected():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    batch = _batch()
    verifier.before_process(op, batch, ctx)
    op.state.delete("nd")
    with pytest.raises(ContractViolationError, match="StateRule"):
        verifier.after_process(op, batch, ctx)


def test_cross_thread_write_to_same_entry_detected():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    verifier.before_process(op, _batch(), ctx)  # installs the observer
    op.state.put("nd", {1: "a"})  # first writer: this thread
    caught = []

    def other_thread():
        try:
            op.state.put("nd", {2: "b"})
        except ContractViolationError as exc:
            caught.append(exc)

    worker = threading.Thread(target=other_thread)
    worker.start()
    worker.join()
    assert len(caught) == 1
    assert "two different threads" in str(caught[0])


def test_same_thread_rewrites_are_fine():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    verifier.before_process(op, _batch(), ctx)
    op.state.put("nd", {1: "a"})
    op.state.put("nd", {2: "b"})  # same thread: no race


def test_write_tracking_resets_at_batch_boundary():
    verifier, op, ctx = ContractVerifier(), _FakeOp(), _FakeCtx()
    verifier.before_process(op, _batch(), ctx)
    op.state.put("nd", {1: "a"})
    verifier.begin_batch(1)  # next batch: prior writers forgotten
    caught = []

    def other_thread():
        try:
            op.state.put("nd", {2: "b"})
        except ContractViolationError as exc:
            caught.append(exc)

    worker = threading.Thread(target=other_thread)
    worker.start()
    worker.join()
    assert caught == []
