"""Chaos suite: every workload query, under injected faults, must deliver
the fault-free answer (the executable form of the Section 5.1 claim that
failure recovery preserves Theorem 1).

The fault plan per run exercises all four kinds: a transient unit failure
(absorbed by executor retry), two controller-level integrity failures
(checkpointed partial replay), and one checkpoint corruption (fall-back
to an older snapshot). ``batch`` faults are used for the forced failures
because they fire for every query shape; ``sentinel`` probes only exist
in plans with uncertain SELECT/JOIN operators.

Scale knobs (for the CI chaos-smoke job):

* ``IOLAP_CHAOS_BATCHES`` — mini-batches per run (default 8)
* ``IOLAP_CHAOS_TRIALS``  — bootstrap trials (default 8)
* ``IOLAP_CHAOS_SANITIZE`` — set to ``1`` to run every engine with the
  zero-copy aliasing sanitizer on (the CI race-smoke job does); results
  must still be bit-identical to the fault-free run
"""

from __future__ import annotations

import os

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

BATCHES = int(os.environ.get("IOLAP_CHAOS_BATCHES", "8"))
TRIALS = int(os.environ.get("IOLAP_CHAOS_TRIALS", "8"))
SANITIZE = os.environ.get("IOLAP_CHAOS_SANITIZE") == "1"

#: unit retry at batch 3, partial replay at 5 and 8, corrupt snapshot at 6.
FAULTS = "unit@3:aggregate,batch@5,checkpoint@6,batch@8"
INTERVAL = 3

ALL_QUERIES = [("tpch", name) for name in TPCH_QUERIES] + [
    ("conviva", name) for name in CONVIVA_QUERIES
]


@pytest.fixture(scope="module")
def catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


def run_query(spec, catalog, executor, faults=None, rollup=False):
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(
            num_trials=TRIALS,
            seed=7,
            faults=faults,
            checkpoint_interval=INTERVAL,
            unit_retry_attempts=2,
            sanitize=SANITIZE,
            rollup=rollup,
        ),
        executor=executor,
    )
    try:
        return engine, engine.run_to_completion(spec.plan, BATCHES)
    finally:
        engine.executor.close()


def spec_of(source, name):
    return (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]


class TestChaos:
    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial(self, source, name, catalogs):
        self._check(source, name, catalogs, "serial")

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_parallel(self, source, name, catalogs):
        self._check(source, name, catalogs, "parallel")

    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_serial_rollup(self, source, name, catalogs):
        """Recovery under faults with the rollup tier on must still land
        on the fault-free, rollup-off answer (restore demotes migrated
        groups before the replay suffix runs)."""
        self._check(source, name, catalogs, "serial", rollup=True)

    def _check(self, source, name, catalogs, executor, rollup=False):
        spec = spec_of(source, name)
        catalog = catalogs[source]
        eng0, clean = run_query(spec, catalog, executor)
        eng1, faulted = run_query(
            spec, catalog, executor, faults=FAULTS, rollup=rollup
        )
        # Real (non-injected) violations can also occur, especially at low
        # trial counts — recovery handles those identically, so only the
        # two *forced* failures are a floor, not an exact count.
        extra = eng0.metrics.num_recoveries
        assert eng1.metrics.num_recoveries >= 2, (
            f"{name}: expected both forced failures to recover "
            f"(got {eng1.metrics.num_recoveries}, clean run had {extra})"
        )
        assert faulted.to_relation().bag_equal(clean.to_relation(), 9), (
            f"{name} ({executor}): faulted final diverged from fault-free"
        )
