"""The engine-contract lint: clean on the shipped sources, and every ENG
rule fires on a deliberately broken operator fixture (no dead rules)."""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint
from repro.analysis.lint import ENGINE_LINT_RULES, lint_source


def _rules(source: str) -> set[str]:
    return {d.rule_id for d in lint_source(textwrap.dedent(source))}


# Baseline: a well-behaved operator shape that every fixture perturbs.
CLEAN_OP = """
class GoodOp:
    def __init__(self, child):
        self.child = child
        self.block_id = 7

    def open(self, ctx):
        self.threshold = 4.2

    def process(self, delta, ctx):
        rows = [r for r in delta.rows if r.x > self.threshold]
        self.state.put("kept", len(rows))
        ctx.blocks[self.block_id] = rows
        return rows
"""


def test_clean_operator_has_no_findings():
    assert _rules(CLEAN_OP) == set()


def test_non_operator_classes_are_out_of_scope():
    # The same "violations" outside an operator class are fine: scope is
    # classes implementing process(self, delta, ctx).
    assert (
        _rules(
            """
            import time

            class Helper:
                def tick(self, delta, ctx):
                    delta.rows.append(1)
                    self.stamp = time.time()
            """
        )
        == set()
    )


def test_eng001_assigning_into_input():
    assert "ENG001" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                delta.certain = None
                return delta
        """
    )


def test_eng001_mutating_call_on_input():
    assert "ENG001" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                delta.rows.append(1)
                return delta
        """
    )


def test_eng001_mutating_ctx_delta():
    assert "ENG001" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                ctx.delta.columns["x"] = None
                return delta
        """
    )


def test_eng002_stray_instance_state():
    assert "ENG002" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                self.seen = self.seen + len(delta.rows)
                return delta
        """
    )


def test_eng002_allows_lifecycle_and_property_setters():
    assert (
        _rules(
            """
            class GoodOp:
                def __init__(self):
                    self.total = 0

                def open(self, ctx):
                    self.total = 0

                @property
                def sketch(self):
                    return self.state.get("sketch")

                @sketch.setter
                def sketch(self, value):
                    self.state.put("sketch", value)

                def process(self, delta, ctx):
                    self.sketch = delta
                    return delta
            """
        )
        == set()
    )


def test_eng003_non_producer_block_write():
    assert "ENG003" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                ctx.blocks[3] = delta
                return delta
        """
    )


def test_eng003_mutating_published_block():
    assert "ENG003" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                ctx.block(3).publish(delta, True)
                return delta
        """
    )


def test_eng003_allows_own_block_publish():
    assert (
        _rules(
            """
            class GoodOp:
                def process(self, delta, ctx):
                    ctx.blocks[self.block_id] = delta
                    return delta
            """
        )
        == set()
    )


def test_eng004_clock_read_in_batch_pure_path():
    assert "ENG004" in _rules(
        """
        import time

        class BadOp:
            def process(self, delta, ctx):
                self.state.put("stamp", time.time())
                return delta
        """
    )


def test_eng004_entropy_in_helper_method():
    assert "ENG004" in _rules(
        """
        import random

        class BadOp:
            def process(self, delta, ctx):
                return self._jitter(delta)

            def _jitter(self, delta):
                return random.random()
        """
    )


def test_eng004_allows_setup_methods():
    assert (
        _rules(
            """
            import time

            class GoodOp:
                def open(self, ctx):
                    self.opened_at = time.time()

                def process(self, delta, ctx):
                    return delta
            """
        )
        == set()
    )


def test_eng005_iterating_raw_set():
    assert "ENG005" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                for key in set(delta.keys) - self.published:
                    self.state.put(key, 1)
                return delta
        """
    )


def test_eng005_comprehension_over_set():
    assert "ENG005" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                return [k for k in frozenset(delta.keys)]
        """
    )


def test_eng005_allows_sorted_iteration():
    assert (
        _rules(
            """
            class GoodOp:
                def process(self, delta, ctx):
                    for key in sorted(set(delta.keys) - self.published):
                        self.state.put(key, 1)
                    return delta
            """
        )
        == set()
    )


def test_eng006_subscript_write_into_column_buffer():
    assert "ENG006" in _rules(
        """
        def patch(rel, mask):
            rel.columns["x"][mask] = 0.0
        """
    )


def test_eng006_augmented_write_into_mult():
    assert "ENG006" in _rules(
        """
        def rescale(rel, factor):
            rel.mult[:] *= factor
        """
    )


def test_eng006_mutating_call_on_sidecar_buffer():
    assert "ENG006" in _rules(
        """
        def clear_codes(enc):
            enc.codes.fill(-1)
        """
    )


def test_eng006_applies_outside_operator_classes():
    # Unlike ENG001-ENG005, buffer ownership is engine-wide: a helper
    # holding a sliced relation aliases other batches just the same.
    assert "ENG006" in _rules(
        """
        class Helper:
            def tweak(self, rel):
                rel.trial_mults[0, :] = 0.0
        """
    )


def test_eng006_exempts_the_storage_layer():
    source = textwrap.dedent(
        """
        def _write(enc, i, code):
            enc.codes[i] = code
        """
    )
    assert {
        d.rule_id
        for d in lint_source(source, path="src/repro/storage/columns.py")
    } == set()
    assert {
        d.rule_id
        for d in lint_source(source, path="src/repro/relational/relation.py")
    } == set()
    assert "ENG006" in {
        d.rule_id for d in lint_source(source, path="src/repro/core/ops.py")
    }


def test_eng006_reads_and_fresh_dicts_are_fine():
    assert (
        _rules(
            """
            def build(rel, name, arr):
                cols = dict(rel.columns)
                cols[name] = arr
                x = rel.columns["x"][:10]
                return cols, x
            """
        )
        == set()
    )


def test_noqa_suppresses_named_rule():
    assert (
        _rules(
            """
            class BadOp:
                def process(self, delta, ctx):
                    delta.rows.append(1)  # noqa: ENG001
                    return delta
            """
        )
        == set()
    )


def test_noqa_bare_suppresses_everything_on_line():
    assert (
        _rules(
            """
            class BadOp:
                def process(self, delta, ctx):
                    delta.rows.append(1)  # noqa
                    return delta
            """
        )
        == set()
    )


def test_noqa_with_other_code_does_not_suppress():
    assert "ENG001" in _rules(
        """
        class BadOp:
            def process(self, delta, ctx):
                delta.rows.append(1)  # noqa: ENG004
                return delta
        """
    )


def test_shipped_sources_are_clean():
    report = run_lint()
    assert report.ok, report.format()
    assert not report.diagnostics, report.format()
    assert report.wall_seconds > 0


def test_rule_catalog_is_fully_exercised():
    import ast
    import pathlib

    source = pathlib.Path(__file__).read_text()
    asserted = {
        node.value
        for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in ENGINE_LINT_RULES
    }
    assert asserted >= set(ENGINE_LINT_RULES), (
        f"rules without fixtures: {sorted(set(ENGINE_LINT_RULES) - asserted)}"
    )
