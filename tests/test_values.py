"""Unit + property tests for variation ranges and uncertain values."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    LineageRef,
    UncertainValue,
    VariationRange,
    point_of,
    range_of,
    trials_of,
)
from repro.errors import ExpressionError

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def ranges():
    return st.tuples(finite, finite).map(
        lambda lohi: VariationRange(min(lohi), max(lohi))
    )


class TestVariationRange:
    def test_invalid_rejected(self):
        with pytest.raises(ExpressionError):
            VariationRange(2.0, 1.0)

    def test_point(self):
        r = VariationRange.point(3.0)
        assert r.is_point and r.lo == r.hi == 3.0

    def test_everything_contains_all(self):
        assert VariationRange.everything().contains_value(1e300)

    def test_from_trials_basic(self):
        r = VariationRange.from_trials(np.array([1.0, 2.0, 3.0]), slack=2.0)
        sd = np.std([1.0, 2.0, 3.0])
        assert r.lo == pytest.approx(1.0 - 2 * sd)
        assert r.hi == pytest.approx(3.0 + 2 * sd)

    def test_from_trials_filters_nan(self):
        r = VariationRange.from_trials(np.array([np.nan, 1.0, 3.0]), slack=0.0)
        assert r.lo == 1.0 and r.hi == 3.0

    def test_from_trials_all_nan_is_everything(self):
        r = VariationRange.from_trials(np.array([np.nan, np.nan]), slack=2.0)
        assert r == VariationRange.everything()

    def test_degenerate_guard_widens(self):
        # A single-tuple group: every trial identical. The paper formula
        # would give a point range; the guard widens it (DESIGN.md).
        r = VariationRange.from_trials(np.array([5.0, 5.0, 5.0]), slack=2.0)
        assert r.lo < 5.0 < r.hi
        assert not r.is_point

    def test_contains(self):
        assert VariationRange(0, 10).contains(VariationRange(2, 3))
        assert not VariationRange(0, 10).contains(VariationRange(2, 30))

    def test_intersects(self):
        assert VariationRange(0, 5).intersects(VariationRange(5, 9))
        assert not VariationRange(0, 4).intersects(VariationRange(5, 9))

    def test_intersect(self):
        out = VariationRange(0, 5).intersect(VariationRange(3, 9))
        assert (out.lo, out.hi) == (3, 5)

    def test_width(self):
        assert VariationRange(1, 4).width == 3

    def test_add(self):
        out = VariationRange(1, 2) + VariationRange(10, 20)
        assert (out.lo, out.hi) == (11, 22)

    def test_sub(self):
        out = VariationRange(1, 2) - VariationRange(10, 20)
        assert (out.lo, out.hi) == (-19, -8)

    def test_mul_sign_combinations(self):
        out = VariationRange(-2, 3) * VariationRange(-5, 4)
        assert (out.lo, out.hi) == (-15, 12)

    def test_div(self):
        out = VariationRange(1, 2) / VariationRange(2, 4)
        assert (out.lo, out.hi) == (0.25, 1.0)

    def test_div_through_zero_is_everything(self):
        out = VariationRange(1, 2) / VariationRange(-1, 1)
        assert out == VariationRange.everything()

    @given(ranges(), ranges(), finite, finite)
    def test_interval_arithmetic_sound_add_mul(self, r1, r2, f1, f2):
        """Interval arithmetic must contain every pointwise combination."""
        x = r1.lo + f1 % 1.0 * r1.width if r1.width else r1.lo
        y = r2.lo + f2 % 1.0 * r2.width if r2.width else r2.lo
        assert (r1 + r2).contains_value(x + y) or not (
            r1.contains_value(x) and r2.contains_value(y)
        )
        prod = (r1 * r2)
        if r1.contains_value(x) and r2.contains_value(y):
            assert prod.lo - 1e-6 * (1 + abs(prod.lo)) <= x * y
            assert x * y <= prod.hi + 1e-6 * (1 + abs(prod.hi))


def uv(value, trials, lo=None, hi=None):
    trials = np.asarray(trials, dtype=np.float64)
    r = None
    if lo is not None:
        r = VariationRange(lo, hi)
    return UncertainValue(value, trials, r)


class TestUncertainValue:
    def test_defaults_to_everything(self):
        assert uv(1.0, [1.0]).vrange == VariationRange.everything()

    def test_add_scalar(self):
        out = uv(2.0, [1.0, 3.0], 1.0, 3.0) + 10
        assert out.value == 12.0
        assert list(out.trials) == [11.0, 13.0]
        assert (out.vrange.lo, out.vrange.hi) == (11.0, 13.0)

    def test_radd(self):
        out = 10 + uv(2.0, [1.0], 1.0, 1.0)
        assert out.value == 12.0

    def test_sub_uncertain(self):
        a = uv(5.0, [4.0, 6.0], 4.0, 6.0)
        b = uv(1.0, [1.0, 2.0], 1.0, 2.0)
        out = a - b
        assert out.value == 4.0
        assert list(out.trials) == [3.0, 4.0]
        assert (out.vrange.lo, out.vrange.hi) == (2.0, 5.0)

    def test_rsub(self):
        out = 10 - uv(2.0, [1.0, 3.0], 1.0, 3.0)
        assert out.value == 8.0
        assert list(out.trials) == [9.0, 7.0]

    def test_mul(self):
        out = uv(2.0, [2.0], 2.0, 2.0) * 0.5
        assert out.value == 1.0

    def test_rtruediv(self):
        out = 8 / uv(2.0, [4.0], 1.0, 4.0)
        assert out.value == 4.0
        assert list(out.trials) == [2.0]

    def test_float_coercion(self):
        assert float(uv(2.5, [1.0])) == 2.5

    def test_stdev(self):
        assert uv(0.0, [1.0, 3.0]).stdev() == pytest.approx(1.0)

    def test_stdev_nan_safe(self):
        assert uv(0.0, [np.nan, 2.0, 4.0]).stdev() == pytest.approx(1.0)

    def test_relative_stdev(self):
        assert uv(2.0, [1.0, 3.0]).relative_stdev() == pytest.approx(0.5)

    def test_relative_stdev_zero_value_nan(self):
        assert math.isnan(uv(0.0, [1.0, 3.0]).relative_stdev())

    def test_confidence_interval(self):
        lo, hi = uv(0.0, np.arange(101.0)).confidence_interval(0.90)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(95.0)

    def test_confidence_interval_empty(self):
        lo, hi = uv(0.0, [np.nan]).confidence_interval()
        assert math.isnan(lo) and math.isnan(hi)

    def test_sources_default_from_lineage(self):
        ref = LineageRef(1, (), "a")
        v = UncertainValue(1.0, np.array([1.0]), lineage=ref)
        assert v.sources == (ref,)

    def test_sources_union_in_arithmetic(self):
        r1, r2 = LineageRef(1, (), "a"), LineageRef(2, (), "b")
        a = UncertainValue(1.0, np.array([1.0]), lineage=r1)
        b = UncertainValue(2.0, np.array([2.0]), lineage=r2)
        assert set((a + b).sources) == {r1, r2}

    def test_sources_preserved_with_scalar(self):
        r1 = LineageRef(1, (), "a")
        a = UncertainValue(1.0, np.array([1.0]), lineage=r1)
        assert (a * 3).sources == (r1,)


class TestHelpers:
    def test_range_of_plain(self):
        assert range_of(3.0) == VariationRange.point(3.0)

    def test_range_of_uncertain(self):
        v = uv(1.0, [1.0], 0.0, 2.0)
        assert range_of(v) == VariationRange(0.0, 2.0)

    def test_trials_of_plain_broadcasts(self):
        assert list(trials_of(2.0, 3)) == [2.0, 2.0, 2.0]

    def test_trials_of_uncertain(self):
        assert list(trials_of(uv(1.0, [4.0, 5.0]), 2)) == [4.0, 5.0]

    def test_point_of(self):
        assert point_of(uv(9.0, [1.0])) == 9.0
        assert point_of(4) == 4.0

    def test_lineage_ref_hashable(self):
        a = LineageRef(1, ("x",), "c")
        b = LineageRef(1, ("x",), "c")
        assert a == b and hash(a) == hash(b)
