"""Tests for the executor layer: scheduling, determinism, instrumentation.

The load-bearing property: the parallel executor must be a pure
performance optimization — per-batch partial results (point estimates AND
bootstrap trials) bit-identical to the serial executor on every supported
query shape, including nested queries whose units form a real DAG.
"""

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.compiler import ExecutionUnit, compile_online
from repro.core.values import UncertainValue
from repro.engine import (
    BatchExecutor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.executor import dependency_waves
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)
from tests.conftest import KX_SCHEMA, random_kx
from repro.relational import Catalog, avg, col, count, scan, sum_


class _Unit(ExecutionUnit):
    def __init__(self, label, produces=(), consumes=()):
        self.label = label
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)

    def run(self, ctx):
        pass


class TestDependencyWaves:
    def test_independent_units_share_a_wave(self):
        units = [_Unit("a", produces={1}), _Unit("b", produces={2})]
        assert dependency_waves(units) == [[0, 1]]

    def test_consumer_waits_for_producer(self):
        units = [
            _Unit("agg", produces={1}),
            _Unit("view", produces={2}, consumes={1}),
            _Unit("outer", consumes={2}),
        ]
        assert dependency_waves(units) == [[0], [1], [2]]

    def test_diamond(self):
        units = [
            _Unit("a", produces={1}),
            _Unit("b", produces={2}, consumes={1}),
            _Unit("c", produces={3}, consumes={1}),
            _Unit("d", consumes={2, 3}),
        ]
        assert dependency_waves(units) == [[0], [1, 2], [3]]

    def test_external_ids_treated_available(self):
        units = [_Unit("a", consumes={42})]
        assert dependency_waves(units) == [[0]]

    def test_compiled_nested_query_declares_dag(self):
        catalog = Catalog({"t": random_kx(100, seed=0, groups=3)})
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select(col("x") > col("ax"))
            .aggregate([], [count("n")])
        )
        compiled = compile_online(plan, catalog, "t")
        waves = dependency_waves(compiled.units)
        # The inner aggregate must be scheduled before the side view it
        # feeds, which precedes the outer pipeline that consumes it.
        assert len(waves) >= 3
        order = [i for wave in waves for i in wave]
        assert sorted(order) == list(range(len(compiled.units)))


class TestMakeExecutor:
    def test_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("parallel"), ParallelExecutor)

    def test_instance_passthrough(self):
        ex = ParallelExecutor(max_workers=2)
        assert make_executor(ex) is ex

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_executor("distributed")

    def test_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            BatchExecutor().execute([], None)


def _canonical(rows, names):
    """Sort rows by their point values for order-insensitive comparison."""

    def point(v):
        return v.value if isinstance(v, UncertainValue) else v

    return sorted(rows, key=lambda r: tuple(repr(point(r[n])) for n in names))


def _assert_rows_identical(rows_a, rows_b, names, where):
    assert len(rows_a) == len(rows_b), where
    for ra, rb in zip(_canonical(rows_a, names), _canonical(rows_b, names)):
        for name in names:
            va, vb = ra[name], rb[name]
            if isinstance(va, UncertainValue):
                assert isinstance(vb, UncertainValue), where
                assert va.value == vb.value, f"{where}: {name}"
                assert np.array_equal(va.trials, vb.trials, equal_nan=True), (
                    f"{where}: {name} trials"
                )
            else:
                assert va == vb, f"{where}: {name}"


def _run_both(spec, catalog, num_batches=6, num_trials=20, seed=7):
    results = {}
    metrics = {}
    for name in ("serial", "parallel"):
        engine = OnlineQueryEngine(
            catalog,
            spec.streamed_table,
            OnlineConfig(num_trials=num_trials, seed=seed),
            executor=name,
        )
        results[name] = list(engine.run(spec.plan, num_batches))
        metrics[name] = engine.metrics
        engine.executor.close()
    return results, metrics


@pytest.mark.parametrize(
    "workload,name",
    [
        ("tpch", "Q1"),     # flat
        ("tpch", "Q17"),    # nested, correlated
        ("conviva", "C3"),  # flat
        ("conviva", "C2"),  # nested (SBI)
    ],
)
def test_parallel_matches_serial(workload, name):
    """Property: SerialExecutor and ParallelExecutor yield bit-identical
    partial results (points and bootstrap trials) for every batch."""
    if workload == "tpch":
        catalog = generate_tpch(scale=0.5, seed=3).catalog()
        spec = TPCH_QUERIES[name]
    else:
        catalog = generate_conviva(scale=0.5, seed=3).catalog()
        spec = CONVIVA_QUERIES[name]
    results, metrics = _run_both(spec, catalog)
    names = results["serial"][0].schema.names if results["serial"] else []
    for ps, pp in zip(results["serial"], results["parallel"]):
        assert ps.batch_no == pp.batch_no
        _assert_rows_identical(
            ps.rows, pp.rows, names, f"{name} batch {ps.batch_no}"
        )
    # Deterministic counters must agree too (timings obviously differ).
    # Labels carry plan node ids, which are assigned fresh each time the
    # spec rebuilds its plan, so compare by operator kind + footprint.
    ms, mp = metrics["serial"], metrics["parallel"]
    assert ms.total_recomputed == mp.total_recomputed
    assert ms.total_shipped_bytes == mp.total_shipped_bytes
    for bs, bp in zip(ms.batches, mp.batches):
        kinds_s = sorted(
            (label.split(":")[0], nbytes) for label, nbytes in bs.state_bytes.items()
        )
        kinds_p = sorted(
            (label.split(":")[0], nbytes) for label, nbytes in bp.state_bytes.items()
        )
        assert kinds_s == kinds_p


class TestOpSeconds:
    def test_per_operator_and_per_unit_timings_recorded(self):
        catalog = Catalog({"t": random_kx(400, seed=1, groups=4)})
        plan = scan("t", KX_SCHEMA).select(col("x") > 10.0).aggregate(
            ["k"], [sum_("y", "sy")]
        )
        engine = OnlineQueryEngine(
            catalog, "t", OnlineConfig(num_trials=10, seed=1)
        )
        engine.run_to_completion(plan, 4)
        for bm in engine.metrics.batches:
            labels = set(bm.op_seconds)
            assert any(label.startswith("scan:") for label in labels)
            assert any(label.startswith("aggregate:") for label in labels)
            assert any(label.startswith("pipeline:") for label in labels)
        totals = engine.metrics.total_op_seconds()
        assert all(seconds >= 0 for seconds in totals.values())

    def test_parallel_records_same_labels(self):
        catalog = Catalog({"t": random_kx(400, seed=1, groups=4)})
        plan = scan("t", KX_SCHEMA).select(col("x") > 10.0).aggregate(
            ["k"], [sum_("y", "sy")]
        )
        serial = OnlineQueryEngine(
            catalog, "t", OnlineConfig(num_trials=10, seed=1)
        )
        serial.run_to_completion(plan, 3)
        parallel = OnlineQueryEngine(
            catalog, "t", OnlineConfig(num_trials=10, seed=1), executor="parallel"
        )
        parallel.run_to_completion(plan, 3)
        parallel.executor.close()
        assert set(serial.metrics.total_op_seconds()) == set(
            parallel.metrics.total_op_seconds()
        )

    def test_pool_shutdown_idempotent(self):
        ex = ParallelExecutor(max_workers=2)
        ex.close()
        ex.close()


class _SleepUnit(_Unit):
    """A unit that just occupies its worker for a fixed time."""

    def __init__(self, label, produces, seconds):
        super().__init__(label, produces=produces)
        self.seconds = seconds

    def run(self, ctx):
        import time

        time.sleep(self.seconds)


def _fresh_ctx():
    from repro.core.blocks import RuntimeContext
    from repro.metrics import BatchMetrics

    rel = random_kx(10, seed=0, groups=2)
    ctx = RuntimeContext(Catalog({"t": rel}), "t", len(rel), OnlineConfig(num_trials=5))
    bm = BatchMetrics(1)
    ctx.begin_batch(1, rel, bm)
    return ctx, bm


class TestUnitSeconds:
    """wall_seconds is the controller's true batch elapsed; unit_seconds is
    the CPU-occupancy sum over units. Under the parallel executor, with
    independent units genuinely overlapping, wall < sum-of-units — the
    historical bug was reporting the sum as if it were wall time."""

    SLEEP = 0.15

    def test_parallel_wall_not_inflated(self):
        import time

        ctx, bm = _fresh_ctx()
        units = [
            _SleepUnit("a", {1}, self.SLEEP),
            _SleepUnit("b", {2}, self.SLEEP),
        ]
        ex = ParallelExecutor(max_workers=2)
        try:
            started = time.perf_counter()
            ex.execute(units, ctx)
            bm.wall_seconds = time.perf_counter() - started
        finally:
            ex.close()
        # Both units slept concurrently: the occupancy sum sees both
        # sleeps, the wall clock only one.
        assert bm.unit_seconds >= 2 * self.SLEEP
        assert bm.wall_seconds <= bm.unit_seconds

    def test_serial_accumulates_unit_seconds(self):
        ctx, bm = _fresh_ctx()
        units = [_SleepUnit("a", {1}, 0.01), _SleepUnit("b", {2}, 0.01)]
        SerialExecutor().execute(units, ctx)
        assert bm.unit_seconds >= 0.02

    def test_merge_folds_unit_seconds_not_wall(self):
        from repro.metrics import BatchMetrics

        a = BatchMetrics(1)
        a.wall_seconds = 5.0
        scratch = BatchMetrics(1)
        scratch.unit_seconds = 2.0
        scratch.wall_seconds = 99.0  # scratches never own wall time
        a.merge_from(scratch)
        assert a.unit_seconds == 2.0
        assert a.wall_seconds == 5.0


class TestWideWaves:
    """Regression for the quadratic membership scan in dependency_waves:
    the wave set is built once per wave, and wide fan-outs produce the
    pinned schedule."""

    def test_wide_fanout_schedule_pinned(self):
        # 1 producer -> 200 parallel consumers -> 1 sink.
        units = [_Unit("root", produces={0})]
        for i in range(200):
            units.append(_Unit(f"mid{i}", produces={i + 1}, consumes={0}))
        units.append(
            _Unit("sink", consumes=set(range(1, 201)))
        )
        waves = dependency_waves(units)
        assert waves == [[0], list(range(1, 201)), [201]]

    def test_wide_independent_single_wave(self):
        units = [_Unit(f"u{i}", produces={i}) for i in range(500)]
        assert dependency_waves(units) == [list(range(500))]

    def test_chain_order_stable(self):
        units = [
            _Unit(f"u{i}", produces={i}, consumes={i - 1} if i else set())
            for i in range(40)
        ]
        assert dependency_waves(units) == [[i] for i in range(40)]


class _FailUnit(_Unit):
    def __init__(self, label, produces, message):
        super().__init__(label, produces=produces)
        self.message = message

    def run(self, ctx):
        raise RuntimeError(self.message)


class TestMultiFailurePropagation:
    """When several units of one wave fail, the lowest-index failure is
    raised (deterministic), and the others surface on it instead of being
    silently dropped."""

    def _execute(self, units, obs=None):
        ctx, _ = _fresh_ctx()
        if obs is not None:
            ctx.attach_obs(obs)
        ex = ParallelExecutor(max_workers=4)
        try:
            with pytest.raises(RuntimeError) as excinfo:
                ex.execute(units, ctx)
        finally:
            ex.close()
        return excinfo.value

    def test_min_index_failure_wins(self):
        units = [
            _Unit("ok", produces={0}),
            _FailUnit("f1", {1}, "first"),
            _FailUnit("f2", {2}, "second"),
            _FailUnit("f3", {3}, "third"),
        ]
        primary = self._execute(units)
        assert str(primary) == "first"

    def test_sibling_failures_chained_via_context(self):
        units = [
            _FailUnit("f1", {1}, "first"),
            _FailUnit("f2", {2}, "second"),
            _FailUnit("f3", {3}, "third"),
        ]
        primary = self._execute(units)
        chained = []
        node = primary.__context__
        while node is not None:
            chained.append(str(node))
            node = node.__context__
        assert "second" in chained and "third" in chained

    def test_sibling_failures_noted(self):
        import sys

        if sys.version_info < (3, 11):
            pytest.skip("exception notes need Python 3.11+")
        units = [
            _FailUnit("f1", {1}, "first"),
            _FailUnit("f2", {2}, "second"),
        ]
        primary = self._execute(units)
        notes = "\n".join(getattr(primary, "__notes__", []))
        assert "also failed in the same wave" in notes
        assert "second" in notes

    def test_sibling_failures_traced(self):
        from repro.obs import Observability

        obs, sink = Observability.in_memory()
        units = [
            _FailUnit("f1", {1}, "first"),
            _FailUnit("f2", {2}, "second"),
        ]
        self._execute(units, obs=obs)
        obs.close()
        warnings = [
            e for e in sink.events
            if e.get("kind") == "warning"
            and e.get("name") == "wave-multi-failure"
        ]
        assert len(warnings) == 1
        assert warnings[0]["args"]["message"] == "second"
        assert warnings[0]["args"]["primary_unit"]

    def test_single_failure_has_no_siblings(self):
        units = [_Unit("ok", produces={0}), _FailUnit("f1", {1}, "only")]
        primary = self._execute(units)
        assert str(primary) == "only"
        assert not getattr(primary, "__notes__", [])
