"""End-to-end tests of the online query engine (controller + compiler).

The central property is Theorem 1: the partial result delivered at batch
``i`` equals evaluating the query on the accumulated data ``D_i`` with
multiplicities scaled by ``m_i`` — checked here batch by batch for every
supported query shape, and exactly (not approximately) at the final batch.
"""

import math

import numpy as np
import pytest

from repro.batching import Partitioner
from repro.baselines import run_batch
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.values import UncertainValue
from repro.errors import UnsupportedQueryError
from repro.relational import (
    Catalog,
    ColumnType,
    Schema,
    avg,
    col,
    count,
    evaluate,
    max_,
    relation_from_columns,
    scan,
    stddev,
    sum_,
)
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx


def make_catalog(n=1500, seed=0, groups=6) -> Catalog:
    dim = relation_from_columns(
        DIM_SCHEMA, k=list(range(groups)), label=[f"g{i}" for i in range(groups)]
    )
    return Catalog({"t": random_kx(n, seed=seed, groups=groups), "dim": dim})


def engine(catalog, **kwargs) -> OnlineQueryEngine:
    defaults = dict(num_trials=25, seed=5)
    defaults.update(kwargs)
    return OnlineQueryEngine(catalog, "t", OnlineConfig(**defaults))


def check_theorem1(plan, catalog, num_batches=6, **config):
    """Every batch's point result must equal Q(D_i, m_i)."""
    eng = engine(catalog, **config)
    streamed = catalog.get("t")
    partitioner = Partitioner(mode="shuffle", seed=eng.config.seed)
    batches = partitioner.partition_indices(len(streamed), num_batches)
    seen = np.empty(0, dtype=np.intp)
    for partial in eng.run(plan, num_batches):
        seen = np.concatenate([seen, batches[partial.batch_no - 1]])
        d_i = streamed.take(np.sort(seen)).scale(len(streamed) / len(seen))
        expected = evaluate(plan, catalog.replace("t", d_i))
        got = partial.to_relation()
        assert got.bag_equal(expected, ndigits=4), (
            f"batch {partial.batch_no}: {sorted(got.to_multiset(3))[:3]} != "
            f"{sorted(expected.to_multiset(3))[:3]}"
        )
    return eng


FLAT = scan("t", KX_SCHEMA).select(col("x") > 10.0).aggregate(
    ["k"], [sum_("y", "sy"), count("n")]
)


def sbi_plan():
    inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
    return (
        scan("t", KX_SCHEMA)
        .join(inner, keys=[])
        .select(col("x") > col("ax"))
        .aggregate([], [avg("y", "ay"), count("n")])
    )


def correlated_plan():
    inner = (
        scan("t", KX_SCHEMA)
        .aggregate(["k"], [avg("x", "ax")])
        .rename({"k": "k2"})
    )
    return (
        scan("t", KX_SCHEMA)
        .join(inner, keys=[("k", "k2")])
        .select(col("x") > col("ax") * 1.1)
        .aggregate(["k"], [sum_("y", "sy")])
    )


def semijoin_plan():
    member = (
        scan("t", KX_SCHEMA)
        .aggregate(["k"], [sum_("x", "sx")])
        .select(col("sx") > 4200.0)
        .project([("k", "k")])
        .rename({"k": "k2"})
    )
    return (
        scan("t", KX_SCHEMA)
        .join(member, keys=[("k", "k2")])
        .aggregate(["k"], [count("n")])
    )


def agg_of_agg_plan():
    counts = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
    avg_n = counts.aggregate([], [avg("n", "an")])
    return (
        counts.join(avg_n, keys=[])
        .select(col("n") > col("an"))
        .project([("k", "k"), ("n", "n")])
    )


class TestTheorem1:
    def test_flat_query(self):
        check_theorem1(FLAT, make_catalog())

    def test_sbi(self):
        check_theorem1(sbi_plan(), make_catalog())

    def test_correlated(self):
        check_theorem1(correlated_plan(), make_catalog())

    def test_semijoin_membership(self):
        check_theorem1(semijoin_plan(), make_catalog())

    def test_agg_of_agg(self):
        check_theorem1(agg_of_agg_plan(), make_catalog())

    def test_static_dimension_join(self):
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .aggregate(["label"], [avg("y", "ay")])
        )
        check_theorem1(plan, make_catalog())

    def test_flat_with_blocks_partitioning(self):
        eng = OnlineQueryEngine(
            make_catalog(), "t", OnlineConfig(num_trials=10, seed=1),
            partition_mode="blocks",
        )
        final = eng.run_to_completion(FLAT, 5)
        expected = run_batch(FLAT, make_catalog()).relation
        assert final.to_relation().bag_equal(expected, 4)

    def test_udaf_stddev(self):
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [stddev("y", "sd")])
        check_theorem1(plan, make_catalog())

    def test_opt1_disabled_still_exact(self):
        check_theorem1(sbi_plan(), make_catalog(), prune_with_ranges=False)

    def test_opt2_disabled_still_exact(self):
        check_theorem1(sbi_plan(), make_catalog(), lazy_lineage=False)

    def test_different_seed_still_exact_final(self):
        cat = make_catalog(seed=9)
        eng = engine(cat, seed=123)
        final = eng.run_to_completion(sbi_plan(), 7)
        expected = run_batch(sbi_plan(), cat).relation
        assert final.to_relation().bag_equal(expected, 4)


class TestResultStream:
    def test_yields_one_result_per_batch(self):
        results = list(engine(make_catalog()).run(FLAT, 5))
        assert [r.batch_no for r in results] == [1, 2, 3, 4, 5]

    def test_fraction_processed_monotone(self):
        fractions = [r.fraction_processed for r in engine(make_catalog()).run(FLAT, 5)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_final_flag(self):
        results = list(engine(make_catalog()).run(FLAT, 4))
        assert not results[0].is_final
        assert results[-1].is_final

    def test_intermediate_rows_carry_uncertainty(self):
        results = list(engine(make_catalog()).run(FLAT, 4))
        first = results[0].rows[0]
        assert any(isinstance(v, UncertainValue) for v in first.values())

    def test_final_rows_are_plain(self):
        results = list(engine(make_catalog()).run(FLAT, 4))
        last = results[-1].rows[0]
        assert not any(isinstance(v, UncertainValue) for v in last.values())

    def test_error_shrinks_with_data(self):
        results = list(engine(make_catalog(n=4000), num_trials=60).run(sbi_plan(), 10))
        rsds = [r.max_relative_stdev() for r in results[:-1]]
        assert rsds[-1] < rsds[0]

    def test_confidence_intervals_available(self):
        results = list(engine(make_catalog()).run(FLAT, 4))
        cis = results[0].confidence_intervals()
        lo, hi = next(iter(cis[0].values()))
        assert lo <= hi

    def test_early_stop_is_callers_choice(self):
        gen = engine(make_catalog()).run(FLAT, 10)
        first = next(gen)
        gen.close()  # the user is satisfied; no error
        assert first.batch_no == 1

    def test_batch_rows_parameter(self):
        cat = make_catalog(n=1000)
        results = list(engine(cat).run(FLAT, num_batches=0, batch_rows=250))
        assert len(results) == 4

    def test_run_to_completion_batch_rows(self):
        cat = make_catalog(n=1000)
        final = engine(cat).run_to_completion(FLAT, num_batches=0, batch_rows=250)
        assert final.is_final
        assert final.num_batches == 4
        expected = run_batch(FLAT, cat).relation
        assert final.to_relation().bag_equal(expected, 4)

    def test_run_to_completion_empty_table(self):
        cat = Catalog({"t": random_kx(0), "dim": make_catalog().get("dim")})
        # Empty stream -> a single batch with an empty delta still works.
        eng = engine(cat)
        final = eng.run_to_completion(FLAT, 3)
        assert final.is_final


class TestMetrics:
    def test_recomputed_zero_for_flat(self):
        eng = engine(make_catalog())
        eng.run_to_completion(FLAT, 5)
        assert eng.metrics.total_recomputed == 0

    def test_recomputed_positive_for_nested(self):
        eng = engine(make_catalog())
        eng.run_to_completion(sbi_plan(), 5)
        assert eng.metrics.total_recomputed > 0

    def test_state_bytes_reported(self):
        eng = engine(make_catalog())
        eng.run_to_completion(sbi_plan(), 5)
        assert eng.metrics.batches[-1].total_state_bytes > 0

    def test_wall_seconds_positive(self):
        eng = engine(make_catalog())
        eng.run_to_completion(FLAT, 3)
        assert all(b.wall_seconds > 0 for b in eng.metrics.batches)

    def test_new_tuples_sum_to_total(self):
        cat = make_catalog(n=1000)
        eng = engine(cat)
        eng.run_to_completion(FLAT, 4)
        assert sum(b.new_tuples for b in eng.metrics.batches) == 1000

    def test_seconds_until_fraction(self):
        eng = engine(make_catalog())
        eng.run_to_completion(FLAT, 10)
        assert eng.metrics.seconds_until_fraction(0.1) <= eng.metrics.total_seconds


class TestUnsupported:
    def test_minmax_online_rejected(self):
        plan = scan("t", KX_SCHEMA).aggregate([], [max_("x", "mx")])
        with pytest.raises(UnsupportedQueryError):
            engine(make_catalog()).run_to_completion(plan, 3)

    def test_stream_stream_join_rejected(self):
        right = scan("t", KX_SCHEMA).rename({"k": "k2", "x": "x2", "y": "y2"})
        plan = scan("t", KX_SCHEMA).join(right, keys=[]).aggregate([], [count("n")])
        with pytest.raises(UnsupportedQueryError):
            engine(make_catalog()).run_to_completion(plan, 3)


class TestRecoveryValve:
    """Exhausting the recovery budget must flip the engine into
    conservative mode (monitor off), finish the run, and still deliver
    the exact final answer — no batch may be silently dropped."""

    def test_budget_exhaustion_disables_pruning_and_stays_exact(self, monkeypatch):
        from repro.core import controller
        from repro.core.sentinels import SentinelStore
        from repro.errors import RangeIntegrityError

        monkeypatch.setattr(controller, "_MAX_RECOVERIES", 2)
        original_check = SentinelStore.check

        def forced_check(self, ctx):
            # Fail every live (non-replay) batch while pruning is on: the
            # budget can never absorb this, so the valve must trip.
            if ctx.monitor.enabled and not ctx.monitor.replaying:
                ctx.monitor.record_failure()
                raise RangeIntegrityError("forced failure", recover_from_batch=0)
            return original_check(self, ctx)

        monkeypatch.setattr(SentinelStore, "check", forced_check)

        cat = make_catalog(n=1200)
        plan = sbi_plan()
        eng = engine(cat, num_trials=8)
        final = eng.run_to_completion(plan, 6)

        assert eng.metrics.pruning_disabled
        assert eng.metrics.num_recoveries >= 1
        # Every batch survived the valve: the final answer is still exact.
        expected = evaluate(plan, cat)
        assert final.to_relation().bag_equal(expected, 3)
        # Retried batches re-ingest their delta, so the total is at least
        # (not exactly) the table size — what matters is nothing was lost.
        assert sum(b.new_tuples for b in eng.metrics.batches) >= 1200

    def test_pruning_disabled_not_set_without_valve(self):
        eng = engine(make_catalog())
        eng.run_to_completion(sbi_plan(), 5)
        assert not eng.metrics.pruning_disabled


class TestOptimizationToggles:
    def test_opt1_off_recomputes_more(self):
        cat = make_catalog(n=2000)
        on = engine(cat)
        on.run_to_completion(sbi_plan(), 6)
        off = engine(cat, prune_with_ranges=False)
        off.run_to_completion(sbi_plan(), 6)
        assert off.metrics.total_recomputed > on.metrics.total_recomputed

    def test_opt1_off_nd_store_grows_linearly(self):
        cat = make_catalog(n=2000)
        off = engine(cat, prune_with_ranges=False)
        off.run_to_completion(sbi_plan(), 6)
        recomputed = [b.recomputed_tuples for b in off.metrics.batches]
        # Without pruning the whole history is re-evaluated each batch.
        assert recomputed[-1] > 0.9 * 2000


class TestEmptyInputs:
    def test_scalar_aggregate_over_never_matching_filter(self):
        """A scalar aggregate must yield its one row even when nothing
        ever passes the filter (batch-evaluator parity; the Q17 edge case
        where no part matches)."""
        cat = make_catalog(n=300)
        plan = (
            scan("t", KX_SCHEMA)
            .select(col("x") > 1e12)
            .aggregate([], [sum_("y", "sy"), count("n")])
        )
        final = engine(cat).run_to_completion(plan, 4)
        assert final.to_plain_rows() == [{"sy": 0.0, "n": 0.0}]
        expected = run_batch(plan, cat).relation
        assert final.to_relation().bag_equal(expected, 4)

    def test_scalar_aggregate_over_empty_uncertain_filter(self):
        cat = make_catalog(n=300)
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select(col("x") > col("ax") * 1e9)
            .aggregate([], [count("n")])
        )
        final = engine(cat).run_to_completion(plan, 4)
        assert final.to_plain_rows() == [{"n": 0.0}]


class TestExecutorLifecycle:
    """Regression: every run must release its executor pool. ``run`` used
    to leave the ParallelExecutor's threads alive on normal completion,
    on error, and on abandoned generators — thread count grew run over
    run until the caller remembered to close the pool by hand."""

    def _thread_count(self):
        import threading

        return threading.active_count()

    def test_thread_count_stable_across_runs(self):
        catalog = make_catalog(300)
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [sum_("x", "sx")])
        eng = engine(catalog, num_trials=5)
        eng.executor = __import__(
            "repro.engine.executor", fromlist=["ParallelExecutor"]
        ).ParallelExecutor(max_workers=4)
        baseline = self._thread_count()
        for _ in range(5):
            eng.run_to_completion(plan, 3)
            assert self._thread_count() <= baseline
        assert self._thread_count() == baseline

    def test_abandoned_generator_closes_pool(self):
        catalog = make_catalog(300)
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [sum_("x", "sx")])
        eng = engine(catalog, num_trials=5)
        eng.executor = __import__(
            "repro.engine.executor", fromlist=["ParallelExecutor"]
        ).ParallelExecutor(max_workers=4)
        baseline = self._thread_count()
        for _ in range(3):
            gen = eng.run(plan, 4)
            next(gen)  # consume one batch, then walk away
            gen.close()
            assert self._thread_count() == baseline

    def test_engine_reusable_after_close(self):
        """Closing the pool between runs must not break the next run —
        the ParallelExecutor re-creates its pool lazily."""
        catalog = make_catalog(300)
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [avg("x", "ax")])
        eng = engine(catalog, num_trials=5)
        eng.executor = __import__(
            "repro.engine.executor", fromlist=["ParallelExecutor"]
        ).ParallelExecutor(max_workers=2)
        first = eng.run_to_completion(plan, 3)
        second = eng.run_to_completion(plan, 3)
        for ra, rb in zip(first.sorted_plain_rows(), second.sorted_plain_rows()):
            assert ra == rb

    def test_failed_run_closes_pool(self):
        catalog = make_catalog(300)
        eng = engine(catalog, num_trials=5, faults="batch@2", slack=2.0)
        eng.executor = __import__(
            "repro.engine.executor", fromlist=["ParallelExecutor"]
        ).ParallelExecutor(max_workers=4)
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [sum_("x", "sx")])
        baseline = self._thread_count()
        # batch fault recovers; force a real failure with an unsupported
        # query instead: compile rejects before any pool use.
        with pytest.raises(UnsupportedQueryError):
            list(eng.run(scan("t", KX_SCHEMA).aggregate(
                [], [max_(col("x"), "mx")]
            ), 3))
        eng.run_to_completion(plan, 3)
        assert self._thread_count() == baseline
