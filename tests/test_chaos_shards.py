"""Shard chaos suite: kill workers mid-run, demand the fault-free answer.

The ``shard`` fault kind hard-kills a worker process before a chosen
batch; the scheduler respawns it and replays its sub-stream. Because a
shard's execution is fully deterministic, the rebuilt state is the state
the dead worker would have had — so unlike the in-process chaos suite
(which settles for statistical closeness after recovery), this one
asserts the chaotic run's rows are **bit-identical** to the fault-free
sharded run, batch by batch.

All shardable workload queries run under ``IOLAP_SHARD_FULL=1``; the
default slice keeps CI latency down. Non-shardable queries are exercised
through the fallback path (shard faults are inert there — no workers
exist to kill).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import OnlineConfig
from repro.core.values import UncertainValue
from repro.engine.shards import ShardedQueryEngine
from repro.errors import ReproError
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

FULL = os.environ.get("IOLAP_SHARD_FULL") == "1"
TRIALS = int(os.environ.get("IOLAP_SHARD_TRIALS", "16"))
BATCHES = 8

SHARDABLE = [
    ("tpch", "Q1"), ("tpch", "Q3"), ("tpch", "Q18"),
    ("conviva", "C2"), ("conviva", "C3"), ("conviva", "C5"),
    ("conviva", "C9"), ("conviva", "C11"), ("conviva", "C12"),
]
DEFAULT_SLICE = [("tpch", "Q1"), ("conviva", "C2"), ("conviva", "C9")]

#: Kill shard 1 before batch 3 and shard 0 before batch 6: one early
#: shallow replay, one deep replay crossing a checkpoint boundary.
KILL_PLAN = "shard@3:1,shard@6:0"


@pytest.fixture(scope="module")
def catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


def spec_of(source, name):
    return (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]


def run_sharded(spec, catalog, faults=None, shards=2):
    engine = ShardedQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(
            num_trials=TRIALS, seed=11, shards=shards, faults=faults,
            checkpoint_interval=3,
        ),
    )
    return engine, list(engine.run(spec.plan, BATCHES))


def assert_identical(clean, chaotic, context):
    assert len(clean) == len(chaotic)
    for c, k in zip(clean, chaotic):
        assert len(c.rows) == len(k.rows), f"{context} batch={c.batch_no}"
        for rc, rk in zip(c.rows, k.rows):
            for col in rc:
                vc, vk = rc[col], rk[col]
                if isinstance(vc, UncertainValue):
                    assert vc.value == vk.value or (
                        vc.value != vc.value and vk.value != vk.value
                    ), f"{context} batch={c.batch_no} col={col}"
                    assert np.array_equal(
                        np.asarray(vc.trials),
                        np.asarray(vk.trials),
                        equal_nan=True,
                    ), f"{context} batch={c.batch_no} col={col} trials"
                else:
                    assert vc == vk or (vc != vc and vk != vk), (
                        f"{context} batch={c.batch_no} col={col}"
                    )


class TestShardKill:
    @pytest.mark.parametrize("source,name", SHARDABLE if FULL else DEFAULT_SLICE)
    def test_kill_respawn_bit_identical(self, source, name, catalogs):
        spec = spec_of(source, name)
        catalog = catalogs[source]
        _, clean = run_sharded(spec, catalog)
        engine, chaotic = run_sharded(spec, catalog, faults=KILL_PLAN)
        assert engine.shard_respawns == 2, (
            f"{name}: both injected kills must respawn "
            f"(got {engine.shard_respawns})"
        )
        assert_identical(clean, chaotic, name)

    def test_kill_at_first_batch(self, catalogs):
        """A kill before batch 1 respawns with nothing to replay."""
        spec = spec_of("conviva", "C2")
        _, clean = run_sharded(spec, catalogs["conviva"])
        engine, chaotic = run_sharded(
            spec, catalogs["conviva"], faults="shard@1:0"
        )
        assert engine.shard_respawns == 1
        assert_identical(clean, chaotic, "C2 kill@1")

    def test_default_target_is_shard_zero(self, catalogs):
        spec = spec_of("conviva", "C2")
        _, clean = run_sharded(spec, catalogs["conviva"])
        engine, chaotic = run_sharded(spec, catalogs["conviva"], faults="shard@4")
        assert engine.shard_respawns == 1
        assert_identical(clean, chaotic, "C2 default target")

    def test_kill_every_shard(self, catalogs):
        """Losing all workers (at different batches) still converges."""
        spec = spec_of("tpch", "Q1")
        _, clean = run_sharded(spec, catalogs["tpch"], shards=4)
        engine, chaotic = run_sharded(
            spec,
            catalogs["tpch"],
            faults="shard@2:0,shard@3:1,shard@5:2,shard@7:3",
            shards=4,
        )
        assert engine.shard_respawns == 4
        assert_identical(clean, chaotic, "Q1 kill-all")

    def test_shard_fault_inert_on_fallback(self, catalogs):
        """Non-shardable plans run single-process; shard faults never fire."""
        spec = spec_of("tpch", "Q6")
        engine, partials = run_sharded(
            spec, catalogs["tpch"], faults="shard@3:0"
        )
        assert not engine.shard_plan.shardable
        assert engine.shard_respawns == 0
        assert len(partials) == BATCHES

    def test_in_worker_recovery_composes(self, catalogs):
        """Sentinel faults recover *inside* the worker (single-shard
        recovery); composing them with a worker kill still lands on the
        fault-free sharded answer within bootstrap tolerance."""
        spec = spec_of("conviva", "C5")
        _, clean = run_sharded(spec, catalogs["conviva"])
        engine, chaotic = run_sharded(
            spec, catalogs["conviva"], faults="batch@4,shard@6:1"
        )
        assert engine.shard_respawns == 1
        # batch faults force a conservative replay inside each worker;
        # replay is deterministic, so rows still match bit for bit.
        assert_identical(clean, chaotic, "C5 composed")
        recovered = [p.batch_no for p in chaotic if p.metrics.recovered]
        assert 4 in recovered

    def test_worker_failure_surfaces_with_traceback(self, catalogs):
        """A worker-fatal error (not a kill) aborts the run with the
        worker's formatted traceback attached."""
        spec = spec_of("conviva", "C2")
        engine = ShardedQueryEngine(
            catalogs["conviva"],
            spec.streamed_table,
            # unit faults exhaust the retry budget -> worker-fatal
            OnlineConfig(
                num_trials=TRIALS, seed=11, shards=2,
                faults="unit@2:aggregate*9", unit_retry_attempts=1,
            ),
        )
        with pytest.raises(ReproError, match="shard .* failed at batch 2"):
            list(engine.run(spec.plan, BATCHES))
