"""Unit tests for the recovery checkpoint ring buffer."""

from __future__ import annotations

import numpy as np

from repro.state import CheckpointManager, StateRegistry


def make_registry(payload_rows: int = 10) -> StateRegistry:
    reg = StateRegistry()
    store = reg.store("op")
    store.put("rows", np.arange(payload_rows, dtype=np.int64))
    store.put("count", payload_rows)
    return reg


class TestSchedule:
    def test_disabled_when_interval_zero(self):
        mgr = CheckpointManager(0)
        assert not mgr.enabled
        assert not mgr.due(4)

    def test_due_every_interval(self):
        mgr = CheckpointManager(4)
        assert [b for b in range(1, 13) if mgr.due(b)] == [4, 8, 12]

    def test_take_records_cursor_and_bytes(self):
        reg = make_registry()
        mgr = CheckpointManager(2)
        ckpt = mgr.take(reg, 2, seen_rows=123)
        assert ckpt.batch_no == 2
        assert ckpt.seen_rows == 123
        assert ckpt.nbytes > 0
        assert len(mgr) == 1 and mgr.taken == 1


class TestRetention:
    def test_keep_bound_evicts_oldest(self):
        reg = make_registry()
        mgr = CheckpointManager(1, keep=3)
        for b in range(1, 6):
            mgr.take(reg, b, seen_rows=b * 10)
        assert mgr.batches() == [3, 4, 5]
        assert mgr.evicted == 2

    def test_byte_budget_evicts_oldest_but_keeps_newest(self):
        reg = make_registry(payload_rows=100)
        one = CheckpointManager(1).take(reg, 1, 0).nbytes
        mgr = CheckpointManager(1, keep=10, budget_bytes=int(one * 2.5))
        for b in range(1, 5):
            mgr.take(reg, b, seen_rows=0)
        assert mgr.batches() == [3, 4]
        # The newest checkpoint always survives, even over budget.
        tiny = CheckpointManager(1, keep=10, budget_bytes=1)
        tiny.take(reg, 1, 0)
        assert len(tiny) == 1


class TestSelection:
    def test_best_for_picks_newest_at_or_before(self):
        reg = make_registry()
        mgr = CheckpointManager(4, keep=8)
        for b in (4, 8, 12):
            mgr.take(reg, b, seen_rows=b)
        assert mgr.best_for(15).batch_no == 12
        assert mgr.best_for(12).batch_no == 12
        assert mgr.best_for(11).batch_no == 8
        assert mgr.best_for(3) is None

    def test_corrupt_checkpoint_skipped_falls_back_older(self):
        reg = make_registry()
        mgr = CheckpointManager(4, keep=8)
        for b in (4, 8, 12):
            mgr.take(reg, b, seen_rows=b)
        assert mgr.corrupt(12)
        assert mgr.best_for(15).batch_no == 8

    def test_corrupt_unknown_batch_is_noop(self):
        mgr = CheckpointManager(4)
        assert not mgr.corrupt(4)

    def test_drop_after_discards_invalidated(self):
        reg = make_registry()
        mgr = CheckpointManager(4, keep=8)
        for b in (4, 8, 12):
            mgr.take(reg, b, seen_rows=b)
        assert mgr.drop_after(8) == 1
        assert mgr.batches() == [4, 8]


class TestValidation:
    def test_fresh_snapshot_validates(self):
        reg = make_registry()
        ckpt = CheckpointManager(1).take(reg, 1, 0)
        assert CheckpointManager.validate(ckpt)

    def test_corrupt_snapshot_fails_validation(self):
        reg = make_registry()
        mgr = CheckpointManager(1)
        mgr.take(reg, 1, 0)
        mgr.corrupt(1)
        assert not CheckpointManager.validate(mgr._ring[0])

    def test_restore_roundtrip(self):
        reg = make_registry()
        ckpt = CheckpointManager(1).take(reg, 1, seen_rows=10)
        reg.store("op").put("count", 999)
        reg.store("late")  # registered after the snapshot: must be cleared
        reg.store("late").put("junk", [1, 2, 3])
        reg.restore(ckpt.snapshot)
        assert reg.store("op").get("count") == 10
        assert reg.store("late").get("junk") is None
