"""Unit tests for the columnar bag relation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import ColumnType, Relation, Schema, relation_from_columns

AB = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])


def make(a=(1, 2, 3), b=(1.0, 2.0, 3.0), mult=None, trials=None) -> Relation:
    return Relation(
        AB,
        {"a": np.array(a, dtype=np.int64), "b": np.array(b, dtype=np.float64)},
        None if mult is None else np.array(mult, dtype=np.float64),
        trials,
    )


class TestConstruction:
    def test_default_multiplicity_is_one(self):
        r = make()
        assert list(r.mult) == [1.0, 1.0, 1.0]

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError, match="missing data"):
            Relation(AB, {"a": np.array([1])})

    def test_ragged_columns_raise(self):
        with pytest.raises(SchemaError):
            Relation(AB, {"a": np.array([1, 2]), "b": np.array([1.0])})

    def test_wrong_mult_length_raises(self):
        with pytest.raises(SchemaError):
            make(mult=[1.0])

    def test_wrong_trials_length_raises(self):
        with pytest.raises(SchemaError):
            make(trials=np.ones((2, 4)))

    def test_empty(self):
        r = Relation.empty(AB)
        assert len(r) == 0
        assert r.trial_mults is None

    def test_empty_with_trials(self):
        r = Relation.empty(AB, num_trials=5)
        assert r.num_trials == 5

    def test_from_rows(self):
        r = Relation.from_rows(AB, [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}])
        assert list(r.column("a")) == [1, 3]

    def test_from_rows_empty(self):
        r = Relation.from_rows(AB, [])
        assert len(r) == 0

    def test_from_rows_validates(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(AB, [{"a": "nope", "b": 1.0}], validate=True)

    def test_relation_from_columns_helper(self):
        r = relation_from_columns(AB, a=[1], b=[2.0])
        assert r.row(0) == {"a": 1, "b": 2.0}


class TestAccess:
    def test_len(self):
        assert len(make()) == 3

    def test_column_missing_raises(self):
        with pytest.raises(SchemaError):
            make().column("z")

    def test_row(self):
        assert make().row(1) == {"a": 2, "b": 2.0}

    def test_iter_rows(self):
        assert len(list(make().iter_rows())) == 3

    def test_total_multiplicity(self):
        assert make(mult=[0.5, 1.5, 2.0]).total_multiplicity() == 4.0

    def test_num_trials_zero_without_matrix(self):
        assert make().num_trials == 0


class TestTransforms:
    def test_filter(self):
        r = make().filter(np.array([True, False, True]))
        assert list(r.column("a")) == [1, 3]

    def test_filter_keeps_mult(self):
        r = make(mult=[1.0, 2.0, 3.0]).filter(np.array([False, True, True]))
        assert list(r.mult) == [2.0, 3.0]

    def test_filter_slices_trials(self):
        r = make(trials=np.arange(12.0).reshape(3, 4))
        out = r.filter(np.array([True, False, True]))
        assert out.trial_mults.shape == (2, 4)

    def test_take_with_repetition(self):
        r = make().take(np.array([2, 2, 0]))
        assert list(r.column("a")) == [3, 3, 1]

    def test_scale_scalar(self):
        r = make().scale(2.5)
        assert list(r.mult) == [2.5, 2.5, 2.5]

    def test_scale_scales_trials(self):
        r = make(trials=np.ones((3, 2))).scale(3.0)
        assert r.trial_mults[0, 0] == 3.0

    def test_scale_vector(self):
        r = make().scale(np.array([1.0, 2.0, 3.0]))
        assert list(r.mult) == [1.0, 2.0, 3.0]

    def test_project(self):
        r = make().project(["b"])
        assert r.schema.names == ["b"]

    def test_rename(self):
        r = make().rename({"a": "z"})
        assert "z" in r.schema
        assert list(r.column("z")) == [1, 2, 3]

    def test_with_column(self):
        r = make().with_column("c", ColumnType.FLOAT, np.array([9.0, 9.0, 9.0]))
        assert r.schema.names == ["a", "b", "c"]

    def test_concat(self):
        r = make().concat(make())
        assert len(r) == 6

    def test_concat_schema_mismatch(self):
        other = Schema([("a", ColumnType.INT), ("c", ColumnType.FLOAT)])
        r2 = relation_from_columns(other, a=[1], c=[1.0])
        with pytest.raises(SchemaError):
            make().concat(r2)

    def test_concat_empty_short_circuits(self):
        r = make()
        assert make().concat(Relation.empty(AB)) is r or True  # no error
        assert len(Relation.empty(AB).concat(r)) == 3

    def test_concat_pads_missing_trials(self):
        with_trials = make(trials=np.full((3, 2), 5.0))
        without = make(mult=[2.0, 2.0, 2.0])
        out = with_trials.concat(without)
        # The side without trials uses its multiplicity in every trial.
        assert out.trial_mults[3, 0] == 2.0

    def test_concat_trial_width_mismatch(self):
        a = make(trials=np.ones((3, 2)))
        b = make(trials=np.ones((3, 3)))
        with pytest.raises(SchemaError):
            a.concat(b)


class TestComparison:
    def test_to_multiset_merges_duplicates(self):
        r = make(a=(1, 1, 2), b=(1.0, 1.0, 2.0))
        ms = r.to_multiset()
        assert ms[(1, 1.0)] == 2.0

    def test_to_multiset_drops_zero_mult(self):
        r = make(mult=[0.0, 1.0, 1.0])
        assert (1, 1.0) not in r.to_multiset()

    def test_bag_equal_ignores_row_order(self):
        a = make(a=(1, 2, 3))
        b = a.take(np.array([2, 0, 1]))
        assert a.bag_equal(b)

    def test_bag_equal_respects_multiplicity(self):
        a = make(mult=[1.0, 1.0, 1.0])
        b = make(mult=[2.0, 1.0, 1.0])
        assert not a.bag_equal(b)

    def test_bag_equal_rounding(self):
        a = make(b=(1.0000001, 2.0, 3.0))
        b = make(b=(1.0, 2.0, 3.0))
        assert a.bag_equal(b, ndigits=4)

    def test_sort_rows(self):
        r = make(a=(3, 1, 2))
        assert [row["a"] for row in r.sort_rows(["a"])] == [1, 2, 3]

    def test_key_tuples(self):
        assert make().key_tuples(["a"]) == [(1,), (2,), (3,)]

    def test_key_tuples_empty_keys(self):
        assert make().key_tuples([]) == [(), (), ()]

    def test_estimated_bytes_grows_with_trials(self):
        plain = make()
        with_trials = make(trials=np.ones((3, 10)))
        assert with_trials.estimated_bytes() > plain.estimated_bytes()

    def test_repr(self):
        assert "n=3" in repr(make())
