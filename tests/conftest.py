"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational import (
    Catalog,
    ColumnType,
    Relation,
    Schema,
    relation_from_columns,
)
from repro.workloads import generate_conviva, generate_tpch

KX_SCHEMA = Schema(
    [("k", ColumnType.INT), ("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT)]
)

DIM_SCHEMA = Schema([("k", ColumnType.INT), ("label", ColumnType.STRING)])


@pytest.fixture
def kx_relation() -> Relation:
    """A deterministic 12-row relation over (k, x, y)."""
    return relation_from_columns(
        KX_SCHEMA,
        k=[0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3],
        x=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
        y=[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0],
    )


@pytest.fixture
def dim_relation() -> Relation:
    return relation_from_columns(
        DIM_SCHEMA, k=[0, 1, 2, 3], label=["a", "b", "c", "d"]
    )


@pytest.fixture
def kx_catalog(kx_relation, dim_relation) -> Catalog:
    return Catalog({"t": kx_relation, "dim": dim_relation})


def random_kx(n: int = 2000, seed: int = 0, groups: int = 8) -> Relation:
    """A random relation for statistical/e2e tests."""
    rng = np.random.default_rng(seed)
    return relation_from_columns(
        KX_SCHEMA,
        k=rng.integers(0, groups, n),
        x=rng.gamma(4.0, 5.0, n),
        y=rng.normal(100.0, 20.0, n),
    )


@pytest.fixture(scope="session")
def tpch_small():
    return generate_tpch(scale=0.15, seed=7)


@pytest.fixture(scope="session")
def conviva_small():
    return generate_conviva(scale=0.15, seed=7)


def sig_round(value, sig: int = 8):
    """Round floats to ``sig`` significant digits (magnitude-aware)."""
    import math

    if isinstance(value, float) or str(type(value)).find("float") >= 0:
        f = float(value)
        if f == 0 or math.isnan(f) or math.isinf(f):
            return f
        return round(f, sig - 1 - int(math.floor(math.log10(abs(f)))))
    return value


def bags_close(a, b, sig: int = 8) -> bool:
    """Bag equality with relative (significant-digit) float comparison."""

    def norm(rel):
        out = {}
        for row, mult in zip(rel.iter_rows(), rel.mult):
            key = tuple(sig_round(row[c], sig) for c in rel.schema.names)
            out[key] = round(out.get(key, 0.0) + float(mult), 6)
        return {k: v for k, v in out.items() if v != 0}

    return norm(a) == norm(b)
