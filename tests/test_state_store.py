"""Tests for the state-store layer: stores, registry, checkpoint/restore."""

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.relational import Catalog, avg, col, count, scan, sum_
from repro.relational.relation import relation_from_columns
from repro.relational.schema import ColumnType, Schema
from repro.state import InMemoryStateStore, StateRegistry, estimate_nbytes
from repro.storage import encode_relation, sidecar_nbytes
from tests.conftest import KX_SCHEMA, random_kx


class TestEstimateNbytes:
    def test_none_is_free(self):
        assert estimate_nbytes(None) == 0

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros(10, dtype=np.float64)
        assert estimate_nbytes(arr) == 80

    def test_defers_to_estimated_bytes(self):
        class Sized:
            def estimated_bytes(self):
                return 12345

        assert estimate_nbytes(Sized()) == 12345

    def test_relation_footprint(self):
        rel = random_kx(100, seed=1)
        assert estimate_nbytes(rel) == rel.estimated_bytes()

    def test_containers_recursive(self):
        assert estimate_nbytes({"a": 1.0}) > estimate_nbytes({})
        assert estimate_nbytes([1, 2, 3]) > estimate_nbytes([])
        assert estimate_nbytes({1, 2}) > estimate_nbytes(set())

    def test_nested_container_estimates_pinned(self):
        """Regression: dict estimates must account for the *keys* too (a
        tuple group key or long string key is real state), and set members
        get the same 16-byte slot overhead as dict slots. Pinned so the
        Figure 9(b)/10(c) state-size accounting cannot silently shift."""
        assert estimate_nbytes("a") == 50  # 49 + len
        assert estimate_nbytes({"a": 1.0}) == 64 + 16 + 50 + 8
        assert estimate_nbytes({1, 2}) == 64 + 2 * (16 + 8)
        assert estimate_nbytes(("k", 1)) == 56 + (8 + 50) + (8 + 8)
        assert estimate_nbytes([1.0, 2.0]) == 56 + 2 * (8 + 8)
        inner = {("k", 1): [1.0, 2.0]}
        assert estimate_nbytes(inner) == 64 + 16 + 130 + 88
        assert estimate_nbytes({"groups": inner}) == 64 + 16 + (49 + 6) + 298

    def test_dict_keys_are_not_free(self):
        short = {"k": 1.0}
        long = {"k" * 100: 1.0}
        assert estimate_nbytes(long) - estimate_nbytes(short) == 99


_CAT_SCHEMA = Schema([("cat", ColumnType.STRING), ("x", ColumnType.FLOAT)])


def _encoded_cat(n: int = 40) -> "object":
    rel = relation_from_columns(
        _CAT_SCHEMA,
        cat=[f"c{i % 4}" for i in range(n)],
        x=[float(i) for i in range(n)],
    )
    return encode_relation(rel)


class TestSidecarAccounting:
    """Regression: dictionary pages and mask buffers in the footprint.

    The original ``estimate_nbytes`` deferred to ``Relation.estimated_bytes``
    alone, which (deliberately — Figure 9(b) pins it) knows nothing about
    the encoded-column sidecars, so dictionary pages were invisible; and a
    naive fix would count a shared page once per slice holding it.
    """

    def test_encoded_relation_counts_sidecars(self):
        rel = _encoded_cat()
        assert estimate_nbytes(rel) == rel.estimated_bytes() + sidecar_nbytes(
            rel, set()
        )
        assert estimate_nbytes(rel) > rel.estimated_bytes()

    def test_plain_relation_unchanged(self):
        rel = random_kx(100, seed=1)
        assert estimate_nbytes(rel) == rel.estimated_bytes()

    def test_shared_page_counted_once_within_one_entry(self):
        rel = _encoded_cat()
        a, b = rel.slice(0, 20), rel.slice(20, 40)
        page = rel.encodings["cat"].page
        assert a.encodings["cat"].page is page  # slices alias the page
        together = estimate_nbytes([a, b])
        separate = estimate_nbytes([a]) + estimate_nbytes([b])
        # The list header is double-counted in `separate`; beyond that the
        # only difference must be the one deduplicated dictionary page.
        assert separate - together == 56 + page.estimated_bytes()

    def test_shared_page_counted_once_across_entries(self):
        rel = _encoded_cat()
        store = InMemoryStateStore()
        store.put("nd", rel.slice(0, 20))
        store.put("pending", rel.slice(20, 40))
        page_bytes = rel.encodings["cat"].page.estimated_bytes()
        per_entry = store.entry_bytes()
        assert per_entry["nd"] - per_entry["pending"] == page_bytes
        assert store.estimated_bytes() == estimate_nbytes(
            [store.get("nd"), store.get("pending")]
        ) - 56 - 2 * 8

    def test_null_mask_buffer_is_counted(self):
        rel = relation_from_columns(
            _CAT_SCHEMA,
            cat=["a", None, "b", None],
            x=[1.0, 2.0, 3.0, 4.0],
        )
        enc = encode_relation(rel).encodings["cat"]
        assert enc.null_mask is not None
        assert (
            enc.estimated_bytes(set())
            == enc.codes.nbytes + enc.null_mask.nbytes + enc.page.estimated_bytes()
        )


class TestInMemoryStateStore:
    def test_put_get_delete(self):
        store = InMemoryStateStore()
        store.put("nd", [1, 2])
        assert store.get("nd") == [1, 2]
        assert "nd" in store
        store.delete("nd")
        assert store.get("nd") is None
        assert "nd" not in store

    def test_entry_bytes_per_key(self):
        store = InMemoryStateStore()
        store.put("a", np.zeros(4))
        store.put("b", None)
        assert store.entry_bytes() == {"a": 32, "b": 0}
        assert store.estimated_bytes() == 32

    def test_checkpoint_is_isolated_from_later_mutation(self):
        store = InMemoryStateStore()
        store.put("nd", [1])
        snap = store.checkpoint()
        store.get("nd").append(2)
        store.put("extra", "x")
        store.restore(snap)
        assert store.get("nd") == [1]
        assert "extra" not in store

    def test_restore_is_repeatable(self):
        store = InMemoryStateStore()
        store.put("nd", {"k": 1})
        snap = store.checkpoint()
        store.restore(snap)
        store.get("nd")["k"] = 99
        store.restore(snap)
        assert store.get("nd") == {"k": 1}

    def test_static_entries_checkpoint_by_reference(self):
        big = random_kx(50, seed=2)
        store = InMemoryStateStore()
        store.put("side", big, static=True)
        snap = store.checkpoint()
        store.restore(snap)
        assert store.get("side") is big
        # ... but static entries still count toward the footprint.
        assert store.estimated_bytes() >= big.estimated_bytes()


class TestStateRegistry:
    def test_store_get_or_create(self):
        reg = StateRegistry()
        a = reg.store("select:1")
        assert reg.store("select:1") is a
        assert reg.get("select:1") is a
        assert reg.get("missing") is None

    def test_adopt_dedups_by_identity(self):
        reg = StateRegistry()
        store = InMemoryStateStore()
        assert reg.adopt("scan:t", store) == "scan:t"
        assert reg.adopt("scan:t", store) == "scan:t"
        assert len(reg) == 1

    def test_adopt_suffixes_namespace_collisions(self):
        reg = StateRegistry()
        first, second = InMemoryStateStore(), InMemoryStateStore()
        assert reg.adopt("scan:t", first) == "scan:t"
        assert reg.adopt("scan:t", second) == "scan:t#2"
        assert reg.get("scan:t") is first
        assert reg.get("scan:t#2") is second

    def test_bytes_by_namespace(self):
        reg = StateRegistry()
        reg.store("a").put("x", np.zeros(4))
        reg.store("b").put("y", None)
        assert reg.bytes_by_namespace() == {"a": 32, "b": 0}
        assert reg.total_bytes() == 32

    def test_checkpoint_restore_round_trip(self):
        reg = StateRegistry()
        reg.store("a").put("x", [1])
        snap = reg.checkpoint()
        reg.store("a").put("x", [1, 2])
        reg.store("late").put("y", 3)  # registered after the snapshot
        reg.restore(snap)
        assert reg.store("a").get("x") == [1]
        assert reg.store("late").get("y") is None  # cleared


class TestEngineStateAccounting:
    """Every stateful operator must report its footprint through its store."""

    def make_catalog(self):
        return Catalog({"t": random_kx(1500, seed=0, groups=6)})

    def nested_plan(self):
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        return (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select(col("x") > col("ax"))
            .aggregate([], [avg("y", "ay"), count("n")])
        )

    def test_filter_join_aggregate_all_report(self):
        engine = OnlineQueryEngine(
            self.make_catalog(), "t", OnlineConfig(num_trials=10, seed=5)
        )
        engine.run_to_completion(self.nested_plan(), 6)
        bm = engine.metrics.batches[-1]
        assert bm.state_bytes_matching("select:") > 0
        assert bm.state_bytes_matching("join:") > 0
        assert bm.state_bytes_matching("aggregate:") > 0

    def test_flat_aggregate_reports(self):
        engine = OnlineQueryEngine(
            self.make_catalog(), "t", OnlineConfig(num_trials=10, seed=5)
        )
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [sum_("y", "sy")])
        engine.run_to_completion(plan, 4)
        assert engine.metrics.batches[-1].state_bytes_matching("aggregate:") > 0

    def test_operator_state_items_introspection(self):
        from repro.core.compiler import compile_online
        from repro.core.operators import UncertainFilterOp, iter_ops

        catalog = self.make_catalog()
        compiled = compile_online(self.nested_plan(), catalog, "t")
        ops = [
            op
            for unit in compiled.units
            if hasattr(unit, "root_op")
            for op in iter_ops(unit.root_op)
        ]
        filters = [op for op in ops if isinstance(op, UncertainFilterOp)]
        assert filters
        assert {k for k, _ in filters[0].state_items()} == {"nd", "sentinels"}


class TestEntryBytesMemo:
    """``entry_bytes`` memoizes on the mutation counter: the obs layer
    sizes every store twice per batch (per-entry gauges + Fig. 9(b)
    accounting), and without the memo each call re-walks every entry."""

    def test_repeat_calls_do_not_resample(self, monkeypatch):
        import repro.state.store as store_mod

        store = InMemoryStateStore()
        store.put("a", np.zeros(16))
        store.put("b", {"k": 1.0})
        calls = {"n": 0}
        real = store_mod.estimate_nbytes

        def counting(value, seen=None):
            calls["n"] += 1
            return real(value, seen)

        monkeypatch.setattr(store_mod, "estimate_nbytes", counting)
        first = store.entry_bytes()
        sampled = calls["n"]
        assert sampled > 0
        assert store.entry_bytes() is first
        assert store.estimated_bytes() == sum(first.values())
        assert calls["n"] == sampled  # memo hit: zero extra sampling

    def test_put_and_delete_invalidate(self):
        store = InMemoryStateStore()
        store.put("a", np.zeros(8))
        assert store.entry_bytes() == {"a": 64}
        store.put("b", np.zeros(4, dtype=np.float64))
        assert store.entry_bytes() == {"a": 64, "b": 32}
        store.delete("a")
        assert store.entry_bytes() == {"b": 32}

    def test_restore_invalidates_despite_counter(self):
        # restore() swaps the entry dict without bumping ``writes``; the
        # memo must not survive it.
        store = InMemoryStateStore()
        store.put("a", np.zeros(8))
        snap = store.checkpoint()
        store.put("a", np.zeros(1000))
        writes_at_snapshot_use = store.writes
        big = store.entry_bytes()["a"]
        store.restore(snap)
        store.writes = writes_at_snapshot_use  # worst case: counter unchanged
        assert store.entry_bytes()["a"] < big

    def test_clear_invalidates(self):
        store = InMemoryStateStore()
        store.put("a", np.zeros(8))
        assert store.entry_bytes()
        store.clear()
        assert store.entry_bytes() == {}
