"""Tests for the static uncertainty-propagation analysis (Section 4.1)."""

import pytest

from repro.core.uncertainty import analyze
from repro.errors import UnsupportedQueryError
from repro.relational import (
    ColumnType,
    Schema,
    avg,
    col,
    count,
    max_,
    scan,
    sum_,
)

T = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT)])
D = Schema([("k", ColumnType.INT), ("label", ColumnType.STRING)])


def tags_of(plan, streamed={"t"}):
    return analyze(plan, set(streamed))[plan.node_id]


class TestLeaves:
    def test_streamed_scan(self):
        t = tags_of(scan("t", T))
        assert t.tuple_uncertain and t.sample_weighted and t.raw_stream
        assert not t.uncertain_cols

    def test_static_scan(self):
        t = tags_of(scan("d", D))
        assert t.deterministic and not t.sample_weighted


class TestSelect:
    def test_preserves_attribute_certainty(self):
        t = tags_of(scan("t", T).select(col("x") > 0))
        assert not t.uncertain_cols and t.tuple_uncertain

    def test_static_select_deterministic(self):
        t = tags_of(scan("d", D).select(col("k") > 0))
        assert t.deterministic

    def test_predicate_on_uncertain_column_adds_tuple_uncertainty(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = scan("d", D).join(inner, keys=[]).select(col("ax") > col("k"))
        t = tags_of(plan)
        assert t.tuple_uncertain


class TestProjectRename:
    def test_project_over_uncertain_col(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = inner.project([("doubled", col("ax") * 2)])
        assert tags_of(plan).uncertain_cols == {"doubled"}

    def test_project_deterministic_expr(self):
        plan = scan("t", T).project([("z", col("x") + 1)])
        assert not tags_of(plan).uncertain_cols

    def test_rename_maps_uncertain_cols(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = inner.rename({"ax": "mean_x"})
        assert tags_of(plan).uncertain_cols == {"mean_x"}


class TestAggregate:
    def test_agg_over_stream_is_uncertain_attr(self):
        plan = scan("t", T).aggregate(["k"], [avg("x", "ax"), count("n")])
        t = tags_of(plan)
        assert t.uncertain_cols == {"ax", "n"}
        assert not t.sample_weighted  # group rows are not a sample
        assert not t.raw_stream

    def test_agg_over_static_is_deterministic(self):
        plan = scan("d", D).aggregate(["k"], [count("n")])
        assert tags_of(plan).deterministic

    def test_group_rows_inherit_tuple_uncertainty(self):
        plan = scan("t", T).aggregate(["k"], [count("n")])
        assert tags_of(plan).tuple_uncertain

    def test_uncertain_group_key_rejected(self):
        inner = scan("t", T).aggregate(["k"], [avg("x", "ax")])
        plan = inner.aggregate(["ax"], [count("n")])
        with pytest.raises(UnsupportedQueryError, match="group-by key"):
            tags_of(plan)

    def test_minmax_rejected_under_sampling(self):
        plan = scan("t", T).aggregate([], [max_("x", "mx")])
        with pytest.raises(UnsupportedQueryError, match="Hadamard"):
            tags_of(plan)

    def test_minmax_allowed_on_static(self):
        plan = scan("d", D).aggregate([], [max_("k", "mx")])
        assert tags_of(plan).deterministic


class TestJoin:
    def test_static_join_preserves(self):
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        t = tags_of(plan)
        assert t.tuple_uncertain and t.raw_stream and not t.uncertain_cols

    def test_uncertain_cols_flow_through_join(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = scan("t", T).join(inner, keys=[])
        assert tags_of(plan).uncertain_cols == {"ax"}

    def test_uncertain_join_key_rejected(self):
        inner = scan("t", T).aggregate(["k"], [avg("x", "ax")])
        other = scan("t", T).rename({"x": "ax2", "y": "yy", "k": "kk"})
        plan = other.join(inner, keys=[("ax2", "ax")])
        with pytest.raises(UnsupportedQueryError, match="join key"):
            tags_of(plan)

    def test_stream_stream_join_rejected(self):
        left = scan("t", T)
        right = scan("t", T).rename({"k": "k2", "x": "x2", "y": "y2"})
        with pytest.raises(UnsupportedQueryError, match="stream"):
            tags_of(left.join(right, keys=[]))

    def test_stream_joined_with_its_aggregate_ok(self):
        inner = scan("t", T).aggregate(["k"], [avg("x", "ax")]).rename({"k": "k2"})
        plan = scan("t", T).join(inner, keys=[("k", "k2")])
        assert tags_of(plan).uncertain_cols == {"ax"}


class TestUnionDistinct:
    def test_union_ors_uncertainty(self):
        plan = scan("t", T).union(scan("t", T))
        t = tags_of(plan)
        assert t.tuple_uncertain and t.raw_stream

    def test_union_static_and_stream(self):
        plan = scan("t", T).union(scan("t2", T))
        t = tags_of(plan, streamed={"t"})
        assert t.tuple_uncertain

    def test_distinct_over_stream(self):
        plan = scan("t", T).distinct(["k"])
        t = tags_of(plan)
        assert t.tuple_uncertain and not t.uncertain_cols

    def test_distinct_over_uncertain_col_rejected(self):
        inner = scan("t", T).aggregate(["k"], [avg("x", "ax")])
        with pytest.raises(UnsupportedQueryError, match="distinct"):
            tags_of(inner.distinct(["ax"]))


class TestFullQueryShapes:
    def test_sbi_tags(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        outer_sel = scan("t", T).join(inner, keys=[]).select(col("x") > col("ax"))
        plan = outer_sel.aggregate([], [avg("y", "ay")])
        tags = analyze(plan, {"t"})
        assert tags[outer_sel.node_id].tuple_uncertain
        assert tags[plan.node_id].uncertain_cols == {"ay"}

    def test_every_node_tagged(self):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = scan("t", T).join(inner, keys=[]).select(col("x") > col("ax"))
        tags = analyze(plan, {"t"})
        assert {n.node_id for n in plan.walk()} <= set(tags)
