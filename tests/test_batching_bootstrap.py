"""Tests for mini-batch partitioning and the Poissonized bootstrap."""

import numpy as np
import pytest

from repro.batching import BatchInfo, Partitioner, num_batches_for, shuffle_relation
from repro.bootstrap import bootstrap_ci, bootstrap_stdev, trial_multiplicities
from repro.errors import ReproError
from tests.conftest import random_kx


class TestBatchInfo:
    def test_scale(self):
        info = BatchInfo(batch_no=2, delta_rows=10, seen_rows=20, total_rows=100)
        assert info.scale == 5.0

    def test_scale_empty(self):
        assert BatchInfo(1, 0, 0, 100).scale == 1.0

    def test_fraction_seen(self):
        assert BatchInfo(1, 10, 25, 100).fraction_seen == 0.25


class TestPartitioner:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            Partitioner(mode="bogus")

    def test_partitions_cover_everything_once(self):
        parts = Partitioner(seed=1).partition_indices(100, 7)
        merged = np.sort(np.concatenate(parts))
        assert list(merged) == list(range(100))

    def test_partition_counts(self):
        parts = Partitioner(seed=1).partition_indices(100, 7)
        assert len(parts) == 7
        assert sum(len(p) for p in parts) == 100

    def test_deterministic_given_seed(self):
        a = Partitioner(seed=3).partition_indices(50, 5)
        b = Partitioner(seed=3).partition_indices(50, 5)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = Partitioner(seed=3).partition_indices(500, 5)
        b = Partitioner(seed=4).partition_indices(500, 5)
        assert any((x != y).any() for x, y in zip(a, b))

    def test_blocks_mode_covers_everything(self):
        parts = Partitioner(mode="blocks", seed=1, block_rows=16).partition_indices(
            200, 4
        )
        merged = np.sort(np.concatenate(parts))
        assert list(merged) == list(range(200))

    def test_blocks_mode_keeps_contiguity(self):
        parts = Partitioner(mode="blocks", seed=1, block_rows=10).partition_indices(
            100, 2
        )
        # Every index shares its block (i // 10) with 9 companions somewhere
        # in the same partition.
        for part in parts:
            blocks, counts = np.unique(part // 10, return_counts=True)
            assert set(counts) == {10}

    def test_more_batches_than_rows(self):
        parts = Partitioner(seed=1).partition_indices(3, 10)
        assert sum(len(p) for p in parts) == 3

    def test_zero_batches_rejected(self):
        with pytest.raises(ReproError):
            Partitioner().partition_indices(10, 0)

    def test_partition_materializes_relations(self):
        rel = random_kx(100, seed=2)
        parts = Partitioner(seed=1).partition(rel, 4)
        assert sum(len(p) for p in parts) == 100

    def test_shuffle_is_random_but_complete(self):
        rel = random_kx(50, seed=2)
        shuffled = shuffle_relation(rel, seed=9)
        assert shuffled.bag_equal(rel)
        assert list(shuffled.column("x")) != list(rel.column("x"))


class TestNumBatchesFor:
    def test_exact_division(self):
        assert num_batches_for(100, 25) == 4

    def test_rounds_up(self):
        assert num_batches_for(101, 25) == 5

    def test_at_least_one(self):
        assert num_batches_for(0, 25) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            num_batches_for(100, 0)


class TestPoissonBootstrap:
    def test_shape(self):
        m = trial_multiplicities(50, 30, seed=0, table="t", batch_no=1)
        assert m.shape == (50, 30)

    def test_deterministic_per_key(self):
        a = trial_multiplicities(50, 30, seed=0, table="t", batch_no=1)
        b = trial_multiplicities(50, 30, seed=0, table="t", batch_no=1)
        assert (a == b).all()

    def test_differs_across_batches(self):
        a = trial_multiplicities(50, 30, seed=0, table="t", batch_no=1)
        b = trial_multiplicities(50, 30, seed=0, table="t", batch_no=2)
        assert (a != b).any()

    def test_differs_across_tables(self):
        a = trial_multiplicities(50, 30, seed=0, table="t", batch_no=1)
        b = trial_multiplicities(50, 30, seed=0, table="u", batch_no=1)
        assert (a != b).any()

    def test_poisson_mean_one(self):
        m = trial_multiplicities(5000, 20, seed=0, table="t", batch_no=1)
        assert m.mean() == pytest.approx(1.0, abs=0.05)

    def test_nonnegative_integers(self):
        m = trial_multiplicities(100, 10, seed=0, table="t", batch_no=1)
        assert (m >= 0).all()
        assert (m == np.round(m)).all()

    def test_stdev_estimator(self):
        assert bootstrap_stdev(np.array([1.0, 3.0])) == pytest.approx(1.0)

    def test_stdev_nan_safe(self):
        assert bootstrap_stdev(np.array([np.nan, 2.0, 4.0])) == pytest.approx(1.0)

    def test_ci(self):
        lo, hi = bootstrap_ci(np.arange(101.0), level=0.90)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(95.0)

    def test_bootstrap_stderr_matches_theory(self):
        """Poissonized bootstrap of a mean approximates σ/√n."""
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 4.0, 1000)
        trials = trial_multiplicities(1000, 200, seed=1, table="t", batch_no=1)
        means = (data[:, None] * trials).sum(0) / trials.sum(0)
        assert bootstrap_stdev(means) == pytest.approx(4.0 / np.sqrt(1000), rel=0.3)
