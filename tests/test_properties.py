"""Property-based tests (hypothesis) on core invariants.

The headline property: for randomly generated datasets and randomly
parameterized queries from the supported class, the final online result
equals the batch evaluator's answer — i.e., Theorem 1 holds under fuzzing,
not just for hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import run_batch
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.blocks import BlockOutput, GroupValue, RuntimeContext
from repro.core.classify import evaluate_side
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.kernels.codec import factorize_keys
from repro.kernels.holistic import weighted_quantile, weighted_quantile_trials
from repro.kernels.joins import vectorized_join
from repro.relational import (
    Catalog,
    ColumnType,
    Relation,
    Schema,
    avg,
    col,
    count,
    evaluate,
    relation_from_columns,
    scan,
    stddev,
    sum_,
)
from repro.relational.aggregates import median
from repro.relational.evaluator import aggregate_relation, join_relations
from repro.relational.expressions import Col
from tests.conftest import KX_SCHEMA
from tests.test_kernels import (
    assert_partials_identical,
    assert_rel_identical,
    keys_equal,
    reference_codes,
)

fuzz = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def dataset(seed, n, groups):
    rng = np.random.default_rng(seed)
    return relation_from_columns(
        KX_SCHEMA,
        k=rng.integers(0, groups, n),
        x=np.round(rng.gamma(3.0, 4.0, n), 3),
        y=np.round(rng.normal(50.0, 15.0, n), 3),
    )


class TestBagAlgebraLaws:
    @fuzz
    @given(st.integers(0, 1000), st.integers(20, 300))
    def test_select_split_equals_conjunction(self, seed, n):
        rel = dataset(seed, n, 5)
        cat = Catalog({"t": rel})
        both = scan("t", KX_SCHEMA).select((col("x") > 8.0) & (col("y") > 45.0))
        split = scan("t", KX_SCHEMA).select(col("x") > 8.0).select(col("y") > 45.0)
        assert evaluate(both, cat).bag_equal(evaluate(split, cat))

    @fuzz
    @given(st.integers(0, 1000), st.integers(20, 200))
    def test_join_commutes_up_to_schema(self, seed, n):
        left = dataset(seed, n, 4)
        right = relation_from_columns(
            KX_SCHEMA.rename({"x": "u", "y": "v"}),
            k=[0, 1, 2, 3],
            u=[1.0, 2.0, 3.0, 4.0],
            v=[9.0, 8.0, 7.0, 6.0],
        )
        ab = join_relations(left, right, [("k", "k")])
        ba = join_relations(right, left, [("k", "k")])
        assert ab.project(["k", "x", "u"]).bag_equal(ba.project(["k", "x", "u"]))

    @fuzz
    @given(st.integers(0, 1000), st.integers(20, 200))
    def test_union_total_multiplicity_adds(self, seed, n):
        rel = dataset(seed, n, 4)
        assert rel.concat(rel).total_multiplicity() == pytest.approx(
            2 * rel.total_multiplicity()
        )

    @fuzz
    @given(st.integers(0, 1000), st.integers(20, 300), st.floats(0.5, 8.0))
    def test_aggregate_scaling_linearity(self, seed, n, factor):
        """SUM/COUNT scale linearly with multiplicities; AVG is invariant."""
        rel = dataset(seed, n, 4)
        specs = [sum_("x", "sx"), count("n"), avg("x", "ax")]
        base = aggregate_relation(rel, ["k"], specs)
        scaled = aggregate_relation(rel.scale(factor), ["k"], specs)
        b = {r["k"]: r for r in base.iter_rows()}
        s = {r["k"]: r for r in scaled.iter_rows()}
        for k in b:
            assert s[k]["sx"] == pytest.approx(factor * b[k]["sx"])
            assert s[k]["n"] == pytest.approx(factor * b[k]["n"])
            assert s[k]["ax"] == pytest.approx(b[k]["ax"])

    @fuzz
    @given(st.integers(0, 1000), st.integers(30, 300))
    def test_group_sums_partition_total(self, seed, n):
        rel = dataset(seed, n, 6)
        grouped = aggregate_relation(rel, ["k"], [sum_("x", "sx")])
        total = aggregate_relation(rel, [], [sum_("x", "sx")])
        assert grouped.column("sx").sum() == pytest.approx(total.row(0)["sx"])


class TestOnlineEqualsBatchFuzzed:
    def run_online(self, plan, cat, seed, batches):
        eng = OnlineQueryEngine(
            cat, "t", OnlineConfig(num_trials=15, seed=seed)
        )
        return eng.run_to_completion(plan, batches).to_relation()

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(100, 600),
        st.integers(2, 8),
        st.integers(2, 8),
    )
    def test_flat_grouped(self, seed, n, groups, batches):
        cat = Catalog({"t": dataset(seed, n, groups)})
        plan = (
            scan("t", KX_SCHEMA)
            .select(col("x") > 6.0)
            .aggregate(["k"], [sum_("y", "sy"), count("n"), stddev("x", "sd")])
        )
        exact = run_batch(plan, cat).relation
        assert self.run_online(plan, cat, seed, batches).bag_equal(exact, 3)

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(200, 800),
        st.floats(0.5, 1.5),
        st.integers(3, 7),
    )
    def test_nested_scalar(self, seed, n, threshold_factor, batches):
        cat = Catalog({"t": dataset(seed, n, 5)})
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select(col("x") > col("ax") * threshold_factor)
            .aggregate([], [avg("y", "ay"), count("n")])
        )
        exact = run_batch(plan, cat).relation
        assert self.run_online(plan, cat, seed, batches).bag_equal(exact, 3)

    @fuzz
    @given(st.integers(0, 10_000), st.integers(200, 800), st.integers(3, 6))
    def test_correlated(self, seed, n, batches):
        cat = Catalog({"t": dataset(seed, n, 5)})
        inner = (
            scan("t", KX_SCHEMA)
            .aggregate(["k"], [avg("x", "ax")])
            .rename({"k": "k2"})
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[("k", "k2")])
            .select(col("x") > col("ax"))
            .aggregate(["k"], [count("n")])
        )
        exact = run_batch(plan, cat).relation
        assert self.run_online(plan, cat, seed, batches).bag_equal(exact, 3)

    @fuzz
    @given(st.integers(0, 10_000), st.integers(200, 700), st.floats(400.0, 1200.0))
    def test_semijoin_threshold(self, seed, n, threshold):
        cat = Catalog({"t": dataset(seed, n, 6)})
        member = (
            scan("t", KX_SCHEMA)
            .aggregate(["k"], [sum_("x", "sx")])
            .select(col("sx") > threshold)
            .project([("k2", col("k"))])
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(member, keys=[("k", "k2")])
            .aggregate(["k"], [count("n")])
        )
        exact = run_batch(plan, cat).relation
        assert self.run_online(plan, cat, seed, 5).bag_equal(exact, 3)


class TestKernelsMatchReferenceFuzzed:
    """Every vectorized kernel equals its row-wise reference on randomized
    inputs, including the degenerate shapes the batch path rarely hits:
    empty relations, single rows, NaN-bearing float keys, object/lineage
    columns, and zero-multiplicity rows."""

    def keyed(self, seed, n, groups, with_nan, zero_mult):
        rng = np.random.default_rng(seed)
        f = np.round(rng.normal(0, 5, n), 2)
        if with_nan and n:
            f[rng.integers(0, n, max(1, n // 7))] = np.nan
        rel = relation_from_columns(
            Schema([("k", ColumnType.INT), ("f", ColumnType.FLOAT)]),
            k=rng.integers(0, groups, n),
            f=f,
        )
        if zero_mult and n:
            mult = rel.mult.copy()
            mult[rng.integers(0, n, max(1, n // 5))] = 0.0
            rel = rel.with_mult(mult, None)
        return rel

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(0, 120),
        st.integers(1, 6),
        st.booleans(),
        st.booleans(),
    )
    def test_codec_matches_dict_reference(self, seed, n, groups, with_nan, zero_mult):
        rel = self.keyed(seed, n, groups, with_nan, zero_mult)
        for names in (["k"], ["f"], ["k", "f"], []):
            kc = factorize_keys(rel, names)
            ref_keys, ref_codes = reference_codes(rel, names)
            assert keys_equal(kc.keys, ref_keys), names
            assert np.array_equal(kc.codes, ref_codes), names

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(0, 100),
        st.integers(0, 25),
        st.integers(1, 8),
        st.booleans(),
    )
    def test_join_matches_reference(self, seed, n_left, n_right, groups, zero_mult):
        rng = np.random.default_rng(seed)
        left = self.keyed(seed, n_left, groups, False, zero_mult)
        right = relation_from_columns(
            Schema([("k2", ColumnType.INT), ("v", ColumnType.FLOAT)]),
            k2=rng.integers(0, groups, n_right),
            v=rng.normal(0, 1, n_right),
        )
        if n_left:
            left = left.with_mult(
                left.mult, rng.poisson(1.0, (n_left, 4)).astype(float)
            )
        assert_rel_identical(
            vectorized_join(left, right, [("k", "k2")]),
            join_relations(left, right, [("k", "k2")]),
        )

    @fuzz
    @given(st.integers(0, 10_000), st.integers(0, 80), st.floats(0.05, 1.0))
    def test_quantile_trials_match_scalar_loop(self, seed, n, q):
        rng = np.random.default_rng(seed)
        v = np.round(rng.normal(0, 10, n), 3)
        tw = rng.poisson(1.0, (n, 7)).astype(float)
        vec = weighted_quantile_trials(v, tw, q)
        ref = np.array([weighted_quantile(v, tw[:, j], q) for j in range(7)])
        assert np.array_equal(vec, ref, equal_nan=True)

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(0, 60),
        st.integers(1, 5),
        st.integers(0, 3),
    )
    def test_lineage_resolution_matches_reference(self, seed, n, keys, unpublished):
        """Object/lineage columns: the batched resolver and the per-row
        reference agree, including rows pending on unpublished groups."""
        rng = np.random.default_rng(seed)
        schema = Schema([("d", ColumnType.FLOAT), ("u", ColumnType.FLOAT)])
        key_ids = rng.integers(0, keys + unpublished, n)
        refs = np.empty(n, dtype=object)
        for i in range(n):
            refs[i] = LineageRef(1, (int(key_ids[i]),), "v")
        rel = Relation(
            schema, {"d": np.round(rng.normal(0, 3, n), 2), "u": refs}
        )
        trials_of = {k: rng.standard_normal(5).round(2) for k in range(keys)}
        sides = []
        for vectorize in (True, False):
            ctx = RuntimeContext(
                Catalog({}), "t", 100, OnlineConfig(num_trials=5, vectorize=vectorize)
            )
            ctx.batch_no = 1
            out = BlockOutput(1, [], ["v"])
            for k in range(keys):
                value = float(10 + k)
                uv = UncertainValue(
                    value,
                    value + trials_of[k],
                    VariationRange(value - 2.0, value + 2.0),
                    LineageRef(1, (k,), "v"),
                )
                out.publish(GroupValue((k,), {"v": uv}, True), is_new=True)
            ctx.blocks[1] = out
            expr = Col("u") * 0.5 + col("d")
            sides.append(evaluate_side(expr, rel, {"u"}, ctx))
        vec, ref = sides
        assert np.array_equal(vec.lo, ref.lo, equal_nan=True)
        assert np.array_equal(vec.hi, ref.hi, equal_nan=True)
        assert np.array_equal(vec.point, ref.point, equal_nan=True)
        assert np.array_equal(
            np.asarray(vec.trial_matrix(5)),
            np.asarray(ref.trial_matrix(5)),
            equal_nan=True,
        )
        assert np.array_equal(vec.pending, ref.pending)
        assert vec.refs == ref.refs


class TestFullRunVectorizeFuzzed:
    """Whole randomized runs: vectorize on/off yield bit-identical partial
    results under both executors (the ND-heavy semijoin + holistic shape)."""

    @fuzz
    @given(
        st.integers(0, 10_000),
        st.integers(150, 500),
        st.integers(2, 5),
        st.sampled_from(["serial", "parallel"]),
    )
    def test_bit_identical_modes(self, seed, n, batches, executor):
        rng = np.random.default_rng(seed)
        cat = Catalog({"t": dataset(seed, n, 5)})
        member = (
            scan("t", KX_SCHEMA)
            .aggregate(["k"], [sum_("x", "sx")])
            .select(col("sx") > float(rng.uniform(100.0, 600.0)))
            .project([("k2", col("k"))])
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(member, keys=[("k", "k2")])
            .aggregate(["k"], [median("y", "my"), count("n")])
        )
        partials = {}
        for vectorize in (True, False):
            eng = OnlineQueryEngine(
                cat,
                "t",
                OnlineConfig(num_trials=9, seed=seed, vectorize=vectorize),
                executor=executor,
            )
            try:
                partials[vectorize] = list(eng.run(plan, batches))
            finally:
                eng.executor.close()
        assert partials[True], "no partial results"
        assert_partials_identical(
            partials[True], partials[False], f"fuzz seed={seed} {executor}"
        )


class TestBootstrapCoverage:
    @fuzz
    @given(st.integers(0, 500))
    def test_confidence_interval_covers_truth_often(self, seed):
        """95% CIs from a 25% sample should usually contain the truth."""
        cat = Catalog({"t": dataset(seed, 1200, 4)})
        plan = scan("t", KX_SCHEMA).aggregate([], [avg("y", "ay")])
        truth = run_batch(plan, cat).relation.row(0)["ay"]
        eng = OnlineQueryEngine(cat, "t", OnlineConfig(num_trials=80, seed=seed))
        first = next(iter(eng.run(plan, num_batches=4)))
        lo, hi = first.rows[0]["ay"].confidence_interval(0.99)
        # With a 99% interval, misses should be very rare across 20 fuzz
        # examples; allow the interval to be sanity-wide instead of exact.
        assert lo < hi
        assert lo - (hi - lo) <= truth <= hi + (hi - lo)


class TestRangeMonitorBatchedParity:
    """``observe_batch`` must publish bit-identical ranges to the per-cell
    ``observe`` loop it replaces — including the awkward inputs: NaN/±inf
    point estimates and zero-variance (or non-finite) bootstrap trials."""

    VALUES = st.one_of(
        st.floats(min_value=-1e6, max_value=1e6),
        st.sampled_from([np.nan, np.inf, -np.inf, 0.0, -0.0, 1e-300]),
    )

    @staticmethod
    def assert_ranges_equal(got, want, where):
        for name in ("lo", "hi"):
            g, w = getattr(got, name), getattr(want, name)
            assert g == w or (np.isnan(g) and np.isnan(w)), (
                f"{where}: {name} {g!r} != {w!r}"
            )

    @fuzz
    @given(st.data())
    def test_observe_batch_matches_observe(self, data):
        from repro.core.ranges import RangeMonitor

        num_groups = data.draw(st.integers(1, 8), label="groups")
        num_trials = data.draw(st.integers(1, 6), label="trials")
        points = np.array(
            [data.draw(self.VALUES) for _ in range(num_groups)], dtype=float
        )
        trials = np.empty((num_groups, num_trials), dtype=float)
        for g in range(num_groups):
            if data.draw(st.booleans(), label=f"const row {g}"):
                trials[g, :] = data.draw(self.VALUES)  # zero variance
            else:
                trials[g, :] = [
                    data.draw(self.VALUES) for _ in range(num_trials)
                ]
        slack = data.draw(st.sampled_from([0.0, 1.0, 2.0]), label="slack")

        batched = RangeMonitor(slack=slack)
        scalar = RangeMonitor(slack=slack)
        keys = [(g,) for g in range(num_groups)]
        got = batched.observe_batch(7, "v", keys, 1, points, trials)
        for g, key in enumerate(keys):
            want = scalar.observe(
                (7, key, "v"), 1, float(points[g]), trials[g]
            )
            self.assert_ranges_equal(got[g], want, f"group {g}")
            # The published (stored) range must agree too.
            self.assert_ranges_equal(
                batched.range_for((7, key, "v")),
                scalar.range_for((7, key, "v")),
                f"stored group {g}",
            )
