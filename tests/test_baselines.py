"""Tests for the batch baseline, HDA, and viewlet rewrites."""

import numpy as np
import pytest

from repro.baselines import (
    HDAExecutor,
    apply_viewlet_rewrites,
    expressions_equal,
    factorize_common_join,
    plans_equal,
    push_aggregate_below_cross_join,
    run_batch,
    run_batch_on_fraction,
)
from repro.relational import (
    Aggregate,
    Catalog,
    ColumnType,
    Join,
    Project,
    Schema,
    avg,
    col,
    count,
    lit,
    relation_from_columns,
    scan,
    sum_,
)
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx


def catalog(n=1200, seed=2):
    dim = relation_from_columns(DIM_SCHEMA, k=list(range(6)), label=list("abcdef"))
    return Catalog({"t": random_kx(n, seed=seed, groups=6), "dim": dim})


FLAT = scan("t", KX_SCHEMA).select(col("x") > 10.0).aggregate(["k"], [sum_("y", "sy")])


def nested_plan():
    inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
    return (
        scan("t", KX_SCHEMA)
        .join(inner, keys=[])
        .select(col("x") > col("ax"))
        .aggregate(["k"], [count("n")])
    )


class TestBatchBaseline:
    def test_run_batch(self):
        out = run_batch(FLAT, catalog())
        assert len(out.relation) == 6
        assert out.wall_seconds > 0
        assert out.stats.rows_processed > 0

    def test_fraction_run_scales(self):
        cat = catalog(n=4000)
        full = run_batch(FLAT, cat).relation
        approx = run_batch_on_fraction(FLAT, cat, "t", fraction=0.5, seed=3).relation
        f = {r["k"]: r["sy"] for r in full.iter_rows()}
        a = {r["k"]: r["sy"] for r in approx.iter_rows()}
        for k in f:
            assert a[k] == pytest.approx(f[k], rel=0.25)

    def test_fraction_one_is_exact(self):
        cat = catalog()
        full = run_batch(FLAT, cat).relation
        approx = run_batch_on_fraction(FLAT, cat, "t", fraction=1.0).relation
        assert approx.bag_equal(full, 4)


class TestHDA:
    def test_flat_final_exact(self):
        cat = catalog()
        final = HDAExecutor(cat, "t", seed=1).run_to_completion(FLAT, 6)
        assert final.relation.bag_equal(run_batch(FLAT, cat).relation, 4)

    def test_nested_final_exact(self):
        cat = catalog()
        final = HDAExecutor(cat, "t", seed=1).run_to_completion(nested_plan(), 6)
        assert final.relation.bag_equal(run_batch(nested_plan(), cat).relation, 4)

    def test_flat_has_no_recomputation(self):
        cat = catalog()
        hda = HDAExecutor(cat, "t", seed=1)
        hda.run_to_completion(FLAT, 6)
        assert all(b.recomputed_tuples == 0 for b in hda.metrics.batches)

    def test_nested_recomputation_grows_linearly(self):
        cat = catalog(n=3000)
        hda = HDAExecutor(cat, "t", seed=1)
        hda.run_to_completion(nested_plan(), 6)
        rec = [b.recomputed_tuples for b in hda.metrics.batches]
        assert rec[-1] > 3 * rec[0]
        assert rec == sorted(rec)

    def test_partial_results_every_batch(self):
        cat = catalog()
        partials = list(HDAExecutor(cat, "t", seed=1).run(FLAT, 5))
        assert [p.batch_no for p in partials] == [1, 2, 3, 4, 5]
        assert partials[-1].is_final

    def test_partial_estimates_are_scaled(self):
        cat = catalog(n=4000)
        partials = list(HDAExecutor(cat, "t", seed=1).run(FLAT, 8))
        full = {r["k"]: r["sy"] for r in partials[-1].relation.iter_rows()}
        first = {r["k"]: r["sy"] for r in partials[0].relation.iter_rows()}
        for k, v in first.items():
            assert v == pytest.approx(full[k], rel=0.5)

    def test_dimension_join(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .aggregate(["label"], [count("n")])
        )
        final = HDAExecutor(cat, "t", seed=1).run_to_completion(plan, 5)
        assert final.relation.bag_equal(run_batch(plan, cat).relation, 4)

    def test_without_viewlet_rewrites(self):
        cat = catalog()
        hda = HDAExecutor(cat, "t", seed=1, use_viewlet_rewrites=False)
        final = hda.run_to_completion(nested_plan(), 5)
        assert final.relation.bag_equal(run_batch(nested_plan(), cat).relation, 4)

    def test_view_state_reported(self):
        cat = catalog()
        hda = HDAExecutor(cat, "t", seed=1)
        hda.run_to_completion(FLAT, 4)
        assert hda.metrics.batches[-1].state_bytes_matching("view:") > 0


AB = Schema([("a", ColumnType.INT), ("u", ColumnType.FLOAT)])
CD = Schema([("b", ColumnType.INT), ("v", ColumnType.FLOAT)])


def two_table_catalog(seed=0):
    rng = np.random.default_rng(seed)
    r1 = relation_from_columns(AB, a=rng.integers(0, 3, 40), u=rng.normal(5, 1, 40))
    r2 = relation_from_columns(CD, b=rng.integers(0, 4, 50), v=rng.normal(2, 1, 50))
    return Catalog({"r1": r1, "r2": r2})


class TestViewletRewrites:
    def cross_agg_plan(self):
        return (
            scan("r1", AB)
            .join(scan("r2", CD), keys=[])
            .aggregate(["a", "b"], [sum_(col("u") * col("v"), "suv"), count("n")])
        )

    def test_expressions_equal(self):
        assert expressions_equal(col("x") + 1, col("x") + 1)
        assert not expressions_equal(col("x") + 1, col("x") + 2)
        assert not expressions_equal(col("x"), lit(1))

    def test_plans_equal(self):
        assert plans_equal(self.cross_agg_plan(), self.cross_agg_plan())
        assert not plans_equal(self.cross_agg_plan(), scan("r1", AB))

    def test_push_aggregate_fires(self):
        cat = two_table_catalog()
        rewritten = push_aggregate_below_cross_join(
            self.cross_agg_plan(), cat.schemas()
        )
        assert isinstance(rewritten, Project)
        assert isinstance(rewritten.child, Join)
        assert isinstance(rewritten.child.left, Aggregate)

    def test_push_aggregate_preserves_semantics(self):
        cat = two_table_catalog()
        plan = self.cross_agg_plan()
        rewritten = push_aggregate_below_cross_join(plan, cat.schemas())
        assert run_batch(plan, cat).relation.bag_equal(
            run_batch(rewritten, cat).relation, 4
        )

    def test_push_aggregate_single_side_sum(self):
        cat = two_table_catalog()
        plan = (
            scan("r1", AB)
            .join(scan("r2", CD), keys=[])
            .aggregate(["a"], [sum_("u", "su")])
        )
        rewritten = push_aggregate_below_cross_join(plan, cat.schemas())
        assert rewritten is not None
        assert run_batch(plan, cat).relation.bag_equal(
            run_batch(rewritten, cat).relation, 4
        )

    def test_push_aggregate_skips_keyed_join(self):
        plan = (
            scan("r1", AB)
            .rename({"a": "b"})
            .join(scan("r2", CD), keys=["b"])
            .aggregate(["b"], [count("n")])
        )
        assert push_aggregate_below_cross_join(plan, {}) is None

    def test_push_aggregate_skips_avg(self):
        plan = (
            scan("r1", AB)
            .join(scan("r2", CD), keys=[])
            .aggregate(["a"], [avg("u", "au")])
        )
        assert push_aggregate_below_cross_join(plan, two_table_catalog().schemas()) is None

    def test_factorize_fires(self):
        q = scan("r1", AB)
        union = q.join(scan("r2", CD), keys=[]).union(
            scan("r1", AB).join(scan("r3", CD), keys=[])
        )
        out = factorize_common_join(union)
        assert isinstance(out, Join)

    def test_factorize_preserves_semantics(self):
        cat = two_table_catalog()
        cat.register("r3", cat.get("r2").scale(1.0))
        union = (
            scan("r1", AB)
            .join(scan("r2", CD), keys=[])
            .union(scan("r1", AB).join(scan("r3", CD), keys=[]))
        )
        out = factorize_common_join(union)
        assert run_batch(union, cat).relation.bag_equal(run_batch(out, cat).relation, 4)

    def test_factorize_requires_common_side(self):
        union = (
            scan("r1", AB)
            .join(scan("r2", CD), keys=[])
            .union(scan("r4", AB).join(scan("r3", CD), keys=[]))
        )
        assert factorize_common_join(union) is None

    def test_apply_all_reaches_fixpoint(self):
        cat = two_table_catalog()
        out = apply_viewlet_rewrites(self.cross_agg_plan(), cat.schemas())
        again = apply_viewlet_rewrites(out, cat.schemas())
        assert plans_equal(out, again)
