"""Tests for the rule-based plan optimizer (semantics-preserving rewrites)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational import (
    Catalog,
    Join,
    Project,
    Scan,
    Select,
    avg,
    col,
    count,
    evaluate,
    lit,
    relation_from_columns,
    scan,
    sum_,
)
from repro.relational.optimizer import (
    drop_trivial_selects,
    merge_selects,
    optimize,
    prune_projections,
    push_down_predicates,
)
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx

fuzz = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def catalog(seed=0):
    dim = relation_from_columns(DIM_SCHEMA, k=list(range(6)), label=list("abcdef"))
    return Catalog({"t": random_kx(400, seed=seed, groups=6), "dim": dim})


def equivalent(plan, cat):
    optimized = optimize(plan, cat.schemas())
    assert evaluate(plan, cat).bag_equal(evaluate(optimized, cat), 4)
    return optimized


class TestMergeSelects:
    def test_adjacent_selects_merge(self):
        plan = scan("t", KX_SCHEMA).select(col("x") > 1).select(col("y") > 2)
        merged = merge_selects(plan)
        assert isinstance(merged, Select)
        assert isinstance(merged.child, Scan)

    def test_triple_stack(self):
        plan = (
            scan("t", KX_SCHEMA)
            .select(col("x") > 1)
            .select(col("y") > 2)
            .select(col("k") > 0)
        )
        merged = merge_selects(plan)
        assert isinstance(merged.child, Scan)

    def test_semantics(self):
        cat = catalog()
        plan = scan("t", KX_SCHEMA).select(col("x") > 10).select(col("y") > 90)
        equivalent(plan, cat)


class TestTrivialSelects:
    def test_true_filter_removed(self):
        plan = scan("t", KX_SCHEMA).select(lit(True))
        assert isinstance(drop_trivial_selects(plan), Scan)

    def test_true_conjunct_removed(self):
        plan = scan("t", KX_SCHEMA).select(lit(True) & (col("x") > 1))
        out = drop_trivial_selects(plan)
        assert isinstance(out, Select)
        assert "True" not in repr(out.predicate)


class TestPushdown:
    def test_through_projection_passthrough(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .project([("k", "k"), ("x", "x")])
            .select(col("x") > 10)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert isinstance(out, Project)
        assert isinstance(out.child, Select)
        equivalent(plan, cat)

    def test_blocked_by_computed_projection(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .project([("z", col("x") * 2)])
            .select(col("z") > 10)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert isinstance(out, Select)  # stays above the projection
        equivalent(plan, cat)

    def test_into_left_join_side(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .select(col("x") > 10)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert isinstance(out, Join)
        assert isinstance(out.left, Select)
        equivalent(plan, cat)

    def test_into_right_join_side(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .select(col("label").eq("a"))
        )
        out = push_down_predicates(plan, cat.schemas())
        assert isinstance(out.right, Select)
        equivalent(plan, cat)

    def test_key_predicate_maps_to_right_key_name(self):
        cat = catalog()
        renamed_dim = scan("dim", DIM_SCHEMA).rename({"k": "dk"})
        plan = (
            scan("t", KX_SCHEMA)
            .join(renamed_dim, keys=[("k", "dk")])
            .select(col("k") > 2)
        )
        equivalent(plan, cat)

    def test_through_rename(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA).rename({"x": "value"}).select(col("value") > 10)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert type(out).__name__ == "Rename"
        equivalent(plan, cat)

    def test_into_both_union_branches(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .union(scan("t", KX_SCHEMA))
            .select(col("x") > 10)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert type(out).__name__ == "Union"
        equivalent(plan, cat)

    def test_stops_at_aggregate(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .aggregate(["k"], [count("n")])
            .select(col("n") > 50)
        )
        out = push_down_predicates(plan, cat.schemas())
        assert isinstance(out, Select)
        equivalent(plan, cat)


class TestProjectionPruning:
    def test_narrows_scan(self):
        cat = catalog()
        plan = scan("t", KX_SCHEMA).aggregate([], [sum_("x", "sx")])
        out = prune_projections(plan, cat.schemas())
        assert isinstance(out.child, Project)
        assert out.child.output_schema(cat.schemas()).names == ["x"]
        equivalent(plan, cat)

    def test_keeps_predicate_columns(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .select(col("y") > 0)
            .aggregate([], [sum_("x", "sx")])
        )
        out = prune_projections(plan, cat.schemas())
        names = out.child.child.output_schema(cat.schemas()).names
        assert set(names) == {"x", "y"}
        equivalent(plan, cat)

    def test_keeps_join_keys(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .aggregate(["label"], [count("n")])
        )
        equivalent(plan, cat)

    def test_full_schema_untouched(self):
        cat = catalog()
        plan = scan("t", KX_SCHEMA).select(col("x") > 0)
        out = prune_projections(plan, cat.schemas())
        assert isinstance(out.child, Scan)


class TestOptimizeEndToEnd:
    @fuzz
    @given(st.integers(0, 500), st.floats(5.0, 40.0))
    def test_fuzzed_equivalence(self, seed, threshold):
        cat = catalog(seed)
        plan = (
            scan("t", KX_SCHEMA)
            .project([("k", "k"), ("x", "x"), ("y", "y")])
            .select(col("x") > threshold)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .select(col("label").ne("c"))
            .aggregate(["label"], [sum_("y", "sy"), count("n")])
        )
        equivalent(plan, cat)

    def test_online_engine_runs_optimized_plans(self):
        from repro.core import OnlineConfig, OnlineQueryEngine

        cat = catalog()
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select((col("x") > col("ax")) & (col("y") > 0))
            .aggregate(["k"], [count("n")])
        )
        optimized = optimize(plan, cat.schemas())
        exact = evaluate(plan, cat)
        engine = OnlineQueryEngine(cat, "t", OnlineConfig(num_trials=15, seed=3))
        final = engine.run_to_completion(optimized, 5)
        assert final.to_relation().bag_equal(exact, 3)

    def test_reaches_fixpoint(self):
        cat = catalog()
        plan = (
            scan("t", KX_SCHEMA)
            .select(col("x") > 1)
            .select(col("y") > 1)
            .aggregate(["k"], [count("n")])
        )
        once = optimize(plan, cat.schemas())
        twice = optimize(once, cat.schemas())
        from repro.baselines.viewlet import plans_equal

        assert plans_equal(once, twice)
