"""Tests for the Section-9 extensions: stratified batching and
analytical (closed-form) error estimation."""

import numpy as np
import pytest

from repro.batching.partitioner import Partitioner
from repro.batching.stratified import StratifiedPartitioner, stratum_coverage
from repro.bootstrap.analytical import (
    analytical_range,
    avg_stderr,
    count_stderr,
    sum_stderr,
)
from repro.bootstrap.poisson import bootstrap_stdev, trial_multiplicities
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.errors import ReproError
from repro.relational import (
    Catalog,
    ColumnType,
    Schema,
    avg,
    count,
    evaluate,
    relation_from_columns,
    scan,
)
from tests.conftest import KX_SCHEMA


def skewed_relation(n=3000, seed=0):
    """k=0 dominates; k=5 is rare (the case stratification exists for)."""
    rng = np.random.default_rng(seed)
    weights = np.array([0.6, 0.15, 0.1, 0.08, 0.05, 0.02])
    return relation_from_columns(
        KX_SCHEMA,
        k=rng.choice(6, size=n, p=weights),
        x=rng.gamma(3.0, 4.0, n),
        y=rng.normal(50.0, 10.0, n),
    )


class TestStratifiedPartitioner:
    def test_covers_everything_once(self):
        rel = skewed_relation()
        parts = StratifiedPartitioner("k", seed=1).partition_relation_indices(rel, 8)
        merged = np.sort(np.concatenate(parts))
        assert list(merged) == list(range(len(rel)))

    def test_every_batch_sees_every_stratum(self):
        rel = skewed_relation()
        batches = StratifiedPartitioner("k", seed=1).partition(rel, 8)
        coverage = stratum_coverage(batches, "k")
        assert all(c == 1.0 for c in coverage)

    def test_uniform_partitioner_can_starve_rare_strata(self):
        # The motivating failure mode: with ~10 rare rows and 8 batches,
        # plain shuffling leaves some batch without the rare stratum.
        rng = np.random.default_rng(3)
        rel = relation_from_columns(
            KX_SCHEMA,
            k=np.where(rng.random(400) < 0.02, 5, 0),
            x=rng.gamma(3.0, 4.0, 400),
            y=rng.normal(50.0, 10.0, 400),
        )
        uniform = Partitioner(seed=5).partition(rel, 8)
        stratified = StratifiedPartitioner("k", seed=5).partition(rel, 8)
        rare_total = int((rel.column("k") == 5).sum())
        if rare_total >= 8:
            assert all((b.column("k") == 5).any() for b in stratified)

    def test_proportions_preserved(self):
        rel = skewed_relation()
        batches = StratifiedPartitioner("k", seed=1).partition(rel, 6)
        overall = (rel.column("k") == 0).mean()
        for batch in batches:
            assert (batch.column("k") == 0).mean() == pytest.approx(overall, abs=0.05)

    def test_unknown_column_rejected(self):
        with pytest.raises(ReproError, match="stratification column"):
            StratifiedPartitioner("zzz").partition(skewed_relation(), 4)

    def test_deterministic(self):
        rel = skewed_relation()
        a = StratifiedPartitioner("k", seed=2).partition_relation_indices(rel, 5)
        b = StratifiedPartitioner("k", seed=2).partition_relation_indices(rel, 5)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_online_engine_exact_with_stratified_batches(self):
        rel = skewed_relation()
        catalog = Catalog({"t": rel})
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [avg("x", "ax"), count("n")])
        engine = OnlineQueryEngine(catalog, "t", OnlineConfig(num_trials=15, seed=4))
        engine.partitioner = StratifiedPartitioner("k", seed=4)
        final = engine.run_to_completion(plan, 6)
        assert final.to_relation().bag_equal(evaluate(plan, catalog), 3)

    def test_rare_group_estimates_from_batch_one(self):
        rel = skewed_relation()
        catalog = Catalog({"t": rel})
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
        engine = OnlineQueryEngine(catalog, "t", OnlineConfig(num_trials=15, seed=4))
        engine.partitioner = StratifiedPartitioner("k", seed=4)
        first = next(iter(engine.run(plan, 8)))
        assert len(first.rows) == 6  # every stratum already present


class TestAnalyticalBootstrap:
    """The closed forms must agree with the simulation bootstrap."""

    def setup_method(self):
        rng = np.random.default_rng(7)
        self.x = rng.gamma(3.0, 5.0, 800)
        self.trials = trial_multiplicities(800, 400, seed=2, table="t", batch_no=1)

    def test_sum_matches_simulation(self):
        simulated = bootstrap_stdev((self.x[:, None] * self.trials).sum(0))
        assert sum_stderr(self.x) == pytest.approx(simulated, rel=0.15)

    def test_count_matches_simulation(self):
        simulated = bootstrap_stdev(self.trials.sum(0))
        assert count_stderr(np.ones(800)) == pytest.approx(simulated, rel=0.15)

    def test_avg_matches_simulation(self):
        sums = (self.x[:, None] * self.trials).sum(0)
        counts = self.trials.sum(0)
        simulated = bootstrap_stdev(sums / counts)
        assert avg_stderr(self.x) == pytest.approx(simulated, rel=0.2)

    def test_sum_scales_linearly(self):
        assert sum_stderr(self.x, scale=3.0) == pytest.approx(3 * sum_stderr(self.x))

    def test_weights_enter_quadratically(self):
        w = np.full(800, 2.0)
        assert sum_stderr(self.x, weights=w) == pytest.approx(2 * sum_stderr(self.x))

    def test_avg_zero_weight_nan(self):
        import math

        assert math.isnan(avg_stderr(self.x, weights=np.zeros(800)))

    def test_analytical_range_symmetric(self):
        lo, hi = analytical_range(10.0, stderr=2.0, slack=2.0)
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(18.0)

    def test_analytical_range_covers_simulated(self):
        """The closed-form range must contain the simulated trials' hull
        (what the engine's monitor would publish)."""
        sums = (self.x[:, None] * self.trials).sum(0)
        estimate = float(self.x.sum())
        lo, hi = analytical_range(estimate, sum_stderr(self.x), slack=2.0)
        assert lo <= sums.min() and sums.max() <= hi
