"""The shard layer: planner verdicts, bit-identical merges, fallback.

Determinism is the headline contract: for every shardable workload query,
the sharded engine's per-batch rows must be *bit-identical* to the serial
reference — same values, same bootstrap trial arrays, same canonical
order — for any shard count. The suite checks a representative slice by
default; set ``IOLAP_SHARD_FULL=1`` to run every shardable query at
shards ∈ {1, 2, 4} with vectorization both on and off (the CI
shard-smoke job's weekly configuration).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.result import _key
from repro.core.values import UncertainValue
from repro.engine.shards import (
    ShardedQueryEngine,
    analyze_shardability,
    shard_ids,
)
from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

FULL = os.environ.get("IOLAP_SHARD_FULL") == "1"
TRIALS = int(os.environ.get("IOLAP_SHARD_TRIALS", "16"))
BATCHES = int(os.environ.get("IOLAP_SHARD_BATCHES", "6"))

#: The expected planner verdict for every workload query: the 9 queries
#: whose aggregates/joins share streamed fact-column group keys shard;
#: the rest (scalar aggregates, dimension-minted group keys) fall back.
EXPECTED_SHARD_KEYS = {
    "Q1": ("linestatus", "returnflag"),
    "Q3": ("orderdate", "orderkey", "shippriority"),
    "Q18": ("orderkey",),
    "C2": ("cdn",),
    "C3": ("state",),
    "C5": ("cdn",),
    "C9": ("isp",),
    "C11": ("cdn",),
    "C12": ("isp",),
}

ALL_QUERIES = [("tpch", name) for name in TPCH_QUERIES] + [
    ("conviva", name) for name in CONVIVA_QUERIES
]
SHARDABLE = [
    (source, name) for source, name in ALL_QUERIES if name in EXPECTED_SHARD_KEYS
]
#: The default (fast) determinism slice: one query per shard-key shape.
DEFAULT_SLICE = [
    ("tpch", "Q1"), ("tpch", "Q18"), ("conviva", "C2"), ("conviva", "C9")
]


@pytest.fixture(scope="module")
def catalogs(tpch_small, conviva_small):
    return {"tpch": tpch_small.catalog(), "conviva": conviva_small.catalog()}


def spec_of(source, name):
    return (TPCH_QUERIES if source == "tpch" else CONVIVA_QUERIES)[name]


def canon(rows):
    """The merge sink's canonical row order, applied to serial output."""
    def point(v):
        return v.value if isinstance(v, UncertainValue) else v

    return sorted(rows, key=lambda row: tuple(_key(point(v)) for v in row.values()))


def assert_rows_bit_identical(expected, actual, context=""):
    assert len(expected) == len(actual), (
        f"{context}: row count {len(actual)} != {len(expected)}"
    )
    for re_, ra in zip(expected, actual):
        assert set(re_) == set(ra), f"{context}: schema mismatch"
        for col in re_:
            ve, va = re_[col], ra[col]
            assert isinstance(ve, UncertainValue) == isinstance(va, UncertainValue)
            if isinstance(ve, UncertainValue):
                pe, pa = ve.value, va.value
                assert pe == pa or (pe != pe and pa != pa), (
                    f"{context}: {col} point value {pa!r} != {pe!r}"
                )
                assert np.array_equal(
                    np.asarray(ve.trials), np.asarray(va.trials), equal_nan=True
                ), f"{context}: {col} trial vector diverged"
            else:
                assert ve == va or (ve != ve and va != va), (
                    f"{context}: {col} value {va!r} != {ve!r}"
                )


def run_serial(spec, catalog, vectorize=True):
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(num_trials=TRIALS, seed=11, vectorize=vectorize),
    )
    return list(engine.run(spec.plan, BATCHES))


def run_sharded(spec, catalog, shards, vectorize=True, **config_kwargs):
    engine = ShardedQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(
            num_trials=TRIALS, seed=11, vectorize=vectorize,
            shards=shards, **config_kwargs,
        ),
    )
    return engine, list(engine.run(spec.plan, BATCHES))


class TestPlanner:
    @pytest.mark.parametrize("source,name", ALL_QUERIES)
    def test_verdict(self, source, name, catalogs):
        spec = spec_of(source, name)
        plan = analyze_shardability(spec.plan, spec.streamed_table)
        if name in EXPECTED_SHARD_KEYS:
            assert plan.shardable, f"{name}: {plan.reason}"
            assert plan.shard_key == EXPECTED_SHARD_KEYS[name]
            assert plan.reason is None
            # Sink disjointness checks need at least one key column with
            # shard-key provenance in the result schema.
            assert plan.result_key_cols
        else:
            assert not plan.shardable
            assert plan.reason
            assert plan.shard_key == ()

    def test_static_only_plan_not_shardable(self, catalogs):
        from repro.relational.aggregates import count
        from repro.relational.algebra import Aggregate, Scan

        catalog = catalogs["tpch"]
        plan = Aggregate(
            Scan("part", catalog.get("part").schema),
            group_by=["brand"],
            aggs=[count("n")],
        )
        verdict = analyze_shardability(plan, "lineorder")
        assert not verdict.shardable
        assert "streamed" in verdict.reason


class TestShardIds:
    def test_deterministic_and_group_stable(self, tpch_small):
        rel = tpch_small.catalog().get("lineorder")
        ids1 = shard_ids(rel, ("custkey",), 4)
        ids2 = shard_ids(rel, ("custkey",), 4)
        assert np.array_equal(ids1, ids2)
        assert ids1.min() >= 0 and ids1.max() < 4
        # All rows of one key value land on one shard.
        keys = rel.columns["custkey"]
        for value in np.unique(keys)[:20]:
            owners = np.unique(ids1[keys == value])
            assert len(owners) == 1

    def test_spreads_shards(self, tpch_small):
        rel = tpch_small.catalog().get("lineorder")
        ids = shard_ids(rel, ("custkey",), 4)
        counts = np.bincount(ids, minlength=4)
        # splitmix64 mixing: no shard should be starved on real keys.
        assert counts.min() > 0.1 * len(rel) / 4

    def test_string_keys(self, conviva_small):
        rel = conviva_small.catalog().get("sessions")
        ids = shard_ids(rel, ("cdn", "isp"), 3)
        assert ids.min() >= 0 and ids.max() < 3
        assert len(np.unique(ids)) == 3


class TestDeterminism:
    """Sharded rows must equal the serial reference bit for bit."""

    @pytest.mark.parametrize(
        "source,name", SHARDABLE if FULL else DEFAULT_SLICE
    )
    def test_two_shards(self, source, name, catalogs):
        self._check(source, name, catalogs, shards=2)

    @pytest.mark.parametrize(
        "source,name",
        (SHARDABLE if FULL else [("tpch", "Q1"), ("conviva", "C5")]),
    )
    def test_four_shards(self, source, name, catalogs):
        self._check(source, name, catalogs, shards=4)

    @pytest.mark.parametrize(
        "source,name", SHARDABLE if FULL else [("conviva", "C3")]
    )
    def test_row_kernels(self, source, name, catalogs):
        """Vectorization off exercises the row-at-a-time operator paths
        inside the workers; the merge contract is unchanged."""
        self._check(source, name, catalogs, shards=2, vectorize=False)

    def test_one_shard_is_serial(self, catalogs):
        """shards=1 short-circuits to the single-process engine."""
        spec = spec_of("tpch", "Q1")
        serial = run_serial(spec, catalogs["tpch"])
        engine, sharded = run_sharded(spec, catalogs["tpch"], shards=1)
        for s, p in zip(serial, sharded):
            assert_rows_bit_identical(s.rows, p.rows, "Q1 shards=1")

    def _check(self, source, name, catalogs, shards, vectorize=True):
        spec = spec_of(source, name)
        catalog = catalogs[source]
        serial = run_serial(spec, catalog, vectorize=vectorize)
        engine, sharded = run_sharded(
            spec, catalog, shards, vectorize=vectorize
        )
        assert engine.shard_plan is not None and engine.shard_plan.shardable
        assert len(sharded) == len(serial) == BATCHES
        for s, p in zip(serial, sharded):
            context = f"{name} shards={shards} batch={p.batch_no}"
            assert p.batch_no == s.batch_no
            assert p.is_final == s.is_final
            assert p.fraction_processed == pytest.approx(s.fraction_processed)
            assert_rows_bit_identical(canon(s.rows), p.rows, context)
            # Shard-local new-tuple counts must sum to the serial total.
            assert p.metrics.new_tuples == s.metrics.new_tuples, context


class TestFallback:
    def test_non_shardable_runs_single_process(self, catalogs):
        spec = spec_of("tpch", "Q6")  # scalar aggregate: never shardable
        serial = run_serial(spec, catalogs["tpch"])
        engine, fallback = run_sharded(spec, catalogs["tpch"], shards=4)
        assert engine.shard_plan is not None
        assert not engine.shard_plan.shardable
        for s, p in zip(serial, fallback):
            assert_rows_bit_identical(s.rows, p.rows, "Q6 fallback")

    def test_fallback_warning_on_trace(self, catalogs):
        from repro.obs import Observability

        obs, sink = Observability.in_memory()
        spec = spec_of("tpch", "Q6")
        engine = ShardedQueryEngine(
            catalogs["tpch"],
            spec.streamed_table,
            OnlineConfig(num_trials=TRIALS, seed=11, shards=4),
            obs=obs,
        )
        list(engine.run(spec.plan, 2))
        obs.close()
        warnings = [
            e for e in sink.events
            if e.get("kind") == "warning" and e.get("name") == "shard-fallback"
        ]
        assert warnings, "fallback must leave a shard-fallback trace warning"
        assert "scalar aggregate" in warnings[0]["args"]["reason"]

    def test_executor_instance_pins_single_process(self, catalogs):
        from repro.engine.executor import SerialExecutor

        spec = spec_of("tpch", "Q1")  # shardable, but the instance wins
        engine = ShardedQueryEngine(
            catalogs["tpch"],
            spec.streamed_table,
            OnlineConfig(num_trials=TRIALS, seed=11, shards=2),
            executor=SerialExecutor(),
        )
        serial = run_serial(spec, catalogs["tpch"])
        got = list(engine.run(spec.plan, BATCHES))
        for s, p in zip(serial, got):
            assert_rows_bit_identical(s.rows, p.rows, "Q1 pinned executor")


class TestObservability:
    def test_per_shard_metrics_and_spans(self, catalogs):
        from repro.obs import Observability

        obs, sink = Observability.in_memory()
        spec = spec_of("conviva", "C2")
        engine = ShardedQueryEngine(
            catalogs["conviva"],
            spec.streamed_table,
            OnlineConfig(num_trials=TRIALS, seed=11, shards=2),
            obs=obs,
        )
        list(engine.run(spec.plan, 3))
        obs.close()
        spans = [
            e for e in sink.events
            if e.get("kind") == "span" and e.get("name") == "shard-batch"
        ]
        assert {s["args"]["shard"] for s in spans} == {0, 1}
        assert len(spans) == 2 * 3
        counters = {
            e["name"] for e in sink.events if e.get("kind") == "counter"
        }
        assert "shard.0.seen_rows" in counters
        assert "shard.1.cpu_seconds" in counters

    def test_run_to_completion(self, catalogs):
        spec = spec_of("conviva", "C2")
        engine = ShardedQueryEngine(
            catalogs["conviva"],
            spec.streamed_table,
            OnlineConfig(num_trials=TRIALS, seed=11, shards=2),
        )
        final = engine.run_to_completion(spec.plan, 3)
        assert final.is_final
        serial = run_serial(spec, catalogs["conviva"])
        # run_serial uses BATCHES batches; rerun at 3 for the comparison.
        ref = OnlineQueryEngine(
            catalogs["conviva"],
            spec.streamed_table,
            OnlineConfig(num_trials=TRIALS, seed=11),
        ).run_to_completion(spec.plan, 3)
        assert_rows_bit_identical(canon(ref.rows), final.rows, "C2 final")
