"""Tests for the range monitor and the sentinel integrity guards."""

import numpy as np
import pytest

from repro.core.blocks import (
    BlockOutput,
    GroupValue,
    OnlineConfig,
    RuntimeContext,
)
from repro.core.ranges import RangeMonitor
from repro.core.sentinels import MembershipSentinels, SentinelStore
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.errors import RangeIntegrityError
from repro.relational import Catalog, ColumnType, Relation, Schema
from repro.relational.expressions import Col, Comparison, Literal

CELL = (1, (), "v")


def make_ctx(num_trials=4) -> RuntimeContext:
    ctx = RuntimeContext(
        Catalog({}), "t", total_rows=100, config=OnlineConfig(num_trials=num_trials)
    )
    ctx.batch_no = 1
    return ctx


def publish(ctx, block_id, key, colname, value, trials, member_point=True, certain=True):
    out = ctx.blocks.get(block_id) or BlockOutput(block_id, [], [colname])
    uv = UncertainValue(
        value, np.asarray(trials, dtype=float), lineage=LineageRef(block_id, key, colname)
    )
    out.publish(
        GroupValue(key, {colname: uv}, certain, member_point=member_point), is_new=True
    )
    ctx.blocks[block_id] = out


class TestRangeMonitor:
    def test_observe_returns_fresh_range(self):
        mon = RangeMonitor(slack=0.0)
        r = mon.observe(CELL, 1, 2.0, np.array([1.0, 3.0]))
        assert (r.lo, r.hi) == (1.0, 3.0)

    def test_range_includes_running_value(self):
        mon = RangeMonitor(slack=0.0)
        r = mon.observe(CELL, 1, 10.0, np.array([1.0, 3.0]))
        assert r.contains_value(10.0)

    def test_disabled_returns_everything(self):
        mon = RangeMonitor(enabled=False)
        r = mon.observe(CELL, 1, 2.0, np.array([1.0, 3.0]))
        assert r == VariationRange.everything()

    def test_replaying_freezes(self):
        mon = RangeMonitor()
        mon.observe(CELL, 1, 2.0, np.array([1.0, 3.0]))
        mon.replaying = True
        assert mon.range_for(CELL) == VariationRange.everything()

    def test_range_for_unknown_cell(self):
        assert RangeMonitor().range_for(CELL) == VariationRange.everything()

    def test_ranges_float_between_batches(self):
        mon = RangeMonitor(slack=0.0)
        mon.observe(CELL, 1, 2.0, np.array([1.0, 3.0]))
        r2 = mon.observe(CELL, 2, 9.0, np.array([8.0, 10.0]))
        assert (r2.lo, r2.hi) == (8.0, 10.0)  # no intersection pre-use

    def test_reset(self):
        mon = RangeMonitor(slack=0.0)
        mon.observe(CELL, 1, 2.0, np.array([1.0, 3.0]))
        mon.reset()
        assert len(mon) == 0

    def test_failure_counter(self):
        mon = RangeMonitor()
        mon.record_failure()
        mon.record_failure()
        assert mon.failures == 2


SCHEMA = Schema([("d", ColumnType.FLOAT), ("u", ColumnType.FLOAT)])


def rel_with_refs(d_values, ref):
    n = len(d_values)
    u = np.empty(n, dtype=object)
    u[:] = [ref] * n
    return Relation(
        SCHEMA,
        {"d": np.asarray(d_values, dtype=np.float64), "u": u},
    )


class TestSentinelStore:
    def make(self):
        cmp_ = Comparison(">", Col("d"), Col("u"))
        return SentinelStore([cmp_], {"u"}), cmp_

    def test_empty_check_passes(self):
        store, _ = self.make()
        store.check(make_ctx())

    def test_holding_decision_passes(self):
        store, _ = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, (), "v")
        publish(ctx, 1, (), "v", 10.0, [9.0, 11.0])
        rel = rel_with_refs([50.0, 2.0], ref)
        store.record(0, rel, np.array([0]), np.array([True]))  # 50 > u resolved TRUE
        store.record(0, rel, np.array([1]), np.array([False]))  # 2 > u resolved FALSE
        store.check(ctx)  # point estimate 10: 50>10 ok, 2>10 false ok

    def test_flip_raises(self):
        store, _ = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, (), "v")
        publish(ctx, 1, (), "v", 10.0, [10.0])
        rel = rel_with_refs([50.0], ref)
        store.record(0, rel, np.array([0]), np.array([True]))
        publish(ctx, 1, (), "v", 99.0, [99.0])  # estimate moved above 50
        with pytest.raises(RangeIntegrityError, match="flipped"):
            store.check(ctx)
        assert ctx.monitor.failures == 1

    def test_vanished_entity_raises(self):
        store, _ = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, ("gone",), "v")
        rel = rel_with_refs([50.0], ref)
        publish(ctx, 1, ("gone",), "v", 10.0, [10.0])
        store.record(0, rel, np.array([0]), np.array([True]))
        ctx.blocks[1] = BlockOutput(1, [], ["v"])  # group vanished
        with pytest.raises(RangeIntegrityError, match="vanished"):
            store.check(ctx)

    def test_keeps_only_tightest(self):
        store, _ = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, (), "v")
        publish(ctx, 1, (), "v", 10.0, [10.0])
        rel = rel_with_refs([50.0, 20.0, 90.0], ref)
        store.record(0, rel, np.arange(3), np.array([True, True, True]))
        # One entity, one direction -> a single tightest sentinel (d=20).
        assert len(store) == 1
        publish(ctx, 1, (), "v", 30.0, [30.0])  # above 20: tightest flips
        with pytest.raises(RangeIntegrityError):
            store.check(ctx)

    def test_reset(self):
        store, _ = self.make()
        rel = rel_with_refs([50.0], LineageRef(1, (), "v"))
        store.record(0, rel, np.array([0]), np.array([True]))
        store.reset()
        assert len(store) == 0

    def test_both_sides_uncertain(self):
        cmp_ = Comparison(">", Col("u"), Literal(0.0))
        store = SentinelStore([cmp_], {"u"})
        ctx = make_ctx()
        ref = LineageRef(1, (), "v")
        publish(ctx, 1, (), "v", 5.0, [5.0])
        rel = rel_with_refs([0.0], ref)
        store.record(0, rel, np.array([0]), np.array([True]))
        store.check(ctx)
        publish(ctx, 1, (), "v", -5.0, [-5.0])
        with pytest.raises(RangeIntegrityError):
            store.check(ctx)


class TestMembershipSentinels:
    def view(self, ctx, member_point):
        publish(ctx, 7, ("g",), "v", 1.0, [1.0], member_point=member_point)
        return ctx.blocks[7]

    def test_expected_in_holds(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), True)
        ms.check(ctx, self.view(ctx, member_point=True))

    def test_expected_in_flips(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), True)
        with pytest.raises(RangeIntegrityError, match="membership"):
            ms.check(ctx, self.view(ctx, member_point=False))

    def test_expected_out_flips(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), False)
        with pytest.raises(RangeIntegrityError):
            ms.check(ctx, self.view(ctx, member_point=True))

    def test_missing_group_counts_as_out(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), False)
        ms.check(ctx, None)  # no view at all: group absent, as expected

    def test_first_record_wins(self):
        ms = MembershipSentinels()
        ms.record(("g",), True)
        ms.record(("g",), False)
        assert ms.expected[("g",)] is True

    def test_reset(self):
        ms = MembershipSentinels()
        ms.record(("g",), True)
        ms.reset()
        assert len(ms) == 0


class TestRecoverFromDepth:
    """A violation must report the last batch whose recorded decisions all
    still hold — the seed hardcoded recover_from_batch=0, forcing every
    recovery to replay the whole run."""

    def make(self):
        cmp_ = Comparison(">", Col("d"), Col("u"))
        return SentinelStore([cmp_], {"u"})

    def record_at(self, store, ctx, d_value, batch_no, expected=True):
        ref = LineageRef(1, (), "v")
        rel = rel_with_refs([d_value], ref)
        store.record(
            0, rel, np.array([0]), np.array([expected]), batch_no=batch_no
        )

    def test_only_tightest_flips(self):
        store = self.make()
        ctx = make_ctx()
        publish(ctx, 1, (), "v", 10.0, [10.0])
        self.record_at(store, ctx, 50.0, batch_no=3)  # 50 > u, looser
        self.record_at(store, ctx, 20.0, batch_no=6)  # 20 > u, tighter
        publish(ctx, 1, (), "v", 30.0, [30.0])  # 20>30 flips, 50>30 holds
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 5

    def test_whole_staircase_flips(self):
        store = self.make()
        ctx = make_ctx()
        publish(ctx, 1, (), "v", 10.0, [10.0])
        self.record_at(store, ctx, 50.0, batch_no=3)
        self.record_at(store, ctx, 20.0, batch_no=6)
        publish(ctx, 1, (), "v", 60.0, [60.0])  # above both steps
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 2

    def test_multiple_entities_report_min(self):
        store = self.make()
        ctx = make_ctx()
        for key, batch in (("a", 4), ("b", 7)):
            ref = LineageRef(1, (key,), "v")
            publish(ctx, 1, (key,), "v", 10.0, [10.0])
            rel = rel_with_refs([20.0], ref)
            store.record(
                0, rel, np.array([0]), np.array([True]), batch_no=batch
            )
        publish(ctx, 1, ("a",), "v", 99.0, [99.0])
        publish(ctx, 1, ("b",), "v", 99.0, [99.0])
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 3
        # Both violations are collected into one failure.
        assert "more" in str(exc.value)

    def test_vanished_entity_reports_resolution_batch(self):
        store = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, ("gone",), "v")
        publish(ctx, 1, ("gone",), "v", 10.0, [10.0])
        rel = rel_with_refs([50.0], ref)
        store.record(0, rel, np.array([0]), np.array([True]), batch_no=5)
        ctx.blocks[1] = BlockOutput(1, [], ["v"])
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 4

    def test_unbatched_records_default_to_zero(self):
        store = self.make()
        ctx = make_ctx()
        publish(ctx, 1, (), "v", 10.0, [10.0])
        self.record_at(store, ctx, 50.0, batch_no=0)
        publish(ctx, 1, (), "v", 99.0, [99.0])
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 0

    def test_check_skipped_while_replaying(self):
        store = self.make()
        ctx = make_ctx()
        publish(ctx, 1, (), "v", 10.0, [10.0])
        self.record_at(store, ctx, 50.0, batch_no=3)
        publish(ctx, 1, (), "v", 99.0, [99.0])
        ctx.monitor.replaying = True
        store.check(ctx)  # restored sentinels hold at the restore point

    def test_vectorized_record_tracks_batches_too(self):
        store = self.make()
        ctx = make_ctx()
        ref = LineageRef(1, (), "v")
        publish(ctx, 1, (), "v", 10.0, [10.0])
        rel = rel_with_refs([50.0, 20.0], ref)
        store.record(
            0, rel, np.array([0]), np.array([True]),
            vectorize=True, batch_no=3,
        )
        store.record(
            0, rel, np.array([1]), np.array([True]),
            vectorize=True, batch_no=6,
        )
        publish(ctx, 1, (), "v", 30.0, [30.0])
        with pytest.raises(RangeIntegrityError) as exc:
            store.check(ctx)
        assert exc.value.recover_from_batch == 5


class TestMembershipRecoverFrom:
    def view(self, ctx, points):
        for key, member in points.items():
            publish(ctx, 7, key, "v", 1.0, [1.0], member_point=member)
        return ctx.blocks[7]

    def test_flip_reports_resolution_batch(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), True, batch_no=6)
        with pytest.raises(RangeIntegrityError) as exc:
            ms.check(ctx, self.view(ctx, {("g",): False}))
        assert exc.value.recover_from_batch == 5

    def test_multiple_flips_report_min(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("a",), True, batch_no=4)
        ms.record(("b",), True, batch_no=7)
        with pytest.raises(RangeIntegrityError) as exc:
            ms.check(ctx, self.view(ctx, {("a",): False, ("b",): False}))
        assert exc.value.recover_from_batch == 3
        assert "more" in str(exc.value)

    def test_first_record_pins_batch(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), True, batch_no=2)
        ms.record(("g",), True, batch_no=9)  # later re-record: ignored
        with pytest.raises(RangeIntegrityError) as exc:
            ms.check(ctx, self.view(ctx, {("g",): False}))
        assert exc.value.recover_from_batch == 1

    def test_check_skipped_while_replaying(self):
        ms = MembershipSentinels()
        ctx = make_ctx()
        ms.record(("g",), True, batch_no=2)
        ctx.monitor.replaying = True
        ms.check(ctx, self.view(ctx, {("g",): False}))
