"""Unit tests for schemas and column types."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import Column, ColumnType, Schema


class TestColumnType:
    def test_int_dtype(self):
        assert ColumnType.INT.dtype == np.dtype(np.int64)

    def test_float_dtype(self):
        assert ColumnType.FLOAT.dtype == np.dtype(np.float64)

    def test_string_dtype_is_object(self):
        assert ColumnType.STRING.dtype == np.dtype(object)

    def test_bool_dtype(self):
        assert ColumnType.BOOL.dtype == np.dtype(bool)

    def test_byte_widths(self):
        assert ColumnType.INT.byte_width == 8
        assert ColumnType.FLOAT.byte_width == 8
        assert ColumnType.STRING.byte_width == 16
        assert ColumnType.BOOL.byte_width == 1


class TestSchema:
    def test_construct_from_tuples(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.STRING)])
        assert s.names == ["a", "b"]

    def test_construct_from_columns(self):
        s = Schema([Column("a", ColumnType.INT)])
        assert s["a"].ctype is ColumnType.INT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([("a", ColumnType.INT), ("a", ColumnType.FLOAT)])

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("", ColumnType.INT)])

    def test_len(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        assert len(s) == 2

    def test_contains(self):
        s = Schema([("a", ColumnType.INT)])
        assert "a" in s
        assert "z" not in s

    def test_getitem_missing_raises(self):
        s = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError, match="no column named 'z'"):
            s["z"]

    def test_index_of(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        assert s.index_of("b") == 1

    def test_index_of_missing(self):
        s = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            s.index_of("q")

    def test_type_of(self):
        s = Schema([("a", ColumnType.STRING)])
        assert s.type_of("a") is ColumnType.STRING

    def test_equality(self):
        a = Schema([("a", ColumnType.INT)])
        b = Schema([("a", ColumnType.INT)])
        c = Schema([("a", ColumnType.FLOAT)])
        assert a == b
        assert a != c

    def test_hashable(self):
        a = Schema([("a", ColumnType.INT)])
        b = Schema([("a", ColumnType.INT)])
        assert hash(a) == hash(b)

    def test_project(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        assert s.project(["b"]).names == ["b"]

    def test_project_preserves_types(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        assert s.project(["b", "a"]).type_of("a") is ColumnType.INT

    def test_concat(self):
        a = Schema([("a", ColumnType.INT)])
        b = Schema([("b", ColumnType.FLOAT)])
        assert a.concat(b).names == ["a", "b"]

    def test_concat_collision_raises(self):
        a = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            a.concat(a)

    def test_rename(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        renamed = s.rename({"a": "z"})
        assert renamed.names == ["z", "b"]

    def test_rename_keeps_types(self):
        s = Schema([("a", ColumnType.STRING)])
        assert s.rename({"a": "z"}).type_of("z") is ColumnType.STRING

    def test_with_prefix(self):
        s = Schema([("a", ColumnType.INT)])
        assert s.with_prefix("p_").names == ["p_a"]

    def test_validate_value_accepts(self):
        s = Schema([("a", ColumnType.INT)])
        s.validate_value("a", 3)  # no raise

    def test_validate_value_rejects(self):
        s = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            s.validate_value("a", "three")

    def test_validate_float_accepts_int(self):
        s = Schema([("a", ColumnType.FLOAT)])
        s.validate_value("a", 3)  # ints are fine in float columns

    def test_row_byte_width(self):
        s = Schema([("a", ColumnType.INT), ("s", ColumnType.STRING)])
        assert s.row_byte_width() == 24

    def test_iteration_order(self):
        s = Schema([("b", ColumnType.INT), ("a", ColumnType.INT)])
        assert [c.name for c in s] == ["b", "a"]

    def test_repr_mentions_columns(self):
        s = Schema([("a", ColumnType.INT)])
        assert "a:int" in repr(s)
