"""Unit tests for the reference batch evaluator (bag semantics)."""

import numpy as np
import pytest

from repro.relational import (
    Catalog,
    ColumnType,
    EvalStats,
    Relation,
    Schema,
    avg,
    col,
    count,
    evaluate,
    max_,
    min_,
    relation_from_columns,
    scan,
    stddev,
    sum_,
)

T = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
D = Schema([("k", ColumnType.INT), ("label", ColumnType.STRING)])


@pytest.fixture
def cat():
    t = relation_from_columns(T, k=[0, 0, 1, 1, 2], x=[1.0, 2.0, 3.0, 4.0, 5.0])
    d = relation_from_columns(D, k=[0, 1], label=["a", "b"])
    return Catalog({"t": t, "d": d})


class TestScanSelect:
    def test_scan(self, cat):
        out = evaluate(scan("t", T), cat)
        assert len(out) == 5

    def test_select_filters(self, cat):
        out = evaluate(scan("t", T).select(col("x") > 2.5), cat)
        assert sorted(out.column("x")) == [3.0, 4.0, 5.0]

    def test_select_preserves_multiplicities(self, cat):
        weighted = cat.get("t").scale(2.0)
        out = evaluate(scan("t", T).select(col("x") > 4.0), cat.replace("t", weighted))
        assert out.total_multiplicity() == 2.0

    def test_select_empty_result(self, cat):
        out = evaluate(scan("t", T).select(col("x") > 100.0), cat)
        assert len(out) == 0


class TestProject:
    def test_computed_column(self, cat):
        out = evaluate(scan("t", T).project([("double", col("x") * 2)]), cat)
        assert sorted(out.column("double")) == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_no_dedup(self, cat):
        out = evaluate(scan("t", T).project([("k", "k")]), cat)
        assert len(out) == 5  # SQL projection keeps duplicates


class TestJoin:
    def test_inner_join_drops_unmatched(self, cat):
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        out = evaluate(plan, cat)
        assert len(out) == 4  # k=2 rows have no dimension match

    def test_join_multiplicities_multiply(self, cat):
        t2 = cat.get("t").scale(2.0)
        d2 = cat.get("d").scale(3.0)
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        out = evaluate(plan, Catalog({"t": t2, "d": d2}))
        assert set(out.mult) == {6.0}

    def test_cross_join_size(self, cat):
        s = Schema([("y", ColumnType.FLOAT)])
        small = relation_from_columns(s, y=[9.0, 8.0])
        plan = scan("t", T).join(scan("s", s), keys=[])
        out = evaluate(plan, Catalog({"t": cat.get("t"), "s": small}))
        assert len(out) == 10

    def test_join_trials_multiply(self, cat):
        t = cat.get("t").with_mult(cat.get("t").mult, np.full((5, 2), 2.0))
        plan = scan("t", T).join(scan("d", D), keys=["k"])
        out = evaluate(plan, Catalog({"t": t, "d": cat.get("d")}))
        assert out.trial_mults is not None
        assert set(out.trial_mults.ravel()) == {2.0}

    def test_fanout_join(self):
        left = relation_from_columns(T, k=[0, 0], x=[1.0, 2.0])
        right = relation_from_columns(D, k=[0, 0], label=["a", "b"])
        plan = scan("l", T).join(scan("r", D), keys=["k"])
        out = evaluate(plan, Catalog({"l": left, "r": right}))
        assert len(out) == 4


class TestUnionDistinct:
    def test_union_is_bag(self, cat):
        plan = scan("t", T).union(scan("t", T))
        assert evaluate(plan, cat).total_multiplicity() == 10.0

    def test_distinct(self, cat):
        plan = scan("t", T).distinct(["k"])
        out = evaluate(plan, cat)
        assert sorted(out.column("k")) == [0, 1, 2]
        assert set(out.mult) == {1.0}

    def test_distinct_ignores_zero_mult(self):
        t = relation_from_columns(T, k=[0, 1], x=[1.0, 2.0]).with_mult(
            np.array([1.0, 0.0]), None
        )
        out = evaluate(scan("t", T).distinct(["k"]), Catalog({"t": t}))
        assert list(out.column("k")) == [0]


class TestAggregate:
    def test_scalar_aggregate(self, cat):
        out = evaluate(scan("t", T).aggregate([], [sum_("x", "sx"), count("n")]), cat)
        assert out.row(0) == {"sx": 15.0, "n": 5.0}

    def test_grouped(self, cat):
        out = evaluate(scan("t", T).aggregate(["k"], [avg("x", "ax")]), cat)
        by_k = {r["k"]: r["ax"] for r in out.iter_rows()}
        assert by_k == {0: 1.5, 1: 3.5, 2: 5.0}

    def test_weighted_aggregate(self, cat):
        scaled = cat.get("t").scale(3.0)
        out = evaluate(
            scan("t", T).aggregate([], [sum_("x", "sx"), count("n"), avg("x", "ax")]),
            cat.replace("t", scaled),
        )
        row = out.row(0)
        assert row["sx"] == 45.0
        assert row["n"] == 15.0
        assert row["ax"] == 3.0  # AVG is scale-free

    def test_minmax(self, cat):
        out = evaluate(scan("t", T).aggregate(["k"], [min_("x", "lo"), max_("x", "hi")]), cat)
        by_k = {r["k"]: (r["lo"], r["hi"]) for r in out.iter_rows()}
        assert by_k[0] == (1.0, 2.0)

    def test_stddev_grouped(self, cat):
        out = evaluate(scan("t", T).aggregate(["k"], [stddev("x", "sd")]), cat)
        by_k = {r["k"]: r["sd"] for r in out.iter_rows()}
        assert by_k[0] == pytest.approx(0.5)

    def test_group_order_first_appearance(self):
        t = relation_from_columns(T, k=[5, 1, 5, 3], x=[1.0, 2.0, 3.0, 4.0])
        out = evaluate(scan("t", T).aggregate(["k"], [count("n")]), Catalog({"t": t}))
        assert list(out.column("k")) == [5, 1, 3]

    def test_scalar_aggregate_on_empty(self):
        t = Relation.empty(T)
        out = evaluate(scan("t", T).aggregate([], [count("n")]), Catalog({"t": t}))
        assert out.row(0)["n"] == 0.0

    def test_grouped_aggregate_on_empty(self):
        t = Relation.empty(T)
        out = evaluate(scan("t", T).aggregate(["k"], [count("n")]), Catalog({"t": t}))
        assert len(out) == 0

    def test_expression_argument(self, cat):
        out = evaluate(
            scan("t", T).aggregate([], [sum_(col("x") * col("x"), "sq")]), cat
        )
        assert out.row(0)["sq"] == 55.0

    def test_multi_column_group(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.STRING), ("x", ColumnType.FLOAT)])
        t = relation_from_columns(s, a=[1, 1, 2], b=["u", "u", "v"], x=[1.0, 2.0, 3.0])
        out = evaluate(scan("t", s).aggregate(["a", "b"], [sum_("x", "sx")]), Catalog({"t": t}))
        assert len(out) == 2


class TestNestedPlan:
    def test_sbi_shape(self, cat):
        inner = scan("t", T).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", T)
            .join(inner, keys=[])
            .select(col("x") > col("ax"))
            .aggregate([], [count("above")])
        )
        out = evaluate(plan, cat)
        assert out.row(0)["above"] == 2.0  # x in {4, 5} above mean 3


class TestStats:
    def test_rows_processed_counted(self, cat):
        stats = EvalStats()
        evaluate(scan("t", T).select(col("x") > 0), cat, stats)
        assert stats.rows_processed == 10  # scan(5) + select(5)
        assert stats.rows_by_operator["select"] == 5

    def test_bytes_shipped_on_join(self, cat):
        stats = EvalStats()
        evaluate(scan("t", T).join(scan("d", D), keys=["k"]), cat, stats)
        assert stats.bytes_shipped > 0
