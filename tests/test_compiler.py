"""Tests for the online query rewriter/compiler."""

import pytest

from repro.core.compiler import (
    CompiledQuery,
    OnlineCompiler,
    SmallSegmentUnit,
    StreamPipelineUnit,
    compile_online,
)
from repro.core.operators import (
    AggregateOp,
    FilterOp,
    ProjectOp,
    RowSinkOp,
    ScanOp,
    StaticJoinOp,
    UncertainFilterOp,
    UncertainJoinOp,
    UnionOp,
)
from repro.errors import UnsupportedQueryError
from repro.relational import Catalog, avg, col, count, relation_from_columns, scan, sum_
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx


def catalog():
    dim = relation_from_columns(DIM_SCHEMA, k=[0, 1, 2], label=["a", "b", "c"])
    return Catalog({"t": random_kx(300, seed=1, groups=3), "dim": dim})


def spine_of(compiled: CompiledQuery):
    """The root operator of the first stream pipeline unit."""
    for unit in compiled.units:
        if isinstance(unit, StreamPipelineUnit):
            return unit.root_op
    raise AssertionError("no stream pipeline")


class TestFlatCompilation:
    def test_flat_aggregate_is_single_pipeline(self):
        plan = scan("t", KX_SCHEMA).select(col("x") > 1).aggregate([], [count("n")])
        compiled = compile_online(plan, catalog(), "t")
        pipelines = [u for u in compiled.units if isinstance(u, StreamPipelineUnit)]
        assert len(pipelines) == 1
        agg = pipelines[0].root_op
        assert isinstance(agg, AggregateOp)
        assert isinstance(agg.child, FilterOp)
        assert isinstance(agg.child.child, ScanOp)

    def test_deterministic_select_compiles_to_filter(self):
        plan = scan("t", KX_SCHEMA).select(col("x") > 1).aggregate([], [count("n")])
        compiled = compile_online(plan, catalog(), "t")
        assert isinstance(spine_of(compiled).child, FilterOp)

    def test_static_join_side_precomputed(self):
        plan = (
            scan("t", KX_SCHEMA)
            .join(scan("dim", DIM_SCHEMA), keys=["k"])
            .aggregate(["label"], [count("n")])
        )
        compiled = compile_online(plan, catalog(), "t")
        join = spine_of(compiled).child
        assert isinstance(join, StaticJoinOp)
        assert len(join.side) == 3

    def test_filtered_static_side_evaluated_at_compile_time(self):
        dim_filtered = scan("dim", DIM_SCHEMA).select(col("label").ne("a"))
        plan = (
            scan("t", KX_SCHEMA).join(dim_filtered, keys=["k"]).aggregate([], [count("n")])
        )
        compiled = compile_online(plan, catalog(), "t")
        join = spine_of(compiled).child
        assert len(join.side) == 2

    def test_plain_spj_gets_row_sink(self):
        plan = scan("t", KX_SCHEMA).select(col("x") > 40.0)
        compiled = compile_online(plan, catalog(), "t")
        assert isinstance(compiled.result_sink, RowSinkOp)

    def test_projection_over_stream(self):
        plan = (
            scan("t", KX_SCHEMA)
            .project([("k", "k"), ("x2", col("x") * 2)])
            .aggregate(["k"], [sum_("x2", "s")])
        )
        compiled = compile_online(plan, catalog(), "t")
        assert isinstance(spine_of(compiled).child, ProjectOp)


class TestNestedCompilation:
    def sbi(self):
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        return (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select(col("x") > col("ax"))
            .aggregate([], [count("n")])
        )

    def test_two_pipelines_for_sbi(self):
        compiled = compile_online(self.sbi(), catalog(), "t")
        pipelines = [u for u in compiled.units if isinstance(u, StreamPipelineUnit)]
        assert len(pipelines) == 2

    def test_inner_block_runs_before_outer(self):
        compiled = compile_online(self.sbi(), catalog(), "t")
        kinds = [type(u).__name__ for u in compiled.units]
        # inner aggregate pipeline, side view, outer pipeline, result leaf
        assert kinds.index("SmallSegmentUnit") > 0
        outer = [
            i
            for i, u in enumerate(compiled.units)
            if isinstance(u, StreamPipelineUnit)
        ]
        assert outer[-1] > kinds.index("SmallSegmentUnit") - 1

    def test_uncertain_select_compiled(self):
        compiled = compile_online(self.sbi(), catalog(), "t")
        outer = [
            u.root_op for u in compiled.units if isinstance(u, StreamPipelineUnit)
        ][-1]
        assert isinstance(outer.child, UncertainFilterOp)
        assert isinstance(outer.child.child, UncertainJoinOp)

    def test_uncertain_join_attaches_refs(self):
        compiled = compile_online(self.sbi(), catalog(), "t")
        outer = [
            u.root_op for u in compiled.units if isinstance(u, StreamPipelineUnit)
        ][-1]
        join = outer.child.child
        assert join.attach_cols == [("ax", True)]

    def test_or_over_uncertain_rejected(self):
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .select((col("x") > col("ax")) | (col("y") > 0))
            .aggregate([], [count("n")])
        )
        with pytest.raises(UnsupportedQueryError, match="simple comparison"):
            compile_online(plan, catalog(), "t")

    def test_projection_computing_on_uncertain_rejected(self):
        inner = scan("t", KX_SCHEMA).aggregate([], [avg("x", "ax")])
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[])
            .project([("bad", col("ax") * 2), ("x", "x")])
            .select(col("x") > col("bad"))
            .aggregate([], [count("n")])
        )
        with pytest.raises(UnsupportedQueryError, match="lazy evaluation"):
            compile_online(plan, catalog(), "t")

    def test_union_of_streams(self):
        plan = (
            scan("t", KX_SCHEMA)
            .union(scan("t", KX_SCHEMA))
            .aggregate([], [count("n")])
        )
        compiled = compile_online(plan, catalog(), "t")
        assert isinstance(spine_of(compiled).child, UnionOp)

    def test_distinct_over_stream_lowers_to_aggregate(self):
        plan = scan("t", KX_SCHEMA).distinct(["k"])
        compiled = compile_online(plan, catalog(), "t")
        assert any(
            isinstance(u, StreamPipelineUnit) and isinstance(u.root_op, AggregateOp)
            for u in compiled.units
        )


class TestStaticQueries:
    def test_fully_static_query(self):
        plan = scan("dim", DIM_SCHEMA).aggregate([], [count("n")])
        compiled = compile_online(plan, catalog(), "t")
        assert compiled.result_small is not None

    def test_result_schema_exposed(self):
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
        compiled = compile_online(plan, catalog(), "t")
        assert compiled.result_schema.names == ["k", "n"]

    def test_reset_clears_all_units(self):
        plan = scan("t", KX_SCHEMA).aggregate(["k"], [count("n")])
        compiled = compile_online(plan, catalog(), "t")
        compiled.reset()  # no error on fresh units


class TestTagsValidation:
    def test_analyze_runs_at_compile(self):
        compiler = OnlineCompiler(
            scan("t", KX_SCHEMA).aggregate([], [count("n")]), catalog(), "t"
        )
        assert compiler.tags  # populated in constructor
