"""Tests for the small-segment interpreter (per-trial recompute path)."""

import numpy as np
import pytest

from repro.core.blocks import (
    MEMBER_FALSE,
    MEMBER_TRUE,
    MEMBER_UNKNOWN,
    BlockOutput,
    GroupValue,
    OnlineConfig,
    RuntimeContext,
)
from repro.core.smallplan import (
    SmallAggregate,
    SmallBlockLeaf,
    SmallDistinct,
    SmallJoin,
    SmallPlanUnit,
    SmallProject,
    SmallRename,
    SmallSelect,
    SmallStaticLeaf,
    URow,
    classify_row_predicate,
)
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.relational import Catalog, avg, col, count, sum_
from repro.relational.expressions import Col
from tests.conftest import DIM_SCHEMA
from repro.relational import relation_from_columns

T = 4


def make_ctx():
    ctx = RuntimeContext(Catalog({}), "t", 100, OnlineConfig(num_trials=T))
    ctx.batch_no = 1
    return ctx


def uv(value, trials, lo, hi, key=(), colname="v", block=1):
    return UncertainValue(
        value,
        np.asarray(trials, dtype=float),
        VariationRange(lo, hi),
        LineageRef(block, key, colname),
    )


def publish_block(ctx, rows, block=1, key_cols=("g",)):
    out = BlockOutput(block, list(key_cols), [])
    for key, values, certain in rows:
        out.publish(GroupValue(key, values, certain), is_new=True)
    ctx.blocks[block] = out
    return out


class TestLeaves:
    def test_block_leaf_reads_groups(self):
        ctx = make_ctx()
        publish_block(
            ctx,
            [(("a",), {"g": "a", "v": uv(1.0, [1] * T, 0, 2, ("a",))}, True)],
        )
        rows = SmallBlockLeaf(1).rows(ctx)
        assert len(rows) == 1
        assert rows[0].certain

    def test_block_leaf_missing_block(self):
        assert SmallBlockLeaf(99).rows(make_ctx()) == []

    def test_uncertain_group_is_unknown_member(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a"}, False)])
        rows = SmallBlockLeaf(1).rows(ctx)
        assert rows[0].member_status == MEMBER_UNKNOWN

    def test_static_leaf(self):
        rel = relation_from_columns(DIM_SCHEMA, k=[1, 2], label=["a", "b"])
        rows = SmallStaticLeaf(rel).rows(make_ctx())
        assert len(rows) == 2 and all(r.certain for r in rows)


class TestSelect:
    def leaf(self, ctx, value=10.0, trials=None, lo=8.0, hi=12.0):
        trials = trials if trials is not None else [10.0] * T
        publish_block(
            ctx, [(("a",), {"g": "a", "v": uv(value, trials, lo, hi, ("a",))}, True)]
        )
        return SmallBlockLeaf(1)

    def test_stable_true(self):
        ctx = make_ctx()
        node = SmallSelect(self.leaf(ctx), [Col("v") > 5.0])
        rows = node.rows(ctx)
        assert rows[0].member_status == MEMBER_TRUE

    def test_stable_false_retained_with_flag(self):
        ctx = make_ctx()
        node = SmallSelect(self.leaf(ctx), [Col("v") > 50.0])
        rows = node.rows(ctx)
        assert len(rows) == 1
        assert rows[0].member_status == MEMBER_FALSE
        assert not rows[0].member_point

    def test_unknown_gets_trial_masks(self):
        ctx = make_ctx()
        node = SmallSelect(
            self.leaf(ctx, trials=[9.0, 10.0, 11.0, 12.0]), [Col("v") > 10.5]
        )
        rows = node.rows(ctx)
        assert rows[0].member_status == MEMBER_UNKNOWN
        assert list(rows[0].exist_trials) == [False, False, True, True]
        assert not rows[0].member_point  # point estimate 10 fails

    def test_deterministic_predicate(self):
        ctx = make_ctx()
        node = SmallSelect(self.leaf(ctx), [Col("g").eq("a")])
        assert node.rows(ctx)[0].member_status == MEMBER_TRUE

    def test_false_rows_skip_reclassification(self):
        ctx = make_ctx()
        inner = SmallSelect(self.leaf(ctx), [Col("v") > 50.0])
        outer = SmallSelect(inner, [Col("v") > 0.0])
        rows = outer.rows(ctx)
        assert rows[0].member_status == MEMBER_FALSE


class TestProjectRenameDistinct:
    def test_project_arithmetic_propagates_uncertainty(self):
        ctx = make_ctx()
        publish_block(
            ctx, [(("a",), {"g": "a", "v": uv(10.0, [10.0] * T, 8, 12, ("a",))}, True)]
        )
        node = SmallProject(SmallBlockLeaf(1), [("w", Col("v") * 2)])
        out = node.rows(ctx)[0].values["w"]
        assert isinstance(out, UncertainValue)
        assert out.value == 20.0
        assert (out.vrange.lo, out.vrange.hi) == (16.0, 24.0)

    def test_rename(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a"}, True)])
        rows = SmallRename(SmallBlockLeaf(1), {"g": "grp"}).rows(ctx)
        assert rows[0].values == {"grp": "a"}

    def test_distinct_merges(self):
        ctx = make_ctx()
        publish_block(
            ctx,
            [
                (("a", 1), {"g": "a", "i": 1}, True),
                (("a", 2), {"g": "a", "i": 2}, False),
            ],
            key_cols=("g", "i"),
        )
        rows = SmallDistinct(SmallBlockLeaf(1), ["g"]).rows(ctx)
        assert len(rows) == 1
        assert rows[0].member_status == MEMBER_TRUE  # certain member wins


class TestJoin:
    def test_key_join_combines_values(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a", "v": 1.0}, True)], block=1)
        publish_block(ctx, [(("a",), {"g2": "a", "w": 2.0}, True)], block=2)
        node = SmallJoin(SmallBlockLeaf(1), SmallBlockLeaf(2), [("g", "g2")])
        rows = node.rows(ctx)
        assert rows[0].values == {"g": "a", "v": 1.0, "w": 2.0}

    def test_cross_join(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a"}, True), (("b",), {"g": "b"}, True)], block=1)
        publish_block(ctx, [((), {"w": 2.0}, True)], block=2, key_cols=())
        rows = SmallJoin(SmallBlockLeaf(1), SmallBlockLeaf(2), []).rows(ctx)
        assert len(rows) == 2

    def test_membership_ands(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a"}, False)], block=1)
        publish_block(ctx, [(("a",), {"g2": "a"}, True)], block=2)
        rows = SmallJoin(SmallBlockLeaf(1), SmallBlockLeaf(2), [("g", "g2")]).rows(ctx)
        assert not rows[0].certain


class TestAggregate:
    def test_per_trial_aggregation(self):
        ctx = make_ctx()
        publish_block(
            ctx,
            [
                (("a",), {"g": "a", "v": uv(1.0, [1, 2, 3, 4], 0, 5, ("a",))}, True),
                (("b",), {"g": "b", "v": uv(10.0, [10, 20, 30, 40], 0, 50, ("b",))}, True),
            ],
        )
        node = SmallAggregate(SmallBlockLeaf(1), [], [avg("v", "av")], block_id=50)
        rows = node.rows(ctx)
        out = rows[0].values["av"]
        assert out.value == 5.5
        assert list(out.trials) == [5.5, 11.0, 16.5, 22.0]

    def test_publishes_block(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a", "v": 3.0}, True)])
        SmallAggregate(SmallBlockLeaf(1), [], [sum_("v", "sv")], block_id=50).rows(ctx)
        assert 50 in ctx.blocks

    def test_excludes_stable_false_rows(self):
        ctx = make_ctx()
        publish_block(
            ctx, [(("a",), {"g": "a", "v": uv(10.0, [10.0] * T, 8, 12, ("a",))}, True)]
        )
        filtered = SmallSelect(SmallBlockLeaf(1), [Col("v") > 100.0])
        rows = SmallAggregate(filtered, [], [count("n")], block_id=51).rows(ctx)
        assert rows[0].values["n"].value == 0.0

    def test_counts_recomputed_tuples(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a", "v": 1.0}, True)])
        SmallAggregate(SmallBlockLeaf(1), [], [count("n")], block_id=52).rows(ctx)
        assert ctx.metrics.recomputed_tuples == 1


class TestUnit:
    def test_publish_as_view(self):
        ctx = make_ctx()
        publish_block(ctx, [(("a",), {"g": "a", "v": 1.0}, True)])
        unit = SmallPlanUnit(
            SmallBlockLeaf(1), publish_id=77, key_cols=["g"], value_cols=["v"]
        )
        unit.run(ctx)
        assert ctx.blocks[77].get(("a",)).values["v"] == 1.0

    def test_result_rows_filter_nonmembers(self):
        ctx = make_ctx()
        publish_block(
            ctx, [(("a",), {"g": "a", "v": uv(10.0, [10.0] * T, 8, 12, ("a",))}, True)]
        )
        unit = SmallPlanUnit(SmallSelect(SmallBlockLeaf(1), [Col("v") > 100.0]))
        unit.run(ctx)
        assert unit.result_rows() == []


class TestClassifyRowPredicate:
    def test_deterministic(self):
        status, point, trials, sources = classify_row_predicate(
            Col("a") > 1.0, {"a": 2.0}, T
        )
        assert status == MEMBER_TRUE and point and trials is None and sources == ()

    def test_uncertain_resolved(self):
        value = uv(10.0, [10.0] * T, 8, 12)
        status, point, trials, sources = classify_row_predicate(
            Col("a") > 100.0, {"a": value}, T
        )
        assert status == MEMBER_FALSE
        assert sources == value.sources

    def test_uncertain_unknown_trials(self):
        value = uv(10.0, [9.0, 10.0, 11.0, 12.0], 8, 12)
        status, point, trials, _ = classify_row_predicate(
            Col("a") > 10.5, {"a": value}, T
        )
        assert status == MEMBER_UNKNOWN
        assert list(trials) == [False, False, True, True]

    def test_equality_ranges(self):
        value = uv(10.0, [10.0] * T, 8, 12)
        status, _, _, _ = classify_row_predicate(Col("a").eq(99.0), {"a": value}, T)
        assert status == MEMBER_FALSE

    def test_not_equal_mirrors(self):
        value = uv(10.0, [10.0] * T, 8, 12)
        status, _, _, _ = classify_row_predicate(Col("a").ne(99.0), {"a": value}, T)
        assert status == MEMBER_TRUE
