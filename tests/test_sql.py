"""Tests for the SQL front-end: lexer, parser, planner."""

import numpy as np
import pytest

from repro.baselines import run_batch
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.errors import SQLError
from repro.relational import Catalog, ColumnType, relation_from_columns
from repro.sql import UDF, SQLPlanner, parse, plan_sql, tokenize
from repro.sql import ast
from tests.conftest import DIM_SCHEMA, KX_SCHEMA, random_kx


def catalog():
    dim = relation_from_columns(DIM_SCHEMA, k=list(range(6)), label=list("abcdef"))
    return Catalog({"t": random_kx(800, seed=3, groups=6), "dim": dim})


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select FROM Where")
        assert [t.value for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        toks = tokenize("foo Bar_9")
        assert [t.value for t in toks[:-1]] == ["foo", "Bar_9"]

    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 2.5e-2")
        assert [t.value for t in toks[:-1]] == ["1", "2.5", "1e3", "2.5e-2"]

    def test_strings(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind == "string"
        assert toks[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SQLError, match="unterminated"):
            tokenize("'oops")

    def test_operators_longest_match(self):
        toks = tokenize("<= <> >=")
        assert [t.value for t in toks[:-1]] == ["<=", "<>", ">="]

    def test_comments_skipped(self):
        toks = tokenize("SELECT -- a comment\n x")
        assert [t.value for t in toks[:-1]] == ["SELECT", "x"]

    def test_bad_character(self):
        with pytest.raises(SQLError, match="unexpected character"):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("x")[-1].kind == "eof"


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT x, y AS why FROM t")
        assert len(stmt.items) == 2
        assert stmt.items[1].alias == "why"

    def test_table_alias(self):
        stmt = parse("SELECT x FROM t alias1")
        assert stmt.tables[0].binding == "alias1"

    def test_where_precedence(self):
        stmt = parse("SELECT x FROM t WHERE a > 1 AND b < 2 OR c = 3")
        assert isinstance(stmt.where, ast.BoolOp)
        assert stmt.where.op == "OR"

    def test_arith_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT -x FROM t")
        assert stmt.items[0].expr.op == "-"

    def test_group_by_having(self):
        stmt = parse("SELECT k, COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 3")
        assert [g.name for g in stmt.group_by] == ["k"]
        assert stmt.having is not None

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        assert stmt.items[0].expr.star

    def test_scalar_subquery(self):
        stmt = parse("SELECT x FROM t WHERE x > (SELECT AVG(x) FROM t)")
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_in_subquery(self):
        stmt = parse("SELECT x FROM t WHERE k IN (SELECT k FROM t)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_not_in_subquery(self):
        stmt = parse("SELECT x FROM t WHERE k NOT IN (SELECT k FROM t)")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse("SELECT x FROM t WHERE k IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.values) == 3

    def test_between(self):
        stmt = parse("SELECT x FROM t WHERE x BETWEEN 1 AND 2")
        assert isinstance(stmt.where, ast.Between)

    def test_qualified_columns(self):
        stmt = parse("SELECT t.x FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_explicit_join(self):
        stmt = parse("SELECT x FROM t JOIN dim ON t.k = dim.k")
        assert len(stmt.joins) == 1

    def test_distinct(self):
        assert parse("SELECT DISTINCT k FROM t").distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT x FROM t extra ,")
        with pytest.raises(SQLError, match="trailing"):
            parse("SELECT x FROM t GROUP BY k )")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT x")


class TestPlanner:
    def run_both(self, sql, cat=None, num_batches=5, udfs=None):
        cat = cat or catalog()
        plan = plan_sql(sql, cat.schemas(), udfs)
        exact = run_batch(plan, cat).relation
        eng = OnlineQueryEngine(cat, "t", OnlineConfig(num_trials=20, seed=2))
        final = eng.run_to_completion(plan, num_batches)
        assert exact.to_multiset(2) == final.to_relation().to_multiset(2)
        return exact

    def test_projection_only(self):
        cat = catalog()
        plan = plan_sql("SELECT x, x * 2 AS dbl FROM t", cat.schemas())
        out = run_batch(plan, cat).relation
        assert out.schema.names == ["x", "dbl"]

    def test_flat_group_by(self):
        out = self.run_both("SELECT k, SUM(y) AS sy, COUNT(*) AS n FROM t GROUP BY k")
        assert len(out) == 6

    def test_where_filters(self):
        out = self.run_both("SELECT COUNT(*) AS n FROM t WHERE x > 20 AND y < 120")
        assert out.row(0)["n"] > 0

    def test_join_via_where_equality(self):
        out = self.run_both(
            "SELECT label, COUNT(*) AS n FROM t, dim WHERE t.k = dim.k GROUP BY label"
        )
        assert len(out) == 6

    def test_explicit_join_syntax(self):
        out = self.run_both(
            "SELECT label, AVG(y) AS ay FROM t JOIN dim ON t.k = dim.k GROUP BY label"
        )
        assert len(out) == 6

    def test_uncorrelated_scalar_subquery(self):
        self.run_both(
            "SELECT AVG(y) AS ay FROM t WHERE x > (SELECT AVG(x) FROM t)"
        )

    def test_correlated_scalar_subquery(self):
        self.run_both(
            "SELECT k, COUNT(*) AS n FROM t "
            "WHERE x > (SELECT AVG(x) FROM t t2 WHERE t2.k = t.k) GROUP BY k"
        )

    def test_subquery_inside_arithmetic(self):
        self.run_both(
            "SELECT COUNT(*) AS n FROM t WHERE x < 0.5 * (SELECT AVG(x) FROM t)"
        )

    def test_in_subquery_with_having(self):
        self.run_both(
            "SELECT k, SUM(y) AS sy FROM t "
            "WHERE k IN (SELECT k FROM t GROUP BY k HAVING SUM(x) > 4000) GROUP BY k"
        )

    def test_having_clause(self):
        self.run_both(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k HAVING COUNT(*) > 100"
        )

    def test_post_aggregation_arithmetic(self):
        cat = catalog()
        plan = plan_sql("SELECT SUM(x) / 7 AS weekly FROM t", cat.schemas())
        out = run_batch(plan, cat).relation
        manual = run_batch(
            plan_sql("SELECT SUM(x) AS s FROM t", cat.schemas()), cat
        ).relation
        assert out.row(0)["weekly"] == pytest.approx(manual.row(0)["s"] / 7)

    def test_between(self):
        self.run_both("SELECT COUNT(*) AS n FROM t WHERE x BETWEEN 10 AND 30")

    def test_in_list(self):
        self.run_both("SELECT COUNT(*) AS n FROM t WHERE k IN (1, 3, 5)")

    def test_udf(self):
        udfs = {"halve": UDF(lambda v: np.asarray(v) / 2.0, vectorized=True)}
        self.run_both(
            "SELECT k, AVG(halve(x)) AS hx FROM t GROUP BY k", udfs=udfs
        )

    def test_distinct(self):
        cat = catalog()
        plan = plan_sql("SELECT DISTINCT k FROM t", cat.schemas())
        out = run_batch(plan, cat).relation
        assert len(out) == 6

    def test_unknown_table(self):
        with pytest.raises(SQLError, match="unknown table"):
            plan_sql("SELECT x FROM nope", catalog().schemas())

    def test_unknown_column(self):
        with pytest.raises(SQLError, match="unknown column"):
            plan_sql("SELECT zzz FROM t", catalog().schemas())

    def test_unknown_function(self):
        with pytest.raises(SQLError, match="unknown function"):
            plan_sql("SELECT frobnicate(x) FROM t", catalog().schemas())

    def test_not_in_subquery_rejected(self):
        with pytest.raises(SQLError, match="positive algebra"):
            plan_sql(
                "SELECT x FROM t WHERE k NOT IN (SELECT k FROM t)",
                catalog().schemas(),
            )

    def test_scalar_subquery_must_be_single_item(self):
        with pytest.raises(SQLError, match="exactly one"):
            plan_sql(
                "SELECT x FROM t WHERE x > (SELECT x, y FROM t)",
                catalog().schemas(),
            )

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(SQLError):
            plan_sql("SELECT x FROM t WHERE SUM(x) > 1", catalog().schemas())

    def test_self_join_collision_renamed(self):
        cat = catalog()
        plan = plan_sql(
            "SELECT COUNT(*) AS n FROM t a, dim b, dim c "
            "WHERE a.k = b.k AND a.k = c.k",
            cat.schemas(),
        )
        out = run_batch(plan, cat).relation
        assert out.row(0)["n"] == 800
