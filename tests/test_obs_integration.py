"""End-to-end observability acceptance tests.

The contract: a traced engine run emits a schema-valid event stream
whose span taxonomy covers the whole engine (run → batch → wave → unit
→ op, plus bootstrap / range-check / recovery-replay), the Chrome
export of a real trace is well-formed, and — the load-bearing half —
tracing changes *nothing* about the results, bit for bit, under either
executor.
"""

import json

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.errors import RangeIntegrityError, UnsupportedQueryError
from repro.obs import Observability, to_chrome, validate_events
from repro.relational import Catalog, avg, col, count, min_, scan
from repro.workloads import TPCH_QUERIES, generate_tpch
from tests.conftest import KX_SCHEMA, random_kx
from tests.test_executor import _assert_rows_identical

NUM_BATCHES = 4


@pytest.fixture(scope="module")
def traced_q17():
    """One traced parallel run of nested TPC-H Q17; (events, results)."""
    catalog = generate_tpch(scale=0.3, seed=3).catalog()
    spec = TPCH_QUERIES["Q17"]
    obs, sink = Observability.in_memory()
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(num_trials=10, seed=7),
        executor="parallel",
        obs=obs,
    )
    results = list(engine.run(spec.plan, NUM_BATCHES))
    engine.executor.close()
    obs.close()
    return sink.events, results


class TestTracedRun:
    def test_all_events_schema_valid(self, traced_q17):
        events, _ = traced_q17
        assert validate_events(events) == len(events) > 0

    def test_span_taxonomy_covers_engine(self, traced_q17):
        events, _ = traced_q17
        names = {e["name"] for e in events if e["kind"] == "span"}
        # Q17 is nested (side view + correlated filter), so the full
        # taxonomy must show up, including bootstrap and range checks.
        assert {
            "run", "batch", "wave", "unit", "op", "bootstrap", "range-check"
        } <= names

    def test_run_span_describes_the_run(self, traced_q17):
        events, _ = traced_q17
        [run] = [e for e in events if e["kind"] == "span" and e["name"] == "run"]
        assert run["args"]["num_batches"] == NUM_BATCHES
        assert run["args"]["executor"] == "parallel"
        # The run span closes last, so it spans every batch span.
        for e in events:
            if e["kind"] == "span" and e["name"] == "batch":
                assert run["ts"] <= e["ts"]
                assert e["ts"] + e["dur"] <= run["ts"] + run["dur"]

    def test_one_batch_span_per_batch(self, traced_q17):
        events, _ = traced_q17
        batches = [
            e["batch"] for e in events
            if e["kind"] == "span" and e["name"] == "batch"
        ]
        assert sorted(batches) == list(range(1, NUM_BATCHES + 1))

    def test_unit_spans_land_on_unit_tracks(self, traced_q17):
        events, _ = traced_q17
        tracks = {
            e["track"] for e in events
            if e["kind"] == "span" and e["name"] == "unit"
        }
        assert tracks and all(t.startswith("unit:") for t in tracks)

    def test_paper_signal_counters_present(self, traced_q17):
        events, _ = traced_q17
        counters = {e["name"] for e in events if e["kind"] == "counter"}
        for prefix in (
            "nd.rows",            # |U_i| ND-set sizes per operator
            "sentinels",          # recorded sentinels per operator
            "state.total_bytes",  # overall state footprint
            "state.entry.bytes",  # per StateStore entry
            "state.nd_bytes",     # pruned-vs-cached split
            "state.resolved_bytes",
            "op.rows_in",
            "op.rows_out",
            "range.width",        # variation-range width histogram
        ):
            assert any(name.startswith(prefix) for name in counters), prefix

    def test_chrome_export_of_real_trace(self, traced_q17):
        events, _ = traced_q17
        doc = to_chrome(events)
        json.dumps(doc, allow_nan=False)  # Perfetto-loadable JSON
        by_ph = {}
        for e in doc["traceEvents"]:
            by_ph.setdefault(e["ph"], []).append(e)
        assert {"M", "X", "C"} <= set(by_ph)
        # Every track got a thread-name record; unit tracks are distinct.
        names = {e["args"]["name"] for e in by_ph["M"]}
        assert "main" in names
        assert any(n.startswith("unit:") for n in names)


class TestTracingIsPure:
    """Bit-identical results with tracing on vs off, both executors."""

    @pytest.mark.parametrize("executor", ["serial", "parallel"])
    def test_results_identical(self, executor):
        catalog = generate_tpch(scale=0.2, seed=3).catalog()
        spec = TPCH_QUERIES["Q17"]

        def run(obs):
            engine = OnlineQueryEngine(
                catalog,
                spec.streamed_table,
                OnlineConfig(num_trials=8, seed=5),
                executor=executor,
                obs=obs,
            )
            out = list(engine.run(spec.plan, 3))
            engine.executor.close()
            return out

        plain = run(None)
        obs, sink = Observability.in_memory()
        traced = run(obs)
        obs.close()
        assert sink.events  # the traced run really did trace
        names = plain[0].schema.names
        for pp, pt in zip(plain, traced):
            assert pp.batch_no == pt.batch_no
            _assert_rows_identical(
                pp.rows, pt.rows, names,
                f"{executor} batch {pp.batch_no} tracing on/off",
            )


class TestWarningEvents:
    def test_unsupported_query_rejection_on_timeline(self):
        catalog = Catalog({"t": random_kx(100, seed=0, groups=3)})
        plan = scan("t", KX_SCHEMA).aggregate([], [min_("x", "mx")])
        obs, sink = Observability.in_memory()
        engine = OnlineQueryEngine(
            catalog, "t", OnlineConfig(num_trials=5), obs=obs
        )
        with pytest.raises(UnsupportedQueryError):
            engine.run_to_completion(plan, 3)
        [warning] = [e for e in sink.events if e["kind"] == "warning"]
        assert warning["name"] == "unsupported-query"
        assert "MIN" in warning["args"]["message"]
        assert "node" in warning["args"]
        validate_events(sink.events)

    def test_attach_obs_wires_verifier_emit(self):
        from repro.core.blocks import RuntimeContext

        ctx = RuntimeContext(
            Catalog({"t": random_kx(20)}), "t", 20,
            OnlineConfig(num_trials=5, verify=True),
        )
        obs, _ = Observability.in_memory()
        ctx.attach_obs(obs)
        assert ctx.verifier.emit == obs.tracer.warning
        # The null session must NOT wire it (exception-only verification).
        ctx2 = RuntimeContext(
            Catalog({"t": random_kx(20)}), "t", 20,
            OnlineConfig(num_trials=5, verify=True),
        )
        from repro.obs import NULL_OBS

        ctx2.attach_obs(NULL_OBS)
        assert ctx2.verifier.emit is None

    def test_contract_violation_emitted_as_warning(self):
        from repro.analysis.verify import ContractVerifier
        from repro.errors import ContractViolationError

        obs, sink = Observability.in_memory()
        verifier = ContractVerifier()
        verifier.emit = obs.tracer.warning
        verifier.begin_batch(3)

        class FakeRule:
            entries = frozenset({"declared"})
            nd_entry = None

        class FakeOp:
            label = "join:9"
            state_rule = FakeRule

            def state_items(self):
                return [("declared", 1), ("stray", 2)]

        with pytest.raises(ContractViolationError):
            verifier._check_state_entries(FakeOp())
        obs.flush()
        [warning] = [e for e in sink.events if e["kind"] == "warning"]
        assert warning["name"] == "contract-violation"
        assert warning["batch"] == 3
        assert warning["args"]["check"] == "undeclared-state"
        assert warning["args"]["op"] == "join:9"
        assert "stray" in warning["args"]["message"]
        validate_events(sink.events)


class TestRecoveryOnTimeline:
    def test_forced_recovery_replay_traced(self, monkeypatch):
        from repro.core.sentinels import SentinelStore

        original = SentinelStore.check
        fired = []

        def forced(self, ctx):
            # Fail the first live range check of batch 2, exactly once.
            if (
                not fired
                and ctx.batch_no >= 2
                and ctx.monitor.enabled
                and not ctx.monitor.replaying
            ):
                fired.append(True)
                ctx.monitor.record_failure()
                raise RangeIntegrityError(
                    "forced failure", recover_from_batch=0
                )
            return original(self, ctx)

        monkeypatch.setattr(SentinelStore, "check", forced)

        catalog = Catalog({"t": random_kx(600, seed=8, groups=5)})
        inner = (
            scan("t", KX_SCHEMA)
            .aggregate(["k"], [avg("x", "ax")])
            .rename({"k": "k2"})
        )
        plan = (
            scan("t", KX_SCHEMA)
            .join(inner, keys=[("k", "k2")])
            .select(col("x") > col("ax"))
            .aggregate(["k"], [count("n")])
        )
        obs, sink = Observability.in_memory()
        engine = OnlineQueryEngine(
            catalog, "t", OnlineConfig(num_trials=8, seed=1), obs=obs
        )
        engine.run_to_completion(plan, NUM_BATCHES)
        obs.close()
        assert fired, "the forced failure path never triggered"

        [replay] = [
            e for e in sink.events
            if e["kind"] == "span" and e["name"] == "recovery-replay"
        ]
        assert replay["batch"] == 2
        assert replay["args"]["replayed_batches"] == 1
        [batch2] = [
            e for e in sink.events
            if e["kind"] == "span" and e["name"] == "batch"
            and e.get("batch") == 2
        ]
        assert batch2["args"]["recovered"] is True
        counters = {e["name"] for e in sink.events if e["kind"] == "counter"}
        assert any(n.startswith("recovery.failures") for n in counters)
        assert any(n.startswith("recovery.replays") for n in counters)
        assert any(n.startswith("recovery.depth") for n in counters)
        validate_events(sink.events)
