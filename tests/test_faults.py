"""Fault injection and checkpointed partial replay (Section 5.1).

The headline acceptance scenario: a forced integrity failure at batch 16
of a 20-batch run with ``checkpoint_interval=4`` must re-execute at most
4 batches (versus 15 from the pristine baseline) and still deliver the
fault-free answer.
"""

from __future__ import annotations

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.errors import RangeIntegrityError, ReproError, TransientUnitError
from repro.faults import FaultPlan, FaultSpec, as_plan, parse_fault, parse_faults
from repro.faults.injector import FaultInjector
from repro.obs import Observability
from tests.test_online_engine import make_catalog, sbi_plan

#: A plan with an uncertain SELECT (x > streaming AVG), so sentinel
#: probes exist for the ``sentinel@N`` fault kind to fire at.
SBI = sbi_plan()


def run_engine(catalog, faults=None, interval=4, executor="serial",
               num_batches=20, with_obs=False, **config):
    sink = None
    if with_obs:
        obs, sink = Observability.in_memory()
    else:
        obs = None
    eng = OnlineQueryEngine(
        catalog,
        "t",
        OnlineConfig(num_trials=16, seed=3, faults=faults,
                     checkpoint_interval=interval, **config),
        executor=executor,
        obs=obs,
    )
    try:
        final = eng.run_to_completion(SBI, num_batches)
    finally:
        eng.executor.close()
    return eng, final, sink


def replay_spans(sink):
    return [e for e in sink.events if e.get("name") == "recovery-replay"]


class TestSpecParsing:
    def test_minimal(self):
        assert parse_fault("sentinel@16") == FaultSpec("sentinel", 16)

    def test_target_and_times(self):
        assert parse_fault("unit@5:aggregate*2") == FaultSpec(
            "unit", 5, "aggregate", 2
        )

    def test_target_may_contain_colon(self):
        assert parse_fault("sentinel@16:select:3") == FaultSpec(
            "sentinel", 16, "select:3"
        )

    def test_roundtrip_str(self):
        for text in ("sentinel@16", "unit@5:aggregate*2", "checkpoint@12"):
            assert str(parse_fault(text)) == text

    def test_plan_parsing_and_str(self):
        plan = parse_faults("sentinel@16, unit@5:aggregate*2 ,checkpoint@12")
        assert len(plan) == 3
        assert str(plan) == "sentinel@16,unit@5:aggregate*2,checkpoint@12"

    def test_empty_plan(self):
        assert len(parse_faults("")) == 0

    @pytest.mark.parametrize("bad", [
        "sentinel",            # no @batch
        "gremlin@4",           # unknown kind
        "sentinel@x",          # non-integer batch
        "sentinel@0",          # batch < 1
        "sentinel@4*0",        # times < 1
        "sentinel@4*x",        # non-integer times
        "batch@4:label",       # batch faults take no target
        "checkpoint@4:label",  # checkpoint faults take no target
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ReproError):
            parse_fault(bad)

    def test_as_plan_coercions(self):
        plan = parse_faults("sentinel@2")
        assert as_plan(plan) is plan
        assert as_plan("sentinel@2") == plan
        with pytest.raises(ReproError):
            as_plan(42)


class _FakeMonitor:
    def __init__(self):
        self.replaying = False
        self.failures = 0

    def record_failure(self):
        self.failures += 1


class _FakeCtx:
    def __init__(self, batch_no):
        self.batch_no = batch_no
        self.monitor = _FakeMonitor()


class TestInjector:
    def test_sentinel_fault_raises_and_disarms(self):
        inj = FaultInjector(parse_faults("sentinel@5"))
        ctx = _FakeCtx(5)
        with pytest.raises(RangeIntegrityError) as exc:
            inj.fire("sentinel", ctx)
        assert exc.value.recover_from_batch == 4
        assert ctx.monitor.failures == 1
        inj.fire("sentinel", ctx)  # disarmed: no raise
        assert inj.exhausted()

    def test_wrong_batch_does_not_fire(self):
        inj = FaultInjector(parse_faults("sentinel@5"))
        inj.fire("sentinel", _FakeCtx(4))
        assert not inj.exhausted()

    def test_target_substring_filter(self):
        inj = FaultInjector(parse_faults("unit@3:aggregate"))
        inj.fire("unit", _FakeCtx(3), label="scan:t")  # no match
        with pytest.raises(TransientUnitError):
            inj.fire("unit", _FakeCtx(3), label="aggregate:7")

    def test_times_honored(self):
        inj = FaultInjector(parse_faults("unit@3*2"))
        for _ in range(2):
            with pytest.raises(TransientUnitError):
                inj.fire("unit", _FakeCtx(3), label="x")
        inj.fire("unit", _FakeCtx(3), label="x")  # third probe: disarmed
        assert len(inj.fired) == 2

    def test_replay_guard_suppresses_integrity_faults(self):
        inj = FaultInjector(parse_faults("sentinel@5,batch@5"))
        ctx = _FakeCtx(5)
        ctx.monitor.replaying = True
        inj.fire("sentinel", ctx)
        inj.fire("batch", ctx)
        assert not inj.exhausted()

    def test_unknown_point_rejected(self):
        inj = FaultInjector(FaultPlan())
        with pytest.raises(ReproError):
            inj.fire("gremlin", _FakeCtx(1))


class TestPartialReplay:
    """The tentpole: recovery restores the newest usable checkpoint and
    replays only the suffix."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return make_catalog(n=2000)

    @pytest.fixture(scope="class")
    def fault_free(self, catalog):
        return run_engine(catalog, with_obs=True)

    def test_acceptance_deep_failure_replays_suffix_only(
        self, catalog, fault_free
    ):
        _, final0, _ = fault_free
        eng, final, sink = run_engine(
            catalog, faults="sentinel@16", with_obs=True
        )
        assert eng.metrics.num_recoveries == 1
        (span,) = replay_spans(sink)
        # Checkpoints every 4 batches: recovery from the batch-16 failure
        # restores the batch-12 snapshot and replays <= 4 batches, not 15.
        assert span["args"]["recover_from"] == 15
        assert span["args"]["start_from"] == 12
        assert span["args"]["replayed_batches"] <= 4
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_without_checkpoints_full_replay(self, catalog, fault_free):
        _, final0, _ = fault_free
        _, final, sink = run_engine(
            catalog, faults="sentinel@16", interval=0, with_obs=True
        )
        (span,) = replay_spans(sink)
        assert span["args"]["start_from"] == 0
        assert span["args"]["replayed_batches"] == 15
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_batch_fault_equivalent(self, catalog, fault_free):
        _, final0, _ = fault_free
        eng, final, sink = run_engine(
            catalog, faults="batch@16", with_obs=True
        )
        assert eng.metrics.num_recoveries == 1
        (span,) = replay_spans(sink)
        assert span["args"]["start_from"] == 12
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_corrupt_checkpoint_falls_back_to_older(self, catalog, fault_free):
        _, final0, _ = fault_free
        _, final, sink = run_engine(
            catalog, faults="checkpoint@12,sentinel@16", with_obs=True
        )
        (span,) = replay_spans(sink)
        # Batch-12 snapshot was poisoned: recovery must skip it and use
        # the batch-8 one, never half-apply the corrupt snapshot.
        assert span["args"]["start_from"] == 8
        assert span["args"]["replayed_batches"] == 7
        warnings = [e for e in sink.events
                    if e.get("name") == "checkpoint-corrupted"]
        assert warnings
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_nonzero_recover_from_regression(self, catalog, fault_free):
        """Recovery depth must come from the failure, not a hardcoded 0
        (the seed bug reported recover_from_batch=0 for every violation)."""
        _, _, sink = run_engine(catalog, faults="sentinel@16", with_obs=True)
        (span,) = replay_spans(sink)
        assert span["args"]["recover_from"] > 0

    def test_recheckpoint_after_recovery_serves_next_failure(
        self, catalog, fault_free
    ):
        """Once the recovered batch succeeds a fresh checkpoint is taken
        there, so a second failure right after replays (almost) nothing."""
        _, final0, _ = fault_free
        eng, final, sink = run_engine(
            catalog, faults="sentinel@16,sentinel@17", with_obs=True
        )
        assert eng.metrics.num_recoveries == 2
        spans = replay_spans(sink)
        assert [s["args"]["start_from"] for s in spans] == [12, 16]
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_checkpoints_dropped_after_restore(
        self, catalog, fault_free, monkeypatch
    ):
        """A failure whose recover_from predates retained checkpoints must
        drop them: they embed the invalidated decisions and may never be
        restored by a later recovery."""
        from repro.core.sentinels import SentinelStore

        _, final0, _ = fault_free
        original = SentinelStore.check
        fired = []

        def forced(self, ctx):
            if ctx.batch_no == 18 and not ctx.monitor.replaying and not fired:
                fired.append(ctx.batch_no)
                ctx.monitor.record_failure()
                raise RangeIntegrityError("forced", recover_from_batch=10)
            return original(self, ctx)

        monkeypatch.setattr(SentinelStore, "check", forced)
        eng, final, sink = run_engine(catalog, with_obs=True)
        (span,) = replay_spans(sink)
        assert span["args"]["start_from"] == 8
        assert span["args"]["replayed_batches"] == 9  # batches 9..17
        # 12 and 16 were newer than the restore point and dropped; the
        # schedule then resumes (batch 20).
        assert eng._checkpoints.batches() == [4, 8, 20]
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    def test_parallel_executor_matches(self, catalog, fault_free):
        _, final0, _ = fault_free
        _, final, _ = run_engine(
            catalog, faults="sentinel@16", executor="parallel"
        )
        assert final.to_relation().bag_equal(final0.to_relation(), 9)


class TestRecoveredMetricsNotDoubleCounted:
    """Satellite: a recovered batch used to keep the failed attempt's
    counters and add the re-run's on top, inflating every run total."""

    def test_totals_match_fault_free(self):
        catalog = make_catalog(n=2000)
        eng0, _, _ = run_engine(catalog)
        eng1, _, _ = run_engine(catalog, faults="sentinel@16")
        assert eng1.metrics.num_recoveries == 1
        total0 = sum(b.new_tuples for b in eng0.metrics.batches)
        total1 = sum(b.new_tuples for b in eng1.metrics.batches)
        # Each row is ingested exactly once either way; the seed bug kept
        # the failed attempt's count and added the re-run's on top.
        assert total0 == total1 == 2000

    def test_recovered_batch_flagged_and_timed(self):
        catalog = make_catalog(n=2000)
        eng, _, _ = run_engine(catalog, faults="sentinel@16")
        bm = eng.metrics.batches[15]
        assert bm.recovered
        assert bm.recovery_seconds > 0


class TestUnitRetry:
    def test_transient_unit_fault_absorbed(self):
        catalog = make_catalog(n=1200)
        eng0, final0, _ = run_engine(catalog, num_batches=8)
        eng1, final1, sink = run_engine(
            catalog, faults="unit@5:aggregate*2", num_batches=8,
            unit_retry_attempts=2, with_obs=True,
        )
        assert eng1.metrics.num_recoveries == 0
        retries = [e for e in sink.events if e.get("name") == "unit-retry"]
        assert len(retries) == 2
        assert final1.to_relation().bag_equal(final0.to_relation(), 9)

    def test_exhausted_retries_propagate(self):
        catalog = make_catalog(n=1200)
        with pytest.raises(TransientUnitError):
            run_engine(
                catalog, faults="unit@5*3", num_batches=8,
                unit_retry_attempts=2,
            )

    def test_parallel_executor_retries_too(self):
        catalog = make_catalog(n=1200)
        _, final0, _ = run_engine(catalog, num_batches=8)
        eng, final, _ = run_engine(
            catalog, faults="unit@5:aggregate", num_batches=8,
            executor="parallel", unit_retry_attempts=2,
        )
        assert eng.metrics.num_recoveries == 0
        assert final.to_relation().bag_equal(final0.to_relation(), 9)

    @pytest.mark.parametrize("executor", ["serial", "parallel"])
    def test_retried_attempts_get_their_own_spans(self, executor):
        # One "unit" span per *attempt*, tagged with its ordinal: two
        # injected transient faults mean attempts 1 and 2 fail (span
        # carries an ``error`` arg) and attempt 3 lands the unit.
        catalog = make_catalog(n=1200)
        _, _, sink = run_engine(
            catalog, faults="unit@5:aggregate*2", num_batches=8,
            executor=executor, unit_retry_attempts=2, with_obs=True,
        )
        unit_spans = [
            e for e in sink.events
            if e["kind"] == "span" and e["name"] == "unit"
        ]
        assert unit_spans
        assert all("attempt" in e["args"] for e in unit_spans)
        retried = [e for e in unit_spans if e["args"]["attempt"] > 1]
        victims = {e["args"]["unit"] for e in retried}
        assert len(victims) == 1, victims
        attempts = sorted(
            e["args"]["attempt"] for e in unit_spans
            if e["args"]["unit"] in victims and e["batch"] == 5
        )
        assert attempts == [1, 2, 3]
        failed = [e for e in unit_spans if "error" in e["args"]]
        assert len(failed) == 2
        assert all(
            "TransientUnitError" in e["args"]["error"] for e in failed
        )

    def test_chrome_export_renders_attempts_as_distinct_slices(self):
        from repro.obs import to_chrome

        catalog = make_catalog(n=1200)
        _, _, sink = run_engine(
            catalog, faults="unit@5:aggregate*2", num_batches=8,
            unit_retry_attempts=2, with_obs=True,
        )
        names = {
            e["name"]
            for e in to_chrome(sink.events)["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "unit" in names  # first attempts keep the plain name
        assert "unit (attempt 2)" in names
        assert "unit (attempt 3)" in names


class TestCliFaults:
    def test_bad_spec_rejected(self):
        from repro.cli import main

        assert main(["--query", "C1", "--scale", "0.02",
                     "--faults", "gremlin@4"]) == 2

    def test_run_with_faults(self):
        from repro.cli import main

        rc = main([
            "--query", "C1", "--scale", "0.02", "--batches", "8",
            "--trials", "8", "--faults", "sentinel@6",
            "--checkpoint-interval", "2", "-q",
        ])
        assert rc == 0
