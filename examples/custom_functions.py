"""Extending iOLAP with UDFs and UDAFs.

The paper generalizes online aggregation to queries with user-defined
(aggregate) functions: any scalar UDF works as-is, and any UDAF that is
Hadamard differentiable — in this library, anything built from weighted
feature sums — gets sketchable state and bootstrap error estimation for
free. Non-smooth aggregates (MIN/MAX) are rejected online, exactly per
the paper's Section 3.3.

Run with:  python examples/custom_functions.py
"""

import numpy as np

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.errors import UnsupportedQueryError
from repro.relational import AggSpec, DecomposableUDAF, Func, col, max_, scan
from repro.relational.schema import ColumnType
from repro.sql import UDF, plan_sql
from repro.workloads import generate_conviva
from repro.workloads.conviva import SESSIONS_SCHEMA


def mbps(bitrate: np.ndarray) -> np.ndarray:
    """Scalar UDF: kbps -> Mbps (vectorized)."""
    return np.asarray(bitrate) / 1000.0


#: UDAF: harmonic mean, the right average for rates. Decomposable into
#: one weighted feature sum (sum of reciprocals), so the online engine
#: keeps a sketch and the bootstrap covers it automatically.
harmonic_mean = DecomposableUDAF(
    "harmonic_mean",
    feature_fns=[lambda x: 1.0 / x],
    finalizer=lambda sums, w: np.where(sums[..., 0] != 0, w / sums[..., 0], np.nan),
)


def main() -> None:
    catalog = generate_conviva(scale=2.0, seed=9).catalog()

    # --- plan-builder API: UDF in a projection, UDAF in the aggregate ---
    plan = (
        scan("sessions", SESSIONS_SCHEMA)
        .select(col("failed").eq(0))
        .project(
            [
                ("cdn", "cdn"),
                ("mbps", Func("mbps", mbps, [col("bitrate")], vectorized=True)),
            ]
        )
        .aggregate(["cdn"], [AggSpec("hm_mbps", harmonic_mean, col("mbps"))])
    )
    engine = OnlineQueryEngine(catalog, "sessions", OnlineConfig(num_trials=60))
    print("harmonic-mean bitrate (Mbps) per CDN, refined online:")
    for partial in engine.run(plan, num_batches=10):
        row = partial.sorted_plain_rows()[0]
        marker = "exact" if partial.is_final else f"±{partial.max_relative_stdev():.3%}"
        print(f"  {partial.fraction_processed:>4.0%}  {row['cdn']}: "
              f"{row['hm_mbps']:.3f}  ({marker})")

    # --- the same UDF through the SQL front-end ---
    sql_plan = plan_sql(
        "SELECT cdn, AVG(mbps(bitrate)) AS avg_mbps FROM sessions GROUP BY cdn",
        catalog.schemas(),
        udfs={"mbps": UDF(mbps, out_type=ColumnType.FLOAT, vectorized=True)},
    )
    final = OnlineQueryEngine(
        catalog, "sessions", OnlineConfig(num_trials=40)
    ).run_to_completion(sql_plan, 10)
    print("\nSQL with a registered UDF (final, exact):")
    for row in final.sorted_plain_rows():
        print(f"  {row['cdn']}: {row['avg_mbps']:.1f} Mbps avg")

    # --- non-smooth aggregates are rejected online (Section 3.3) ---
    bad = scan("sessions", SESSIONS_SCHEMA).aggregate([], [max_("bitrate", "peak")])
    try:
        OnlineQueryEngine(catalog, "sessions").run_to_completion(bad, 4)
    except UnsupportedQueryError as exc:
        print(f"\nMAX online is refused, as the paper requires:\n  {exc}")


if __name__ == "__main__":
    main()
