"""Comparing delta-update algorithms on nested TPC-H queries.

Reproduces the paper's core argument at example scale: classical
higher-order delta maintenance (HDA, DBToaster-style) must re-evaluate
the outer query over ALL accumulated data whenever an inner aggregate
changes, so its per-batch cost grows linearly; iOLAP's
uncertainty-propagating delta update confines recomputation to the
non-deterministic set, keeping per-batch cost near constant.

Run with:  python examples/tpch_delta_comparison.py
"""

from repro.baselines import HDAExecutor
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.workloads import TPCH_QUERIES, generate_tpch


def run_iolap(catalog, spec, num_batches):
    engine = OnlineQueryEngine(
        catalog, spec.streamed_table, OnlineConfig(num_trials=10, seed=5)
    )
    engine.run_to_completion(spec.plan, num_batches)
    return engine.metrics


def run_hda(catalog, spec, num_batches):
    executor = HDAExecutor(catalog, spec.streamed_table, seed=5)
    executor.run_to_completion(spec.plan, num_batches)
    return executor.metrics


def main() -> None:
    catalog = generate_tpch(scale=5.0, seed=1).catalog()
    num_batches = 20

    for name in ["Q1", "Q17", "Q18"]:
        spec = TPCH_QUERIES[name]
        iolap = run_iolap(catalog, spec, num_batches)
        hda = run_hda(catalog, spec, num_batches)

        kind = "nested" if spec.nested else "flat SPJA"
        print(f"\n=== {name} ({kind}): {spec.description} ===")
        print(f"{'batch':>6} {'iOLAP ms':>9} {'HDA ms':>8} "
              f"{'iOLAP recomputed':>17} {'HDA recomputed':>15}")
        for i in [0, 4, 9, 14, 19]:
            io_b, hda_b = iolap.batches[i], hda.batches[i]
            print(
                f"{i+1:>6} {io_b.wall_seconds*1000:>9.1f} "
                f"{hda_b.wall_seconds*1000:>8.1f} "
                f"{io_b.recomputed_tuples:>17} {hda_b.recomputed_tuples:>15}"
            )
        print(
            f"totals: iOLAP {iolap.total_seconds:.2f}s / "
            f"{iolap.total_recomputed} tuples recomputed;  "
            f"HDA {hda.total_seconds:.2f}s / {hda.total_recomputed} tuples"
        )
        if spec.nested:
            print("-> HDA re-reads the accumulated data every batch; iOLAP "
                  "only revisits its non-deterministic set.")
        else:
            print("-> flat query: both collapse to classical delta "
                  "processing (no recomputation at all).")


if __name__ == "__main__":
    main()
