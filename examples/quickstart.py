"""Quickstart: incremental OLAP over a web-sessions log.

Runs the paper's Example 1 — the "Slow Buffering Impact" query — online:
the engine partitions the sessions table into mini-batches and delivers
an approximate answer with confidence intervals after every batch. We
stop as soon as the estimate is accurate enough, exactly the interaction
model iOLAP is built for.

Run with:  python examples/quickstart.py
"""

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.sql import plan_sql
from repro.workloads import generate_conviva

SBI_QUERY = """
    SELECT AVG(play_time) AS avg_play
    FROM sessions
    WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
"""


def main() -> None:
    # 1. Load (here: generate) the data and build a catalog.
    data = generate_conviva(scale=5.0, seed=1)
    catalog = data.catalog()
    print(f"sessions table: {len(catalog.get('sessions'))} rows\n")

    # 2. Plan the SQL query. The scalar subquery becomes a nested
    #    aggregate block — the class of queries classical incremental
    #    view maintenance cannot handle efficiently.
    plan = plan_sql(SBI_QUERY, catalog.schemas())
    print("logical plan:")
    print(plan.describe(), "\n")

    # 3. Run it online: stream the sessions table in 25 mini-batches.
    engine = OnlineQueryEngine(
        catalog, streamed_table="sessions", config=OnlineConfig(num_trials=100)
    )
    print(f"{'batch':>5} {'seen':>6} {'avg_play':>10} {'95% CI':>22} {'rel.stdev':>10}")
    for partial in engine.run(plan, num_batches=25):
        row = partial.rows[0]
        estimate = row["avg_play"]
        if partial.is_final:
            print(f"{partial.batch_no:>5} {partial.fraction_processed:>6.0%} "
                  f"{estimate:>10.2f} {'(exact)':>22}")
            break
        lo, hi = estimate.confidence_interval(0.95)
        rsd = estimate.relative_stdev()
        print(
            f"{partial.batch_no:>5} {partial.fraction_processed:>6.0%} "
            f"{estimate.value:>10.2f} {f'[{lo:.2f}, {hi:.2f}]':>22} {rsd:>10.4f}"
        )
        # 4. The accuracy-latency trade-off is the user's to make: stop
        #    the moment the answer is good enough.
        if rsd < 0.005:
            print(f"\nsatisfied after {partial.fraction_processed:.0%} of the data "
                  f"— stopping early (the engine discards the rest).")
            break


if __name__ == "__main__":
    main()
