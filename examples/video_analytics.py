"""Video-delivery analytics: the workload from the paper's introduction.

A content-delivery analyst explores session quality interactively. Each
question is a complex OLAP query (nested aggregates, UDAFs); the analyst
wants timely approximations, drilling further only where the early
numbers look suspicious — exactly the human-driven exploratory analysis
the paper motivates.

Run with:  python examples/video_analytics.py
"""

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.baselines import run_batch
from repro.relational import avg, col, count, geomean, scan, sum_
from repro.workloads import generate_conviva
from repro.workloads.conviva import SESSIONS_SCHEMA


def sessions():
    return scan("sessions", SESSIONS_SCHEMA)


def slow_buffering_by_cdn():
    """Which CDNs retain viewers despite above-average buffering?"""
    avg_buffer = sessions().aggregate([], [avg("buffer_time", "avg_buffer")])
    return (
        sessions()
        .join(avg_buffer, keys=[])
        .select(col("buffer_time") > col("avg_buffer"))
        .aggregate(
            ["cdn"],
            [count("slow_sessions"), avg("play_time", "avg_play"),
             geomean("bitrate", "gm_bitrate")],
        )
    )


def heavy_states():
    """States whose per-session traffic beats their CDN's average."""
    per_cdn = (
        sessions()
        .aggregate(["cdn"], [avg("bytes", "cdn_avg_bytes")])
        .rename({"cdn": "cdn2"})
    )
    return (
        sessions()
        .join(per_cdn, keys=[("cdn", "cdn2")])
        .select(col("bytes") > col("cdn_avg_bytes") * 1.5)
        .aggregate(["state"], [count("heavy_sessions"), sum_("bytes", "heavy_bytes")])
    )


def explore(catalog, title, plan, stop_rsd):
    print(f"\n=== {title} ===")
    engine = OnlineQueryEngine(
        catalog, "sessions", OnlineConfig(num_trials=80, seed=7)
    )
    for partial in engine.run(plan, num_batches=20):
        rsd = partial.max_relative_stdev()
        status = "exact" if partial.is_final else f"rel.stdev {rsd:.4f}"
        print(
            f"  after {partial.fraction_processed:>4.0%} of the data "
            f"({partial.metrics.wall_seconds*1000:6.1f} ms this batch): {status}"
        )
        if partial.is_final or (rsd == rsd and rsd < stop_rsd):
            print("  current answer:")
            for row in partial.sorted_plain_rows()[:6]:
                cells = ", ".join(f"{k}={_fmt(v)}" for k, v in row.items())
                print(f"    {cells}")
            break


def _fmt(value):
    if isinstance(value, float):
        return f"{value:,.1f}"
    return str(value)


def main() -> None:
    catalog = generate_conviva(scale=5.0, seed=3).catalog()

    # Reference point: what a traditional engine would make us wait for.
    batch = run_batch(slow_buffering_by_cdn(), catalog)
    print(
        f"sessions: {len(catalog.get('sessions'))} rows; "
        f"batch engine answers the first question in {batch.wall_seconds*1000:.0f} ms "
        "— iOLAP starts answering after the first mini-batch instead."
    )

    explore(catalog, "Slow-buffering impact by CDN", slow_buffering_by_cdn(), 0.02)
    explore(catalog, "Heavy states (vs. their CDN average)", heavy_states(), 0.05)


if __name__ == "__main__":
    main()
