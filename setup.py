"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517 editable installs cannot build an editable wheel. This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
