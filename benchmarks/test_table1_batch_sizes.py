"""Table 1 — batch sizes used for the relations that are streamed in.

The paper streams lineorder/partsupp/customer (TPC-H) and the Conviva
fact table with fixed per-batch sizes. This reproduces the table at our
scale: rows per mini-batch for every streamed relation, given the default
batch count.
"""

from benchmarks.harness import (
    NUM_BATCHES,
    batch_rows,
    conviva_catalog,
    fmt_table,
    tpch_catalog,
    write_result,
)

STREAMED = [
    ("TPC-H (lineorder)", tpch_catalog, "lineorder"),
    ("TPC-H (partsupp)", tpch_catalog, "partsupp"),
    ("TPC-H (customer)", tpch_catalog, "customer"),
    ("Conviva", conviva_catalog, "sessions"),
]


def test_table1_batch_sizes(benchmark):
    def build():
        rows = []
        for label, catalog_fn, table in STREAMED:
            catalog = catalog_fn()
            n = len(catalog.get(table))
            per_batch = batch_rows(catalog, table)
            rows.append([label, n, NUM_BATCHES, per_batch])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = fmt_table(
        ["workload", "total rows", "batches", "tuples per batch"], rows
    )
    write_result("table1_batch_sizes", table)
    assert all(r[3] >= 1 for r in rows)
