"""Figure 9(a) — optimization breakdown on Conviva C2.

The paper gradually disables iOLAP's two delta-update optimizations:

* OPT1 — tuple-uncertainty partitioning via variation ranges;
* OPT2 — lineage propagation + lazy evaluation;

falling back to HDA. OPT1 limits recomputation to the non-deterministic
set (the big win); OPT2 shaves the per-batch cost further by avoiding
regeneration of cached tuples. We plot per-batch latency for the three
engine configurations plus HDA.
"""

import numpy as np

from repro.workloads import CONVIVA_QUERIES

from benchmarks.harness import (
    conviva_catalog,
    fmt_table,
    run_hda,
    run_iolap,
    thin_series,
    write_result,
)

SCALE = 5.0


def test_fig9a_breakdown(benchmark):
    spec = CONVIVA_QUERIES["C2"]
    catalog = conviva_catalog(SCALE)

    def experiment():
        full = run_iolap(spec, catalog, num_trials=10)
        opt1_only = run_iolap(spec, catalog, num_trials=10, lazy_lineage=False)
        none = run_iolap(
            spec, catalog, num_trials=10, lazy_lineage=False, prune_with_ranges=False
        )
        hda = run_hda(spec, catalog)
        return full, opt1_only, none, hda

    full, opt1_only, none, hda = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        "iOLAP=OPT1+OPT2": [b.wall_seconds for b in full.metrics.batches],
        "OPT1": [b.wall_seconds for b in opt1_only.metrics.batches],
        "no-opt": [b.wall_seconds for b in none.metrics.batches],
        "HDA": [b.wall_seconds for b in hda.batches],
    }
    names = list(series)
    rows = [
        [i] + [f"{series[n][i-1]*1000:.1f}" for n in names]
        for i, _ in thin_series(series["HDA"])
    ]
    table = fmt_table(["batch (ms)"] + names, rows)

    recomputed = {
        "iOLAP": full.metrics.total_recomputed,
        "OPT1": opt1_only.metrics.total_recomputed,
        "no-opt": none.metrics.total_recomputed,
    }
    table += f"\n\ntotal recomputed tuples: {recomputed}"
    top_ops = ", ".join(
        f"{label}={seconds*1000:.1f}ms" for label, seconds in full.top_op_seconds()
    )
    table += f"\nper-operator time (iOLAP): {top_ops}"
    write_result("fig9a_breakdown", table)

    # The per-operator breakdown must cover every pipeline of the plan.
    assert full.op_seconds()

    # Shape: OPT1 bounds recomputation far below the conservative engine;
    # adding OPT2 reduces per-batch latency further (late batches, where
    # the cached sets are big enough for lazy evaluation to matter).
    assert recomputed["iOLAP"] < 0.5 * recomputed["no-opt"]
    late_full = np.mean(series["iOLAP=OPT1+OPT2"][10:])
    late_opt1 = np.mean(series["OPT1"][10:])
    late_none = np.mean(series["no-opt"][10:])
    assert late_full <= late_opt1 * 1.1
    assert late_opt1 < late_none
