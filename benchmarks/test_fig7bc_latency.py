"""Figures 7(b)/(c) — baseline vs. iOLAP latency on TPC-H and Conviva.

For every workload query the paper plots: the batch baseline's latency,
iOLAP's latency to deliver the 5% and 10% approximate answers, and
iOLAP's latency to process everything. The shape claims: approximate
answers arrive after a small fraction of the total online work, and
running iOLAP to completion costs a bounded overhead over the data
(the paper reports ~60% on average, at most ~100-150%).

Both wall-clock and the scale-free work measure (tuples ingested +
recomputed, relative to the dataset) are reported; assertions use work
(see fig7a's measurement note).
"""

import pytest

from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

from benchmarks.harness import (
    catalog_for,
    fmt_table,
    run_baseline,
    run_iolap,
    write_result,
)


def latency_rows(queries):
    rows = []
    for name, spec in queries.items():
        catalog = catalog_for(spec)
        total_rows = len(catalog.get(spec.streamed_table))
        baseline = run_baseline(spec, catalog)
        run = run_iolap(spec, catalog)
        work = 0
        work_5 = work_10 = None
        seen = 0
        for bm in run.metrics.batches:
            work += bm.new_tuples + bm.recomputed_tuples
            seen += bm.new_tuples
            if work_5 is None and seen >= 0.05 * total_rows:
                work_5 = work
            if work_10 is None and seen >= 0.10 * total_rows:
                work_10 = work
        rows.append(
            [
                name,
                baseline.wall_seconds,
                run.seconds_at_fraction(0.05),
                run.seconds_at_fraction(0.10),
                run.total_seconds,
                (work_5 or 0) / total_rows,
                (work_10 or 0) / total_rows,
                work / total_rows,
            ]
        )
    return rows


HEADER = [
    "query",
    "baseline s",
    "iOLAP@5% s",
    "iOLAP@10% s",
    "iOLAP full s",
    "work@5%",
    "work@10%",
    "work full",
]


def check_shapes(rows):
    # The early-answer bars must be cheap for every query; the full-run
    # envelope is dominated by the heaviest non-deterministic sets (the
    # paper's Q18/Q20 are also its most recomputation-heavy queries; note
    # that our counter charges a tuple once per operator that revisits it).
    for row in rows:
        name, *_, w5, w10, wfull = row
        assert w5 <= 0.35, f"{name}: 5% answer cost {w5:.2f}x data"
        assert w10 <= 0.5, f"{name}: 10% answer cost {w10:.2f}x data"
        assert wfull <= 9.0, f"{name}: full online work {wfull:.2f}x data"


def test_fig7b_tpch_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: latency_rows(TPCH_QUERIES), rounds=1, iterations=1
    )
    write_result("fig7b_tpch_latency", fmt_table(HEADER, rows))
    check_shapes(rows)


def test_fig7c_conviva_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: latency_rows(CONVIVA_QUERIES), rounds=1, iterations=1
    )
    write_result("fig7c_conviva_latency", fmt_table(HEADER, rows))
    check_shapes(rows)
