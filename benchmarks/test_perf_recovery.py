"""Recovery-cost benchmark: checkpointed partial replay vs full replay.

The Section 5.1 failure scenario the checkpoints exist for: an integrity
failure lands deep in the run (batch 16 of 20). Without checkpoints the
controller replays batches 1..15 from pristine state; with a checkpoint
every 4 batches it restores the batch-12 snapshot and replays only 13..15.
Both modes must deliver the fault-free final answer — the benchmark
asserts equivalence before it times anything.

Results are written to ``BENCH_recovery.json`` at the repo root — the
machine-readable baseline the ``chaos-smoke`` CI job regenerates at
reduced scale and diffs (failing if the recovery speedup collapses to
less than half the checked-in number).

Scale knobs (environment variables, defaults = the paper-sized config):

* ``IOLAP_PERF_SCALE``   — TPC-H scale factor (default 2.0 = 40k fact rows)
* ``IOLAP_PERF_BATCHES`` — mini-batches (default 20)
* ``IOLAP_PERF_TRIALS``  — bootstrap trials (default 40)
* ``IOLAP_PERF_REPS``    — repetitions, best-of (default 3)
* ``IOLAP_PERF_MIN_RECOVERY_SPEEDUP`` — assertion floor on the recovery
  wall-time reduction (default 2.0; the checked-in run shows ~4-5x, the
  replay-depth ratio being 15/3)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.relational import avg, col, count, scan, sum_
from repro.workloads.tpch import LINEORDER_SCHEMA

from benchmarks.harness import SEED, tpch_catalog

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_recovery.json"

PERF_SCALE = float(os.environ.get("IOLAP_PERF_SCALE", "2.0"))
PERF_BATCHES = int(os.environ.get("IOLAP_PERF_BATCHES", "20"))
PERF_TRIALS = int(os.environ.get("IOLAP_PERF_TRIALS", "40"))
PERF_REPS = int(os.environ.get("IOLAP_PERF_REPS", "3"))
MIN_RECOVERY_SPEEDUP = float(
    os.environ.get("IOLAP_PERF_MIN_RECOVERY_SPEEDUP", "2.0")
)

#: The failure lands at 80% of the run; checkpoints every interval batches.
FAULT_BATCH = max(2, int(PERF_BATCHES * 0.8))
CHECKPOINT_INTERVAL = 4
FAULTS = f"sentinel@{FAULT_BATCH}"


def recovery_plan():
    """Uncertain SELECT against a streaming average: sentinels exist at
    every batch (so the ``sentinel@N`` fault has a seam to fire at) and
    the operator state worth checkpointing grows with the run."""
    inner = scan("lineorder", LINEORDER_SCHEMA).aggregate(
        [], [avg("extendedprice", "ap")]
    )
    return (
        scan("lineorder", LINEORDER_SCHEMA)
        .join(inner, keys=[])
        .select(col("extendedprice") > col("ap"))
        .aggregate(["custkey"], [sum_("extendedprice", "rev"), count("n")])
    )


def run_mode(catalog, plan, faults, interval):
    engine = OnlineQueryEngine(
        catalog,
        "lineorder",
        OnlineConfig(
            num_trials=PERF_TRIALS,
            seed=SEED,
            faults=faults,
            checkpoint_interval=interval,
        ),
    )
    t0 = time.perf_counter()
    final = engine.run_to_completion(plan, PERF_BATCHES)
    total = time.perf_counter() - t0
    engine.executor.close()
    return {
        "total_seconds": total,
        "recovery_seconds": sum(
            bm.recovery_seconds for bm in engine.metrics.batches
        ),
        "recoveries": engine.metrics.num_recoveries,
    }, final


@pytest.fixture(scope="module")
def bench() -> dict:
    catalog = tpch_catalog(PERF_SCALE)
    plan = recovery_plan()

    # Correctness first: both recovery modes must match the fault-free run.
    _, clean = run_mode(catalog, plan, None, CHECKPOINT_INTERVAL)
    for interval in (CHECKPOINT_INTERVAL, 0):
        _, recovered = run_mode(catalog, plan, FAULTS, interval)
        assert recovered.to_relation().bag_equal(clean.to_relation(), 6), (
            f"recovered final (interval={interval}) diverged from fault-free"
        )

    modes = {}
    for name, interval in (("checkpointed", CHECKPOINT_INTERVAL), ("full_replay", 0)):
        best = None
        for _ in range(PERF_REPS):
            result, _ = run_mode(catalog, plan, FAULTS, interval)
            if best is None or result["recovery_seconds"] < best["recovery_seconds"]:
                best = result
        modes[name] = best

    baseline, _ = run_mode(catalog, plan, None, CHECKPOINT_INTERVAL)
    result = {
        "schema": "bench-recovery-v1",
        "config": {
            "tpch_scale": PERF_SCALE,
            "fact_rows": len(catalog.get("lineorder")),
            "num_batches": PERF_BATCHES,
            "num_trials": PERF_TRIALS,
            "reps": PERF_REPS,
            "seed": SEED,
            "fault": FAULTS,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "query": "lineorder join [avg(extendedprice)] "
                     "-> select price > avg -> groupby custkey [sum, count]",
        },
        "fault_free": baseline,
        "checkpointed": modes["checkpointed"],
        "full_replay": modes["full_replay"],
        "recovery_speedup": (
            modes["full_replay"]["recovery_seconds"]
            / modes["checkpointed"]["recovery_seconds"]
        ),
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


def test_fault_actually_fired(bench):
    assert bench["checkpointed"]["recoveries"] == 1
    assert bench["full_replay"]["recoveries"] == 1
    assert bench["fault_free"]["recoveries"] == 0


def test_recovery_speedup(bench):
    speedup = bench["recovery_speedup"]
    assert speedup >= MIN_RECOVERY_SPEEDUP, (
        f"checkpointed recovery speedup {speedup:.2f}x below floor "
        f"{MIN_RECOVERY_SPEEDUP}x"
    )


def test_checkpoint_overhead_bounded(bench):
    """Checkpointing must not dominate the run it protects: the fault-free
    run with checkpoints on stays within the full-replay run's total plus
    its recovery cost."""
    assert bench["fault_free"]["total_seconds"] < (
        bench["full_replay"]["total_seconds"] * 1.5
    )


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-recovery-v1"
    for section in ("config", "fault_free", "checkpointed", "full_replay"):
        assert section in on_disk
    assert on_disk["recovery_speedup"] > 0
