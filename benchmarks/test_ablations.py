"""Ablations of design choices called out in DESIGN.md §5.

Not figures from the paper, but experiments backing its design
discussion:

* **Block-wise vs. shuffled partitioning** (Section 2): block-wise
  randomness is fine when values are uncorrelated with storage order,
  but on data clustered by the aggregated value the early estimates are
  biased — the pre-shuffling tool exists for exactly this case.
* **Sketch vs. row-store aggregate state** (Section 4.2): a decomposable
  aggregate keeps O(groups) sketch state; the same statistic as a
  holistic UDAF forces the row store, whose footprint grows with the
  data.
"""

import numpy as np

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.relational import (
    AggSpec,
    Catalog,
    ColumnType,
    HolisticUDAF,
    Schema,
    avg,
    col,
    relation_from_columns,
    scan,
)

from benchmarks.harness import fmt_table, write_result

CLUSTERED_SCHEMA = Schema([("x", ColumnType.FLOAT)])


def clustered_relation(n=20_000, seed=0):
    """Values sorted by magnitude — storage order correlates with value."""
    rng = np.random.default_rng(seed)
    return relation_from_columns(
        CLUSTERED_SCHEMA, x=np.sort(rng.gamma(3.0, 10.0, n))
    )


def test_ablation_partitioning_bias(benchmark):
    def experiment():
        rel = clustered_relation()
        catalog = Catalog({"t": rel})
        plan = scan("t", CLUSTERED_SCHEMA).aggregate([], [avg("x", "ax")])
        truth = float(rel.column("x").mean())
        errors = {}
        for mode in ("blocks", "shuffle"):
            engine = OnlineQueryEngine(
                catalog, "t", OnlineConfig(num_trials=20, seed=3),
                partition_mode=mode,
            )
            first = next(iter(engine.run(plan, num_batches=20)))
            estimate = first.rows[0]["ax"].value
            errors[mode] = abs(estimate - truth) / truth
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = fmt_table(
        ["partitioning", "first-batch relative error"],
        [[mode, f"{err:.4f}"] for mode, err in errors.items()],
    )
    write_result("ablation_partitioning_bias", table)
    # On value-clustered storage, raw block-wise batches are biased while
    # shuffled batches are not — the paper's motivation for the
    # pre-processing shuffle tool.
    assert errors["shuffle"] < 0.05
    assert errors["blocks"] > 3 * errors["shuffle"]


def test_ablation_sketch_vs_rowstore(benchmark):
    def experiment():
        rng = np.random.default_rng(1)
        schema = Schema([("k", ColumnType.INT), ("x", ColumnType.FLOAT)])
        rel = relation_from_columns(
            schema, k=rng.integers(0, 8, 20_000), x=rng.gamma(3.0, 10.0, 20_000)
        )
        catalog = Catalog({"t": rel})
        decomposable = scan("t", schema).aggregate(["k"], [avg("x", "ax")])
        holistic_avg = HolisticUDAF(
            "holistic_avg",
            lambda values, weights: float(
                (values * weights).sum() / max(weights.sum(), 1e-12)
            ),
        )
        holistic = scan("t", schema).aggregate(
            ["k"], [AggSpec("ax", holistic_avg, col("x"))]
        )
        stats = {}
        for label, plan in (("sketch", decomposable), ("row-store", holistic)):
            engine = OnlineQueryEngine(
                catalog, "t", OnlineConfig(num_trials=20, seed=3)
            )
            final = engine.run_to_completion(plan, 10)
            stats[label] = {
                "state_bytes": engine.metrics.max_state_bytes("aggregate:"),
                "recomputed": engine.metrics.total_recomputed,
                "seconds": engine.metrics.total_seconds,
                "rows": final.sorted_plain_rows(),
            }
        return stats

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = fmt_table(
        ["state", "max state bytes", "tuples recomputed", "seconds"],
        [
            [label, s["state_bytes"], s["recomputed"], f"{s['seconds']:.3f}"]
            for label, s in stats.items()
        ],
    )
    write_result("ablation_sketch_vs_rowstore", table)
    # Same answers...
    sketch_rows = [
        {k: round(float(v), 4) for k, v in r.items()}
        for r in stats["sketch"]["rows"]
    ]
    holistic_rows = [
        {k: round(float(v), 4) for k, v in r.items()}
        for r in stats["row-store"]["rows"]
    ]
    assert sketch_rows == holistic_rows
    # ...but the sketch state is orders of magnitude smaller and avoids
    # per-batch re-aggregation of the whole store.
    assert stats["sketch"]["state_bytes"] < 0.05 * stats["row-store"]["state_bytes"]
    assert stats["sketch"]["recomputed"] == 0
    assert stats["row-store"]["recomputed"] > 0
