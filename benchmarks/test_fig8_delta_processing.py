"""Figures 8(a)–(f) — delta-processing comparison of iOLAP vs. HDA.

* 8(a)/(c): for simple SPJA queries the two algorithms collapse to the
  same classical delta processing — per-batch latency ratios hover
  around 1 and stay flat.
* 8(b)/(d): for nested queries HDA re-evaluates the outer query over all
  accumulated data each batch, so the HDA/iOLAP per-batch latency ratio
  grows roughly linearly with the batch number, while iOLAP's per-batch
  cost stays near constant.
* 8(e)/(f): the number of tuples iOLAP recomputes per batch is a small
  fraction of the accumulated data and grows sub-linearly.
"""

import numpy as np
import pytest

from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

from benchmarks.harness import (
    FLAT_CONVIVA,
    FLAT_TPCH,
    NESTED_CONVIVA,
    NESTED_TPCH,
    NUM_BATCHES,
    catalog_for,
    conviva_catalog,
    fmt_table,
    run_hda,
    run_iolap,
    thin_series,
    tpch_catalog,
    write_result,
)

#: The latency-ratio experiments use a larger dataset so per-batch data
#: processing dominates fixed per-batch overheads (scheduling in the
#: paper's Spark setting, Python dispatch here).
RATIO_SCALE = 5.0


def ratio_catalog(spec):
    if spec.name.startswith("C"):
        return conviva_catalog(RATIO_SCALE)
    return tpch_catalog(RATIO_SCALE)


def ratio_series(queries, names):
    # HDA is a pure delta-processing comparator (the paper implements it
    # "without code generation and indexes" and we run it without error
    # estimation), so iOLAP runs with a small trial count here to keep the
    # comparison about delta processing rather than bootstrap flops.
    out = {}
    for name in names:
        spec = queries[name]
        catalog = ratio_catalog(spec)
        iolap = run_iolap(spec, catalog, num_trials=10).metrics
        hda = run_hda(spec, catalog)
        out[name] = [
            h.wall_seconds / max(i.wall_seconds, 1e-9)
            for h, i in zip(hda.batches, iolap.batches)
        ]
    return out


def ratio_table(series: dict[str, list[float]]) -> str:
    names = list(series)
    rows = []
    for batch_no, _ in thin_series(series[names[0]]):
        rows.append([batch_no] + [series[q][batch_no - 1] for q in names])
    return fmt_table(["batch"] + names, rows)


def test_fig8a_tpch_flat_ratio(benchmark):
    series = benchmark.pedantic(
        lambda: ratio_series(TPCH_QUERIES, FLAT_TPCH), rounds=1, iterations=1
    )
    write_result("fig8a_tpch_flat_ratio", ratio_table(series))
    # Flat queries: comparable performance throughout — the ratio must not
    # grow systematically (allow generous noise at millisecond batches).
    for name, values in series.items():
        late = np.mean(values[-5:])
        early = np.mean(values[:5])
        assert late < max(4.0, 3.0 * early), f"{name} ratio grew: {values}"


def test_fig8b_tpch_nested_ratio(benchmark):
    series = benchmark.pedantic(
        lambda: ratio_series(TPCH_QUERIES, NESTED_TPCH), rounds=1, iterations=1
    )
    write_result("fig8b_tpch_nested_ratio", ratio_table(series))
    # Nested queries where the outer block re-reads the fact table: HDA
    # degrades linearly while iOLAP stays ~constant, so the late-run ratio
    # clearly exceeds the early-run ratio. (Q11's outer query joins two
    # small aggregates — the paper notes its curve flattens out.)
    growing = 0
    for name, values in series.items():
        if np.mean(values[-5:]) > 1.5 * np.mean(values[:3]):
            growing += 1
    assert growing >= 3, f"expected most nested ratios to grow: {series}"


def test_fig8c_conviva_flat_ratio(benchmark):
    series = benchmark.pedantic(
        lambda: ratio_series(CONVIVA_QUERIES, FLAT_CONVIVA), rounds=1, iterations=1
    )
    write_result("fig8c_conviva_flat_ratio", ratio_table(series))
    for name, values in series.items():
        assert np.mean(values[-5:]) < max(4.0, 3.0 * np.mean(values[:5]))


def test_fig8d_conviva_nested_ratio(benchmark):
    series = benchmark.pedantic(
        lambda: ratio_series(CONVIVA_QUERIES, NESTED_CONVIVA), rounds=1, iterations=1
    )
    write_result("fig8d_conviva_nested_ratio", ratio_table(series))
    growing = sum(
        1
        for values in series.values()
        if np.mean(values[-5:]) > 1.5 * np.mean(values[:3])
    )
    assert growing >= len(series) // 2, f"nested ratios should grow: {series}"


def recomputed_series(queries, names):
    out = {}
    for name in names:
        spec = queries[name]
        run = run_iolap(spec, num_trials=30)
        out[name] = [b.recomputed_tuples for b in run.metrics.batches]
    return out


def recomputed_table(series) -> str:
    names = list(series)
    rows = []
    for batch_no, _ in thin_series(series[names[0]]):
        rows.append([batch_no] + [series[q][batch_no - 1] for q in names])
    return fmt_table(["batch"] + names, rows)


def check_sublinear(series, catalog_rows):
    """Per-batch recomputation must grow slower than the accumulated data
    (which doubles, triples, ... linearly with the batch number)."""
    for name, values in series.items():
        tail = np.mean(values[-4:])
        mid = max(np.mean(values[4:8]), 1.0)
        accumulated_growth = (NUM_BATCHES - 2) / 6.0
        assert tail / mid < accumulated_growth, (
            f"{name}: recomputation grew super-linearly: {values}"
        )


def test_fig8e_tpch_recomputed(benchmark):
    series = benchmark.pedantic(
        lambda: recomputed_series(TPCH_QUERIES, NESTED_TPCH), rounds=1, iterations=1
    )
    write_result("fig8e_tpch_recomputed", recomputed_table(series))
    check_sublinear(series, None)


def test_fig8f_conviva_recomputed(benchmark):
    series = benchmark.pedantic(
        lambda: recomputed_series(CONVIVA_QUERIES, NESTED_CONVIVA),
        rounds=1,
        iterations=1,
    )
    write_result("fig8f_conviva_recomputed", recomputed_table(series))
    check_sublinear(series, None)
