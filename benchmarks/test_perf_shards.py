"""Shard-scaling benchmark: the ND-heavy kernel workload across workers.

Runs the same ND-heavy online query as ``test_perf_kernels`` (uncertain
semijoin membership feeding a grouped holistic MEDIAN — the per-batch
cost is dominated by per-group trial re-evaluation) serially and sharded
across 2 and 4 worker processes, and records two scaling numbers per
shard count:

* **wall scaling** — serial wall / sharded wall. Only meaningful on a
  multi-core machine; on the single-core CI runners it hovers below 1
  (process scheduling cannot create cores).
* **cpu scaling** — serial process-CPU / sharded critical-path CPU,
  where the critical path is ``parent_cpu + max(worker_cpu)``. This is
  the machine-independent number: it measures how much computation the
  slowest shard actually runs, i.e. the wall-clock speedup an N-core
  machine would see. The grouped-holistic hot loop is superlinear in
  rows per group, so splitting groups across shards shrinks per-shard
  CPU near-linearly.

Results are written to ``BENCH_shards.json`` at the repo root; the CI
``shard-smoke`` job regenerates the numbers at reduced scale and fails
if cpu scaling drops below half the checked-in baseline.

The grouped-holistic kernel is superlinear in rows per group while the
per-worker fixed costs (full-batch bootstrap draws, shard hashing) are
linear, so the default scale is deliberately large — at small scale the
fixed overhead dominates and scaling looks flat.

Scale knobs (environment variables):

* ``IOLAP_PERF_SCALE``   — TPC-H scale factor (default 8.0)
* ``IOLAP_PERF_BATCHES`` — mini-batches (default 20)
* ``IOLAP_PERF_TRIALS``  — bootstrap trials (default 60)
* ``IOLAP_PERF_REPS``    — repetitions, best-of (default 3)
* ``IOLAP_SHARD_MIN_SCALING`` — cpu-scaling floor at 4 shards
  (default 2.0; the checked-in full-scale run shows >=2.5x. The CI
  ``shard-smoke`` job runs at reduced scale with its own floor at half
  the checked-in baseline.)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.result import _key
from repro.core.values import UncertainValue
from repro.engine.shards import ShardedQueryEngine, analyze_shardability

from benchmarks.harness import SEED, tpch_catalog
from benchmarks.test_perf_kernels import nd_heavy_plan

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_shards.json"

PERF_SCALE = float(os.environ.get("IOLAP_PERF_SCALE", "8.0"))
PERF_BATCHES = int(os.environ.get("IOLAP_PERF_BATCHES", "20"))
PERF_TRIALS = int(os.environ.get("IOLAP_PERF_TRIALS", "60"))
PERF_REPS = int(os.environ.get("IOLAP_PERF_REPS", "3"))
MIN_SCALING = float(os.environ.get("IOLAP_SHARD_MIN_SCALING", "2.0"))

SHARD_COUNTS = (2, 4)


def _config(shards: int = 0) -> OnlineConfig:
    return OnlineConfig(num_trials=PERF_TRIALS, seed=SEED, shards=shards)


def run_serial(catalog, plan) -> dict:
    engine = OnlineQueryEngine(catalog, "lineorder", _config())
    wall0, cpu0 = time.perf_counter(), time.process_time()
    last = None
    for last in engine.run(plan, PERF_BATCHES):
        pass
    result = {
        "wall_seconds": time.perf_counter() - wall0,
        "cpu_seconds": time.process_time() - cpu0,
        "per_batch_seconds": [bm.wall_seconds for bm in engine.metrics.batches],
    }
    engine.executor.close()
    return result, last


def run_sharded(catalog, plan, shards: int) -> dict:
    engine = ShardedQueryEngine(catalog, "lineorder", _config(shards))
    wall0, cpu0 = time.perf_counter(), time.process_time()
    last = None
    for last in engine.run(plan, PERF_BATCHES):
        pass
    wall = time.perf_counter() - wall0
    parent_cpu = time.process_time() - cpu0
    assert engine.shard_plan is not None and engine.shard_plan.shardable
    worker_cpu = [
        engine.shard_cpu_seconds[s] for s in range(shards)
    ]
    return {
        "shards": shards,
        "wall_seconds": wall,
        "parent_cpu_seconds": parent_cpu,
        "worker_cpu_seconds": worker_cpu,
        "critical_path_cpu_seconds": parent_cpu + max(worker_cpu),
        "per_batch_seconds": [bm.wall_seconds for bm in engine.metrics.batches],
    }, last


def _canon(rows):
    def point(v):
        return v.value if isinstance(v, UncertainValue) else v

    return sorted(rows, key=lambda row: tuple(_key(point(v)) for v in row.values()))


@pytest.fixture(scope="module")
def bench() -> dict:
    catalog = tpch_catalog(PERF_SCALE)
    plan, threshold = nd_heavy_plan(catalog)
    verdict = analyze_shardability(plan, "lineorder")
    assert verdict.shardable and verdict.shard_key == ("custkey",)

    serial_best, serial_final = None, None
    for _ in range(PERF_REPS):
        result, final = run_serial(catalog, plan)
        if serial_best is None or result["cpu_seconds"] < serial_best["cpu_seconds"]:
            serial_best, serial_final = result, final

    sharded = {}
    finals = {}
    for shards in SHARD_COUNTS:
        best = None
        for _ in range(PERF_REPS):
            result, final = run_sharded(catalog, plan, shards)
            if (
                best is None
                or result["critical_path_cpu_seconds"]
                < best["critical_path_cpu_seconds"]
            ):
                best, finals[shards] = result, final
        best["wall_scaling"] = serial_best["wall_seconds"] / best["wall_seconds"]
        best["cpu_scaling"] = (
            serial_best["cpu_seconds"] / best["critical_path_cpu_seconds"]
        )
        sharded[str(shards)] = best

    result = {
        "schema": "bench-shards-v1",
        "config": {
            "tpch_scale": PERF_SCALE,
            "fact_rows": len(catalog.get("lineorder")),
            "num_batches": PERF_BATCHES,
            "num_trials": PERF_TRIALS,
            "reps": PERF_REPS,
            "seed": SEED,
            "cores": os.cpu_count(),
            "shard_key": list(verdict.shard_key),
            "nd_threshold": threshold,
            "query": "lineorder semijoin(custkey revenue > median) "
                     "-> groupby custkey [median(extendedprice), count]",
        },
        "serial": serial_best,
        "sharded": sharded,
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    result["_finals"] = {"serial": serial_final, **finals}
    return result


def test_results_bit_identical_across_shard_counts(bench):
    """The benchmark configuration is also a determinism fixture: the
    final exact rows must be identical serial vs every shard count."""
    finals = bench["_finals"]
    reference = _canon(finals["serial"].rows)
    for shards in SHARD_COUNTS:
        rows = finals[shards].rows
        assert len(rows) == len(reference)
        for expected, got in zip(reference, rows):
            assert expected == got, f"shards={shards}"


def test_cpu_scaling_floor(bench):
    scaling = bench["sharded"]["4"]["cpu_scaling"]
    assert scaling >= MIN_SCALING, (
        f"critical-path cpu scaling at 4 shards {scaling:.2f}x "
        f"below floor {MIN_SCALING}x"
    )


def test_scaling_monotone(bench):
    """More shards must not run a *longer* critical path."""
    two = bench["sharded"]["2"]["critical_path_cpu_seconds"]
    four = bench["sharded"]["4"]["critical_path_cpu_seconds"]
    assert four <= two * 1.1, (two, four)


def test_workers_balanced(bench):
    """splitmix64 hashing spreads custkey groups: no worker may carry
    more than twice the mean CPU at 4 shards."""
    cpu = bench["sharded"]["4"]["worker_cpu_seconds"]
    assert max(cpu) <= 2.0 * (sum(cpu) / len(cpu)), cpu


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-shards-v1"
    assert set(on_disk["sharded"]) == {str(s) for s in SHARD_COUNTS}
    for run in on_disk["sharded"].values():
        assert len(run["worker_cpu_seconds"]) == run["shards"]
        assert run["critical_path_cpu_seconds"] > 0
        assert len(run["per_batch_seconds"]) == on_disk["config"]["num_batches"]
