"""Storage-plane perf benchmarks: streaming ingestion + chunked scan.

The storage layer's pitch is that a fact table an order of magnitude
bigger than the in-memory workloads can be ingested and scanned with
bounded memory: ingestion streams chunks straight to disk, and scans
memory-map the chunk buffers, so peak RSS tracks one chunk rather than
the table. This module measures both legs on a 10x fact table generated
chunk by chunk (:func:`~repro.workloads.tpch.stream_lineorder_chunks`):

* **ingest** — rows/second through :func:`~repro.storage.ingest_chunks`
  (dictionary growth, null backfill, and disk writes included);
* **scan+groupby** — rows/second for a chunked group-by/sum over the
  encoded key columns (the carried-codes fast path end to end);
* **memory** — tracemalloc peak over the whole streamed scan, asserted
  bounded by a few chunks, far under the materialized table.

Results are written to ``BENCH_storage.json`` at the repo root; the CI
``storage-smoke`` job regenerates it at reduced scale and fails if either
throughput collapses below half the checked-in baseline.

Scale knobs (environment variables, defaults = the checked-in config):

* ``IOLAP_PERF_STORAGE_ROWS``  — fact rows (default 200_000, ~10x the
  in-memory benchmark tables)
* ``IOLAP_PERF_STORAGE_CHUNK`` — rows per ingestion chunk (default 20_000)
* ``IOLAP_PERF_REPS``          — repetitions, best-of (default 3)
* ``IOLAP_PERF_MIN_INGEST_ROWS_S`` / ``IOLAP_PERF_MIN_SCAN_ROWS_S`` —
  absolute sanity floors (defaults are deliberately loose; the real gate
  is the CI baseline comparison)
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.relational.groupby import group_ids
from repro.storage import ingest_chunks, open_table
from repro.workloads.tpch import LINEORDER_SCHEMA, stream_lineorder_chunks

from benchmarks.harness import SEED

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_storage.json"

PERF_ROWS = int(os.environ.get("IOLAP_PERF_STORAGE_ROWS", "200000"))
PERF_CHUNK = int(os.environ.get("IOLAP_PERF_STORAGE_CHUNK", "20000"))
PERF_REPS = int(os.environ.get("IOLAP_PERF_REPS", "3"))
MIN_INGEST_ROWS_S = float(os.environ.get("IOLAP_PERF_MIN_INGEST_ROWS_S", "20000"))
MIN_SCAN_ROWS_S = float(os.environ.get("IOLAP_PERF_MIN_SCAN_ROWS_S", "100000"))

#: The grouped scan: revenue by (returnflag, shipmode) — two encoded key
#: columns, so the group-by runs on carried dictionary codes.
GROUP_KEYS = ["returnflag", "shipmode"]


def _scan_groupby(table) -> dict[tuple, float]:
    """Chunked scan: group-by GROUP_KEYS, summing discounted revenue."""
    totals: dict[tuple, float] = {}
    for chunk in table.iter_chunks():
        keys, gids = group_ids(chunk, GROUP_KEYS)
        revenue = np.asarray(chunk.columns["extendedprice"]) * (
            1.0 - np.asarray(chunk.columns["discount"])
        )
        sums = np.bincount(gids, weights=revenue, minlength=len(keys))
        for key, s in zip(keys, sums):
            totals[key] = totals.get(key, 0.0) + float(s)
    return totals


@pytest.fixture(scope="module")
def bench(tmp_path_factory) -> dict:
    root = tmp_path_factory.mktemp("storage-bench")

    # -- ingest: stream the 10x fact table to disk, best-of reps ------------
    ingest_best = None
    for rep in range(PERF_REPS):
        path = str(root / f"lineorder-{rep}")
        t0 = time.perf_counter()
        ingest_chunks(
            path,
            LINEORDER_SCHEMA,
            stream_lineorder_chunks(PERF_ROWS, seed=SEED, chunk_rows=PERF_CHUNK),
        )
        elapsed = time.perf_counter() - t0
        if ingest_best is None or elapsed < ingest_best[0]:
            ingest_best = (elapsed, path)
    ingest_seconds, table_path = ingest_best
    table = open_table(table_path)
    assert table.num_rows == PERF_ROWS

    # -- chunked scan + group-by, best-of reps ------------------------------
    scan_seconds = None
    totals: dict[tuple, float] = {}
    for _ in range(PERF_REPS):
        t0 = time.perf_counter()
        totals = _scan_groupby(table)
        elapsed = time.perf_counter() - t0
        scan_seconds = elapsed if scan_seconds is None else min(scan_seconds, elapsed)

    # -- memory: tracemalloc peak over one full streamed scan ---------------
    # (memmap buffers are untraced OS pages; what tracemalloc sees is the
    # per-chunk materialization — exactly the thing that must stay O(chunk).)
    fresh = open_table(table_path)
    tracemalloc.start()
    tracemalloc.reset_peak()
    _scan_groupby(fresh)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    chunk_bytes = fresh.chunk(0).estimated_bytes()
    full_bytes = sum(c.estimated_bytes() for c in fresh.iter_chunks())

    disk_bytes = sum(
        f.stat().st_size for f in pathlib.Path(table_path).iterdir()
    )
    result = {
        "schema": "bench-storage-v1",
        "config": {
            "fact_rows": PERF_ROWS,
            "chunk_rows": PERF_CHUNK,
            "num_chunks": table.num_chunks,
            "reps": PERF_REPS,
            "seed": SEED,
            "group_keys": GROUP_KEYS,
        },
        "ingest": {
            "seconds": ingest_seconds,
            "rows_per_second": PERF_ROWS / ingest_seconds,
            "disk_bytes": disk_bytes,
        },
        "scan_groupby": {
            "seconds": scan_seconds,
            "rows_per_second": PERF_ROWS / scan_seconds,
            "num_groups": len(totals),
        },
        "memory": {
            "scan_peak_tracemalloc_bytes": peak_bytes,
            "chunk_estimated_bytes": chunk_bytes,
            "table_estimated_bytes": full_bytes,
        },
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    result["_totals"] = totals
    result["_table_path"] = table_path
    return result


def test_ingest_throughput_floor(bench):
    got = bench["ingest"]["rows_per_second"]
    assert got >= MIN_INGEST_ROWS_S, (
        f"ingest {got:,.0f} rows/s below floor {MIN_INGEST_ROWS_S:,.0f}"
    )


def test_scan_groupby_throughput_floor(bench):
    got = bench["scan_groupby"]["rows_per_second"]
    assert got >= MIN_SCAN_ROWS_S, (
        f"scan+groupby {got:,.0f} rows/s below floor {MIN_SCAN_ROWS_S:,.0f}"
    )


def test_streamed_scan_peak_memory_bounded(bench):
    """Peak traced memory must track chunks, not the table: the streamed
    scan may transiently hold a few chunks' worth of materialized cells
    (gather outputs, group-id scratch), never the whole fact table."""
    peak = bench["memory"]["scan_peak_tracemalloc_bytes"]
    chunk = bench["memory"]["chunk_estimated_bytes"]
    table = bench["memory"]["table_estimated_bytes"]
    assert peak <= 8 * chunk, f"scan peak {peak:,} > 8 chunks ({chunk:,} each)"
    if table > 10 * chunk:  # reduced-scale CI may run with few chunks
        assert peak < table / 2, f"scan peak {peak:,} not < half table {table:,}"


def test_streamed_groupby_matches_materialized(bench):
    """The chunked group-by must agree with computing over the whole
    mapped relation at once (same codes, same float sums)."""
    table = open_table(bench["_table_path"])
    rel = table.relation()
    keys, gids = group_ids(rel, GROUP_KEYS)
    revenue = np.asarray(rel.columns["extendedprice"]) * (
        1.0 - np.asarray(rel.columns["discount"])
    )
    sums = np.bincount(gids, weights=revenue, minlength=len(keys))
    whole = {key: float(s) for key, s in zip(keys, sums)}
    streamed = bench["_totals"]
    assert set(whole) == set(streamed)
    for key, s in whole.items():
        np.testing.assert_allclose(streamed[key], s, rtol=1e-9)


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-storage-v1"
    for section in ("config", "ingest", "scan_groupby", "memory"):
        assert section in on_disk
    assert on_disk["ingest"]["rows_per_second"] > 0
    assert on_disk["scan_groupby"]["rows_per_second"] > 0
    assert on_disk["config"]["fact_rows"] == PERF_ROWS
