"""Figures 9(b)/(c) — operator state sizes and shipped data on TPC-H.

9(b): bytes of operator state iOLAP keeps between batches, split into
join state (dimension tables, kept from batch 1) and all other operators
(sketches, non-deterministic stores — reported per batch). Both must be
small compared to the data the batch baseline ships.

9(c): data shipped across operator boundaries — baseline vs. iOLAP's
whole run vs. iOLAP per batch. iOLAP's total carries the bootstrap/lineage
footprint overhead; its per-batch volume is 1–2 orders of magnitude below
the baseline (the "stop early, ship less" effect).
"""

from repro.workloads import TPCH_QUERIES

from benchmarks.harness import fmt_table, run_baseline, run_iolap, write_result


def collect(queries):
    rows_state = []
    rows_shipped = []
    for name, spec in queries.items():
        run = run_iolap(spec)
        baseline = run_baseline(spec)
        join_state = run.metrics.max_state_bytes("join:")
        other_state = max(
            b.total_state_bytes - b.state_bytes_matching("join:")
            for b in run.metrics.batches
        )
        total_shipped = run.metrics.total_shipped_bytes
        per_batch = total_shipped / len(run.metrics.batches)
        rows_state.append(
            [name, _mb(join_state), _mb(other_state), _mb(baseline.stats.bytes_shipped)]
        )
        rows_shipped.append(
            [
                name,
                _mb(baseline.stats.bytes_shipped),
                _mb(total_shipped),
                _mb(per_batch),
            ]
        )
    return rows_state, rows_shipped


def _mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:.3f}"


def test_fig9b_fig9c_tpch_memory(benchmark):
    rows_state, rows_shipped = benchmark.pedantic(
        lambda: collect(TPCH_QUERIES), rounds=1, iterations=1
    )
    write_result(
        "fig9b_tpch_state_sizes",
        fmt_table(
            ["query", "join state MB", "other state MB", "baseline shipped MB"],
            rows_state,
        ),
    )
    write_result(
        "fig9c_tpch_data_shipped",
        fmt_table(
            ["query", "baseline MB", "iOLAP total MB", "iOLAP per-batch MB"],
            rows_shipped,
        ),
    )
    ratios = []
    for row in rows_shipped:
        name, baseline_mb, total_mb, batch_mb = row
        # Per-batch shipping never exceeds the baseline's one-shot volume
        # (bootstrap trial columns inflate AGGREGATE inputs — the paper
        # reports up to 100x footprint for aggregates — yet each batch
        # still ships less than the batch engine does at once).
        if float(baseline_mb) > 0.1:
            assert float(batch_mb) < float(baseline_mb), name
            ratios.append(float(batch_mb) / float(baseline_mb))
    # ... and for typical queries it is 1-2 orders of magnitude less.
    assert sorted(ratios)[len(ratios) // 2] < 0.2
    for row in rows_state:
        # Join states hold dimension tables plus non-deterministic stores;
        # like the paper's Fig. 9(b), they stay well below the data volume
        # the baseline ships (Q18's semi-join store is the largest, as its
        # JOIN states are in the paper).
        name, join_mb, other_mb, baseline_mb = row
        assert float(join_mb) < max(2.0, 0.5 * float(baseline_mb)), name
