"""Kernel-layer perf benchmarks: microbenchmarks + ND-heavy end-to-end A/B.

Two layers of evidence for the vectorized hot paths:

* **Microbenchmarks** — each kernel (key codec, join gather, grouped
  holistic trials, batched lineage resolution) timed against its row-wise
  reference on identical inputs.
* **End-to-end** — an ND-heavy online run (uncertain semijoin membership
  feeding a holistic MEDIAN aggregate, every fact row ND until the member
  list stabilizes) executed with ``vectorize`` on and off, recording the
  per-batch wall series, per-operator ``op_seconds``, and the kernel
  cache counters.

Results are written to ``BENCH_kernels.json`` at the repo root — the
machine-readable perf trajectory CI regenerates and diffs (the
``perf-smoke`` job fails on a >2x slowdown against the checked-in
numbers).

Scale knobs (environment variables, defaults = the paper-sized config):

* ``IOLAP_PERF_SCALE``   — TPC-H scale factor (default 2.0 = 40k fact rows)
* ``IOLAP_PERF_BATCHES`` — mini-batches (default 20)
* ``IOLAP_PERF_TRIALS``  — bootstrap trials (default 60)
* ``IOLAP_PERF_REPS``    — repetitions, best-of (default 3)
* ``IOLAP_PERF_MIN_SPEEDUP`` — end-to-end assertion floor (default 1.5;
  the checked-in full-scale run shows >=3x)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.blocks import BlockOutput, GroupValue, MEMBER_UNKNOWN, RuntimeContext
from repro.core.classify import evaluate_side
from repro.core.values import LineageRef, UncertainValue, VariationRange
from repro.kernels.codec import factorize_keys
from repro.kernels.holistic import grouped_indices, weighted_quantile, weighted_quantile_trials
from repro.kernels.joins import SideIndex, vectorized_join
from repro.kernels.stats import STATS
from repro.relational import Catalog, ColumnType, Relation, Schema, col, scan
from repro.relational.aggregates import count, median, sum_
from repro.relational.evaluator import join_relations
from repro.relational.expressions import Col
from repro.workloads.tpch import LINEORDER_SCHEMA

from benchmarks.harness import SEED, tpch_catalog

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_kernels.json"

PERF_SCALE = float(os.environ.get("IOLAP_PERF_SCALE", "2.0"))
PERF_BATCHES = int(os.environ.get("IOLAP_PERF_BATCHES", "20"))
PERF_TRIALS = int(os.environ.get("IOLAP_PERF_TRIALS", "60"))
PERF_REPS = int(os.environ.get("IOLAP_PERF_REPS", "3"))
MIN_SPEEDUP = float(os.environ.get("IOLAP_PERF_MIN_SPEEDUP", "1.5"))


def best_of(fn, reps: int = PERF_REPS) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def fresh(rel: Relation) -> Relation:
    """New Relation identity over shared arrays — defeats the per-object
    memo caches so microbenchmarks time the cold kernel, not the cache."""
    return Relation(rel.schema, rel.columns, rel.mult, rel.trial_mults)


# -- the ND-heavy end-to-end configuration ------------------------------------------


def nd_heavy_plan(catalog: Catalog):
    """Uncertain semijoin + holistic aggregate: the worst-case ND shape.

    The member list is the set of customers whose total revenue exceeds
    the *median* per-customer revenue — a threshold that keeps roughly
    half the groups ND until late in the run, so every fact row joins
    against an uncertain membership and the MEDIAN aggregate re-evaluates
    its whole row store per batch.
    """
    price = catalog.get("lineorder").column("extendedprice")
    disc = catalog.get("lineorder").column("discount")
    cust = catalog.get("lineorder").column("custkey")
    _, inverse = np.unique(cust, return_inverse=True)
    revenue = np.bincount(inverse, weights=price * (1.0 - disc))
    threshold = float(np.median(revenue))
    member = (
        scan("lineorder", LINEORDER_SCHEMA)
        .aggregate(
            ["custkey"],
            [sum_(col("extendedprice") * (1 - col("discount")), "revenue")],
        )
        .select(col("revenue") > threshold)
        .project([("k2", col("custkey"))])
    )
    plan = (
        scan("lineorder", LINEORDER_SCHEMA)
        .join(member, keys=[("custkey", "k2")])
        .aggregate(["custkey"], [median("extendedprice", "med_price"), count("n")])
    )
    return plan, threshold


def run_mode(catalog: Catalog, plan, vectorize: bool) -> dict:
    STATS.reset()
    engine = OnlineQueryEngine(
        catalog,
        "lineorder",
        OnlineConfig(num_trials=PERF_TRIALS, seed=SEED, vectorize=vectorize),
    )
    t0 = time.perf_counter()
    for _ in engine.run(plan, PERF_BATCHES):
        pass
    total = time.perf_counter() - t0
    engine.executor.close()
    # The sanitizer's zero-cost-when-off claim (DESIGN.md §13) is a perf
    # guarantee, so the perf suite is where it gets enforced: no config
    # here sets sanitize=True, so not a single sanitizer cycle may show.
    assert engine.metrics.sanitize_seconds == 0.0
    return {
        "total_seconds": total,
        "per_batch_seconds": [bm.wall_seconds for bm in engine.metrics.batches],
        "op_seconds": engine.metrics.total_op_seconds(),
        "kernel_stats": STATS.snapshot(),
    }


# -- microbenchmark inputs ------------------------------------------------------


def _codec_bench(lineorder: Relation) -> dict:
    names = ["custkey", "shipmode"]

    def reference():
        rel = fresh(lineorder)
        codes_of: dict[tuple, int] = {}
        codes = np.empty(len(rel), dtype=np.intp)
        for i, key in enumerate(rel.key_tuples(names)):
            codes[i] = codes_of.setdefault(key, len(codes_of))
        return codes

    vec_s = best_of(lambda: factorize_keys(fresh(lineorder), names))
    ref_s = best_of(reference)
    return {"vectorized_seconds": vec_s, "reference_seconds": ref_s,
            "speedup": ref_s / vec_s}


def _join_bench(lineorder: Relation) -> dict:
    custkeys = np.unique(lineorder.column("custkey"))
    dim = Relation(
        Schema([("k2", ColumnType.INT), ("grp", ColumnType.INT)]),
        {"k2": custkeys, "grp": custkeys % 7},
    )
    keys = [("custkey", "k2")]
    index = SideIndex(dim, ["k2"])

    vec_s = best_of(lambda: vectorized_join(fresh(lineorder), dim, keys, index))
    ref_s = best_of(lambda: join_relations(fresh(lineorder), dim, keys))
    return {"vectorized_seconds": vec_s, "reference_seconds": ref_s,
            "speedup": ref_s / vec_s}


def _holistic_bench(lineorder: Relation) -> dict:
    rng = np.random.default_rng(SEED)
    values = np.asarray(lineorder.column("extendedprice"), dtype=np.float64)
    trial_w = rng.poisson(1.0, (len(values), PERF_TRIALS)).astype(np.float64)
    kc = factorize_keys(lineorder, ["custkey"])
    groups = grouped_indices(kc.codes, kc.num_keys)

    def vectorized():
        for ix in groups:
            weighted_quantile_trials(values[ix], trial_w[ix], 0.5)

    def reference():
        for ix in groups:
            v, w = values[ix], trial_w[ix]
            out = np.empty(PERF_TRIALS)
            for j in range(PERF_TRIALS):
                out[j] = weighted_quantile(v, w[:, j], 0.5)

    vec_s = best_of(vectorized)
    ref_s = best_of(reference, reps=1)
    return {"vectorized_seconds": vec_s, "reference_seconds": ref_s,
            "speedup": ref_s / vec_s}


def _classify_bench() -> dict:
    n, n_groups = 20_000, 200
    rng = np.random.default_rng(SEED)

    def make_ctx(vectorize: bool) -> RuntimeContext:
        ctx = RuntimeContext(
            Catalog({}), "t", n,
            OnlineConfig(num_trials=PERF_TRIALS, seed=SEED, vectorize=vectorize),
        )
        ctx.batch_no = 1
        block = BlockOutput(1, ["k"], ["v"])
        for k in range(n_groups):
            trials = rng.normal(100.0, 10.0, PERF_TRIALS)
            value = UncertainValue(
                float(trials.mean()), trials,
                VariationRange.from_trials(trials, 2.0),
                LineageRef(1, (k,), "v"),
            )
            block.publish(
                GroupValue((k,), {"k": k, "v": value}, False,
                           member_status=MEMBER_UNKNOWN, member_point=True,
                           exist_trials=np.ones(PERF_TRIALS, dtype=bool)),
                is_new=True,
            )
        ctx.blocks[1] = block
        return ctx

    refs = np.array(
        [LineageRef(1, (i % n_groups,), "v") for i in range(n)], dtype=object
    )
    rel = Relation(
        Schema([("u", ColumnType.STRING), ("d", ColumnType.FLOAT)]),
        {"u": refs, "d": rng.normal(0.0, 1.0, n)},
    )
    expr = Col("u") * 0.5 + col("d")
    ctx_vec, ctx_ref = make_ctx(True), make_ctx(False)

    vec_s = best_of(lambda: evaluate_side(expr, rel, {"u"}, ctx_vec))
    ref_s = best_of(lambda: evaluate_side(expr, rel, {"u"}, ctx_ref))
    return {"vectorized_seconds": vec_s, "reference_seconds": ref_s,
            "speedup": ref_s / vec_s}


# -- the suite ------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench() -> dict:
    catalog = tpch_catalog(PERF_SCALE)
    lineorder = catalog.get("lineorder")
    plan, threshold = nd_heavy_plan(catalog)

    micro = {
        "key_codec": _codec_bench(lineorder),
        "vectorized_join": _join_bench(lineorder),
        "holistic_trials": _holistic_bench(lineorder),
        "classify_resolve": _classify_bench(),
    }

    runs = {True: None, False: None}
    for vec in (True, False):
        best = None
        for _ in range(PERF_REPS):
            result = run_mode(catalog, plan, vec)
            if best is None or result["total_seconds"] < best["total_seconds"]:
                best = result
        runs[vec] = best

    vec_run, ref_run = runs[True], runs[False]
    per_batch_speedup = [
        r / v
        for r, v in zip(ref_run["per_batch_seconds"], vec_run["per_batch_seconds"])
        if v > 0
    ]
    result = {
        "schema": "bench-kernels-v1",
        "config": {
            "tpch_scale": PERF_SCALE,
            "fact_rows": len(lineorder),
            "num_batches": PERF_BATCHES,
            "num_trials": PERF_TRIALS,
            "reps": PERF_REPS,
            "seed": SEED,
            "nd_threshold": threshold,
            "query": "lineorder semijoin(custkey revenue > median) "
                     "-> groupby custkey [median(extendedprice), count]",
        },
        "microbenchmarks": micro,
        "end_to_end": {
            "vectorized": vec_run,
            "reference": ref_run,
            "speedup": ref_run["total_seconds"] / vec_run["total_seconds"],
            "per_batch_speedup_mean": float(np.mean(per_batch_speedup)),
        },
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


def test_microbenchmarks_beat_reference(bench):
    # 0.9 rather than 1.0: shared-runner noise can shave a few percent off
    # a marginal kernel at reduced scale; real regressions are caught by
    # the perf-smoke baseline comparison (>2x slowdown fails CI).
    slow = {
        name: numbers["speedup"]
        for name, numbers in bench["microbenchmarks"].items()
        if numbers["speedup"] < 0.9
    }
    assert not slow, f"kernels slower than their row-wise reference: {slow}"


def test_nd_heavy_speedup(bench):
    speedup = bench["end_to_end"]["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"end-to-end ND-heavy speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x"
    )


def test_op_seconds_confirm_hot_path_win(bench):
    """The win must come from the rewired operators, not ambient noise."""
    def hot_path_seconds(run):
        return sum(
            seconds
            for op, seconds in run["op_seconds"].items()
            if "aggregate" in op or "join" in op
        )

    vec = hot_path_seconds(bench["end_to_end"]["vectorized"])
    ref = hot_path_seconds(bench["end_to_end"]["reference"])
    assert ref > vec, f"hot-path op_seconds did not improve: ref={ref} vec={vec}"


def test_kernel_caches_hit(bench):
    # The ND-heavy plan joins against a *block view* (the member list), so
    # the codec and group-view caches are the ones exercised; the static
    # dimension-side index has its own tests in tests/test_kernels.py.
    stats = bench["end_to_end"]["vectorized"]["kernel_stats"]
    assert stats["codec_hits"] > 0, stats
    assert stats["view_table_hits"] > 0, stats


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-kernels-v1"
    for section in ("config", "microbenchmarks", "end_to_end"):
        assert section in on_disk
    for mode in ("vectorized", "reference"):
        run = on_disk["end_to_end"][mode]
        assert len(run["per_batch_seconds"]) == on_disk["config"]["num_batches"]
        assert run["total_seconds"] > 0
