"""Figures 9(d)/(e) — tuning the slack parameter ε (Conviva).

Sweeping ε over {0, 0.5, 1, 1.5, 2, 2.5} for the nested Conviva queries:

* 9(d): the probability of failure-recovery drops quickly as ε grows and
  reaches (near) zero by ε = 2 — recoveries per run, averaged over seeds;
* 9(e): the average number of tuples recomputed per batch grows only
  mildly with ε (wider ranges put more tuples in the non-deterministic
  set, but running estimates concentrate quickly).
"""

import numpy as np

from repro.workloads import CONVIVA_QUERIES

from benchmarks.harness import (
    NESTED_CONVIVA,
    NUM_BATCHES,
    conviva_catalog,
    fmt_table,
    run_iolap,
    write_result,
)

SLACKS = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
SEEDS = [42, 43, 44]
#: Noisier-than-default estimation settings (few trials, many small
#: batches) so low-slack ranges actually mis-predict — the regime the
#: paper's sweep explores.
SWEEP_BATCHES = 30
SWEEP_TRIALS = 15


def sweep():
    failures = {}
    recomputed = {}
    for name in NESTED_CONVIVA:
        spec = CONVIVA_QUERIES[name]
        catalog = conviva_catalog(1.0)
        for slack in SLACKS:
            recs = []
            recomp = []
            for seed in SEEDS:
                run = run_iolap(
                    spec,
                    catalog,
                    num_batches=SWEEP_BATCHES,
                    slack=slack,
                    seed=seed,
                    num_trials=SWEEP_TRIALS,
                )
                recs.append(run.metrics.num_recoveries)
                recomp.append(
                    run.metrics.total_recomputed / len(run.metrics.batches)
                )
            failures[(name, slack)] = float(np.mean(recs)) / SWEEP_BATCHES
            recomputed[(name, slack)] = float(np.mean(recomp))
    return failures, recomputed


def test_fig9d_fig9e_slack(benchmark):
    failures, recomputed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def table(metric, fmt):
        rows = []
        for name in NESTED_CONVIVA:
            rows.append([name] + [fmt(metric[(name, s)]) for s in SLACKS])
        return fmt_table(["query"] + [f"slack={s}" for s in SLACKS], rows)

    write_result(
        "fig9d_slack_failure_probability",
        table(failures, lambda v: f"{v:.3f}"),
    )
    write_result(
        "fig9e_slack_nd_set",
        table(recomputed, lambda v: f"{v:.0f}"),
    )

    # Shape (9d): larger slack never hurts much and ε=2 is (near) failure
    # free; the tight-slack end shows strictly more recoveries overall.
    total_at = {
        s: sum(failures[(q, s)] for q in NESTED_CONVIVA) for s in SLACKS
    }
    assert total_at[2.0] < total_at[0.0]
    assert total_at[2.0] <= 0.1 * len(NESTED_CONVIVA)
    # Shape (9e): the ND set grows only mildly with slack.
    for name in NESTED_CONVIVA:
        lo = max(recomputed[(name, 0.5)], 1.0)
        assert recomputed[(name, 2.5)] <= max(5.0 * lo, lo + 2000.0), name
