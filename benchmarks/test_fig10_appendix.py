"""Figures 10(a)–(f) — the Appendix D experiments.

* 10(a)/(b): iOLAP vs. HDA end-to-end — latency to process 5%, 10%, and
  all of the data. For flat SPJA queries the two are comparable; for
  nested queries HDA's accumulated recomputation makes its full run far
  more expensive (we compare recomputed tuples, the scale-free measure,
  plus wall-clock).
* 10(c)/(d): Conviva operator state sizes and shipped data (the Conviva
  analogue of Figs 9(b)/(c) — all states stay small because the workload
  joins at most one tiny dimension table).
* 10(e)/(f): the slack sweep on the nested TPC-H queries.
"""

import numpy as np

from repro.workloads import CONVIVA_QUERIES, TPCH_QUERIES

from benchmarks.harness import (
    NESTED_CONVIVA,
    NESTED_TPCH,
    catalog_for,
    fmt_table,
    run_baseline,
    run_hda,
    run_iolap,
    tpch_catalog,
    write_result,
)


def hda_vs_iolap(queries):
    rows = []
    for name, spec in queries.items():
        catalog = catalog_for(spec)
        iolap = run_iolap(spec, catalog, num_trials=10)
        hda = run_hda(spec, catalog)
        hda_work = sum(b.new_tuples + b.recomputed_tuples for b in hda.batches)
        iolap_work = sum(
            b.new_tuples + b.recomputed_tuples for b in iolap.metrics.batches
        )
        rows.append(
            [
                name,
                iolap.seconds_at_fraction(0.10),
                hda.seconds_until_fraction(0.10),
                iolap.total_seconds,
                hda.total_seconds,
                iolap_work,
                hda_work,
            ]
        )
    return rows


HEADER_AB = [
    "query",
    "iOLAP@10% s",
    "HDA@10% s",
    "iOLAP full s",
    "HDA full s",
    "iOLAP tuples",
    "HDA tuples",
]


def test_fig10a_tpch_hda(benchmark):
    rows = benchmark.pedantic(
        lambda: hda_vs_iolap(TPCH_QUERIES), rounds=1, iterations=1
    )
    write_result("fig10a_tpch_iolap_vs_hda", fmt_table(HEADER_AB, rows))
    _check_work(rows, TPCH_QUERIES)


def test_fig10b_conviva_hda(benchmark):
    rows = benchmark.pedantic(
        lambda: hda_vs_iolap(CONVIVA_QUERIES), rounds=1, iterations=1
    )
    write_result("fig10b_conviva_iolap_vs_hda", fmt_table(HEADER_AB, rows))
    _check_work(rows, CONVIVA_QUERIES)


def _check_work(rows, queries):
    for row in rows:
        name, *_ , iolap_work, hda_work = row
        if queries[name].nested and name not in ("Q11", "C4", "C10"):
            # HDA reprocesses the accumulated data every batch; iOLAP's
            # total work stays within a small multiple of the data.
            # (Q11/C4/C10 are the paper's flattening exceptions: their
            # outer queries only join small aggregates, never re-reading
            # the fact table.)
            assert hda_work > 1.5 * iolap_work, name


def conviva_memory():
    rows_state = []
    rows_shipped = []
    for name, spec in CONVIVA_QUERIES.items():
        run = run_iolap(spec)
        baseline = run_baseline(spec)
        join_state = run.metrics.max_state_bytes("join:")
        other = max(
            b.total_state_bytes - b.state_bytes_matching("join:")
            for b in run.metrics.batches
        )
        rows_state.append(
            [name, f"{join_state/1e6:.3f}", f"{other/1e6:.3f}"]
        )
        rows_shipped.append(
            [
                name,
                f"{baseline.stats.bytes_shipped/1e6:.3f}",
                f"{run.metrics.total_shipped_bytes/1e6:.3f}",
                f"{run.metrics.total_shipped_bytes/len(run.metrics.batches)/1e6:.3f}",
            ]
        )
    return rows_state, rows_shipped


def test_fig10cd_conviva_memory(benchmark):
    rows_state, rows_shipped = benchmark.pedantic(
        conviva_memory, rounds=1, iterations=1
    )
    write_result(
        "fig10c_conviva_state_sizes",
        fmt_table(["query", "join state MB", "other state MB"], rows_state),
    )
    write_result(
        "fig10d_conviva_data_shipped",
        fmt_table(
            ["query", "baseline MB", "iOLAP total MB", "iOLAP per-batch MB"],
            rows_shipped,
        ),
    )
    for row in rows_state:
        # All Conviva states stay small (hundreds of KB at our scale —
        # "a few hundreds of MBs" at the paper's).
        assert float(row[1]) + float(row[2]) < 8.0, row[0]
    for row in rows_shipped:
        if float(row[1]) > 0.1:
            assert float(row[3]) < float(row[1]), row[0]


SLACKS = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
SEEDS = [42, 43, 44]


def tpch_slack_sweep():
    failures = {}
    nd_sizes = {}
    catalog = tpch_catalog(1.0)
    for name in NESTED_TPCH:
        spec = TPCH_QUERIES[name]
        for slack in SLACKS:
            recs = []
            recomp = []
            for seed in SEEDS:
                run = run_iolap(
                    spec,
                    catalog,
                    num_batches=30,
                    num_trials=15,
                    slack=slack,
                    seed=seed,
                )
                recs.append(run.metrics.num_recoveries)
                recomp.append(run.metrics.total_recomputed / 30)
            failures[(name, slack)] = float(np.mean(recs)) / 30
            nd_sizes[(name, slack)] = float(np.mean(recomp))
    return failures, nd_sizes


def test_fig10ef_tpch_slack(benchmark):
    failures, nd_sizes = benchmark.pedantic(tpch_slack_sweep, rounds=1, iterations=1)

    def table(metric, fmt):
        rows = [
            [name] + [fmt(metric[(name, s)]) for s in SLACKS]
            for name in NESTED_TPCH
        ]
        return fmt_table(["query"] + [f"slack={s}" for s in SLACKS], rows)

    write_result("fig10e_tpch_slack_failures", table(failures, lambda v: f"{v:.3f}"))
    write_result("fig10f_tpch_slack_nd_set", table(nd_sizes, lambda v: f"{v:.0f}"))

    total_at = {s: sum(failures[(q, s)] for q in NESTED_TPCH) for s in SLACKS}
    assert total_at[2.5] <= total_at[0.0]
