"""Figure 7(a) — relative standard deviation vs. query time for Conviva C8.

The paper's headline figure: iOLAP delivers a first approximate answer
after a small fraction of the data and refines it continuously; the user
can stop whenever the error is acceptable.

Measurement note (DESIGN.md §2): on the paper's Spark cluster, per-tuple
cost is dominated by shuffle/IO, so the 100-trial bootstrap is a ~50-60%
overhead and wall-clock speedups track data fractions. On this pure
NumPy substrate the baseline is already flop-bound, so bootstrap flops
dominate wall-clock at small scale. We therefore report *both* wall-clock
and the scale-free measure — tuples processed (ingested + recomputed)
relative to the dataset — and assert the paper's shape on the latter.
"""

from repro.workloads import CONVIVA_QUERIES

from benchmarks.harness import (
    conviva_catalog,
    fmt_table,
    run_baseline,
    run_iolap,
    thin_series,
    write_result,
)


def test_fig7a_accuracy_vs_time(benchmark):
    spec = CONVIVA_QUERIES["C8"]

    def experiment():
        run = run_iolap(spec, keep_partials=True, num_trials=100)
        baseline = run_baseline(spec)
        return run, baseline

    run, baseline = benchmark.pedantic(experiment, rounds=1, iterations=1)
    total_rows = len(conviva_catalog().get("sessions"))

    elapsed = 0.0
    work = 0
    points = []
    for partial, bm in zip(run.partials, run.metrics.batches):
        elapsed += bm.wall_seconds
        work += bm.new_tuples + bm.recomputed_tuples
        points.append((elapsed, work / total_rows, partial.max_relative_stdev()))

    rows = [
        [
            i,
            f"{points[i-1][0]:.3f}",
            f"{points[i-1][1]:.3f}",
            _fmt_rsd(points[i-1][2]),
        ]
        for i, _ in thin_series([p[2] for p in points])
    ]
    table = fmt_table(
        ["batch", "cum seconds", "cum work (x data)", "relative stdev"], rows
    )
    table += (
        f"\n\nbaseline wall-clock (full data):  {baseline.wall_seconds:.3f}s"
        f"\niOLAP wall-clock (all batches):   {points[-1][0]:.3f}s"
        f"\nwork to first answer:             {points[0][1]*100:.1f}% of data"
        f"\ntotal iOLAP work:                 {points[-1][1]:.2f}x data"
        f"\nfirst-answer relative stdev:      {_fmt_rsd(points[0][2])}"
    )
    write_result("fig7a_accuracy_curve", table)

    # Shape assertions (Fig 7a): the first answer costs a small fraction
    # of the data; the error estimate shrinks as batches accumulate; the
    # total online work stays within the paper's ~2x overhead envelope.
    assert points[0][1] < 0.15
    rsds = [rsd for _, _, rsd in points if rsd == rsd]
    assert rsds[-1] < rsds[0]
    assert points[-1][1] < 2.5


def _fmt_rsd(value: float) -> str:
    return f"{value:.4f}" if value == value else "exact"
