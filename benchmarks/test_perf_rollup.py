"""Rollup-tier perf benchmark: many groups, shrinking ND frontier.

The workload the two-tier plan exists for: a wide GROUP BY (tens of
thousands of groups) over group-sorted arrival (``sequential``
partitioning), so each mini-batch touches only a thin wave of groups
while every previously seen group has stopped changing. Without the
rollup tier the sink re-finalizes, re-ranges, and re-publishes every
group ever seen, so per-batch cost grows linearly with the published
universe; with ``rollup=True`` quiescent resolved groups migrate out of
the hot path and per-batch cost stays flat in the resolved-group count.

Results are written to ``BENCH_rollup.json`` at the repo root — the
machine-readable perf trajectory CI regenerates and diffs (the
``rollup-smoke`` job fails if the speedup falls below half the
checked-in number).

Scale knobs (environment variables, defaults = the checked-in config):

* ``IOLAP_ROLLUP_ROWS``    — fact rows (default 120000)
* ``IOLAP_ROLLUP_GROUPS``  — distinct group keys (default 12000)
* ``IOLAP_ROLLUP_BATCHES`` — mini-batches (default 64)
* ``IOLAP_ROLLUP_TRIALS``  — bootstrap trials (default 100)
* ``IOLAP_ROLLUP_REPS``    — repetitions, best-of (default 3)
* ``IOLAP_ROLLUP_MIN_SPEEDUP`` — end-to-end assertion floor (default
  2.0; the checked-in full-scale run shows >=3x)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.relational import Catalog, Schema, avg, relation_from_columns, scan
from repro.relational.schema import ColumnType

from benchmarks.harness import SEED

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_rollup.json"

ROLLUP_ROWS = int(os.environ.get("IOLAP_ROLLUP_ROWS", "120000"))
ROLLUP_GROUPS = int(os.environ.get("IOLAP_ROLLUP_GROUPS", "12000"))
ROLLUP_BATCHES = int(os.environ.get("IOLAP_ROLLUP_BATCHES", "64"))
ROLLUP_TRIALS = int(os.environ.get("IOLAP_ROLLUP_TRIALS", "100"))
ROLLUP_REPS = int(os.environ.get("IOLAP_ROLLUP_REPS", "3"))
MIN_SPEEDUP = float(os.environ.get("IOLAP_ROLLUP_MIN_SPEEDUP", "2.0"))

SCHEMA = Schema([("g", ColumnType.INT), ("x", ColumnType.FLOAT)])


def many_groups_catalog() -> Catalog:
    """Group-sorted stream: each batch is a thin wave of fresh groups."""
    rng = np.random.default_rng(SEED)
    return Catalog(
        {
            "t": relation_from_columns(
                SCHEMA,
                g=np.sort(rng.integers(0, ROLLUP_GROUPS, ROLLUP_ROWS)),
                x=rng.normal(50.0, 10.0, ROLLUP_ROWS),
            )
        }
    )


def run_mode(catalog: Catalog, rollup: bool) -> dict:
    plan = scan("t", SCHEMA).aggregate(["g"], [avg("x", "ax")])
    engine = OnlineQueryEngine(
        catalog,
        "t",
        OnlineConfig(num_trials=ROLLUP_TRIALS, seed=SEED, rollup=rollup),
        partition_mode="sequential",
    )
    t0 = time.perf_counter()
    final = None
    for partial in engine.run(plan, ROLLUP_BATCHES):
        final = partial
    total = time.perf_counter() - t0
    engine.executor.close()
    batches = engine.metrics.batches
    return {
        "total_seconds": total,
        "per_batch_seconds": [bm.wall_seconds for bm in batches],
        "rollup_group_batches": sum(bm.rollup_groups for bm in batches),
        "nd_group_batches": sum(bm.nd_groups for bm in batches),
        "final": final,
    }


def _tail_over_head(per_batch: list[float]) -> float:
    """Median late-run batch cost over median early-run batch cost.

    The flatness witness: a sink whose per-batch cost is flat in the
    resolved-group count scores ~1; one that re-publishes the whole
    published universe scores ~(universe / wave). Medians, not means, so
    checkpoint/GC spikes don't decide the verdict.
    """
    quarter = max(1, len(per_batch) // 4)
    head = per_batch[quarter : 2 * quarter]  # past warm-up, pre-saturation
    tail = per_batch[-quarter:]
    return float(np.median(tail) / np.median(head))


@pytest.fixture(scope="module")
def bench() -> dict:
    catalog = many_groups_catalog()
    runs: dict[bool, dict] = {}
    for rollup in (True, False):
        best = None
        for _ in range(ROLLUP_REPS):
            result = run_mode(catalog, rollup)
            if best is None or result["total_seconds"] < best["total_seconds"]:
                best = result
        runs[rollup] = best

    on, off = runs[True], runs[False]
    finals = {mode: run.pop("final") for mode, run in (("on", on), ("off", off))}
    result = {
        "schema": "bench-rollup-v1",
        "config": {
            "rows": ROLLUP_ROWS,
            "groups": ROLLUP_GROUPS,
            "num_batches": ROLLUP_BATCHES,
            "num_trials": ROLLUP_TRIALS,
            "reps": ROLLUP_REPS,
            "seed": SEED,
            "partition_mode": "sequential",
            "query": "t sorted by g -> groupby g [avg(x)]",
        },
        "end_to_end": {
            "rollup": on,
            "reference": off,
            "speedup": off["total_seconds"] / on["total_seconds"],
            "tail_over_head_rollup": _tail_over_head(on["per_batch_seconds"]),
            "tail_over_head_reference": _tail_over_head(
                off["per_batch_seconds"]
            ),
        },
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    result["finals"] = finals
    return result


def test_end_to_end_speedup(bench):
    speedup = bench["end_to_end"]["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"rollup end-to-end speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x"
    )


def test_per_batch_cost_flat_in_resolved_groups(bench):
    """The mechanism, not just the headline: rollup-on batch cost must
    stay flat while the reference grows with the published universe."""
    on = bench["end_to_end"]["tail_over_head_rollup"]
    off = bench["end_to_end"]["tail_over_head_reference"]
    assert on <= 2.0, f"rollup per-batch cost grew {on:.2f}x head->tail"
    assert off >= 2.0, (
        f"reference per-batch cost grew only {off:.2f}x head->tail — the "
        "workload no longer stresses the published-universe recompute"
    )
    assert off / on >= 1.5, f"flatness gap too small: off={off:.2f} on={on:.2f}"


def test_rollup_tier_dominates_hot_tier(bench):
    """Most group-batches must be served from the rollup tier, otherwise
    the speedup is coming from somewhere other than migration."""
    served = bench["end_to_end"]["rollup"]["rollup_group_batches"]
    hot = bench["end_to_end"]["rollup"]["nd_group_batches"]
    assert served > hot, f"rollup tier served {served} <= hot tier {hot}"
    assert bench["end_to_end"]["reference"]["rollup_group_batches"] == 0


def test_final_results_agree(bench):
    """Same answer either way (bit-identity per batch is enforced by
    tests/test_rollup.py; this guards the benchmark's own config)."""
    on = bench["finals"]["on"].to_relation()
    off = bench["finals"]["off"].to_relation()
    assert on.bag_equal(off, 9)


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-rollup-v1"
    for section in ("config", "end_to_end"):
        assert section in on_disk
    for mode in ("rollup", "reference"):
        run = on_disk["end_to_end"][mode]
        assert len(run["per_batch_seconds"]) == on_disk["config"]["num_batches"]
        assert run["total_seconds"] > 0
