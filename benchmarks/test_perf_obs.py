"""Observability perf benchmarks: profiling overhead + model calibration.

Two gates for the continuous profiler (DESIGN.md §14):

* **Overhead** — the ND-heavy end-to-end run (the same worst-case shape
  the kernel benchmarks use) executed with ``profile`` off and on. The
  profiler reads per-batch counters on the controller thread between
  batches, so its cost must stay a small fraction of the run; the gate
  fails if the profiled run is more than ``IOLAP_PERF_MAX_OVERHEAD``
  (default 5%) slower.
* **Calibration** — every bundled workload query run with profiling on;
  after the 5-batch warm-up each batch's predicted cost is scored
  against its actual. The suite-level mean MAPE must stay under
  ``IOLAP_PERF_MAX_MAPE`` (default 25%).

Results are written to ``BENCH_obs.json`` at the repo root — the
machine-readable artifact the ``obs-export-smoke`` CI job regenerates
and gates against the checked-in baseline.

Scale knobs (environment variables, defaults = the paper-sized config):

* ``IOLAP_PERF_SCALE``        — TPC-H scale for the overhead A/B (default 2.0)
* ``IOLAP_PERF_BATCHES``      — overhead A/B mini-batches (default 20)
* ``IOLAP_PERF_TRIALS``       — overhead A/B bootstrap trials (default 60)
* ``IOLAP_PERF_REPS``         — repetitions, best-of (default 3)
* ``IOLAP_PERF_MAX_OVERHEAD`` — profiling overhead ceiling (default 0.05)
* ``IOLAP_PERF_CAL_SCALE``    — calibration sweep workload scale (default 0.4)
* ``IOLAP_PERF_CAL_BATCHES``  — calibration batches per query (default 12)
* ``IOLAP_PERF_CAL_TRIALS``   — calibration bootstrap trials (default 16)
* ``IOLAP_PERF_MAX_MAPE``     — suite mean MAPE ceiling (default 0.25)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core import OnlineConfig, OnlineQueryEngine
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)

from benchmarks.harness import SEED, tpch_catalog
from benchmarks.test_perf_kernels import nd_heavy_plan

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"

PERF_SCALE = float(os.environ.get("IOLAP_PERF_SCALE", "2.0"))
PERF_BATCHES = int(os.environ.get("IOLAP_PERF_BATCHES", "20"))
PERF_TRIALS = int(os.environ.get("IOLAP_PERF_TRIALS", "60"))
PERF_REPS = int(os.environ.get("IOLAP_PERF_REPS", "3"))
MAX_OVERHEAD = float(os.environ.get("IOLAP_PERF_MAX_OVERHEAD", "0.05"))
CAL_SCALE = float(os.environ.get("IOLAP_PERF_CAL_SCALE", "0.4"))
CAL_BATCHES = int(os.environ.get("IOLAP_PERF_CAL_BATCHES", "12"))
CAL_TRIALS = int(os.environ.get("IOLAP_PERF_CAL_TRIALS", "16"))
MAX_MAPE = float(os.environ.get("IOLAP_PERF_MAX_MAPE", "0.25"))


def _run_nd_heavy(catalog, plan, profile: bool) -> dict:
    engine = OnlineQueryEngine(
        catalog,
        "lineorder",
        OnlineConfig(num_trials=PERF_TRIALS, seed=SEED, profile=profile),
    )
    t0 = time.perf_counter()
    for _ in engine.run(plan, PERF_BATCHES):
        pass
    total = time.perf_counter() - t0
    engine.executor.close()
    return {
        "total_seconds": total,
        "per_batch_seconds": [b.wall_seconds for b in engine.metrics.batches],
        "profile_seconds": engine.metrics.profile_seconds,
        "cost_calibration": engine.metrics.cost_calibration,
    }


def _calibration_sweep() -> dict:
    catalogs = {
        "tpch": generate_tpch(scale=CAL_SCALE, seed=SEED).catalog(),
        "conviva": generate_conviva(scale=CAL_SCALE, seed=SEED).catalog(),
    }
    per_query = {}
    for source, queries in (("tpch", TPCH_QUERIES), ("conviva", CONVIVA_QUERIES)):
        for name, spec in queries.items():
            engine = OnlineQueryEngine(
                catalogs[source],
                spec.streamed_table,
                OnlineConfig(num_trials=CAL_TRIALS, seed=SEED, profile=True),
            )
            for _ in engine.run(spec.plan, CAL_BATCHES):
                pass
            engine.executor.close()
            cal = engine.metrics.cost_calibration
            per_query[f"{source}:{name}"] = {
                "predictions": cal["predictions"],
                "mae_seconds": cal["mae_seconds"],
                "mape": cal["mape"],
            }
    mapes = [q["mape"] for q in per_query.values()]
    return {
        "per_query": per_query,
        "mean_mape": sum(mapes) / len(mapes),
        "worst_mape": max(mapes),
        "queries": len(per_query),
    }


@pytest.fixture(scope="module")
def bench() -> dict:
    catalog = tpch_catalog(PERF_SCALE)
    plan, _ = nd_heavy_plan(catalog)

    runs = {}
    for profile in (False, True):
        best = None
        for _ in range(PERF_REPS):
            result = _run_nd_heavy(catalog, plan, profile)
            if best is None or result["total_seconds"] < best["total_seconds"]:
                best = result
        runs[profile] = best
    off, on = runs[False], runs[True]
    overhead = on["total_seconds"] / off["total_seconds"] - 1.0

    result = {
        "schema": "bench-obs-v1",
        "config": {
            "tpch_scale": PERF_SCALE,
            "num_batches": PERF_BATCHES,
            "num_trials": PERF_TRIALS,
            "reps": PERF_REPS,
            "cal_scale": CAL_SCALE,
            "cal_batches": CAL_BATCHES,
            "cal_trials": CAL_TRIALS,
            "seed": SEED,
        },
        "overhead": {
            "plain": off,
            "profiled": on,
            "overhead_fraction": overhead,
            "profile_seconds_share": (
                on["profile_seconds"] / on["total_seconds"]
            ),
        },
        "calibration": _calibration_sweep(),
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


def test_profiling_overhead_under_budget(bench):
    overhead = bench["overhead"]["overhead_fraction"]
    assert overhead < MAX_OVERHEAD, (
        f"profiling overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget"
    )


def test_profile_seconds_accounted(bench):
    # The profiler's self-time meter must be live and small. The meter
    # brackets every profiler call (including timer cost the wall-clock
    # A/B partially absorbs), so it gets headroom over the A/B gate.
    on = bench["overhead"]["profiled"]
    assert on["profile_seconds"] > 0.0
    assert bench["overhead"]["profile_seconds_share"] < MAX_OVERHEAD * 2.0


def test_predictions_issued_after_warmup(bench):
    cal = bench["overhead"]["profiled"]["cost_calibration"]
    assert cal["predictions"] == PERF_BATCHES - cal["warmup_batches"]


def test_calibration_suite_mape(bench):
    cal = bench["calibration"]
    assert cal["queries"] == len(TPCH_QUERIES) + len(CONVIVA_QUERIES)
    assert all(
        q["predictions"] == CAL_BATCHES - 5 for q in cal["per_query"].values()
    )
    assert cal["mean_mape"] <= MAX_MAPE, (
        f"suite mean MAPE {cal['mean_mape']:.1%} exceeds {MAX_MAPE:.0%} "
        f"(worst {cal['worst_mape']:.1%})"
    )


def test_bench_file_checked_in_and_valid(bench):
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == "bench-obs-v1"
    for section in ("config", "overhead", "calibration"):
        assert section in on_disk
    assert len(on_disk["overhead"]["profiled"]["per_batch_seconds"]) == (
        on_disk["config"]["num_batches"]
    )
    assert on_disk["calibration"]["queries"] > 0
