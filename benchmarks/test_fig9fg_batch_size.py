"""Figures 9(f)/(g) — tuning the batch size (Conviva).

Sweeping the mini-batch size over 5 settings: the average per-batch
latency grows roughly linearly with the batch size (more data per
iteration), while the total query latency shrinks (fewer iterations, so
less per-batch scheduling/bootstrap overhead) — the user trades update
interactivity against end-to-end cost.
"""

import numpy as np

from repro.workloads import CONVIVA_QUERIES

from benchmarks.harness import conviva_catalog, fmt_table, run_iolap, write_result

#: Batch sizes as a fraction of the dataset (the paper sweeps 15.4-35.8GB
#: around its 25.6GB default; we sweep the same +/-40% band).
BATCH_COUNTS = [33, 25, 20, 16, 14]


def sweep():
    catalog = conviva_catalog()
    total = len(catalog.get("sessions"))
    per_batch = {}
    total_lat = {}
    for name, spec in CONVIVA_QUERIES.items():
        for count in BATCH_COUNTS:
            run = run_iolap(spec, catalog, num_batches=count, num_trials=40)
            per_batch[(name, count)] = run.total_seconds / count
            total_lat[(name, count)] = run.total_seconds
    return per_batch, total_lat, total


def test_fig9f_fig9g_batch_size(benchmark):
    per_batch, total_lat, total_rows = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    sizes = [total_rows // c for c in BATCH_COUNTS]
    header = ["query"] + [f"{s} rows" for s in sizes]

    def table(metric, scale=1000.0):
        rows = []
        for name in CONVIVA_QUERIES:
            rows.append(
                [name]
                + [f"{metric[(name, c)] * scale:.1f}" for c in BATCH_COUNTS]
            )
        return fmt_table(header, rows)

    write_result("fig9f_batch_size_per_batch_ms", table(per_batch))
    write_result("fig9g_batch_size_total_ms", table(total_lat))

    # Shape: per-batch latency increases with batch size; total latency
    # decreases — for the workload in aggregate (single queries can be
    # noisy at millisecond batch times).
    agg_per_batch = [
        sum(per_batch[(q, c)] for q in CONVIVA_QUERIES) for c in BATCH_COUNTS
    ]
    agg_total = [
        sum(total_lat[(q, c)] for q in CONVIVA_QUERIES) for c in BATCH_COUNTS
    ]
    assert agg_per_batch[-1] > agg_per_batch[0]  # bigger batches, slower each
    assert agg_total[-1] < agg_total[0]  # bigger batches, faster overall
