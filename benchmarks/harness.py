"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark module regenerates one table or figure from the paper's
Section 8 / Appendix D, printing the same rows or series the paper plots
and writing them under ``benchmarks/results/`` for EXPERIMENTS.md.

Scales are laptop-sized (DESIGN.md §2): the *shape* of each result —
who wins, growth trends, crossovers — is the reproduction target, not the
absolute EC2 numbers.
"""

from __future__ import annotations

import functools
import pathlib
from dataclasses import dataclass

from repro.analysis import check_plan
from repro.baselines import BatchRunResult, HDAExecutor, run_batch
from repro.core import OnlineConfig, OnlineQueryEngine, PartialResult
from repro.metrics import RunMetrics
from repro.relational import Catalog
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    QuerySpec,
    generate_conviva,
    generate_tpch,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Default experiment scales: ~40k fact rows, 20 mini-batches, 60 trials.
TPCH_SCALE = 2.0
CONVIVA_SCALE = 2.0
NUM_BATCHES = 20
NUM_TRIALS = 60
SEED = 42

#: Mini-batch row counts per streamed relation (the Table 1 analogue).
def batch_rows(catalog: Catalog, table: str, num_batches: int = NUM_BATCHES) -> int:
    return max(1, len(catalog.get(table)) // num_batches)


@functools.lru_cache(maxsize=None)
def tpch_catalog(scale: float = TPCH_SCALE) -> Catalog:
    return generate_tpch(scale=scale, seed=SEED).catalog()


@functools.lru_cache(maxsize=None)
def conviva_catalog(scale: float = CONVIVA_SCALE) -> Catalog:
    return generate_conviva(scale=scale, seed=SEED).catalog()


def catalog_for(spec: QuerySpec) -> Catalog:
    if spec.name.startswith("C"):
        return conviva_catalog()
    return tpch_catalog()


@dataclass
class OnlineRun:
    """One complete online execution with its per-batch history."""

    spec: QuerySpec
    metrics: RunMetrics
    partials: list[PartialResult]

    @property
    def total_seconds(self) -> float:
        return self.metrics.total_seconds

    def seconds_at_fraction(self, fraction: float) -> float:
        return self.metrics.seconds_until_fraction(fraction)

    def op_seconds(self) -> dict[str, float]:
        """Per-operator/unit wall seconds, summed over the whole run."""
        return self.metrics.total_op_seconds()

    def top_op_seconds(self, n: int = 6) -> list[tuple[str, float]]:
        totals = sorted(self.op_seconds().items(), key=lambda kv: -kv[1])
        return totals[:n]


def run_iolap(
    spec: QuerySpec,
    catalog: Catalog | None = None,
    num_batches: int = NUM_BATCHES,
    num_trials: int = NUM_TRIALS,
    slack: float = 2.0,
    seed: int = SEED,
    prune_with_ranges: bool = True,
    lazy_lineage: bool = True,
    keep_partials: bool = False,
    executor: str = "serial",
    vectorize: bool = True,
) -> OnlineRun:
    catalog = catalog if catalog is not None else catalog_for(spec)
    engine = OnlineQueryEngine(
        catalog,
        spec.streamed_table,
        OnlineConfig(
            num_trials=num_trials,
            slack=slack,
            seed=seed,
            prune_with_ranges=prune_with_ranges,
            lazy_lineage=lazy_lineage,
            vectorize=vectorize,
        ),
        executor=executor,
    )
    # Static analysis runs once per query before execution; its wall time
    # rides along in the metrics JSON as the analyzer's fixed cost.
    analysis = check_plan(spec.plan, catalog, spec.streamed_table, subject=spec.name)
    partials = []
    for partial in engine.run(spec.plan, num_batches):
        if keep_partials:
            partials.append(partial)
    engine.executor.close()
    engine.metrics.analysis_seconds = analysis.wall_seconds
    return OnlineRun(spec, engine.metrics, partials)


def run_hda(
    spec: QuerySpec,
    catalog: Catalog | None = None,
    num_batches: int = NUM_BATCHES,
    seed: int = SEED,
) -> RunMetrics:
    catalog = catalog if catalog is not None else catalog_for(spec)
    executor = HDAExecutor(catalog, spec.streamed_table, seed=seed)
    for _ in executor.run(spec.plan, num_batches):
        pass
    return executor.metrics


def run_baseline(spec: QuerySpec, catalog: Catalog | None = None) -> BatchRunResult:
    catalog = catalog if catalog is not None else catalog_for(spec)
    return run_batch(spec.plan, catalog)


def write_result(name: str, text: str) -> None:
    """Print a result block and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====")
    print(text)


def fmt_row(cells: list, widths: list[int]) -> str:
    out = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            cell = f"{cell:.3f}"
        out.append(str(cell).rjust(width))
    return "  ".join(out)


def fmt_table(header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(h)), *(len(f"{r[i]:.3f}" if isinstance(r[i], float) else str(r[i])) for r in rows))
        if rows
        else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [fmt_row(header, widths)]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt_row(row, widths))
    return "\n".join(lines)


def sparkline(series: list[float]) -> str:
    """Terminal mini-plot for per-batch series."""
    if not series:
        return ""
    marks = "▁▂▃▄▅▆▇█"
    lo, hi = min(series), max(series)
    span = (hi - lo) or 1.0
    return "".join(marks[int((v - lo) / span * (len(marks) - 1))] for v in series)


def thin_series(series: list[float], head: int = 10, step: int = 5) -> list[tuple[int, float]]:
    """The paper's plotting convention: the first 10 batches, then every 5th."""
    out = []
    for i, value in enumerate(series, start=1):
        if i <= head or i % step == 0 or i == len(series):
            out.append((i, value))
    return out


NESTED_TPCH = [q for q, s in TPCH_QUERIES.items() if s.nested]
FLAT_TPCH = [q for q, s in TPCH_QUERIES.items() if not s.nested]
NESTED_CONVIVA = [q for q, s in CONVIVA_QUERIES.items() if s.nested]
FLAT_CONVIVA = [q for q, s in CONVIVA_QUERIES.items() if not s.nested]
