"""Command-line interface: run SQL online over the bundled workloads.

Examples::

    python -m repro.cli --workload conviva --batches 20 \\
        "SELECT AVG(play_time) AS apt FROM sessions
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)"

    python -m repro.cli --workload tpch --query Q17 --engine hda
    python -m repro.cli --workload tpch --list-queries

Observability: ``--trace-out run.jsonl`` streams the full span/metric
event log of an iolap run to a JSONL file, ``--converge`` prints a live
per-group estimate ± CI after every batch, and two subcommands consume
saved traces::

    python -m repro.cli trace run.jsonl -o trace.json   # open in Perfetto
    python -m repro.cli report run.jsonl                # offline analysis
    python -m repro.cli report run.jsonl --json         # pinned-schema JSON

Live telemetry (continuous profiler + predictive cost model)::

    python -m repro.cli --query Q1 --profile --profiles profiles.json
    python -m repro.cli metrics --query Q1 --listen :9110   # Prometheus
    python -m repro.cli metrics --query Q1 --metrics-textfile out.prom
    python -m repro.cli top --query Q1 --plain              # hot spots

The ``analyze`` subcommand runs the static analysis suite instead of
executing anything: the plan typechecker over named workload queries or
ad-hoc SQL, and (with ``--lint``) the engine-contract lint over the
installed ``repro`` sources::

    python -m repro.cli analyze                       # all bundled queries
    python -m repro.cli analyze --workload tpch --query Q17
    python -m repro.cli analyze --lint --json report.json
    python -m repro.cli analyze --races               # race detector
    python -m repro.cli analyze "SELECT COUNT(*) AS n FROM sessions"

Exit status is 1 if any analysis reported an error-severity violation;
warnings alone exit 0 unless ``--fail-on-warning`` promotes them (the CI
setting). ``--verify`` (run mode) enables the runtime contract checks on
top of normal execution; ``--sanitize`` (run mode) adds the TSan-style
buffer sanitizer over zero-copy batch views.

Output discipline: result rows (and the outputs of the ``trace`` /
``report`` / ``analyze`` subcommands) go to stdout; progress, warnings
and errors go through the ``iolap`` logger to stderr (``--log-level``,
``-q``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

from repro.baselines import HDAExecutor, run_batch
from repro.core import OnlineConfig, OnlineQueryEngine
from repro.core.values import UncertainValue
from repro.errors import ReproError
from repro.sql import plan_sql
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)

_WORKLOADS = {
    "tpch": (generate_tpch, TPCH_QUERIES, "lineorder"),
    "conviva": (generate_conviva, CONVIVA_QUERIES, "sessions"),
}

log = logging.getLogger("iolap")


class _LevelFormatter(logging.Formatter):
    """Bare messages at INFO and below; a level prefix above."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.levelno > logging.INFO:
            return f"{record.levelname.lower()}: {message}"
        return message


def _configure_logging(level: str) -> None:
    """(Re)wire the ``iolap`` logger to the *current* stderr.

    Handlers are rebuilt on every ``main`` call rather than installed
    once: test harnesses (pytest's capsys) swap ``sys.stderr`` between
    invocations, and a cached stream would write into a closed buffer.
    """
    for handler in list(log.handlers):
        log.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(_LevelFormatter())
    log.addHandler(handler)
    log.setLevel(getattr(logging, level.upper()))
    log.propagate = False


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default="info", help="stderr log verbosity (default: info)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log warnings and errors (alias for --log-level warning)",
    )


def _log_level(args: argparse.Namespace) -> str:
    return "warning" if args.quiet else args.log_level


def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="enable the continuous profiler (iolap engine): rolling "
        "per-operator EWMA profiles and the predictive cost model; "
        "results are bit-identical",
    )
    parser.add_argument(
        "--profiles", metavar="PATH", default=None,
        help="profiles.json artifact to load before and save after the "
        "run (implies --profile); a warmed profile predicts batch cost "
        "from the first batch",
    )
    parser.add_argument(
        "--profile-stack", action="store_true",
        help="also run the sampling stack profiler in a daemon thread "
        "(implies --profile)",
    )


def _profile_config(args: argparse.Namespace) -> dict:
    """OnlineConfig kwargs from the shared profiling flags."""
    return {
        "profile": args.profile or bool(args.profiles) or args.profile_stack,
        "profile_path": args.profiles,
        "profile_stack": args.profile_stack,
        "target_rsd": args.stop_rsd,
    }


def _add_query_flags(parser: argparse.ArgumentParser) -> None:
    """Query-selection + engine flags shared by ``metrics`` and ``top``."""
    parser.add_argument("sql", nargs="?", help="SQL text to run")
    parser.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="conviva",
        help="dataset to generate (default: conviva)",
    )
    parser.add_argument(
        "--query", help="run a named benchmark query (e.g. Q17, C8) instead of SQL"
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument("--seed", type=int, default=0, help="generator/engine seed")
    parser.add_argument("--batches", type=int, default=20, help="mini-batch count")
    parser.add_argument("--trials", type=int, default=100, help="bootstrap trials")
    parser.add_argument(
        "--stream", help="table to stream (default: the workload's fact table)"
    )
    parser.add_argument(
        "--executor", choices=["serial", "parallel"], default="serial",
        help="batch executor (default: serial)",
    )
    parser.add_argument(
        "--stop-rsd", type=float, default=None,
        help="stop once the worst relative stdev falls below this",
    )
    parser.add_argument(
        "--rollup", action="store_true",
        help="fold pruning-resolved groups into a per-sink rollup tier "
        "(bit-identical results, faster once sentinels resolve groups)",
    )


def _resolve_query(args: argparse.Namespace):
    """(catalog, plan, streamed table) from shared flags, or None."""
    generate, queries, default_stream = _WORKLOADS[args.workload]
    catalog = generate(scale=args.scale, seed=args.seed).catalog()
    if args.query:
        if args.query not in queries:
            log.error("unknown query %r; try --list-queries", args.query)
            return None
        spec = queries[args.query]
        return catalog, spec.plan, spec.streamed_table
    if args.sql:
        try:
            plan = plan_sql(args.sql, catalog.schemas())
        except ReproError as exc:
            log.error("SQL error: %s", exc)
            return None
        return catalog, plan, args.stream or default_stream
    log.error("nothing to run: pass SQL text or --query")
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run OLAP queries incrementally (iOLAP) over the "
        "bundled synthetic workloads.",
    )
    parser.add_argument("sql", nargs="?", help="SQL text to run")
    parser.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="conviva",
        help="dataset to generate (default: conviva)",
    )
    parser.add_argument(
        "--query", help="run a named benchmark query (e.g. Q17, C8) instead of SQL"
    )
    parser.add_argument(
        "--list-queries", action="store_true", help="list the named queries and exit"
    )
    parser.add_argument(
        "--engine", choices=["iolap", "hda", "batch"], default="iolap",
        help="execution engine (default: iolap)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument("--seed", type=int, default=0, help="generator/engine seed")
    parser.add_argument("--batches", type=int, default=20, help="mini-batch count")
    parser.add_argument("--trials", type=int, default=100, help="bootstrap trials")
    parser.add_argument("--slack", type=float, default=2.0, help="range slack ε")
    parser.add_argument(
        "--stream", help="table to stream (default: the workload's fact table)"
    )
    parser.add_argument(
        "--stop-rsd", type=float, default=None,
        help="stop once the worst relative stdev falls below this",
    )
    parser.add_argument(
        "--max-rows", type=int, default=10, help="result rows to print per update"
    )
    parser.add_argument(
        "--executor", choices=["serial", "parallel"], default="serial",
        help="batch executor for the iolap engine (default: serial)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the iolap engine across N shard worker processes "
        "(group-key sharding; results are bit-identical to the serial "
        "run; plans without a shardable group key fall back to "
        "single-process execution; 0/1 disables)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write per-batch run metrics as JSON to PATH (iolap engine)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="stream the observability event log (spans, counters, "
        "warnings) as JSONL to PATH (iolap engine); convert with the "
        "'trace' subcommand, analyze with 'report'",
    )
    parser.add_argument(
        "--converge", action="store_true",
        help="log per-group estimate ± confidence interval after every "
        "batch (iolap engine)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="enable runtime contract checks (iolap engine): input "
        "immutability, state-entry discipline, cross-thread write "
        "isolation; results are unchanged",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime buffer sanitizer (iolap engine): freeze "
        "zero-copy batch buffers during process calls, track aliased-view "
        "provenance, and cross-check per-batch buffer access between "
        "executor threads; results are unchanged",
    )
    parser.add_argument(
        "--no-vectorize", action="store_true",
        help="run operator hot paths row by row instead of through the "
        "vectorized kernels (iolap engine); results are bit-identical, "
        "only slower — an A/B lever for debugging and benchmarks",
    )
    parser.add_argument(
        "--rollup", action="store_true",
        help="fold pruning-resolved groups into a per-sink rollup tier so "
        "the per-batch hot loop touches only groups with live ND "
        "membership (iolap engine); results are bit-identical, only "
        "faster once sentinels start resolving groups",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject deterministic faults (iolap engine): comma-separated "
        "kind@batch[:target][*times] specs with kind in "
        "{sentinel,batch,unit,checkpoint,shard}, e.g. "
        "'sentinel@16,unit@5:aggregate*2,checkpoint@12,shard@6:1'; "
        "recovery must still produce the fault-free answer",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="take a recovery state checkpoint every N batches (iolap "
        "engine; 0 disables, default: engine default)",
    )
    _add_profile_flags(parser)
    _add_logging_flags(parser)
    return parser


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli analyze",
        description="Statically analyze queries (plan typechecker) and the "
        "engine sources (contract lint) without executing anything.",
    )
    parser.add_argument("sql", nargs="?", help="SQL text to typecheck")
    parser.add_argument(
        "--workload", choices=[*sorted(_WORKLOADS), "all"], default="all",
        help="workload whose named queries to check (default: all)",
    )
    parser.add_argument(
        "--query", help="check a single named benchmark query (e.g. Q17, C8)"
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale for catalog schemas")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--stream", help="table to stream (default: the workload's fact table)"
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="also lint the installed repro sources for engine-contract "
        "violations (ENG0xx rules)",
    )
    parser.add_argument(
        "--races", action="store_true",
        help="run the plan-level race detector instead of the typechecker: "
        "per-unit effect summaries checked against the wave schedule's "
        "happens-before order (RACE0xx/RACE1xx/RACE2xx rules)",
    )
    parser.add_argument(
        "--fail-on-warning", action="store_true",
        help="exit 1 on warning-severity diagnostics too (the CI setting); "
        "by default only errors fail the run",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write all reports as a JSON array to PATH (the CI artifact)",
    )
    _add_logging_flags(parser)
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli trace",
        description="Validate a saved event log (from --trace-out) and "
        "convert it for viewers.",
    )
    parser.add_argument("trace", help="JSONL event log written by --trace-out")
    parser.add_argument(
        "--format", choices=["chrome", "jsonl"], default="chrome",
        help="output format: 'chrome' trace events (load in Perfetto / "
        "chrome://tracing) or validated 'jsonl' passthrough (default: chrome)",
    )
    parser.add_argument(
        "-o", "--out", metavar="PATH", default=None,
        help="output path (default: stdout)",
    )
    _add_logging_flags(parser)
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli report",
        description="Summarize a saved event log: slowest spans, state "
        "growth, recovery timeline, convergence.",
    )
    parser.add_argument("trace", help="JSONL event log written by --trace-out")
    parser.add_argument(
        "--top", type=int, default=10, help="individual spans to list (default: 10)"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable summary (schema pinned by "
        "repro.obs.report.REPORT_FIELDS) instead of the text report",
    )
    _add_logging_flags(parser)
    return parser


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli metrics",
        description="Run a query while exporting live engine telemetry: "
        "a Prometheus /metrics endpoint (--listen) and/or an atomically "
        "rewritten exposition textfile (--metrics-textfile).",
    )
    _add_query_flags(parser)
    parser.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve /metrics in Prometheus text format from a daemon "
        "thread while the query runs (e.g. ':9110'; port 0 picks a "
        "free port, logged at startup)",
    )
    parser.add_argument(
        "--metrics-textfile", metavar="PATH", default=None,
        help="atomically rewrite PATH with the Prometheus exposition "
        "after every batch (node-exporter textfile collector idiom; "
        "the scrape-less CI mode)",
    )
    parser.add_argument(
        "--hold", type=float, default=0.0, metavar="SECONDS",
        help="keep serving --listen this many seconds after the run "
        "completes, so a scraper can collect the final state (default: 0)",
    )
    _add_profile_flags(parser)
    _add_logging_flags(parser)
    return parser


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli top",
        description="Live per-operator hot-spot view of an online run: "
        "EWMA self times, row throughput, |U_i| ND rows, state growth, "
        "and the cost model's batches-to-convergence estimate.",
    )
    _add_query_flags(parser)
    parser.add_argument(
        "--target-rsd", type=float, default=0.05,
        help="accuracy target the convergence ETA counts down to "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--top", type=int, default=12,
        help="operators to show per frame (default: 12)",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="print newline-separated frames instead of ANSI screen "
        "refreshes (non-tty / CI mode)",
    )
    _add_profile_flags(parser)
    _add_logging_flags(parser)
    return parser


def run_analyze(argv: Sequence[str]) -> int:
    """The ``analyze`` subcommand: typecheck queries, optionally lint."""
    from repro.analysis import analyze_query, check_plan, run_lint

    args = build_analyze_parser().parse_args(argv)
    if args.races:
        from repro.analysis import analyze_query_races, check_plan_races

        analyze_query, check_plan = analyze_query_races, check_plan_races
    _configure_logging(_log_level(args))
    reports = []

    if args.sql is not None:
        workload = args.workload if args.workload != "all" else "conviva"
        generate, _, default_stream = _WORKLOADS[workload]
        catalog = generate(scale=args.scale, seed=args.seed).catalog()
        reports.append(
            analyze_query(args.sql, catalog, args.stream or default_stream)
        )
    else:
        workloads = sorted(_WORKLOADS) if args.workload == "all" else [args.workload]
        for workload in workloads:
            generate, queries, _ = _WORKLOADS[workload]
            if args.query is not None and args.query not in queries:
                continue
            catalog = generate(scale=args.scale, seed=args.seed).catalog()
            for name, spec in queries.items():
                if args.query is not None and name != args.query:
                    continue
                reports.append(
                    check_plan(
                        spec.plan,
                        catalog,
                        spec.streamed_table,
                        subject=f"{workload}:{name}",
                    )
                )
        if args.query is not None and not reports:
            log.error("unknown query %r; try --list-queries", args.query)
            return 2

    if args.lint:
        reports.append(run_lint())

    for report in reports:
        print(report.format())
    failed = [r for r in reports if not r.ok]
    errors = sum(
        1 for r in reports for d in r.diagnostics if d.severity == "error"
    )
    warnings = sum(
        1 for r in reports for d in r.diagnostics if d.severity != "error"
    )
    print(f"analyzed {len(reports)} subject(s): "
          f"{len(failed)} with violations, "
          f"{errors} error(s), {warnings} warning(s)")

    if args.json:
        import json as _json

        try:
            with open(args.json, "w") as fh:
                _json.dump([r.to_dict() for r in reports], fh, indent=2)
        except OSError as exc:
            log.error("cannot write report to %s: %s", args.json, exc)
            return 2
        log.info("report written to %s", args.json)
    if failed:
        return 1
    if warnings and args.fail_on_warning:
        return 1
    return 0


def run_trace(argv: Sequence[str]) -> int:
    """The ``trace`` subcommand: validate + convert a saved event log."""
    import json as _json

    from repro.obs import read_events, write_chrome

    args = build_trace_parser().parse_args(argv)
    _configure_logging(_log_level(args))
    try:
        events = list(read_events(args.trace))
    except (OSError, ValueError) as exc:
        log.error("cannot read trace %s: %s", args.trace, exc)
        return 2
    try:
        if args.out is not None:
            with open(args.out, "w") as fh:
                if args.format == "chrome":
                    count = write_chrome(events, fh)
                else:
                    for event in events:
                        fh.write(_json.dumps(event) + "\n")
                    count = len(events)
        else:
            if args.format == "chrome":
                count = write_chrome(events, sys.stdout)
            else:
                for event in events:
                    print(_json.dumps(event))
                count = len(events)
    except OSError as exc:
        log.error("cannot write %s: %s", args.out, exc)
        return 2
    target = args.out if args.out is not None else "stdout"
    log.info("%d event(s) validated; %d %s record(s) written to %s",
             len(events), count, args.format, target)
    return 0


def run_report(argv: Sequence[str]) -> int:
    """The ``report`` subcommand: offline analysis of a saved event log."""
    import json as _json

    from repro.obs.report import TraceSummary, render_report, validate_report

    args = build_report_parser().parse_args(argv)
    _configure_logging(_log_level(args))
    try:
        summary = TraceSummary.from_file(args.trace)
    except (OSError, ValueError) as exc:
        log.error("cannot read trace %s: %s", args.trace, exc)
        return 2
    if args.json:
        doc = summary.to_dict(top=args.top)
        validate_report(doc)  # never ship an artifact the schema rejects
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_report(summary, top=args.top))
    return 0


def run_metrics_cmd(argv: Sequence[str]) -> int:
    """The ``metrics`` subcommand: run a query, export live telemetry."""
    from repro.obs import MetricsObservability
    from repro.obs.export import MetricsHTTPServer, TextfileExporter, parse_listen

    args = build_metrics_parser().parse_args(argv)
    _configure_logging(_log_level(args))
    if not args.listen and not args.metrics_textfile:
        log.error(
            "metrics: pass --listen HOST:PORT and/or --metrics-textfile PATH"
        )
        return 2
    resolved = _resolve_query(args)
    if resolved is None:
        return 2
    catalog, plan, streamed = resolved

    obs = MetricsObservability()
    server = None
    if args.listen:
        try:
            host, port = parse_listen(args.listen)
            server = MetricsHTTPServer(obs.metrics, host, port).start()
        except (ValueError, OSError) as exc:
            log.error("cannot serve metrics on %r: %s", args.listen, exc)
            return 2
        log.info("serving metrics at %s", server.url)
    exporter = (
        TextfileExporter(args.metrics_textfile, obs.metrics)
        if args.metrics_textfile
        else None
    )
    engine = OnlineQueryEngine(
        catalog,
        streamed,
        OnlineConfig(num_trials=args.trials, seed=args.seed,
                     rollup=args.rollup, **_profile_config(args)),
        executor=args.executor,
        obs=obs,
    )
    try:
        for partial in engine.run(plan, args.batches):
            if exporter is not None:
                try:
                    exporter.write()
                except OSError as exc:
                    log.error("cannot write %s: %s", args.metrics_textfile, exc)
                    return 2
            rsd = partial.max_relative_stdev()
            log.info(
                "[batch %3d/%d %7.1f ms] %s",
                partial.batch_no, partial.num_batches,
                partial.metrics.wall_seconds * 1000,
                f"rel.stdev {rsd:.4f}" if rsd == rsd else "rel.stdev n/a",
            )
            if args.stop_rsd is not None and rsd == rsd and rsd < args.stop_rsd:
                break
    finally:
        engine.executor.close()
        if server is not None:
            if args.hold > 0:
                import time as _time

                log.info("holding %s for %.1f s", server.url, args.hold)
                _time.sleep(args.hold)
            server.stop()
    if exporter is not None:
        log.info("exposition written to %s (%d write(s))",
                 args.metrics_textfile, exporter.writes)
    return 0


def run_top(argv: Sequence[str]) -> int:
    """The ``top`` subcommand: live per-operator hot-spot frames."""
    from repro.obs.export import ANSI_CLEAR, TopView

    args = build_top_parser().parse_args(argv)
    _configure_logging(_log_level(args))
    resolved = _resolve_query(args)
    if resolved is None:
        return 2
    catalog, plan, streamed = resolved
    config_kwargs = _profile_config(args)
    config_kwargs["profile"] = True  # the view *is* the profiler's state
    config_kwargs["rollup"] = args.rollup
    view = TopView(target_rsd=args.target_rsd, top=args.top)
    engine = OnlineQueryEngine(
        catalog,
        streamed,
        OnlineConfig(num_trials=args.trials, seed=args.seed, **config_kwargs),
        executor=args.executor,
    )
    seen_rows = 0
    try:
        for partial in engine.run(plan, args.batches):
            bm = partial.metrics
            seen_rows += bm.new_tuples
            rsd = partial.max_relative_stdev()
            frame = view.frame(
                engine.profiler, partial.batch_no, partial.num_batches,
                rsd, bm.new_tuples, seen_rows, bm.wall_seconds,
                rollup_groups=bm.rollup_groups, nd_groups=bm.nd_groups,
            )
            if args.plain:
                print(frame + "\n")
            else:
                sys.stdout.write(ANSI_CLEAR + frame + "\n")
            sys.stdout.flush()
            if args.stop_rsd is not None and rsd == rsd and rsd < args.stop_rsd:
                break
    finally:
        engine.executor.close()
    return 0


_SUBCOMMANDS = {
    "analyze": run_analyze,
    "trace": run_trace,
    "report": run_report,
    "metrics": run_metrics_cmd,
    "top": run_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    _configure_logging(_log_level(args))
    generate, queries, default_stream = _WORKLOADS[args.workload]

    if args.list_queries:
        for name, spec in queries.items():
            kind = "nested" if spec.nested else "flat"
            print(f"{name:>4}  [{kind:>6}]  {spec.description}")
        return 0

    data = generate(scale=args.scale, seed=args.seed)
    catalog = data.catalog()

    if args.query:
        if args.query not in queries:
            log.error("unknown query %r; try --list-queries", args.query)
            return 2
        spec = queries[args.query]
        plan = spec.plan
        streamed = spec.streamed_table
    elif args.sql:
        try:
            plan = plan_sql(args.sql, catalog.schemas())
        except ReproError as exc:
            log.error("SQL error: %s", exc)
            return 2
        streamed = args.stream or default_stream
    else:
        log.error("nothing to run: pass SQL text or --query/--list-queries")
        return 2

    for flag, value in (("--metrics-out", args.metrics_out),
                        ("--trace-out", args.trace_out),
                        ("--converge", args.converge),
                        ("--faults", args.faults)):
        if value and args.engine != "iolap":
            log.error("%s requires --engine iolap", flag)
            return 2

    if args.faults is not None:
        from repro.faults import parse_faults

        try:
            parse_faults(args.faults)
        except ReproError as exc:
            log.error("bad --faults spec: %s", exc)
            return 2

    if args.engine == "batch":
        result = run_batch(plan, catalog)
        log.info("batch engine: %.1f ms, %d rows",
                 result.wall_seconds * 1000, len(result.relation))
        _print_relation_rows(result.relation, args.max_rows)
        return 0

    if args.engine == "hda":
        executor = HDAExecutor(catalog, streamed, seed=args.seed)
        for partial in executor.run(plan, args.batches):
            marker = "exact" if partial.is_final else "approx"
            log.info("[batch %3d/%d %7.1f ms  %s] %d rows",
                     partial.batch_no, partial.num_batches,
                     partial.metrics.wall_seconds * 1000, marker,
                     len(partial.relation))
        _print_relation_rows(partial.relation, args.max_rows)
        return 0

    from repro.obs import NULL_OBS, ConvergenceReporter, Observability

    obs = Observability.to_jsonl(args.trace_out) if args.trace_out else NULL_OBS
    reporter = (
        ConvergenceReporter(obs=obs, emit_line=log.info)
        if args.converge
        else None
    )
    engine_cls = OnlineQueryEngine
    if args.shards > 1:
        from repro.engine.shards import ShardedQueryEngine

        engine_cls = ShardedQueryEngine
    engine = engine_cls(
        catalog,
        streamed,
        OnlineConfig(
            num_trials=args.trials,
            slack=args.slack,
            seed=args.seed,
            verify=args.verify,
            sanitize=args.sanitize,
            vectorize=not args.no_vectorize,
            rollup=args.rollup,
            faults=args.faults,
            shards=args.shards,
            **_profile_config(args),
            **(
                {"checkpoint_interval": args.checkpoint_interval}
                if args.checkpoint_interval is not None
                else {}
            ),
        ),
        executor=args.executor,
        obs=obs,
    )
    partial = None
    try:
        for partial in engine.run(plan, args.batches):
            rsd = partial.max_relative_stdev()
            rsd_text = "exact" if partial.is_final else (
                f"rel.stdev {rsd:.4f}" if rsd == rsd else "rel.stdev n/a"
            )
            log.info(
                "[batch %3d/%d %4.0f%% %7.1f ms  %s]",
                partial.batch_no, partial.num_batches,
                partial.fraction_processed * 100,
                partial.metrics.wall_seconds * 1000, rsd_text,
            )
            if reporter is not None:
                reporter.update(partial)
            if args.stop_rsd is not None and rsd == rsd and rsd < args.stop_rsd:
                log.info("stopping early: accuracy target %s reached",
                         args.stop_rsd)
                break
    finally:
        engine.executor.close()
        obs.close()
    if partial is not None:
        _print_partial_rows(partial, args.max_rows)
        if engine.metrics.num_recoveries:
            log.info("(failure recoveries: %d)", engine.metrics.num_recoveries)
        slowest = sorted(
            engine.metrics.total_op_seconds().items(), key=lambda kv: -kv[1]
        )[:3]
        if slowest:
            log.info("slowest operators: %s", ", ".join(
                f"{label} {seconds*1000:.1f} ms" for label, seconds in slowest
            ))
    cal = engine.metrics.cost_calibration
    if cal.get("predictions"):
        log.info(
            "cost model: %d prediction(s), mae %.1f ms, mape %.1f%%",
            cal["predictions"], cal["mae_seconds"] * 1000, cal["mape"] * 100,
        )
    if args.profiles:
        log.info("profiles written to %s", args.profiles)
    if args.metrics_out:
        try:
            with open(args.metrics_out, "w") as fh:
                fh.write(engine.metrics.to_json(indent=2))
        except OSError as exc:
            log.error("cannot write metrics to %s: %s", args.metrics_out, exc)
            return 2
        log.info("metrics written to %s", args.metrics_out)
    if args.trace_out:
        log.info("trace written to %s (convert: repro.cli trace %s; "
                 "summarize: repro.cli report %s)",
                 args.trace_out, args.trace_out, args.trace_out)
    return 0


def _print_partial_rows(partial, max_rows: int) -> None:
    for row in partial.sorted_plain_rows()[:max_rows]:
        print("  " + ", ".join(f"{k}={_fmt(v)}" for k, v in row.items()))
    hidden = len(partial.rows) - max_rows
    if hidden > 0:
        print(f"  ... {hidden} more rows")


def _print_relation_rows(relation, max_rows: int) -> None:
    for row in relation.sort_rows()[:max_rows]:
        print("  " + ", ".join(f"{k}={_fmt(v)}" for k, v in row.items()))
    hidden = len(relation) - max_rows
    if hidden > 0:
        print(f"  ... {hidden} more rows")


def _fmt(value) -> str:
    if isinstance(value, UncertainValue):
        value = value.value
    if isinstance(value, float):
        return f"{value:,.3f}"
    return str(value)


if __name__ == "__main__":
    raise SystemExit(main())
