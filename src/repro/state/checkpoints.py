"""Periodic state checkpoints for bounded-cost failure recovery.

Recovery (Section 5.1) rebuilds operator state by replaying processed
batches conservatively. Without intermediate snapshots that replay starts
from the pristine pre-run state, so its cost grows linearly with how deep
into the run the failure lands. The :class:`CheckpointManager` keeps a
ring buffer of :class:`~repro.state.StateRegistry` snapshots taken every
``OnlineConfig.checkpoint_interval`` batches; on a failure whose
``recover_from_batch`` is ``r``, the controller restores the newest valid
checkpoint at batch ``<= r`` and replays only the suffix. Theorem 1 is
preserved because the replayed suffix still runs with unbounded ranges
(no pruning), exactly as a full replay would.

Retention is doubly bounded: at most ``keep`` checkpoints, and at most
``budget_bytes`` across them (sized with
:func:`~repro.state.estimate_nbytes`, the same accounting the metrics
layer uses) — the oldest checkpoints are evicted first. The deep-copy
cost per checkpoint is amortized the same way the pristine baseline's is:
``static`` store entries (broadcast sides, derived indexes) are
snapshotted by reference.

A checkpoint is *validated* before it is restored (a corrupt snapshot
must not be half-applied across the registry); invalid checkpoints are
skipped, falling back to the next-older one — the behavior the
``checkpoint@N`` fault exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.state.registry import StateRegistry
from repro.state.store import estimate_nbytes


@dataclass
class Checkpoint:
    """One registry snapshot plus the batch cursor it belongs to."""

    batch_no: int
    #: ``ctx.seen_rows`` after the checkpointed batch — restored alongside
    #: the stores so the scale factor ``m_i`` rewinds consistently.
    seen_rows: int
    snapshot: dict[str, object]
    nbytes: int = 0
    #: Set by fault injection; a corrupted checkpoint fails validation.
    corrupted: bool = field(default=False, repr=False)


class CheckpointManager:
    """Ring buffer of periodic state checkpoints, byte-budgeted."""

    def __init__(
        self,
        interval: int,
        keep: int = 4,
        budget_bytes: int = 256 * 1024 * 1024,
        namespace: str = "",
    ):
        self.interval = max(int(interval), 0)
        #: Owner tag ("" for the single-process engine, ``shard<i>`` for a
        #: shard worker's manager): per-shard recovery keeps one isolated
        #: ring per worker, and the tag attributes snapshots and recovery
        #: log lines to the shard that owns them.
        self.namespace = namespace
        self.keep = max(int(keep), 1)
        self.budget_bytes = max(int(budget_bytes), 0)
        self._ring: list[Checkpoint] = []
        #: Lifetime counters (surfaced by the controller's obs sampling).
        self.taken = 0
        self.evicted = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def due(self, batch_no: int) -> bool:
        """True when a checkpoint should be taken after ``batch_no``."""
        return self.enabled and batch_no % self.interval == 0

    def take(
        self, registry: StateRegistry, batch_no: int, seen_rows: int
    ) -> Checkpoint:
        """Snapshot the registry after ``batch_no`` and retain it."""
        snapshot = registry.checkpoint()
        ckpt = Checkpoint(
            batch_no=batch_no,
            seen_rows=seen_rows,
            snapshot=snapshot,
            nbytes=estimate_nbytes(snapshot),
        )
        self._ring.append(ckpt)
        self.taken += 1
        while len(self._ring) > self.keep or (
            len(self._ring) > 1 and self.total_bytes() > self.budget_bytes
        ):
            self._ring.pop(0)
            self.evicted += 1
        return ckpt

    def best_for(self, recover_from: int) -> Checkpoint | None:
        """Newest *valid* checkpoint at batch ``<= recover_from``.

        Checkpoints that fail validation (corrupt snapshots) are skipped
        — recovery falls back to the next-older one, or to the pristine
        baseline when none is usable.
        """
        for ckpt in reversed(self._ring):
            if ckpt.batch_no <= recover_from and self.validate(ckpt):
                return ckpt
        return None

    @staticmethod
    def restore(registry: StateRegistry, snapshot: dict[str, object]) -> int:
        """Apply a snapshot, then invalidate restored rollup entries.

        Replaying past a migration point must not trust migrated
        accumulators — any replayed batch could touch them — so every
        restored rollup entry is demoted back into its operator's sketch
        before the replay starts. Returns the demoted group count
        (surfaced as the ``rollup.demotions`` counter by the caller).
        """
        from repro.rollup import demote_restored_rollups

        registry.restore(snapshot)
        return demote_restored_rollups(registry)

    def drop_after(self, batch_no: int) -> int:
        """Invalidate checkpoints newer than ``batch_no``.

        Called after a recovery restore: newer checkpoints contain the
        pruning decisions the failure just invalidated and must never be
        restored. Returns the number dropped.
        """
        before = len(self._ring)
        self._ring = [c for c in self._ring if c.batch_no <= batch_no]
        return before - len(self._ring)

    def corrupt(self, batch_no: int) -> bool:
        """Fault injection: poison the checkpoint taken at ``batch_no``."""
        for ckpt in self._ring:
            if ckpt.batch_no == batch_no:
                ckpt.corrupted = True
                ckpt.snapshot = {"__corrupt__": True}  # type: ignore[dict-item]
                return True
        return False

    @staticmethod
    def validate(ckpt: Checkpoint) -> bool:
        """Structural soundness check, run *before* any store is touched.

        ``StateRegistry.restore`` applies store by store; validating up
        front keeps a corrupt snapshot from being half-applied.
        """
        if ckpt.corrupted or not isinstance(ckpt.snapshot, dict):
            return False
        for per_store in ckpt.snapshot.values():
            if (
                not isinstance(per_store, dict)
                or not isinstance(per_store.get("entries"), dict)
                or not isinstance(per_store.get("static"), set)
            ):
                return False
        return True

    def batches(self) -> list[int]:
        return [c.batch_no for c in self._ring]

    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        tag = f" namespace={self.namespace!r}" if self.namespace else ""
        return (
            f"<CheckpointManager interval={self.interval} "
            f"kept={len(self._ring)}{tag}>"
        )
