"""Pluggable state stores for the online engine's between-batch state.

Every stateful online operator keeps its inter-batch state (ND-set
caches, sentinel guards, pending-join rows, aggregate sketches, …) in a
:class:`StateStore` rather than in bare instance attributes. The store
layer gives the engine three things the paper's delta-update algorithm
needs but ad-hoc attributes cannot provide:

* **uniform size accounting** — every entry is measured by
  :func:`estimate_nbytes`, feeding the Figure 9(b)/10(c) state-footprint
  metrics automatically;
* **checkpoint/restore** — the failure-recovery replay (Section 5.1)
  restores all operator state to a consistent snapshot instead of
  relying on each operator's ad-hoc ``reset``; :class:`CheckpointManager`
  keeps a ring buffer of periodic snapshots so recovery replays only the
  suffix after the newest consistent checkpoint;
* **a backend seam** — the engine only talks to the :class:`StateStore`
  contract, so spill-to-disk or sharded implementations can be swapped
  in per operator without touching operator code.
"""

from repro.state.checkpoints import Checkpoint, CheckpointManager
from repro.state.registry import StateRegistry
from repro.state.store import (
    InMemoryStateStore,
    StateStore,
    estimate_nbytes,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "InMemoryStateStore",
    "StateRegistry",
    "StateStore",
    "estimate_nbytes",
]
