"""The state-store contract and its in-memory implementation."""

from __future__ import annotations

import copy
from typing import Any, Iterator

import numpy as np

from repro.relational.relation import Relation
from repro.storage.columns import DictPage, EncodedColumn, sidecar_nbytes
from repro.storage.lineage import LineageColumn


def estimate_nbytes(value: object, seen: set[int] | None = None) -> int:
    """Rough in-memory footprint of one state entry, in bytes.

    Engine objects that know their own footprint (relations, sentinel
    stores, aggregate sketches, block outputs) expose ``estimated_bytes``
    and are deferred to; containers are measured recursively; everything
    else gets a small flat estimate. The absolute numbers follow the
    same conventions the operators used before the store layer existed,
    so the Figure 9(b)/10(c) accounting is unchanged.

    Storage-plane objects (encoded columns, lineage sidecars, dictionary
    pages) are shared structure: a page backs every slice of its table,
    so naive recursion would double-count it per slice. ``seen`` (ids of
    pages/pools already measured) deduplicates across one traversal —
    :meth:`InMemoryStateStore.entry_bytes` threads a single set through
    all entries of a store, so a dictionary shared by the "nd" and
    "pending" relations counts once.
    """
    if value is None:
        return 0
    if seen is None:
        seen = set()
    if isinstance(value, Relation):
        # Logical bytes (the pinned Figure 9(b) convention) plus the
        # physical sidecar buffers, page-deduplicated.
        return value.estimated_bytes() + sidecar_nbytes(value, seen)
    if isinstance(value, (EncodedColumn, LineageColumn)):
        return value.estimated_bytes(seen)
    if isinstance(value, DictPage):
        if id(value) in seen:
            return 0
        seen.add(id(value))
        return value.estimated_bytes()
    own = getattr(value, "estimated_bytes", None)
    if callable(own):
        # Objects marked seen-aware (block outputs, rollup stores) share
        # structure across entries — a migrated group's GroupValue is
        # referenced by both the "rollup" and "output" entries — and take
        # the traversal's seen-set so the shared objects count once.
        if getattr(value, "nbytes_seen_aware", False):
            return int(own(seen))
        return int(own())
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return 64 * value.size
        return int(value.nbytes)
    if isinstance(value, bool):
        return 8
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (set, frozenset)):
        return 64 + sum(16 + estimate_nbytes(v, seen) for v in value)
    if isinstance(value, dict):
        # Keys are measured like any other value (a tuple group key or a
        # long string key is real state); 16 covers the hash-table slot.
        return 64 + sum(
            16 + estimate_nbytes(k, seen) + estimate_nbytes(v, seen)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return 56 + sum(8 + estimate_nbytes(v, seen) for v in value)
    return 64


class SelfSizingSet(set):
    """A set of immutable keys that maintains its own byte footprint.

    The observability layer re-measures every state entry once per batch;
    for the aggregate sink's key sets (``published_keys``,
    ``certain_groups``) the generic recursive walk is O(elements) per
    measurement even though elements are immutable and add-only in the
    steady state. This subclass pays the per-element estimate once, at
    insertion, and serves ``estimated_bytes`` in O(1) — bit-identical to
    the generic ``64 + Σ (16 + estimate_nbytes(element))`` convention.

    Elements must be hashable (hence effectively immutable), so a stored
    estimate can never go stale.
    """

    __slots__ = ("_nbytes",)

    def __init__(self, items: "Iterator[object] | tuple" = ()) -> None:
        super().__init__()
        self._nbytes = 64
        self.update(items)

    def add(self, item: object) -> None:
        if item not in self:
            set.add(self, item)
            self._nbytes += 16 + estimate_nbytes(item)

    def update(self, *iterables: object) -> None:  # type: ignore[override]
        for iterable in iterables:
            for item in iterable:  # type: ignore[attr-defined]
                self.add(item)

    def discard(self, item: object) -> None:
        if item in self:
            set.discard(self, item)
            self._nbytes -= 16 + estimate_nbytes(item)

    def remove(self, item: object) -> None:
        if item not in self:
            raise KeyError(item)
        self.discard(item)

    def pop(self) -> object:
        item = set.pop(self)
        self._nbytes -= 16 + estimate_nbytes(item)
        return item

    def clear(self) -> None:
        set.clear(self)
        self._nbytes = 64

    def __deepcopy__(self, memo: dict) -> "SelfSizingSet":
        # Elements are immutable by contract, so a snapshot shares them;
        # only the container itself is fresh.
        clone = self.__class__()
        memo[id(self)] = clone
        set.update(clone, self)
        clone._nbytes = self._nbytes
        return clone

    def estimated_bytes(self) -> int:
        return self._nbytes


class StateStore:
    """Contract for one operator's named between-batch state entries.

    Entries are keyed by short names (``"nd"``, ``"sentinels"``,
    ``"sketch"``, …). Values are arbitrary engine objects; the store
    never interprets them beyond size accounting and snapshotting.

    ``static=True`` marks an entry as immutable configuration that rides
    along for accounting (e.g. a broadcast dimension side): it is counted
    in :meth:`estimated_bytes` but checkpointed by reference instead of
    deep copy.
    """

    #: Lifetime count of mutating calls (``put``/``delete``), surfaced as
    #: the ``state.writes`` gauge by the observability layer.
    writes: int = 0

    def get(self, key: str, default: object = None) -> Any:
        raise NotImplementedError

    def put(self, key: str, value: object, static: bool = False) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def items(self) -> Iterator[tuple[str, object]]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def entry_bytes(self) -> dict[str, int]:
        raise NotImplementedError

    def estimated_bytes(self) -> int:
        return sum(self.entry_bytes().values())

    def checkpoint(self) -> object:
        """An opaque snapshot restorable any number of times."""
        raise NotImplementedError

    def restore(self, snapshot: object) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class InMemoryStateStore(StateStore):
    """Dict-backed store: the default (and currently only) backend.

    An optional *write observer* (``callable(key)``) is invoked on every
    ``put``/``delete``; the ``--verify`` contract checker installs one to
    attribute store writes to operators and threads. ``None`` (the
    default) costs one attribute read per write.

    Store *identity* is part of the engine's concurrency contract: each
    operator owns exactly one store instance (adopted into the registry
    under the operator's label), so the static race detector
    (``iolap analyze --races``) keys its effect summaries by
    ``id(store)`` — two execution units sharing one instance is exactly
    the single-writer violation RACE001/RACE101 report.
    """

    def __init__(self) -> None:
        self._entries: dict[str, object] = {}
        self._static: set[str] = set()
        self.observer: Any = None
        self.writes = 0
        #: ``entry_bytes`` memo, keyed by the mutation counter: the
        #: observability layer sizes every store once per batch for the
        #: per-entry gauges *and* once for the Figure 9(b) accounting —
        #: without the memo each batch walks every relation/sidecar
        #: twice. Any ``put``/``delete`` bumps ``writes`` and thereby
        #: invalidates; ``restore``/``clear`` bypass ``put`` and drop the
        #: memo explicitly.
        self._bytes_memo: tuple[int, dict[str, int]] | None = None

    def get(self, key: str, default: object = None) -> Any:
        return self._entries.get(key, default)

    def put(self, key: str, value: object, static: bool = False) -> None:
        self.writes += 1
        if self.observer is not None:
            self.observer(key)
        self._entries[key] = value
        if static:
            self._static.add(key)
        else:
            self._static.discard(key)

    def delete(self, key: str) -> None:
        self.writes += 1
        if self.observer is not None:
            self.observer(key)
        self._entries.pop(key, None)
        self._static.discard(key)

    def keys(self) -> Iterator[str]:
        return iter(list(self._entries))

    def items(self) -> Iterator[tuple[str, object]]:
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        self._entries.clear()
        self._static.clear()
        self._bytes_memo = None

    def entry_bytes(self) -> dict[str, int]:
        memo = self._bytes_memo
        if memo is not None and memo[0] == self.writes:
            return memo[1]
        # One seen-set across entries: a dictionary page shared by two
        # entries (e.g. slices of the same encoded table) counts toward
        # the first entry that reaches it, once per store.
        seen: set[int] = set()
        sizes = {k: estimate_nbytes(v, seen) for k, v in self._entries.items()}
        self._bytes_memo = (self.writes, sizes)
        return sizes

    def checkpoint(self) -> object:
        # One deepcopy memo across entries: objects shared between
        # entries (a GroupValue referenced by both the rollup tier and
        # the block output) stay shared in the snapshot, preserving both
        # the aliasing semantics and the deduplicated byte accounting.
        memo: dict[int, object] = {}
        entries = {
            k: (v if k in self._static else copy.deepcopy(v, memo))
            for k, v in self._entries.items()
        }
        return {"entries": entries, "static": set(self._static)}

    def restore(self, snapshot: object) -> None:
        assert isinstance(snapshot, dict)
        static = snapshot["static"]
        memo: dict[int, object] = {}
        self._entries = {
            k: (v if k in static else copy.deepcopy(v, memo))
            for k, v in snapshot["entries"].items()
        }
        self._static = set(static)
        # Restoring replaces entries without going through put(); the
        # writes counter alone cannot witness the change.
        self._bytes_memo = None
