"""Engine-level registry of all operator state stores in one execution."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.state.store import InMemoryStateStore, StateStore


class StateRegistry:
    """Namespaced state stores for one online execution.

    Operators *adopt* their store into the registry under their label
    when the engine opens them, which gives the controller a single
    handle for whole-engine concerns: total footprint accounting and the
    checkpoint/restore pair that failure recovery is built on. Namespace
    collisions (two scans of the same table, say) are disambiguated with
    a ``#n`` suffix; re-adopting the same store is a no-op.
    """

    def __init__(self, factory: Callable[[], StateStore] = InMemoryStateStore):
        self._factory = factory
        self._stores: dict[str, StateStore] = {}

    def store(self, namespace: str) -> StateStore:
        """Get or create the store registered under ``namespace``."""
        if namespace not in self._stores:
            self._stores[namespace] = self._factory()
        return self._stores[namespace]

    def adopt(self, namespace: str, store: StateStore) -> str:
        """Register an externally owned store; returns the actual name."""
        for existing_name, existing in self._stores.items():
            if existing is store:
                return existing_name
        name, n = namespace, 2
        while name in self._stores:
            name = f"{namespace}#{n}"
            n += 1
        self._stores[name] = store
        return name

    def get(self, namespace: str) -> StateStore | None:
        return self._stores.get(namespace)

    def namespaces(self) -> Iterator[str]:
        return iter(list(self._stores))

    def __len__(self) -> int:
        return len(self._stores)

    def bytes_by_namespace(self) -> dict[str, int]:
        return {
            name: store.estimated_bytes() for name, store in self._stores.items()
        }

    def total_bytes(self) -> int:
        return sum(self.bytes_by_namespace().values())

    def checkpoint(self) -> dict[str, object]:
        """Snapshot every registered store (restorable repeatedly)."""
        return {name: store.checkpoint() for name, store in self._stores.items()}

    def restore(self, snapshot: dict[str, object]) -> None:
        """Restore every store to ``snapshot``; stores registered after
        the snapshot was taken are cleared."""
        for name, store in self._stores.items():
            if name in snapshot:
                store.restore(snapshot[name])
            else:
                store.clear()

    def clear(self) -> None:
        for store in self._stores.values():
            store.clear()
