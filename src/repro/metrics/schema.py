"""Pinned JSON schema of the ``--metrics-out`` artifact.

The benchmark harness (and the CI smoke job) archives ``RunMetrics``
dumps and compares them across revisions, so the field set is *frozen*
here: :func:`validate_run_metrics` rejects both missing and unknown
fields. Adding a metric therefore requires touching this module — and
bumping :data:`RUN_METRICS_SCHEMA_VERSION` — deliberately, instead of
silently changing the artifact shape.

Versioning: the validators accept the current version *and* the
immediately preceding one (archived artifacts outlive engine releases),
each against its own frozen field set. v2 -> v3 added the continuous
profiler / cost-model fields (``predicted_seconds`` per batch,
``profile_seconds`` + ``cost_calibration`` per run); v3 -> v4 added the
rollup-tier group split (``rollup_groups``/``nd_groups`` per batch).
"""

from __future__ import annotations

from typing import Any

#: Bump whenever a field is added/removed/retyped in either dict below.
RUN_METRICS_SCHEMA_VERSION = 4

_NUMBER = (int, float)

#: Field name -> accepted types, one ``BatchMetrics.to_dict()`` (v3 set).
BATCH_METRICS_FIELDS_V3: dict[str, tuple[type, ...]] = {
    "batch_no": (int,),
    "wall_seconds": _NUMBER,
    "unit_seconds": _NUMBER,
    "new_tuples": (int,),
    "recomputed_tuples": (int,),
    "shipped_bytes": (int,),
    "state_bytes": (dict,),
    "total_state_bytes": (int,),
    "op_seconds": (dict,),
    "recovered": (bool,),
    "recovery_seconds": _NUMBER,
    "predicted_seconds": _NUMBER,
}

#: Field name -> accepted types, for one ``BatchMetrics.to_dict()``.
BATCH_METRICS_FIELDS: dict[str, tuple[type, ...]] = {
    **BATCH_METRICS_FIELDS_V3,
    "rollup_groups": (int,),
    "nd_groups": (int,),
}

#: Field name -> accepted types, one ``RunMetrics.to_dict()`` (v3 set).
RUN_METRICS_FIELDS_V3: dict[str, tuple[type, ...]] = {
    "schema_version": (int,),
    "num_batches": (int,),
    "total_seconds": _NUMBER,
    "total_unit_seconds": _NUMBER,
    "total_recomputed": (int,),
    "total_shipped_bytes": (int,),
    "num_recoveries": (int,),
    "pruning_disabled": (bool,),
    "analysis_seconds": _NUMBER,
    "sanitize_seconds": _NUMBER,
    "op_seconds": (dict,),
    "batches": (list,),
    "profile_seconds": _NUMBER,
    "cost_calibration": (dict,),
}

#: Field name -> accepted types, for one ``RunMetrics.to_dict()``.
#: The v3 -> v4 bump added only batch-level fields.
RUN_METRICS_FIELDS: dict[str, tuple[type, ...]] = {
    **RUN_METRICS_FIELDS_V3,
}

_FIELDS_BY_VERSION: dict[int, tuple[dict, dict]] = {
    3: (RUN_METRICS_FIELDS_V3, BATCH_METRICS_FIELDS_V3),
    4: (RUN_METRICS_FIELDS, BATCH_METRICS_FIELDS),
}


def _check_fields(
    data: Any, fields: dict[str, tuple[type, ...]], what: str
) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"{what} must be a JSON object")
    missing = set(fields) - set(data)
    if missing:
        raise ValueError(f"{what} is missing field(s) {sorted(missing)}")
    unknown = set(data) - set(fields)
    if unknown:
        raise ValueError(
            f"{what} has unknown field(s) {sorted(unknown)}; the metrics "
            "schema is pinned — extend repro.metrics.schema (and bump "
            "RUN_METRICS_SCHEMA_VERSION) to add fields"
        )
    for name, types in fields.items():
        value = data[name]
        if isinstance(value, bool) and bool not in types:
            raise ValueError(f"{what} field {name!r} must not be a bool")
        if not isinstance(value, types):
            raise ValueError(
                f"{what} field {name!r} has type {type(value).__name__}"
            )


def validate_batch_metrics(
    data: Any, version: int = RUN_METRICS_SCHEMA_VERSION
) -> None:
    """Validate one serialized ``BatchMetrics``; raise ``ValueError``."""
    try:
        _, batch_fields = _FIELDS_BY_VERSION[version]
    except KeyError:
        raise ValueError(
            f"unsupported batch metrics schema version {version!r}"
        ) from None
    _check_fields(data, batch_fields, "batch metrics")
    for label, nbytes in data["state_bytes"].items():
        if not isinstance(label, str) or isinstance(nbytes, bool) or not isinstance(nbytes, int):
            raise ValueError(f"state_bytes entry {label!r} must map str -> int")
    for label, seconds in data["op_seconds"].items():
        if not isinstance(label, str) or not isinstance(seconds, _NUMBER):
            raise ValueError(f"op_seconds entry {label!r} must map str -> number")


def validate_run_metrics(data: Any) -> None:
    """Validate a full ``RunMetrics.to_dict()`` artifact (recursively).

    Accepts the current schema version and the previous one; every
    version is checked against its own frozen field set, so a v2
    artifact with v3 fields (or vice versa) still fails.
    """
    if not isinstance(data, dict):
        raise ValueError("run metrics must be a JSON object")
    version = data.get("schema_version")
    fields = _FIELDS_BY_VERSION.get(version)  # type: ignore[arg-type]
    if fields is None:
        raise ValueError(
            f"run metrics schema version {version!r} not in "
            f"{sorted(_FIELDS_BY_VERSION)}"
        )
    _check_fields(data, fields[0], "run metrics")
    if data["num_batches"] != len(data["batches"]):
        raise ValueError(
            f"num_batches={data['num_batches']} but {len(data['batches'])} "
            "batch records"
        )
    for i, batch in enumerate(data["batches"]):
        try:
            validate_batch_metrics(batch, version=version)  # type: ignore[arg-type]
        except ValueError as exc:
            raise ValueError(f"batches[{i}]: {exc}") from None
