"""Execution instrumentation for the benchmark harness.

The paper evaluates iOLAP with per-batch latency (Fig. 7/8), counts of
recomputed tuples (Fig. 8(e)/(f)), operator state sizes (Fig. 9(b)/10(c)),
shipped-data volume (Fig. 9(c)/10(d)) and failure-recovery probability
(Fig. 9(d)/10(e)). :class:`BatchMetrics` collects all of these for one
mini-batch; :class:`RunMetrics` aggregates a full online execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class BatchMetrics:
    """Counters for one mini-batch iteration."""

    batch_no: int
    #: True elapsed wall-clock seconds of the batch (incl. bootstrap).
    #: Owned by the controller, which stamps it once per batch; executors
    #: never write it, so parallel unit times cannot inflate it.
    wall_seconds: float = 0.0
    #: Sum of per-execution-unit elapsed seconds (the CPU-occupancy view).
    #: Under the serial executor this is ~``wall_seconds`` minus engine
    #: overhead; under the parallel executor concurrent units overlap, so
    #: ``wall_seconds <= unit_seconds`` on a multi-unit batch.
    unit_seconds: float = 0.0
    #: Rows newly ingested from the streamed table this batch.
    new_tuples: int = 0
    #: Rows recomputed: ND-set re-evaluations, row-store re-aggregation,
    #: pending-join retries, and small-block inputs (Fig. 8(e)/(f)).
    recomputed_tuples: int = 0
    #: Bytes crossing shuffle boundaries this batch (Fig. 9(c)).
    shipped_bytes: int = 0
    #: Current state footprint per operator label (Fig. 9(b)).
    state_bytes: dict[str, int] = field(default_factory=dict)
    #: Wall seconds per operator / execution-unit label this batch.
    op_seconds: dict[str, float] = field(default_factory=dict)
    #: Whether a variation-range integrity failure triggered recovery.
    recovered: bool = False
    #: Seconds spent inside the recovery replay (included in wall_seconds).
    recovery_seconds: float = 0.0
    #: Cost-model prediction of this batch's wall seconds, issued by the
    #: continuous profiler *before* the batch ran (0.0 when profiling is
    #: off or the model was still warming up). Compared against
    #: ``wall_seconds - recovery_seconds`` for calibration.
    predicted_seconds: float = 0.0
    #: Groups served from the resolved-rollup tier this batch, summed
    #: over aggregate sinks (0 with ``rollup=False``). The Fig. 10 claim
    #: in one number: ``nd_groups`` stays flat while this grows.
    rollup_groups: int = 0
    #: Groups recomputed in the hot per-batch loop (the live ND set plus
    #: not-yet-quiescent groups), summed over aggregate sinks.
    nd_groups: int = 0

    def reset_attempt(self) -> None:
        """Discard the accumulators of a failed batch attempt.

        When an integrity failure aborts a batch mid-execution, the
        controller replays and re-runs the batch with the *same*
        ``BatchMetrics``; without this reset the failed attempt's rows
        in/out, shipped bytes, and per-unit timings double-count against
        the successful attempt. ``recovered``/``recovery_seconds`` (the
        failure happened; the replay cost is real) and ``wall_seconds``
        (stamped once by the controller with the true batch elapsed time)
        are deliberately preserved.
        """
        self.unit_seconds = 0.0
        self.new_tuples = 0
        self.recomputed_tuples = 0
        self.shipped_bytes = 0
        self.state_bytes = {}
        self.op_seconds = {}
        self.rollup_groups = 0
        self.nd_groups = 0

    def add_state(self, label: str, nbytes: int) -> None:
        self.state_bytes[label] = self.state_bytes.get(label, 0) + nbytes

    def add_op_seconds(self, label: str, seconds: float) -> None:
        self.op_seconds[label] = self.op_seconds.get(label, 0.0) + seconds

    def merge_from(self, other: "BatchMetrics") -> None:
        """Fold another batch's counters into this one.

        The parallel executor gives each execution unit a scratch
        ``BatchMetrics`` and merges them in unit order once the batch
        completes, so concurrent units never contend on shared counters
        and the merged totals are deterministic.

        ``wall_seconds`` is deliberately *not* merged: summing concurrent
        units' elapsed time would inflate it past the true batch latency.
        Per-unit time folds into ``unit_seconds`` instead; the controller
        stamps ``wall_seconds`` with the real batch elapsed time.
        """
        self.unit_seconds += other.unit_seconds
        self.new_tuples += other.new_tuples
        self.recomputed_tuples += other.recomputed_tuples
        self.shipped_bytes += other.shipped_bytes
        for label, nbytes in other.state_bytes.items():
            self.add_state(label, nbytes)
        for label, seconds in other.op_seconds.items():
            self.add_op_seconds(label, seconds)
        self.recovered = self.recovered or other.recovered
        self.recovery_seconds += other.recovery_seconds
        self.rollup_groups += other.rollup_groups
        self.nd_groups += other.nd_groups

    @property
    def total_state_bytes(self) -> int:
        return sum(self.state_bytes.values())

    def state_bytes_matching(self, prefix: str) -> int:
        return sum(v for k, v in self.state_bytes.items() if k.startswith(prefix))

    def to_dict(self) -> dict:
        return {
            "batch_no": self.batch_no,
            "wall_seconds": self.wall_seconds,
            "unit_seconds": self.unit_seconds,
            "new_tuples": self.new_tuples,
            "recomputed_tuples": self.recomputed_tuples,
            "shipped_bytes": self.shipped_bytes,
            "state_bytes": dict(self.state_bytes),
            "total_state_bytes": self.total_state_bytes,
            "op_seconds": dict(self.op_seconds),
            "recovered": self.recovered,
            "recovery_seconds": self.recovery_seconds,
            "predicted_seconds": self.predicted_seconds,
            "rollup_groups": self.rollup_groups,
            "nd_groups": self.nd_groups,
        }


@dataclass
class RunMetrics:
    """All batch metrics of one online query execution."""

    batches: list[BatchMetrics] = field(default_factory=list)
    #: True when the failure-recovery safety valve tripped: the run
    #: exhausted its recovery budget and finished in conservative mode
    #: (range monitor disabled, no pruning).
    pruning_disabled: bool = False
    #: Wall seconds the static plan analysis took before execution (zero
    #: when the run skipped analysis); the harness records it so the
    #: analyzer's fixed per-query cost is visible next to execution time.
    analysis_seconds: float = 0.0
    #: Wall seconds spent inside the runtime buffer sanitizer
    #: (``OnlineConfig(sanitize=True)``): buffer freezes, provenance
    #: tracking, and cross-thread access-log checks. Exactly 0.0 when
    #: sanitizing is off — the perf suite asserts the zero-cost claim.
    sanitize_seconds: float = 0.0
    #: Wall seconds spent inside the continuous profiler + cost model
    #: (``OnlineConfig(profile=True)``): per-batch profile folds,
    #: refits, and prediction scoring. Exactly 0.0 when profiling is off
    #: — the perf suite asserts the zero-cost claim.
    profile_seconds: float = 0.0
    #: Cost-model calibration of this run (prediction count, mean
    #: absolute error in seconds, MAPE, warm-up quota); empty when
    #: profiling is off.
    cost_calibration: dict = field(default_factory=dict)

    def start_batch(self, batch_no: int) -> BatchMetrics:
        bm = BatchMetrics(batch_no)
        self.batches.append(bm)
        return bm

    @property
    def total_seconds(self) -> float:
        return sum(b.wall_seconds for b in self.batches)

    @property
    def total_unit_seconds(self) -> float:
        """Summed per-unit elapsed time (CPU-occupancy view; exceeds
        ``total_seconds`` when the parallel executor overlaps units)."""
        return sum(b.unit_seconds for b in self.batches)

    @property
    def total_recomputed(self) -> int:
        return sum(b.recomputed_tuples for b in self.batches)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(b.shipped_bytes for b in self.batches)

    @property
    def num_recoveries(self) -> int:
        return sum(1 for b in self.batches if b.recovered)

    def seconds_until_fraction(self, fraction: float) -> float:
        """Wall time until the given fraction of batches completed.

        Used for the paper's "iOLAP on 5%/10% data" bars: the latency to
        deliver the approximate answer after that share of the stream.
        """
        upto = max(1, round(len(self.batches) * fraction))
        return sum(b.wall_seconds for b in self.batches[:upto])

    def total_op_seconds(self) -> dict[str, float]:
        """Per-label wall seconds summed over all batches."""
        totals: dict[str, float] = {}
        for bm in self.batches:
            for label, seconds in bm.op_seconds.items():
                totals[label] = totals.get(label, 0.0) + seconds
        return totals

    def to_dict(self) -> dict:
        from repro.metrics.schema import RUN_METRICS_SCHEMA_VERSION

        return {
            "schema_version": RUN_METRICS_SCHEMA_VERSION,
            "num_batches": len(self.batches),
            "total_seconds": self.total_seconds,
            "total_unit_seconds": self.total_unit_seconds,
            "total_recomputed": self.total_recomputed,
            "total_shipped_bytes": self.total_shipped_bytes,
            "num_recoveries": self.num_recoveries,
            "pruning_disabled": self.pruning_disabled,
            "analysis_seconds": self.analysis_seconds,
            "sanitize_seconds": self.sanitize_seconds,
            "profile_seconds": self.profile_seconds,
            "cost_calibration": dict(self.cost_calibration),
            "op_seconds": self.total_op_seconds(),
            "batches": [bm.to_dict() for bm in self.batches],
        }

    def to_json(self, indent: int | None = None) -> str:
        """JSON dump of all per-batch metrics (for benchmark trajectories)."""
        return json.dumps(self.to_dict(), indent=indent)

    def max_state_bytes(self, prefix: str = "") -> int:
        return max(
            (b.state_bytes_matching(prefix) for b in self.batches), default=0
        )

    def avg_state_bytes(self, prefix: str = "") -> float:
        if not self.batches:
            return 0.0
        return sum(b.state_bytes_matching(prefix) for b in self.batches) / len(
            self.batches
        )
