"""Execution instrumentation for the benchmark harness.

The paper evaluates iOLAP with per-batch latency (Fig. 7/8), counts of
recomputed tuples (Fig. 8(e)/(f)), operator state sizes (Fig. 9(b)/10(c)),
shipped-data volume (Fig. 9(c)/10(d)) and failure-recovery probability
(Fig. 9(d)/10(e)). :class:`BatchMetrics` collects all of these for one
mini-batch; :class:`RunMetrics` aggregates a full online execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BatchMetrics:
    """Counters for one mini-batch iteration."""

    batch_no: int
    #: Wall-clock seconds spent processing the batch (incl. bootstrap).
    wall_seconds: float = 0.0
    #: Rows newly ingested from the streamed table this batch.
    new_tuples: int = 0
    #: Rows recomputed: ND-set re-evaluations, row-store re-aggregation,
    #: pending-join retries, and small-block inputs (Fig. 8(e)/(f)).
    recomputed_tuples: int = 0
    #: Bytes crossing shuffle boundaries this batch (Fig. 9(c)).
    shipped_bytes: int = 0
    #: Current state footprint per operator label (Fig. 9(b)).
    state_bytes: dict[str, int] = field(default_factory=dict)
    #: Whether a variation-range integrity failure triggered recovery.
    recovered: bool = False
    #: Seconds spent inside the recovery replay (included in wall_seconds).
    recovery_seconds: float = 0.0

    def add_state(self, label: str, nbytes: int) -> None:
        self.state_bytes[label] = self.state_bytes.get(label, 0) + nbytes

    @property
    def total_state_bytes(self) -> int:
        return sum(self.state_bytes.values())

    def state_bytes_matching(self, prefix: str) -> int:
        return sum(v for k, v in self.state_bytes.items() if k.startswith(prefix))


@dataclass
class RunMetrics:
    """All batch metrics of one online query execution."""

    batches: list[BatchMetrics] = field(default_factory=list)

    def start_batch(self, batch_no: int) -> BatchMetrics:
        bm = BatchMetrics(batch_no)
        self.batches.append(bm)
        return bm

    @property
    def total_seconds(self) -> float:
        return sum(b.wall_seconds for b in self.batches)

    @property
    def total_recomputed(self) -> int:
        return sum(b.recomputed_tuples for b in self.batches)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(b.shipped_bytes for b in self.batches)

    @property
    def num_recoveries(self) -> int:
        return sum(1 for b in self.batches if b.recovered)

    def seconds_until_fraction(self, fraction: float) -> float:
        """Wall time until the given fraction of batches completed.

        Used for the paper's "iOLAP on 5%/10% data" bars: the latency to
        deliver the approximate answer after that share of the stream.
        """
        upto = max(1, round(len(self.batches) * fraction))
        return sum(b.wall_seconds for b in self.batches[:upto])

    def max_state_bytes(self, prefix: str = "") -> int:
        return max(
            (b.state_bytes_matching(prefix) for b in self.batches), default=0
        )

    def avg_state_bytes(self, prefix: str = "") -> float:
        if not self.batches:
            return 0.0
        return sum(b.state_bytes_matching(prefix) for b in self.batches) / len(
            self.batches
        )
