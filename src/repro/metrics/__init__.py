"""Execution instrumentation backing the benchmark harness."""

from repro.metrics.stats import BatchMetrics, RunMetrics

__all__ = ["BatchMetrics", "RunMetrics"]
