"""Execution instrumentation backing the benchmark harness."""

from repro.metrics.schema import (
    RUN_METRICS_SCHEMA_VERSION,
    validate_batch_metrics,
    validate_run_metrics,
)
from repro.metrics.stats import BatchMetrics, RunMetrics

__all__ = [
    "BatchMetrics",
    "RunMetrics",
    "RUN_METRICS_SCHEMA_VERSION",
    "validate_batch_metrics",
    "validate_run_metrics",
]
