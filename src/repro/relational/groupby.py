"""Grouping helpers shared by the batch evaluator and the online sketches."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.codec import _carried_codes, factorize_arrays
from repro.relational.relation import Relation

#: A group key is the tuple of group-by column values (``()`` for scalar
#: aggregates, matching the paper's "empty join key" in Figure 2).
GroupKey = tuple


def group_ids(rel: Relation, group_by: Sequence[str]) -> tuple[list[GroupKey], np.ndarray]:
    """Assign a dense group id to each row.

    Returns ``(keys, gids)`` where ``keys[g]`` is the key tuple of group
    ``g`` and ``gids[i]`` the group of row ``i``. Group ids follow first
    appearance order, which keeps online outputs stable across batches.
    """
    n = len(rel)
    if not group_by:
        return [()], np.zeros(n, dtype=np.intp)
    carried = _carried_codes(rel, list(group_by))
    if carried is not None:
        # Dictionary-encoded key columns: group directly on storage codes,
        # no value hashing or object sorting.
        arrays = [rel.column(name) for name in group_by]
        factorized = factorize_arrays(arrays, n, carried)
        if factorized is not None:
            codes, first_rows = factorized
            keys = list(zip(*(a[first_rows].tolist() for a in arrays)))
            return keys, codes
    if len(group_by) == 1:
        values = rel.column(group_by[0])
        uniques, inverse = np.unique(values, return_inverse=True)
        # Re-order so that ids follow first appearance, not sorted order.
        first_pos = np.full(len(uniques), n, dtype=np.intp)
        np.minimum.at(first_pos, inverse, np.arange(n, dtype=np.intp))
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(len(uniques))
        keys = [(uniques[g],) for g in order]
        return keys, rank[inverse]
    arrays = [rel.column(name) for name in group_by]
    factorized = factorize_arrays(arrays, n)
    if factorized is not None:
        codes, first_rows = factorized
        keys = list(zip(*(a[first_rows].tolist() for a in arrays)))
        return keys, codes
    # Fallback for keys np.unique cannot order faithfully (NaN floats,
    # unorderable objects): the dict reference.
    mapping: dict[GroupKey, int] = {}
    gids = np.empty(n, dtype=np.intp)
    keys = []
    for i, key in enumerate(rel.key_tuples(group_by)):
        gid = mapping.get(key)
        if gid is None:
            gid = len(keys)
            mapping[key] = gid
            keys.append(key)
        gids[i] = gid
    return keys, gids


def weighted_sums(
    features: np.ndarray, weights: np.ndarray, gids: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group weighted feature sums.

    ``features`` is (k, n), ``weights`` (n,); result is (num_groups, k).
    """
    k = features.shape[0]
    out = np.zeros((num_groups, k), dtype=np.float64)
    for j in range(k):
        out[:, j] = np.bincount(gids, weights=features[j] * weights, minlength=num_groups)
    return out


def weighted_trial_sums(
    features: np.ndarray,
    trial_weights: np.ndarray,
    gids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-group per-trial weighted feature sums.

    ``features`` is (k, n), ``trial_weights`` (n, T); result is
    (num_groups, T, k). Loops over features and trials stay in NumPy; at
    mini-batch sizes (thousands of rows, ~100 trials) this is fast.
    """
    k = features.shape[0]
    t = trial_weights.shape[1]
    out = np.zeros((num_groups, t, k), dtype=np.float64)
    for j in range(k):
        weighted = features[j][:, None] * trial_weights  # (n, T)
        for g, row in _accumulate_by_group(weighted, gids, num_groups):
            out[g, :, j] = row
    return out


def trial_weight_sums(
    trial_weights: np.ndarray, gids: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group per-trial weight sums: (num_groups, T)."""
    out = np.zeros((num_groups, trial_weights.shape[1]), dtype=np.float64)
    for g, row in _accumulate_by_group(trial_weights, gids, num_groups):
        out[g] = row
    return out


def _accumulate_by_group(matrix: np.ndarray, gids: np.ndarray, num_groups: int):
    """Yield ``(group, column-sum-of-rows-in-group)`` for a (n, T) matrix."""
    acc = np.zeros((num_groups, matrix.shape[1]), dtype=np.float64)
    np.add.at(acc, gids, matrix)
    for g in range(num_groups):
        yield g, acc[g]
