"""Aggregate functions over weighted bags, including UDAF support.

Following the paper, aggregates are evaluated over tuples with real-valued
multiplicities (Appendix A): an aggregate sees each tuple value ``x`` with
weight ``w`` equal to the tuple's multiplicity.

Most aggregates here are *decomposable*: they can be computed from a fixed
number of weighted feature sums ``S_k = Σ w·f_k(x)`` plus the weight sum
``W = Σ w``. Decomposable aggregates admit the space-efficient *sketch*
states of Section 4.2 and vectorize across bootstrap trials (the sums are
maintained per trial). Non-decomposable aggregates (arbitrary UDAFs) are
supported too but force the online AGGREGATE operator to keep a row store.

Each function also declares:

* ``hadamard_differentiable`` — Section 3.3's precondition for
  sampling-based approximation; the online engine refuses functions where
  this is ``False`` (e.g., MIN/MAX).
* ``scales_with_m`` — whether the estimate extrapolates linearly with the
  inverse sampling fraction ``m_i = |D|/|D_i|`` (SUM/COUNT do, AVG and
  variance-like statistics do not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExpressionError
from repro.relational.expressions import Col, Expression, lift
from repro.relational.schema import ColumnType


class AggregateFunction:
    """Base class for aggregate functions.

    Decomposable subclasses implement :meth:`features` / :meth:`finalize`;
    non-decomposable ones implement :meth:`compute`.
    """

    name: str = "agg"
    hadamard_differentiable: bool = True
    scales_with_m: bool = False
    decomposable: bool = True
    num_features: int = 0
    output_type: ColumnType = ColumnType.FLOAT

    def features(self, values: np.ndarray) -> np.ndarray:
        """Return a (num_features, n) matrix of feature values.

        ``values`` may be ``None`` for zero-argument aggregates (COUNT).
        """
        raise NotImplementedError

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        """Combine feature sums into results.

        ``feature_sums`` has shape ``(..., num_features)`` and ``weight_sum``
        shape ``(...)``; the leading axes are broadcast (used to finalize
        the actual result and every bootstrap trial in one call). Groups
        with zero weight finalize to ``nan``.
        """
        raise NotImplementedError

    def compute(self, values: np.ndarray, weights: np.ndarray) -> float:
        """Direct weighted evaluation (required for non-decomposable UDAFs).

        Decomposable functions get this for free via the feature sums.
        """
        if not self.decomposable:
            raise NotImplementedError
        if self.num_features:
            sums = self.features(values) @ weights
        else:
            sums = np.zeros(0)
        return float(self.finalize(sums, np.asarray(weights.sum())))

    def trial_compute(self, values: np.ndarray, trial_weights: np.ndarray) -> np.ndarray:
        """Evaluate all bootstrap trials of one group: (T,) results.

        ``trial_weights`` is the (n, T) per-trial multiplicity matrix. The
        default evaluates :meth:`compute` per trial column — the row-wise
        reference. Selection-based aggregates override this with a
        sort-once kernel (see :mod:`repro.kernels.holistic`); overrides
        must stay bit-identical to this loop.
        """
        t = trial_weights.shape[1]
        out = np.empty(t)
        for j in range(t):
            out[j] = self.compute(values, trial_weights[:, j])
        return out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Count(AggregateFunction):
    """``COUNT(*)`` — the total multiplicity."""

    name = "count"
    scales_with_m = True
    num_features = 0

    def features(self, values: np.ndarray) -> np.ndarray:
        n = 0 if values is None else len(values)
        return np.empty((0, n))

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        return np.asarray(weight_sum, dtype=np.float64)


class Sum(AggregateFunction):
    """Weighted ``SUM(x)``."""

    name = "sum"
    scales_with_m = True
    num_features = 1

    def features(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)[None, :]

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        return np.asarray(feature_sums)[..., 0]


class Avg(AggregateFunction):
    """Weighted ``AVG(x)`` — scale-free under uniform sampling."""

    name = "avg"
    scales_with_m = False
    num_features = 1

    def features(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)[None, :]

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        w = np.asarray(weight_sum, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(w != 0, np.asarray(feature_sums)[..., 0] / w, np.nan)


class Variance(AggregateFunction):
    """Weighted population variance ``VAR(x) = E[x²] − E[x]²``."""

    name = "var"
    scales_with_m = False
    num_features = 2

    def features(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        return np.vstack([x, x * x])

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        w = np.asarray(weight_sum, dtype=np.float64)
        s = np.asarray(feature_sums)
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = np.where(w != 0, s[..., 0] / w, np.nan)
            mean_sq = np.where(w != 0, s[..., 1] / w, np.nan)
        return np.maximum(mean_sq - mean * mean, 0.0)


class Stddev(Variance):
    """Weighted population standard deviation."""

    name = "stddev"

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        return np.sqrt(super().finalize(feature_sums, weight_sum))


class GeometricMean(AggregateFunction):
    """``GEOMEAN(x) = exp(E[log x])`` — an example smooth UDAF.

    Used by the Conviva workload (C8–C10) to exercise the paper's claim
    that arbitrary Hadamard-differentiable UDAFs work online.
    """

    name = "geomean"
    scales_with_m = False
    num_features = 1

    def features(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        if np.any(x <= 0):
            raise ExpressionError("geomean requires strictly positive values")
        return np.log(x)[None, :]

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        w = np.asarray(weight_sum, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(w != 0, np.exp(np.asarray(feature_sums)[..., 0] / w), np.nan)


class Min(AggregateFunction):
    """``MIN(x)`` — supported in batch mode only (not Hadamard differentiable)."""

    name = "min"
    hadamard_differentiable = False
    decomposable = False

    def compute(self, values: np.ndarray, weights: np.ndarray) -> float:
        live = np.asarray(values, dtype=np.float64)[np.asarray(weights) > 0]
        return float(live.min()) if len(live) else math.nan


class Max(AggregateFunction):
    """``MAX(x)`` — supported in batch mode only (not Hadamard differentiable)."""

    name = "max"
    hadamard_differentiable = False
    decomposable = False

    def compute(self, values: np.ndarray, weights: np.ndarray) -> float:
        live = np.asarray(values, dtype=np.float64)[np.asarray(weights) > 0]
        return float(live.max()) if len(live) else math.nan


class Quantile(AggregateFunction):
    """Weighted ``q``-quantile (MEDIAN, P90, ...) — a holistic aggregate.

    Non-decomposable (forces the online AGGREGATE's row store) but
    Hadamard differentiable, so the bootstrap error estimates remain
    valid (Section 3.3 covers sample quantiles). The per-trial path is
    the sort-based kernel: one stable sort of the group's values answers
    every bootstrap trial, instead of ``T`` independent ``compute`` calls.
    """

    decomposable = False
    scales_with_m = False

    def __init__(self, q: float, name: str | None = None):
        if not 0.0 < q <= 1.0:
            raise ExpressionError(f"quantile fraction must be in (0, 1], got {q}")
        self.q = q
        self.name = name or f"p{round(q * 100):02d}"

    def compute(self, values: np.ndarray, weights: np.ndarray) -> float:
        from repro.kernels.holistic import weighted_quantile

        return weighted_quantile(values, np.asarray(weights, dtype=np.float64), self.q)

    def trial_compute(self, values: np.ndarray, trial_weights: np.ndarray) -> np.ndarray:
        from repro.kernels.holistic import weighted_quantile_trials

        return weighted_quantile_trials(values, trial_weights, self.q)


class Median(Quantile):
    """Weighted ``MEDIAN(x)`` — the 0.5 quantile."""

    def __init__(self) -> None:
        super().__init__(0.5, name="median")


class DecomposableUDAF(AggregateFunction):
    """User-defined aggregate built from feature maps + a finalizer.

    ``feature_fns`` each map a value array to a feature array; ``finalizer``
    maps ``(feature_sums, weight_sum)`` (NumPy-broadcastable) to results.
    Such UDAFs behave exactly like the built-ins: sketchable state and
    bootstrap support for free.
    """

    decomposable = True

    def __init__(
        self,
        name: str,
        feature_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
        finalizer: Callable[[np.ndarray, np.ndarray], np.ndarray],
        hadamard_differentiable: bool = True,
        scales_with_m: bool = False,
    ):
        self.name = name
        self.feature_fns = list(feature_fns)
        self.finalizer = finalizer
        self.hadamard_differentiable = hadamard_differentiable
        self.scales_with_m = scales_with_m
        self.num_features = len(self.feature_fns)

    def features(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        return np.vstack([np.asarray(fn(x), dtype=np.float64) for fn in self.feature_fns])

    def finalize(self, feature_sums: np.ndarray, weight_sum: np.ndarray) -> np.ndarray:
        return np.asarray(
            self.finalizer(np.asarray(feature_sums), np.asarray(weight_sum))
        )


class HolisticUDAF(AggregateFunction):
    """User-defined aggregate evaluated directly on (values, weights).

    Non-decomposable: the online engine keeps the contributing rows in the
    AGGREGATE operator's row store and recomputes the aggregate each batch
    (the paper's "state cannot be compressed into a sketch" case).
    """

    decomposable = False

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray, np.ndarray], float],
        hadamard_differentiable: bool = True,
        scales_with_m: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.hadamard_differentiable = hadamard_differentiable
        self.scales_with_m = scales_with_m

    def compute(self, values: np.ndarray, weights: np.ndarray) -> float:
        return float(self.fn(np.asarray(values, dtype=np.float64), np.asarray(weights)))


@dataclass
class AggSpec:
    """One output column of an AGGREGATE operator: ``name := func(arg)``."""

    name: str
    func: AggregateFunction
    arg: Expression | None = None

    def __post_init__(self) -> None:
        if self.arg is not None:
            self.arg = lift(self.arg)
        if self.arg is None and not isinstance(self.func, Count):
            raise ExpressionError(f"aggregate {self.func.name} requires an argument")

    def attrs(self) -> set[str]:
        return self.arg.attrs() if self.arg is not None else set()

    def arg_values(self, rel) -> np.ndarray | None:
        if self.arg is None:
            return None
        return np.asarray(self.arg.evaluate(rel), dtype=np.float64)

    def __repr__(self) -> str:
        return f"{self.name}={self.func.name}({self.arg!r})"


# Convenience constructors mirroring SQL spellings -----------------------------


def count(name: str = "count") -> AggSpec:
    return AggSpec(name, Count())


def sum_(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "sum", Sum(), arg)


def avg(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "avg", Avg(), arg)


def var(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "var", Variance(), arg)


def stddev(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "stddev", Stddev(), arg)


def geomean(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "geomean", GeometricMean(), arg)


def median(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "median", Median(), arg)


def quantile(q: float, arg: Expression | str, name: str | None = None) -> AggSpec:
    func = Quantile(q)
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or func.name, func, arg)


def min_(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "min", Min(), arg)


def max_(arg: Expression | str, name: str | None = None) -> AggSpec:
    arg = Col(arg) if isinstance(arg, str) else arg
    return AggSpec(name or "max", Max(), arg)


#: Registry used by the SQL planner to resolve aggregate names.
AGG_FUNCTIONS: dict[str, Callable[[], AggregateFunction]] = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "var": Variance,
    "stddev": Stddev,
    "geomean": GeometricMean,
    "min": Min,
    "max": Max,
    "median": Median,
    "p90": lambda: Quantile(0.9),
    "p95": lambda: Quantile(0.95),
    "p99": lambda: Quantile(0.99),
}