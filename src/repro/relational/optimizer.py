"""Rule-based logical plan optimizer.

The online rewriter benefits from tidy plans: pushed-down predicates
shrink mini-batch deltas before they hit uncertain operators, and pruned
projections shrink the non-deterministic stores. This module implements
the standard equivalence-preserving rewrites used by the batch engine and
(optionally) before online compilation:

* **predicate pushdown** — move deterministic selection conjuncts below
  projections, renames, unions, and into the matching side of joins;
* **selection merging** — collapse adjacent selections into one conjunction;
* **projection pruning** — drop columns no ancestor ever reads (inserting
  narrow projections above scans);
* **constant-predicate elimination** — drop ``lit(True)`` filters.

All rewrites preserve bag semantics; the test suite checks every rule on
randomized inputs against the unoptimized plan.
"""

from __future__ import annotations

from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import (
    Col,
    Expression,
    Literal,
    conjoin,
    conjuncts,
)
from repro.relational.schema import Schema

CatalogSchemas = dict[str, Schema]


def optimize(plan: PlanNode, schemas: CatalogSchemas) -> PlanNode:
    """Apply all rewrites to a fixpoint (bounded)."""
    out = plan
    for _ in range(5):
        previous = out
        out = merge_selects(out)
        out = push_down_predicates(out, schemas)
        out = drop_trivial_selects(out)
        out = prune_projections(out, schemas)
        if _plans_identical(previous, out):
            break
    return out


# -- selection merging ---------------------------------------------------------


def merge_selects(plan: PlanNode) -> PlanNode:
    """``σ_a(σ_b(R)) → σ_{a∧b}(R)``, applied bottom-up."""
    from repro.relational.algebra import transform

    def rule(node: PlanNode) -> PlanNode | None:
        if isinstance(node, Select) and isinstance(node.child, Select):
            inner = node.child
            return Select(
                inner.child, conjoin(conjuncts(node.predicate) + conjuncts(inner.predicate))
            )
        return None

    return transform(plan, rule)


def drop_trivial_selects(plan: PlanNode) -> PlanNode:
    """Remove ``σ_true`` filters left behind by pushdown."""
    from repro.relational.algebra import transform

    def rule(node: PlanNode) -> PlanNode | None:
        if isinstance(node, Select):
            parts = [
                p
                for p in conjuncts(node.predicate)
                if not (isinstance(p, Literal) and p.value is True)
            ]
            if not parts:
                return node.child
            if len(parts) != len(conjuncts(node.predicate)):
                return Select(node.child, conjoin(parts))
        return None

    return transform(plan, rule)


# -- predicate pushdown -----------------------------------------------------------


def push_down_predicates(plan: PlanNode, schemas: CatalogSchemas) -> PlanNode:
    """Push selection conjuncts as deep as they can go."""
    return _push(plan, [], schemas)


def _push(
    node: PlanNode, pending: list[Expression], schemas: CatalogSchemas
) -> PlanNode:
    if isinstance(node, Select):
        return _push(node.child, pending + conjuncts(node.predicate), schemas)

    if isinstance(node, Project):
        passthrough = {
            name: expr.name
            for name, expr in node.outputs
            if isinstance(expr, Col)
        }
        pushable, stuck = [], []
        for pred in pending:
            if pred.attrs() <= set(passthrough):
                pushable.append(_substitute_cols(pred, passthrough))
            else:
                stuck.append(pred)
        rebuilt = Project(_push(node.child, pushable, schemas), node.outputs)
        return _wrap(rebuilt, stuck)

    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.mapping.items()}
        pushable = [
            _substitute_cols(p, {c: inverse.get(c, c) for c in p.attrs()})
            for p in pending
        ]
        return Rename(_push(node.child, pushable, schemas), node.mapping)

    if isinstance(node, Union):
        left = _push(node.left, list(pending), schemas)
        right = _push(node.right, list(pending), schemas)
        return Union(left, right)

    if isinstance(node, Join):
        left_cols = set(node.left.output_schema(schemas).names)
        right_cols = set(node.right.output_schema(schemas).names)
        # The join output exposes the LEFT key name for both sides; map it
        # to the right key when pushing right.
        key_map = {lk: rk for lk, rk in node.keys}
        to_left, to_right, stuck = [], [], []
        for pred in pending:
            attrs = pred.attrs()
            if attrs <= left_cols:
                to_left.append(pred)
            elif {key_map.get(a, a) for a in attrs} <= right_cols:
                to_right.append(
                    _substitute_cols(pred, {a: key_map.get(a, a) for a in attrs})
                )
            else:
                stuck.append(pred)
        rebuilt = Join(
            _push(node.left, to_left, schemas),
            _push(node.right, to_right, schemas),
            node.keys,
        )
        return _wrap(rebuilt, stuck)

    if isinstance(node, (Aggregate, Distinct)):
        # Predicates over group keys could cross an aggregate, but the
        # online engine keys its block state by group; keep the barrier.
        child = _push(node.child, [], schemas)
        if isinstance(node, Aggregate):
            rebuilt: PlanNode = Aggregate(child, node.group_by, node.aggs)
        else:
            rebuilt = Distinct(child, node.columns)
        return _wrap(rebuilt, pending)

    if isinstance(node, Scan):
        return _wrap(node, pending)

    raise TypeError(f"unknown node {type(node).__name__}")  # pragma: no cover


def _wrap(node: PlanNode, preds: list[Expression]) -> PlanNode:
    if not preds:
        return node
    return Select(node, conjoin(preds))


def _substitute_cols(expr: Expression, mapping: dict[str, str]) -> Expression:
    """Rewrite column references through a rename/projection mapping."""
    if isinstance(expr, Col):
        return Col(mapping.get(expr.name, expr.name))
    clone = expr.__class__.__new__(expr.__class__)
    clone.__dict__.update(expr.__dict__)
    for attr in ("left", "right", "child"):
        if hasattr(expr, attr):
            setattr(clone, attr, _substitute_cols(getattr(expr, attr), mapping))
    if hasattr(expr, "args"):
        clone.args = [_substitute_cols(a, mapping) for a in expr.args]
    return clone


# -- projection pruning ----------------------------------------------------------------


def prune_projections(plan: PlanNode, schemas: CatalogSchemas) -> PlanNode:
    """Insert narrow projections above scans for unused columns."""
    needed = set(plan.output_schema(schemas).names)
    return _prune(plan, needed, schemas)


def _prune(node: PlanNode, needed: set[str], schemas: CatalogSchemas) -> PlanNode:
    if isinstance(node, Scan):
        ordered = [c for c in node.schema.names if c in needed]
        if set(ordered) == set(node.schema.names) or not ordered:
            return node
        return Project(node, [(c, Col(c)) for c in ordered])

    if isinstance(node, Select):
        child_needed = needed | node.predicate.attrs()
        return Select(_prune(node.child, child_needed, schemas), node.predicate)

    if isinstance(node, Project):
        kept = [(n, e) for n, e in node.outputs if n in needed] or node.outputs[:1]
        child_needed = set()
        for _, expr in kept:
            child_needed |= expr.attrs()
        return Project(_prune(node.child, child_needed, schemas), kept)

    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.mapping.items()}
        child_needed = {inverse.get(c, c) for c in needed}
        return Rename(_prune(node.child, child_needed, schemas), node.mapping)

    if isinstance(node, Join):
        left_cols = set(node.left.output_schema(schemas).names)
        right_cols = set(node.right.output_schema(schemas).names)
        left_needed = (needed & left_cols) | set(node.left_keys)
        right_needed = (needed & right_cols) | set(node.right_keys)
        return Join(
            _prune(node.left, left_needed, schemas),
            _prune(node.right, right_needed, schemas),
            node.keys,
        )

    if isinstance(node, Union):
        # Union children must keep identical schemas; pass everything.
        full = set(node.output_schema(schemas).names)
        return Union(
            _prune(node.left, full, schemas), _prune(node.right, full, schemas)
        )

    if isinstance(node, Aggregate):
        child_needed = set(node.group_by)
        for spec in node.aggs:
            child_needed |= spec.attrs()
        return Aggregate(
            _prune(node.child, child_needed, schemas), node.group_by, node.aggs
        )

    if isinstance(node, Distinct):
        return Distinct(_prune(node.child, set(node.columns), schemas), node.columns)

    raise TypeError(f"unknown node {type(node).__name__}")  # pragma: no cover


def _plans_identical(a: PlanNode, b: PlanNode) -> bool:
    from repro.baselines.viewlet import plans_equal

    return plans_equal(a, b)
