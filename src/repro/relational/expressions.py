"""Scalar expression AST evaluated over columnar relations.

Expressions support two evaluation modes:

* :meth:`Expression.evaluate` — vectorized over a whole :class:`Relation`
  (the hot path for batch execution and the certain path of the online
  engine), returning a NumPy array;
* :meth:`Expression.evaluate_row` — per-row over a row dict (the slow path
  used for small non-deterministic sets). In this mode operands may be
  :class:`~repro.core.values.UncertainValue` objects; arithmetic uses the
  Python operators so trial vectors and variation ranges propagate, while
  comparisons collapse uncertain operands to their current point estimate
  (range-aware classification of comparisons lives in the online SELECT
  operator, not here).

Expression objects overload the Python operators so plans read naturally::

    (col("buffer_time") > col("avg_buffer")) & (col("play_time") >= 60)
"""

from __future__ import annotations

import operator
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExpressionError
from repro.relational.relation import Relation, Row
from repro.relational.schema import ColumnType, Schema


def point(value: object) -> object:
    """Collapse an uncertain value to its current point estimate."""
    if getattr(value, "__iolap_uncertain__", False):
        return value.value  # type: ignore[attr-defined]
    return value


def is_uncertain(value: object) -> bool:
    return bool(getattr(value, "__iolap_uncertain__", False))


class Expression:
    """Base class of all scalar expressions."""

    def attrs(self) -> set[str]:
        """Column names referenced by this expression (``attr(f)`` in the paper)."""
        raise NotImplementedError

    def evaluate(self, rel: Relation) -> np.ndarray:
        raise NotImplementedError

    def evaluate_row(self, row: Row) -> object:
        raise NotImplementedError

    def output_type(self, schema: Schema) -> ColumnType:
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    # -- operator sugar -------------------------------------------------------

    def __add__(self, other: object) -> "Expression":
        return Arith("+", self, lift(other))

    def __radd__(self, other: object) -> "Expression":
        return Arith("+", lift(other), self)

    def __sub__(self, other: object) -> "Expression":
        return Arith("-", self, lift(other))

    def __rsub__(self, other: object) -> "Expression":
        return Arith("-", lift(other), self)

    def __mul__(self, other: object) -> "Expression":
        return Arith("*", self, lift(other))

    def __rmul__(self, other: object) -> "Expression":
        return Arith("*", lift(other), self)

    def __truediv__(self, other: object) -> "Expression":
        return Arith("/", self, lift(other))

    def __rtruediv__(self, other: object) -> "Expression":
        return Arith("/", lift(other), self)

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, lift(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, lift(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, lift(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, lift(other))

    def eq(self, other: object) -> "Comparison":
        """Equality comparison (``==`` is kept for object identity)."""
        return Comparison("==", self, lift(other))

    def ne(self, other: object) -> "Comparison":
        return Comparison("!=", self, lift(other))

    def __and__(self, other: object) -> "Expression":
        return And(self, lift(other))

    def __or__(self, other: object) -> "Expression":
        return Or(self, lift(other))

    def __invert__(self) -> "Expression":
        return Not(self)

    def isin(self, values: Sequence[object]) -> "InList":
        return InList(self, list(values))


def lift(value: object) -> Expression:
    """Wrap a plain Python value as a :class:`Literal` (expressions pass through)."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Col(Expression):
    """Reference to a named column."""

    def __init__(self, name: str):
        self.name = name

    def attrs(self) -> set[str]:
        return {self.name}

    def evaluate(self, rel: Relation) -> np.ndarray:
        return rel.column(self.name)

    def evaluate_row(self, row: Row) -> object:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(
                f"row has no column {self.name!r}; columns: {sorted(row)}"
            ) from None

    def output_type(self, schema: Schema) -> ColumnType:
        return schema.type_of(self.name)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


def col(name: str) -> Col:
    return Col(name)


class Literal(Expression):
    """A constant."""

    def __init__(self, value: object):
        self.value = value

    def attrs(self) -> set[str]:
        return set()

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.full(len(rel), self.value)

    def evaluate_row(self, row: Row) -> object:
        return self.value

    def output_type(self, schema: Schema) -> ColumnType:
        if isinstance(value := self.value, bool):
            return ColumnType.BOOL
        if isinstance(value, int):
            return ColumnType.INT
        if isinstance(value, float):
            return ColumnType.FLOAT
        if isinstance(value, str):
            return ColumnType.STRING
        raise ExpressionError(f"unsupported literal type: {type(self.value).__name__}")

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


def lit(value: object) -> Literal:
    return Literal(value)


_ARITH_OPS: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Arith(Expression):
    """Binary arithmetic over numeric operands."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def attrs(self) -> set[str]:
        return self.left.attrs() | self.right.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> np.ndarray:
        lhs = self.left.evaluate(rel)
        rhs = self.right.evaluate(rel)
        if self.op == "/":
            lhs = np.asarray(lhs, dtype=np.float64)
        return _ARITH_OPS[self.op](lhs, rhs)

    def evaluate_row(self, row: Row) -> object:
        return _ARITH_OPS[self.op](self.left.evaluate_row(row), self.right.evaluate_row(row))

    def output_type(self, schema: Schema) -> ColumnType:
        lt = self.left.output_type(schema)
        rt = self.right.output_type(schema)
        if ColumnType.STRING in (lt, rt):
            raise ExpressionError(f"arithmetic {self.op!r} on string operand")
        if self.op == "/" or ColumnType.FLOAT in (lt, rt):
            return ColumnType.FLOAT
        return ColumnType.INT

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_CMP_OPS: dict[str, Callable] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Comparison with the operand order flipped — used when normalizing
#: predicates so the uncertain side sits on the right.
FLIPPED_CMP = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Comparison(Expression):
    """Binary comparison; the predicate form tracked by uncertainty analysis."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def attrs(self) -> set[str]:
        return self.left.attrs() | self.right.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> np.ndarray:
        return _CMP_OPS[self.op](self.left.evaluate(rel), self.right.evaluate(rel))

    def evaluate_row(self, row: Row) -> object:
        lhs = point(self.left.evaluate_row(row))
        rhs = point(self.right.evaluate_row(row))
        return bool(_CMP_OPS[self.op](lhs, rhs))

    def output_type(self, schema: Schema) -> ColumnType:
        return ColumnType.BOOL

    def flipped(self) -> "Comparison":
        return Comparison(FLIPPED_CMP[self.op], self.right, self.left)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def attrs(self) -> set[str]:
        return self.left.attrs() | self.right.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.logical_and(self.left.evaluate(rel), self.right.evaluate(rel))

    def evaluate_row(self, row: Row) -> object:
        return bool(self.left.evaluate_row(row)) and bool(self.right.evaluate_row(row))

    def output_type(self, schema: Schema) -> ColumnType:
        return ColumnType.BOOL

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def attrs(self) -> set[str]:
        return self.left.attrs() | self.right.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.logical_or(self.left.evaluate(rel), self.right.evaluate(rel))

    def evaluate_row(self, row: Row) -> object:
        return bool(self.left.evaluate_row(row)) or bool(self.right.evaluate_row(row))

    def output_type(self, schema: Schema) -> ColumnType:
        return ColumnType.BOOL

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Expression):
    def __init__(self, child: Expression):
        self.child = child

    def attrs(self) -> set[str]:
        return self.child.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.logical_not(self.child.evaluate(rel))

    def evaluate_row(self, row: Row) -> object:
        return not bool(self.child.evaluate_row(row))

    def output_type(self, schema: Schema) -> ColumnType:
        return ColumnType.BOOL

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


class InList(Expression):
    """Membership in a fixed list of constants."""

    def __init__(self, child: Expression, values: list[object]):
        self.child = child
        self.values = values

    def attrs(self) -> set[str]:
        return self.child.attrs()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def evaluate(self, rel: Relation) -> np.ndarray:
        arr = self.child.evaluate(rel)
        return np.isin(arr, np.array(self.values, dtype=arr.dtype))

    def evaluate_row(self, row: Row) -> object:
        return point(self.child.evaluate_row(row)) in self.values

    def output_type(self, schema: Schema) -> ColumnType:
        return ColumnType.BOOL

    def __repr__(self) -> str:
        return f"({self.child!r} IN {self.values!r})"


class Func(Expression):
    """A scalar user-defined function.

    ``fn`` receives the evaluated argument values. With ``vectorized=True``
    it is called once with NumPy arrays; otherwise it is applied row by row
    (and also used directly on the per-row path).
    """

    def __init__(
        self,
        name: str,
        fn: Callable,
        args: Sequence[Expression],
        out_type: ColumnType = ColumnType.FLOAT,
        vectorized: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.args = [lift(a) for a in args]
        self.out_type = out_type
        self.vectorized = vectorized

    def attrs(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.attrs()
        return out

    def children(self) -> Sequence[Expression]:
        return tuple(self.args)

    def evaluate(self, rel: Relation) -> np.ndarray:
        arg_arrays = [a.evaluate(rel) for a in self.args]
        if self.vectorized:
            return np.asarray(self.fn(*arg_arrays))
        out = np.empty(len(rel), dtype=self.out_type.dtype)
        for i in range(len(rel)):
            out[i] = self.fn(*(arr[i] for arr in arg_arrays))
        return out

    def evaluate_row(self, row: Row) -> object:
        args = [a.evaluate_row(row) for a in self.args]
        if any(is_uncertain(v) for v in args):
            # UDFs are opaque; apply to point estimates. Trial-level
            # propagation through UDFs happens in the online PROJECT
            # operator, which re-evaluates per trial when needed.
            args = [point(v) for v in args]
        return self.fn(*args)

    def output_type(self, schema: Schema) -> ColumnType:
        return self.out_type

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


def walk(expr: Expression):
    """Yield ``expr`` and all of its descendants (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def conjuncts(expr: Expression) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: Sequence[Expression]) -> Expression:
    """Rebuild a predicate from conjuncts (``lit(True)`` when empty)."""
    parts = list(parts)
    if not parts:
        return Literal(True)
    out = parts[0]
    for p in parts[1:]:
        out = And(out, p)
    return out
