"""A named collection of base relations."""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import CatalogError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Catalog:
    """Maps table names to :class:`Relation` objects."""

    def __init__(self, tables: Mapping[str, Relation] | None = None):
        self._tables: dict[str, Relation] = dict(tables or {})

    def register(self, name: str, relation: Relation) -> None:
        self._tables[name] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def schema(self, name: str) -> Schema:
        return self.get(name).schema

    def schemas(self) -> dict[str, Schema]:
        return {name: rel.schema for name, rel in self._tables.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def replace(self, name: str, relation: Relation) -> "Catalog":
        """Copy of this catalog with one table substituted."""
        out = Catalog(self._tables)
        out.register(name, relation)
        return out
