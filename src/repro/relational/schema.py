"""Schemas and column types for the bag-relational substrate.

A :class:`Schema` is an ordered mapping of column names to
:class:`ColumnType`. Relations in this library are columnar (NumPy-backed),
so the type mostly decides the dtype of the backing array; ``STRING``
columns use object arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype used to back a column of this type."""
        return _DTYPES[self]

    @property
    def byte_width(self) -> int:
        """Approximate storage width in bytes, used by shipped-byte accounting."""
        if self is ColumnType.STRING:
            return 16
        if self is ColumnType.BOOL:
            return 1
        return 8


_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.STRING: np.dtype(object),
    ColumnType.BOOL: np.dtype(bool),
}

#: Python types acceptable as literal values for each column type.
_PYTHON_TYPES = {
    ColumnType.INT: (int, np.integer),
    ColumnType.FLOAT: (int, float, np.integer, np.floating),
    ColumnType.STRING: (str,),
    ColumnType.BOOL: (bool, np.bool_),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


class Schema:
    """An ordered collection of uniquely named columns.

    Schemas are immutable; combinators (:meth:`concat`, :meth:`project`,
    :meth:`rename`) return new schemas.
    """

    def __init__(self, columns: Iterable[Column | tuple[str, ColumnType]]):
        cols: list[Column] = []
        for c in columns:
            if isinstance(c, tuple):
                c = Column(c[0], c[1])
            cols.append(c)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._columns: tuple[Column, ...] = tuple(cols)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(cols)}

    # -- basic accessors ----------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}; have {self.names}") from None

    def index_of(self, name: str) -> int:
        if name not in self._index:
            raise SchemaError(f"no column named {name!r}; have {self.names}")
        return self._index[name]

    def type_of(self, name: str) -> ColumnType:
        return self[name].ctype

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    # -- combinators ---------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self[n] for n in names])

    def concat(self, other: "Schema") -> "Schema":
        """Schema with ``other``'s columns appended; names must stay unique."""
        return Schema(list(self._columns) + list(other._columns))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with columns renamed per ``mapping`` (missing keys kept)."""
        return Schema(
            [Column(mapping.get(c.name, c.name), c.ctype) for c in self._columns]
        )

    def with_prefix(self, prefix: str) -> "Schema":
        """Schema with every column name prefixed by ``prefix``."""
        return Schema([Column(f"{prefix}{c.name}", c.ctype) for c in self._columns])

    # -- validation ----------------------------------------------------------

    def validate_value(self, name: str, value: object) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits column ``name``."""
        ctype = self.type_of(name)
        if not isinstance(value, _PYTHON_TYPES[ctype]):
            raise SchemaError(
                f"value {value!r} of type {type(value).__name__} does not fit "
                f"column {name!r} of type {ctype.value}"
            )

    def row_byte_width(self) -> int:
        """Approximate bytes per row, for state/shipped accounting."""
        return sum(c.ctype.byte_width for c in self._columns)
