"""Columnar relations with real-valued tuple multiplicities.

Implements the generalized bag semantics of the paper's Appendix A: a
relation maps tuples to *real* multiplicities. A multiplicity of ``0``
means "conceptually present but not (yet) seen" — exactly how the paper
describes streamed tuples before their batch arrives — while fractional
multiplicities arise from scaling and bootstrap reweighting.

A :class:`Relation` stores one NumPy array per column plus:

* ``mult`` — the (n,) multiplicity vector, and
* ``trial_mults`` — an optional (n, T) matrix of per-bootstrap-trial
  multiplicities used to piggyback Poissonized bootstrap through the plan
  (Section 7, rewriting step 2). Deterministic/batch execution leaves it
  ``None``.

Columns normally hold plain scalars; in the online engine a column may be
an object array of :class:`~repro.core.values.LineageRef`, which is opaque
to this module.

Storage sidecars (``repro.storage``): a column may additionally carry an
:class:`~repro.storage.columns.EncodedColumn` (dictionary codes + null
mask) in ``encodings`` and/or a
:class:`~repro.storage.lineage.LineageColumn` (structured lineage + ND
bitmask) in ``lineage``. Sidecars describe the *same* rows as the
materialized column and ride through every transformation; they are pure
acceleration structure — dropping one never changes semantics, only
speed. The public constructor (an API boundary) validates shapes and
accepts no sidecars; operator-internal hops use :meth:`_from_parts`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import ColumnType, Schema

if TYPE_CHECKING:
    from repro.storage.columns import EncodedColumn
    from repro.storage.lineage import LineageColumn

Row = dict[str, object]

_NO_SIDECARS: dict = {}

#: Aliasing-observer hook for :meth:`Relation.slice`, installed by the
#: buffer sanitizer (``repro.analysis.sanitize``) via :func:`set_slice_hook`.
#: Called as ``hook(base_relation, view_relation)`` after every slice; the
#: default ``None`` keeps the hot path to a single comparison.
_slice_hook: Callable[["Relation", "Relation"], None] | None = None


def set_slice_hook(hook: Callable[["Relation", "Relation"], None] | None) -> None:
    """Install (or clear, with ``None``) the zero-copy slice observer."""
    global _slice_hook
    _slice_hook = hook


class Relation:
    """An immutable-by-convention columnar bag relation.

    Mutating helpers always return new relations; the backing arrays may be
    shared, so callers must not write into ``columns`` / ``mult`` in place
    (the ENG006 lint enforces this outside ``repro.storage``).
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        mult: np.ndarray | None = None,
        trial_mults: np.ndarray | None = None,
    ):
        self.schema = schema
        self.columns: dict[str, np.ndarray] = {}
        n = None
        for col in schema:
            if col.name not in columns:
                raise SchemaError(f"missing data for column {col.name!r}")
            arr = np.asarray(columns[col.name])
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise SchemaError(
                    f"column {col.name!r} has {len(arr)} rows, expected {n}"
                )
            self.columns[col.name] = arr
        if n is None:
            n = 0
        if mult is None:
            mult = np.ones(n, dtype=np.float64)
        else:
            mult = np.asarray(mult, dtype=np.float64)
            if len(mult) != n:
                raise SchemaError(f"mult has {len(mult)} entries, expected {n}")
        self.mult = mult
        if trial_mults is not None:
            trial_mults = np.asarray(trial_mults, dtype=np.float64)
            if trial_mults.shape[0] != n:
                raise SchemaError(
                    f"trial_mults has {trial_mults.shape[0]} rows, expected {n}"
                )
        self.trial_mults = trial_mults
        self._n = n
        self.encodings: dict[str, "EncodedColumn"] = {}
        self.lineage: dict[str, "LineageColumn"] = {}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        mult: np.ndarray,
        trial_mults: np.ndarray | None = None,
        *,
        encodings: "dict[str, EncodedColumn] | None" = None,
        lineage: "dict[str, LineageColumn] | None" = None,
    ) -> "Relation":
        """Trusted internal constructor for operator-internal hops.

        Skips the per-column ``np.asarray``/length re-validation of
        ``__init__`` — callers pass already-validated ndarrays whose
        lengths match ``mult`` (every transformation below derives its
        outputs from one index operation, so this holds by construction).
        Full validation stays at the API boundary (``__init__``).
        """
        rel = cls.__new__(cls)
        rel.schema = schema
        rel.columns = dict(columns)
        rel.mult = mult
        rel.trial_mults = trial_mults
        rel._n = len(mult)
        rel.encodings = encodings if encodings is not None else _NO_SIDECARS
        rel.lineage = lineage if lineage is not None else _NO_SIDECARS
        return rel

    def _map_sidecars(self, op: str, *args: object) -> dict:
        """Apply one index operation to both sidecar dicts."""
        out: dict = {}
        for field in ("encodings", "lineage"):
            mapped = {
                name: getattr(sc, op)(*args)
                for name, sc in getattr(self, field).items()
            }
            out[field] = mapped if mapped else None
        return out

    @classmethod
    def empty(cls, schema: Schema, num_trials: int | None = None) -> "Relation":
        cols = {c.name: np.empty(0, dtype=c.ctype.dtype) for c in schema}
        trials = None
        if num_trials is not None:
            trials = np.empty((0, num_trials), dtype=np.float64)
        return cls(schema, cols, np.empty(0, dtype=np.float64), trials)

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Sequence[Row],
        mult: Sequence[float] | None = None,
        trial_mults: np.ndarray | None = None,
        validate: bool = False,
    ) -> "Relation":
        """Build a relation from row dictionaries.

        With ``validate=True`` each value is checked against the schema —
        useful in tests and data loading, skipped on hot paths.
        """
        cols: dict[str, np.ndarray] = {}
        for c in schema:
            values = [r[c.name] for r in rows]
            if validate:
                for v in values:
                    schema.validate_value(c.name, v)
            cols[c.name] = np.array(values, dtype=c.ctype.dtype) if rows else np.empty(
                0, dtype=c.ctype.dtype
            )
        m = None if mult is None else np.asarray(mult, dtype=np.float64)
        return cls(schema, cols, m, trial_mults)

    # -- size / iteration -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def num_trials(self) -> int:
        return 0 if self.trial_mults is None else self.trial_mults.shape[1]

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise SchemaError(f"no column named {name!r}; have {self.schema.names}")
        return self.columns[name]

    def row(self, i: int) -> Row:
        return {name: arr[i] for name, arr in self.columns.items()}

    def iter_rows(self) -> Iterator[Row]:
        for i in range(self._n):
            yield self.row(i)

    def total_multiplicity(self) -> float:
        return float(self.mult.sum())

    # -- transformations -------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Relation":
        """Rows where boolean ``mask`` holds (multiplicities preserved)."""
        mask = np.asarray(mask)
        cols = {n: a[mask] for n, a in self.columns.items()}
        trials = None if self.trial_mults is None else self.trial_mults[mask]
        return Relation._from_parts(
            self.schema, cols, self.mult[mask], trials, **self._map_sidecars("take", mask)
        )

    def take(self, indices: np.ndarray) -> "Relation":
        """Rows at ``indices`` (with repetition allowed)."""
        indices = np.asarray(indices)
        cols = {n: a[indices] for n, a in self.columns.items()}
        trials = None if self.trial_mults is None else self.trial_mults[indices]
        return Relation._from_parts(
            self.schema,
            cols,
            self.mult[indices],
            trials,
            **self._map_sidecars("take", indices),
        )

    def slice(self, start: int, stop: int) -> "Relation":
        """Rows ``[start, stop)`` as zero-copy views of the backing buffers.

        Views alias this relation's memory — cheap, but a caller must not
        write into either side's buffers (ENG006 / immutability-by-
        convention; the ContractVerifier fingerprints inputs to catch it).
        """
        cols = {n: a[start:stop] for n, a in self.columns.items()}
        trials = None if self.trial_mults is None else self.trial_mults[start:stop]
        view = Relation._from_parts(
            self.schema,
            cols,
            self.mult[start:stop],
            trials,
            **self._map_sidecars("slice", start, stop),
        )
        if _slice_hook is not None:
            _slice_hook(self, view)
        return view

    def scale(self, factor: float | np.ndarray) -> "Relation":
        """Multiply multiplicities (and trial multiplicities) by ``factor``."""
        trials = self.trial_mults
        if trials is not None:
            if np.ndim(factor) == 0:
                trials = trials * factor
            else:
                trials = trials * np.asarray(factor)[:, None]
        return Relation._from_parts(
            self.schema,
            self.columns,
            self.mult * factor,
            trials,
            encodings=self.encodings or None,
            lineage=self.lineage or None,
        )

    def with_mult(self, mult: np.ndarray, trial_mults: np.ndarray | None) -> "Relation":
        mult = np.asarray(mult, dtype=np.float64)
        if len(mult) != self._n:
            raise SchemaError(f"mult has {len(mult)} entries, expected {self._n}")
        return Relation._from_parts(
            self.schema,
            self.columns,
            mult,
            trial_mults,
            encodings=self.encodings or None,
            lineage=self.lineage or None,
        )

    def project(self, names: Sequence[str]) -> "Relation":
        sub = self.schema.project(names)
        cols = {n: self.columns[n] for n in names}
        return Relation._from_parts(
            sub,
            cols,
            self.mult,
            self.trial_mults,
            encodings={n: e for n, e in self.encodings.items() if n in cols} or None,
            lineage={n: s for n, s in self.lineage.items() if n in cols} or None,
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        schema = self.schema.rename(mapping)
        cols = {mapping.get(n, n): a for n, a in self.columns.items()}
        return Relation._from_parts(
            schema,
            cols,
            self.mult,
            self.trial_mults,
            encodings={mapping.get(n, n): e for n, e in self.encodings.items()} or None,
            lineage={mapping.get(n, n): s for n, s in self.lineage.items()} or None,
        )

    def with_column(self, name: str, ctype: ColumnType, values: np.ndarray) -> "Relation":
        """Relation with an extra column appended."""
        schema = self.schema.concat(Schema([(name, ctype)]))
        cols = dict(self.columns)
        cols[name] = np.asarray(values)
        if len(cols[name]) != self._n:
            raise SchemaError(
                f"column {name!r} has {len(cols[name])} rows, expected {self._n}"
            )
        return Relation._from_parts(
            schema,
            cols,
            self.mult,
            self.trial_mults,
            encodings=self.encodings or None,
            lineage=self.lineage or None,
        )

    def concat(self, other: "Relation") -> "Relation":
        """Bag union with ``other`` (schemas must match exactly)."""
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot concat relations with schemas {self.schema} and {other.schema}"
            )
        if len(other) == 0:
            return self
        if len(self) == 0:
            return other
        cols = {
            n: np.concatenate([self.columns[n], other.columns[n]])
            for n in self.schema.names
        }
        mult = np.concatenate([self.mult, other.mult])
        trials = _concat_trials(self, other)
        encodings: dict = {}
        for n, enc in self.encodings.items():
            other_enc = other.encodings.get(n)
            if other_enc is not None:
                encodings[n] = enc.concat(other_enc)
        lineage: dict = {}
        for n, lin in self.lineage.items():
            other_lin = other.lineage.get(n)
            if other_lin is not None:
                merged = lin.concat(other_lin)
                if merged is not None:
                    lineage[n] = merged
        return Relation._from_parts(
            self.schema,
            cols,
            mult,
            trials,
            encodings=encodings or None,
            lineage=lineage or None,
        )

    # -- grouping helpers -------------------------------------------------------

    def key_tuples(self, names: Sequence[str]) -> list[tuple]:
        """Per-row tuples of the values in key columns ``names``."""
        arrays = [self.columns[n] for n in names]
        return list(zip(*(a.tolist() for a in arrays))) if arrays else [
            () for _ in range(self._n)
        ]

    # -- accounting ---------------------------------------------------------------

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint (columns + mult + trials)."""
        per_row = self.schema.row_byte_width() + 8
        if self.trial_mults is not None:
            per_row += 8 * self.num_trials
        return per_row * self._n

    # -- comparison / display -------------------------------------------------------

    def to_multiset(self, ndigits: int = 6) -> dict[tuple, float]:
        """Collapse into {value-tuple: total multiplicity} for bag comparison."""
        out: dict[tuple, float] = {}
        names = self.schema.names
        for i in range(self._n):
            key = tuple(_round(self.columns[n][i], ndigits) for n in names)
            out[key] = out.get(key, 0.0) + float(self.mult[i])
        return {k: round(v, ndigits) for k, v in out.items() if round(v, ndigits) != 0}

    def bag_equal(self, other: "Relation", ndigits: int = 6) -> bool:
        """Bag equality up to ``10**-ndigits`` — the reference check in tests."""
        if self.schema.names != other.schema.names:
            return False
        if self.to_multiset(ndigits) == other.to_multiset(ndigits):
            return True
        # Rounding both sides can split values that straddle a decimal
        # boundary (50.9715 vs 50.971500000000006 at ndigits=3 round to
        # different keys although they differ by 7e-15), so on mismatch
        # fall back to sorted row matching with an explicit tolerance.
        tol = 10.0**-ndigits
        mine = sorted(
            self.to_multiset(ndigits + 6).items(),
            key=lambda kv: tuple(_sort_key(v) for v in kv[0]),
        )
        theirs = sorted(
            other.to_multiset(ndigits + 6).items(),
            key=lambda kv: tuple(_sort_key(v) for v in kv[0]),
        )
        if len(mine) != len(theirs):
            return False
        for (key_a, mult_a), (key_b, mult_b) in zip(mine, theirs):
            if abs(mult_a - mult_b) > tol:
                return False
            for val_a, val_b in zip(key_a, key_b):
                if isinstance(val_a, float) and isinstance(val_b, float):
                    if abs(val_a - val_b) > tol:
                        return False
                elif val_a != val_b:
                    return False
        return True

    def sort_rows(self, by: Sequence[str] | None = None) -> list[Row]:
        """Materialize rows sorted by ``by`` (all columns if omitted)."""
        by = list(by) if by is not None else self.schema.names
        rows = list(self.iter_rows())
        rows.sort(key=lambda r: tuple(_sort_key(r[c]) for c in by))
        return rows

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, n={self._n}, |D|={self.total_multiplicity():g})"


def _concat_trials(a: Relation, b: Relation) -> np.ndarray | None:
    """Stack trial-multiplicity matrices, padding absent sides with ``mult``.

    A missing matrix means "this side never went through bootstrap
    reweighting", so its per-trial multiplicity equals its actual
    multiplicity in every trial.
    """
    if a.trial_mults is None and b.trial_mults is None:
        return None
    ta, tb = a.trial_mults, b.trial_mults
    # Broadcast views, not materialized copies: vstack below copies anyway.
    if ta is None:
        ta = np.broadcast_to(a.mult[:, None], (len(a.mult), tb.shape[1]))
    if tb is None:
        tb = np.broadcast_to(b.mult[:, None], (len(b.mult), ta.shape[1]))
    if ta.shape[1] != tb.shape[1]:
        raise SchemaError(
            f"cannot concat relations with {ta.shape[1]} and {tb.shape[1]} trials"
        )
    return np.vstack([ta, tb])


def _round(value: object, ndigits: int) -> object:
    if isinstance(value, (float, np.floating)):
        return round(float(value), ndigits)
    if isinstance(value, np.integer):
        return int(value)
    return value


def _sort_key(value: object) -> tuple:
    # Heterogeneous-safe sort key: group by type name, then value.
    if isinstance(value, (int, float, np.integer, np.floating)):
        return ("0num", float(value))
    return (type(value).__name__, str(value))


def relation_from_columns(
    schema: Schema, **columns: Iterable
) -> Relation:
    """Convenience constructor used heavily in tests: column name → values."""
    cols = {
        c.name: np.asarray(list(columns[c.name]), dtype=c.ctype.dtype) for c in schema
    }
    return Relation(schema, cols)


def apply_per_row(
    rel: Relation, fn: Callable[[Row], object], dtype: np.dtype
) -> np.ndarray:
    """Apply ``fn`` to each row dict; returns an array (slow path, small inputs)."""
    out = np.empty(len(rel), dtype=dtype)
    for i in range(len(rel)):
        out[i] = fn(rel.row(i))
    return out
