"""Logical query plans for the positive relational algebra.

The plan language mirrors the paper's Section 3.3: any composition of
SELECT, PROJECT, JOIN (equi/natural), UNION, and AGGREGATE over base-table
scans. Nested subqueries are expressed structurally, exactly as in the
paper's Figure 2(a): a scalar aggregate subquery becomes an AGGREGATE
subplan cross-joined (or, when correlated, key-joined) with the outer
block — the SQL planner performs that lowering automatically.

Plans are immutable trees; nodes offer fluent builders so queries read
top-down::

    plan = (
        scan("sessions", schema)
        .join(scan("sessions", schema).aggregate([], [avg("buffer_time", "ab")]), keys=[])
        .select(col("buffer_time") > col("ab"))
        .aggregate([], [avg("play_time", "apt")])
    )
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Sequence

from repro.errors import PlanError
from repro.relational.aggregates import AggSpec
from repro.relational.expressions import Expression, lift
from repro.relational.schema import Column, ColumnType, Schema

#: Catalog schemas: table name → schema, used for schema inference.
CatalogSchemas = dict[str, Schema]

_node_ids = itertools.count()


class PlanNode:
    """Base class of logical plan nodes."""

    def __init__(self) -> None:
        #: Stable id used by the online rewriter to key operator state.
        self.node_id = next(_node_ids)

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def base_tables(self) -> set[str]:
        return {n.table for n in self.walk() if isinstance(n, Scan)}

    # -- fluent builders -------------------------------------------------------

    def select(self, predicate: Expression) -> "Select":
        return Select(self, predicate)

    def project(self, outputs: Sequence[tuple[str, Expression | str]]) -> "Project":
        return Project(self, outputs)

    def join(
        self, other: "PlanNode", keys: Sequence[tuple[str, str] | str] = ()
    ) -> "Join":
        return Join(self, other, keys)

    def union(self, other: "PlanNode") -> "Union":
        return Union(self, other)

    def rename(self, mapping: dict[str, str]) -> "Rename":
        return Rename(self, mapping)

    def distinct(self, columns: Sequence[str]) -> "Distinct":
        return Distinct(self, columns)

    def aggregate(
        self, group_by: Sequence[str], aggs: Sequence[AggSpec]
    ) -> "Aggregate":
        return Aggregate(self, group_by, aggs)

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line plan rendering (used in docs and debugging)."""
        head = "  " * indent + self._describe_line()
        lines = [head]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_line(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.node_id}>"


class Scan(PlanNode):
    """Read a base table from the catalog."""

    def __init__(self, table: str, schema: Schema):
        super().__init__()
        self.table = table
        self.schema = schema

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        return self.schema

    def _describe_line(self) -> str:
        return f"Scan({self.table})"


def scan(table: str, schema: Schema) -> Scan:
    return Scan(table, schema)


class Select(PlanNode):
    """Filter rows by a boolean predicate (σ)."""

    def __init__(self, child: PlanNode, predicate: Expression):
        super().__init__()
        self.child = child
        self.predicate = lift(predicate)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        schema = self.child.output_schema(catalog)
        missing = self.predicate.attrs() - set(schema.names)
        if missing:
            raise PlanError(
                f"select predicate references missing columns {sorted(missing)}"
            )
        return schema

    def _describe_line(self) -> str:
        return f"Select({self.predicate!r})"


class Project(PlanNode):
    """SQL-style projection without duplicate elimination (π)."""

    def __init__(self, child: PlanNode, outputs: Sequence[tuple[str, Expression | str]]):
        super().__init__()
        self.child = child
        self.outputs: list[tuple[str, Expression]] = []
        for name, expr in outputs:
            if isinstance(expr, str):
                from repro.relational.expressions import Col

                expr = Col(expr)
            self.outputs.append((name, lift(expr)))
        if not self.outputs:
            raise PlanError("projection must keep at least one column")

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        schema = self.child.output_schema(catalog)
        cols = []
        for name, expr in self.outputs:
            missing = expr.attrs() - set(schema.names)
            if missing:
                raise PlanError(
                    f"projection {name!r} references missing columns {sorted(missing)}"
                )
            cols.append(Column(name, expr.output_type(schema)))
        return Schema(cols)

    def _describe_line(self) -> str:
        parts = ", ".join(name for name, _ in self.outputs)
        return f"Project({parts})"


class Join(PlanNode):
    """Equi-join (keys given) or cross join (no keys).

    Key columns of the right input are dropped from the output (their
    values equal the left's), which also makes same-named natural joins
    well-formed. Any other name collision is a planning error — rename
    first.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        keys: Sequence[tuple[str, str] | str] = (),
    ):
        super().__init__()
        self.left = left
        self.right = right
        self.keys: list[tuple[str, str]] = [
            (k, k) if isinstance(k, str) else (k[0], k[1]) for k in keys
        ]

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    @property
    def left_keys(self) -> list[str]:
        return [lk for lk, _ in self.keys]

    @property
    def right_keys(self) -> list[str]:
        return [rk for _, rk in self.keys]

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        ls = self.left.output_schema(catalog)
        rs = self.right.output_schema(catalog)
        for lk, rk in self.keys:
            if lk not in ls:
                raise PlanError(f"left join key {lk!r} not in {ls.names}")
            if rk not in rs:
                raise PlanError(f"right join key {rk!r} not in {rs.names}")
            if ls.type_of(lk) is not rs.type_of(rk):
                raise PlanError(
                    f"join key type mismatch: {lk}:{ls.type_of(lk).value} vs "
                    f"{rk}:{rs.type_of(rk).value}"
                )
        kept_right = [c for c in rs if c.name not in self.right_keys]
        clash = {c.name for c in kept_right} & set(ls.names)
        if clash:
            raise PlanError(
                f"join would duplicate columns {sorted(clash)}; rename one side"
            )
        return Schema(list(ls.columns) + kept_right)

    def _describe_line(self) -> str:
        if not self.keys:
            return "Join(cross)"
        keys = ", ".join(f"{lk}={rk}" for lk, rk in self.keys)
        return f"Join({keys})"


class Union(PlanNode):
    """Bag union without duplicate elimination (∪)."""

    def __init__(self, left: PlanNode, right: PlanNode):
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        ls = self.left.output_schema(catalog)
        rs = self.right.output_schema(catalog)
        if ls != rs:
            raise PlanError(f"union schema mismatch: {ls} vs {rs}")
        return ls

    def _describe_line(self) -> str:
        return "Union"


class Aggregate(PlanNode):
    """Group-by aggregation (γ). ``group_by=[]`` yields a single scalar row."""

    def __init__(self, child: PlanNode, group_by: Sequence[str], aggs: Sequence[AggSpec]):
        super().__init__()
        self.child = child
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        if not self.aggs:
            raise PlanError("aggregate must compute at least one function")
        names = self.group_by + [a.name for a in self.aggs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output names in aggregate: {names}")

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        schema = self.child.output_schema(catalog)
        cols = []
        for g in self.group_by:
            cols.append(schema[g])
        for a in self.aggs:
            missing = a.attrs() - set(schema.names)
            if missing:
                raise PlanError(
                    f"aggregate {a.name!r} references missing columns {sorted(missing)}"
                )
            cols.append(Column(a.name, a.func.output_type))
        return Schema(cols)

    def _describe_line(self) -> str:
        aggs = ", ".join(f"{a.name}={a.func.name}" for a in self.aggs)
        if self.group_by:
            return f"Aggregate(by={self.group_by}, {aggs})"
        return f"Aggregate(scalar, {aggs})"


class Rename(PlanNode):
    """Rename columns — a projection specialization kept explicit for joins."""

    def __init__(self, child: PlanNode, mapping: dict[str, str]):
        super().__init__()
        self.child = child
        self.mapping = dict(mapping)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        schema = self.child.output_schema(catalog)
        missing = set(self.mapping) - set(schema.names)
        if missing:
            raise PlanError(f"rename of missing columns {sorted(missing)}")
        return schema.rename(self.mapping)

    def _describe_line(self) -> str:
        return f"Rename({self.mapping})"


class Distinct(PlanNode):
    """Duplicate elimination over a set of columns.

    Expressed in the paper via AGGREGATE; kept as an explicit node because
    the SQL planner uses it for IN-subquery semi-joins. The evaluator and
    rewriter lower it to a COUNT aggregate followed by a projection.
    """

    def __init__(self, child: PlanNode, columns: Sequence[str]):
        super().__init__()
        self.child = child
        self.columns = list(columns)
        if not self.columns:
            raise PlanError("distinct requires at least one column")

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def output_schema(self, catalog: CatalogSchemas) -> Schema:
        return self.child.output_schema(catalog).project(self.columns)

    def _describe_line(self) -> str:
        return f"Distinct({self.columns})"


def transform(
    node: PlanNode, fn: Callable[[PlanNode], PlanNode | None]
) -> PlanNode:
    """Bottom-up plan rewriting: rebuild children, then let ``fn`` replace.

    ``fn`` returns a replacement node or ``None`` to keep the (rebuilt)
    node. Used by the HDA viewlet rewrites (Appendix B) and plan
    normalization.
    """
    rebuilt: PlanNode
    if isinstance(node, Scan):
        rebuilt = node
    elif isinstance(node, Select):
        rebuilt = Select(transform(node.child, fn), node.predicate)
    elif isinstance(node, Project):
        rebuilt = Project(transform(node.child, fn), node.outputs)
    elif isinstance(node, Join):
        rebuilt = Join(transform(node.left, fn), transform(node.right, fn), node.keys)
    elif isinstance(node, Union):
        rebuilt = Union(transform(node.left, fn), transform(node.right, fn))
    elif isinstance(node, Aggregate):
        rebuilt = Aggregate(transform(node.child, fn), node.group_by, node.aggs)
    elif isinstance(node, Rename):
        rebuilt = Rename(transform(node.child, fn), node.mapping)
    elif isinstance(node, Distinct):
        rebuilt = Distinct(transform(node.child, fn), node.columns)
    else:  # pragma: no cover - future node types
        raise PlanError(f"unknown plan node {type(node).__name__}")
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement
