"""Reference batch evaluator for logical plans.

This is the "traditional OLAP engine" of the paper's experiments (the
*baseline*): it evaluates a plan bottom-up over full relations with bag
semantics. It is also the correctness oracle for the online engine — at
the final mini-batch, iOLAP must deliver exactly what this evaluator
computes on the whole dataset (Theorem 1).

The evaluator threads an :class:`EvalStats` accumulator that models the
cost accounting of a distributed engine: rows processed per operator and
bytes "shipped" across shuffle boundaries (joins, aggregations), which
back the paper's Figure 9(b)/(c) comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError
from repro.relational.aggregates import AggSpec
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.catalog import Catalog
from repro.relational.groupby import group_ids, weighted_sums
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


@dataclass
class EvalStats:
    """Cost counters accumulated during evaluation."""

    rows_processed: int = 0
    bytes_shipped: int = 0
    rows_by_operator: dict[str, int] = field(default_factory=dict)

    def record(self, op_name: str, rows: int) -> None:
        self.rows_processed += rows
        self.rows_by_operator[op_name] = self.rows_by_operator.get(op_name, 0) + rows

    def record_shipped(self, rel: Relation) -> None:
        self.bytes_shipped += rel.estimated_bytes()


def evaluate(
    plan: PlanNode, catalog: Catalog, stats: EvalStats | None = None
) -> Relation:
    """Evaluate ``plan`` over ``catalog``, returning the result relation."""
    stats = stats if stats is not None else EvalStats()
    return _eval(plan, catalog, stats)


def _eval(node: PlanNode, catalog: Catalog, stats: EvalStats) -> Relation:
    if isinstance(node, Scan):
        rel = catalog.get(node.table)
        stats.record("scan", len(rel))
        return rel
    if isinstance(node, Select):
        child = _eval(node.child, catalog, stats)
        stats.record("select", len(child))
        mask = np.asarray(node.predicate.evaluate(child), dtype=bool)
        return child.filter(mask)
    if isinstance(node, Project):
        child = _eval(node.child, catalog, stats)
        stats.record("project", len(child))
        return project_relation(child, node)
    if isinstance(node, Rename):
        child = _eval(node.child, catalog, stats)
        return child.rename(node.mapping)
    if isinstance(node, Join):
        left = _eval(node.left, catalog, stats)
        right = _eval(node.right, catalog, stats)
        stats.record("join", len(left) + len(right))
        stats.record_shipped(left)
        stats.record_shipped(right)
        return join_relations(left, right, node.keys)
    if isinstance(node, Union):
        left = _eval(node.left, catalog, stats)
        right = _eval(node.right, catalog, stats)
        stats.record("union", len(left) + len(right))
        return left.concat(right)
    if isinstance(node, Aggregate):
        child = _eval(node.child, catalog, stats)
        stats.record("aggregate", len(child))
        stats.record_shipped(child)
        return aggregate_relation(child, node.group_by, node.aggs)
    if isinstance(node, Distinct):
        child = _eval(node.child, catalog, stats)
        stats.record("distinct", len(child))
        return distinct_relation(child, node.columns)
    raise PlanError(f"cannot evaluate plan node {type(node).__name__}")


# -- operator kernels (shared with baselines) -----------------------------------


def project_relation(rel: Relation, node: Project) -> Relation:
    schema = node.output_schema({})
    cols = {}
    for (name, expr), column in zip(node.outputs, schema):
        values = expr.evaluate(rel)
        cols[name] = np.asarray(values, dtype=column.ctype.dtype)
    return Relation(schema, cols, rel.mult, rel.trial_mults)


def join_relations(
    left: Relation, right: Relation, keys: list[tuple[str, str]]
) -> Relation:
    """Hash equi-join (or cross join when ``keys`` is empty).

    Output multiplicity is the product of input multiplicities
    (Appendix A); trial multiplicities multiply the same way, which is what
    lets Poissonized bootstrap ride through joins.
    """
    if not keys:
        li = np.repeat(np.arange(len(left)), len(right))
        ri = np.tile(np.arange(len(right)), len(left))
    else:
        lkeys = [lk for lk, _ in keys]
        rkeys = [rk for _, rk in keys]
        index: dict[tuple, list[int]] = {}
        for j, key in enumerate(right.key_tuples(rkeys)):
            index.setdefault(key, []).append(j)
        li_list: list[int] = []
        ri_list: list[int] = []
        for i, key in enumerate(left.key_tuples(lkeys)):
            for j in index.get(key, ()):
                li_list.append(i)
                ri_list.append(j)
        li = np.asarray(li_list, dtype=np.intp)
        ri = np.asarray(ri_list, dtype=np.intp)

    drop = {rk for _, rk in keys}
    kept_right = [c for c in right.schema if c.name not in drop]
    schema = Schema(list(left.schema.columns) + kept_right)
    cols: dict[str, np.ndarray] = {}
    for c in left.schema:
        cols[c.name] = left.columns[c.name][li]
    for c in kept_right:
        cols[c.name] = right.columns[c.name][ri]
    mult = left.mult[li] * right.mult[ri]
    trials = _join_trials(left, right, li, ri)
    return Relation(schema, cols, mult, trials)


def _join_trials(
    left: Relation, right: Relation, li: np.ndarray, ri: np.ndarray
) -> np.ndarray | None:
    if left.trial_mults is None and right.trial_mults is None:
        return None
    lt = left.trial_mults[li] if left.trial_mults is not None else left.mult[li][:, None]
    rt = (
        right.trial_mults[ri]
        if right.trial_mults is not None
        else right.mult[ri][:, None]
    )
    return lt * rt


def aggregate_relation(
    rel: Relation, group_by: list[str], aggs: list[AggSpec]
) -> Relation:
    """Weighted group-by aggregation over a relation."""
    keys, gids = group_ids(rel, group_by)
    num_groups = len(keys)
    if len(rel) == 0 and group_by:
        num_groups = 0
        keys = []

    cols: dict[str, np.ndarray] = {}
    out_schema_cols = []
    for gi, name in enumerate(group_by):
        ctype = rel.schema.type_of(name)
        out_schema_cols.append((name, ctype))
        cols[name] = np.array([k[gi] for k in keys], dtype=ctype.dtype)

    weight = np.bincount(gids, weights=rel.mult, minlength=num_groups) if num_groups else np.zeros(0)
    for spec in aggs:
        out_schema_cols.append((spec.name, spec.func.output_type))
        values = spec.arg_values(rel)
        if spec.func.decomposable:
            feats = spec.func.features(values if values is not None else np.zeros(len(rel)))
            sums = weighted_sums(feats, rel.mult, gids, num_groups)
            cols[spec.name] = np.asarray(
                spec.func.finalize(sums, weight), dtype=np.float64
            )
        else:
            results = np.empty(num_groups, dtype=np.float64)
            for g in range(num_groups):
                in_group = gids == g
                vals = values[in_group] if values is not None else np.zeros(in_group.sum())
                results[g] = spec.func.compute(vals, rel.mult[in_group])
            cols[spec.name] = results

    schema = Schema(out_schema_cols)
    return Relation(schema, cols, np.ones(num_groups, dtype=np.float64))


def distinct_relation(rel: Relation, columns: list[str]) -> Relation:
    """Distinct values of ``columns`` among rows with positive multiplicity."""
    live = rel.filter(rel.mult > 0)
    keys, _ = group_ids(live, columns)
    schema = rel.schema.project(columns)
    cols = {
        name: np.array([k[i] for k in keys], dtype=schema.type_of(name).dtype)
        for i, name in enumerate(columns)
    }
    return Relation(schema, cols, np.ones(len(keys), dtype=np.float64))
