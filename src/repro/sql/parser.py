"""Recursive-descent parser for the SQL subset.

Grammar (roughly)::

    select    := SELECT [DISTINCT] item (',' item)*
                 FROM tableref (',' tableref)*
                 (JOIN tableref ON condition)*
                 [WHERE condition] [GROUP BY colref (',' colref)*]
                 [HAVING condition]
    item      := expr [AS ident] | '*'
    condition := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [cmp additive | [NOT] IN '(' ... ')'
                 | BETWEEN additive AND additive]
    additive  := multiplicative (('+'|'-') multiplicative)*
    mult      := primary (('*'|'/'|'%') primary)*
    primary   := number | string | TRUE | FALSE | colref | func '(' args ')'
                 | '(' select ')' | '(' condition ')'
"""

from __future__ import annotations

from repro.errors import SQLError
from repro.sql.ast import (
    Between,
    BinaryOp,
    BoolLit,
    BoolOp,
    ColumnRef,
    ExplicitJoin,
    FuncCall,
    InList,
    InSubquery,
    NotOp,
    NumberLit,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    SqlExpr,
    StringLit,
    TableRef,
)
from repro.sql.lexer import Token, tokenize

_CMP_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(text))
    stmt = parser.select_statement()
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def accept_kw(self, word: str) -> bool:
        if self.cur.is_kw(word):
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            raise SQLError(f"expected {word} at position {self.cur.pos}, got {self.cur.value!r}")

    def accept_op(self, op: str) -> bool:
        if self.cur.is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLError(f"expected {op!r} at position {self.cur.pos}, got {self.cur.value!r}")

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            raise SQLError(
                f"expected identifier at position {self.cur.pos}, got {self.cur.value!r}"
            )
        return self.advance().value

    def expect_eof(self) -> None:
        if self.cur.kind != "eof":
            raise SQLError(f"unexpected trailing input at position {self.cur.pos}")

    # -- grammar ---------------------------------------------------------------------

    def select_statement(self) -> SelectStatement:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT")
        items = [self.select_item()]
        while self.accept_op(","):
            items.append(self.select_item())

        self.expect_kw("FROM")
        tables = [self.table_ref()]
        while self.accept_op(","):
            tables.append(self.table_ref())
        joins = []
        while self.accept_kw("JOIN"):
            table = self.table_ref()
            self.expect_kw("ON")
            joins.append(ExplicitJoin(table, self.condition()))

        where = self.condition() if self.accept_kw("WHERE") else None
        group_by: list[ColumnRef] = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.column_ref())
            while self.accept_op(","):
                group_by.append(self.column_ref())
        having = self.condition() if self.accept_kw("HAVING") else None
        return SelectStatement(
            items, tables, joins, where, group_by, having, distinct
        )

    def select_item(self) -> SelectItem:
        expr = self.condition()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.kind == "ident":
            alias = self.advance().value
        return TableRef(name, alias)

    def column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_op("."):
            return ColumnRef(self.expect_ident(), table=first)
        return ColumnRef(first)

    # expressions ----------------------------------------------------------------------

    def condition(self) -> SqlExpr:
        return self.or_expr()

    def or_expr(self) -> SqlExpr:
        left = self.and_expr()
        while self.accept_kw("OR"):
            left = BoolOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> SqlExpr:
        left = self.not_expr()
        while self.accept_kw("AND"):
            left = BoolOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> SqlExpr:
        if self.accept_kw("NOT"):
            return NotOp(self.not_expr())
        return self.predicate()

    def predicate(self) -> SqlExpr:
        left = self.additive()
        negated = False
        if self.cur.is_kw("NOT"):
            save = self.pos
            self.advance()
            if self.cur.is_kw("IN"):
                negated = True
            else:
                self.pos = save
        if self.accept_kw("IN"):
            self.expect_op("(")
            if self.cur.is_kw("SELECT"):
                sub = self.select_statement()
                self.expect_op(")")
                return InSubquery(left, sub, negated)
            values = [self.additive()]
            while self.accept_op(","):
                values.append(self.additive())
            self.expect_op(")")
            return InList(left, values, negated)
        if self.accept_kw("BETWEEN"):
            low = self.additive()
            self.expect_kw("AND")
            return Between(left, low, self.additive())
        for op in sorted(_CMP_OPS, key=len, reverse=True):
            if self.cur.is_op(op):
                self.advance()
                return BinaryOp(op, left, self.additive())
        return left

    def additive(self) -> SqlExpr:
        left = self.multiplicative()
        while True:
            if self.accept_op("+"):
                left = BinaryOp("+", left, self.multiplicative())
            elif self.accept_op("-"):
                left = BinaryOp("-", left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> SqlExpr:
        left = self.unary()
        while True:
            if self.accept_op("*"):
                left = BinaryOp("*", left, self.unary())
            elif self.accept_op("/"):
                left = BinaryOp("/", left, self.unary())
            elif self.accept_op("%"):
                left = BinaryOp("%", left, self.unary())
            else:
                return left

    def unary(self) -> SqlExpr:
        if self.accept_op("-"):
            return BinaryOp("-", NumberLit(0), self.unary())
        return self.primary()

    def primary(self) -> SqlExpr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            text = tok.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return NumberLit(value)
        if tok.kind == "string":
            self.advance()
            return StringLit(tok.value)
        if tok.is_kw("TRUE"):
            self.advance()
            return BoolLit(True)
        if tok.is_kw("FALSE"):
            self.advance()
            return BoolLit(False)
        if tok.is_op("("):
            self.advance()
            if self.cur.is_kw("SELECT"):
                sub = self.select_statement()
                self.expect_op(")")
                return ScalarSubquery(sub)
            inner = self.condition()
            self.expect_op(")")
            return inner
        if tok.kind == "ident":
            name = self.advance().value
            if self.accept_op("("):
                if self.accept_op("*"):
                    self.expect_op(")")
                    return FuncCall(name.lower(), [], star=True)
                if self.accept_op(")"):
                    return FuncCall(name.lower(), [])
                args = [self.condition()]
                while self.accept_op(","):
                    args.append(self.condition())
                self.expect_op(")")
                return FuncCall(name.lower(), args)
            if self.accept_op("."):
                return ColumnRef(self.expect_ident(), table=name)
            return ColumnRef(name)
        raise SQLError(f"unexpected token {tok.value!r} at position {tok.pos}")
