"""SQL front-end for the supported SPJA + nested-subquery subset."""

from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse
from repro.sql.planner import SQLPlanner, UDF, plan_sql

__all__ = ["SQLPlanner", "Token", "UDF", "parse", "plan_sql", "tokenize"]
