"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS", "AND", "OR",
    "NOT", "IN", "JOIN", "ON", "BETWEEN", "DISTINCT", "UNION", "ALL", "TRUE",
    "FALSE",
}

#: Multi- and single-character operators, longest first.
OPERATORS = ["<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", "."]


@dataclass(frozen=True)
class Token:
    kind: str  # 'kw' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    value: str
    pos: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.value == op


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; raises :class:`SQLError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    while k < n and text[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise SQLError(f"unterminated string literal at position {i}")
            tokens.append(Token("string", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("kw", word.upper(), i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SQLError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
