"""Lowering SQL statements to logical plans.

The planner implements the rewrites the paper's examples assume:

* FROM/WHERE equality predicates become equi-joins (left-deep);
* an uncorrelated scalar aggregate subquery becomes a scalar AGGREGATE
  subplan cross-joined with the outer block (the paper's Figure 2(a));
* a correlated scalar aggregate subquery (correlated through equality
  predicates) becomes a grouped AGGREGATE joined on the correlation keys;
* ``x IN (SELECT k ... [GROUP BY/HAVING])`` becomes a semi-join against
  the DISTINCT membership view;
* GROUP BY / HAVING / post-aggregation expressions become
  AGGREGATE → SELECT → PROJECT.

Name scoping: columns may be qualified by table alias. When two joined
inputs would collide on a non-key column, the right side's column is
renamed ``<binding>_<column>`` automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SQLError
from repro.relational.aggregates import AGG_FUNCTIONS, AggSpec, Count
from repro.relational.algebra import Aggregate, Distinct, PlanNode, Rename, Scan
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Expression,
    Func,
    InList as EngineInList,
    Literal,
    Not,
    Or,
    conjoin,
)
from repro.relational.schema import ColumnType, Schema
from repro.sql import ast
from repro.sql.parser import parse

_fresh = itertools.count()


@dataclass
class UDF:
    """A registered scalar user-defined function."""

    fn: Callable
    out_type: ColumnType = ColumnType.FLOAT
    vectorized: bool = False


@dataclass
class _Scope:
    """Column resolution scope: binding → physical column names."""

    #: (binding, column) -> physical column name in the current plan
    qualified: dict[tuple[str, str], str] = field(default_factory=dict)
    #: column -> physical name, or None when ambiguous
    unqualified: dict[str, str | None] = field(default_factory=dict)
    parent: "_Scope | None" = None
    #: correlated references collected while planning a subquery:
    #: (outer physical column) per use.
    correlated_uses: list[str] = field(default_factory=list)

    def add(self, binding: str, column: str, physical: str) -> None:
        self.qualified[(binding, column)] = physical
        if column in self.unqualified and self.unqualified[column] != physical:
            self.unqualified[column] = None
        else:
            self.unqualified[column] = physical

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, bool]:
        """Resolve to a physical name; returns (name, is_correlated)."""
        local = self._resolve_local(ref)
        if local is not None:
            return local, False
        if self.parent is not None:
            name, _ = self.parent.resolve(ref)
            self.correlated_uses.append(name)
            return name, True
        raise SQLError(f"unknown column {ref!r}")

    def _resolve_local(self, ref: ast.ColumnRef) -> str | None:
        if ref.table is not None:
            return self.qualified.get((ref.table, ref.name))
        if ref.name in self.unqualified:
            name = self.unqualified[ref.name]
            if name is None:
                raise SQLError(f"ambiguous column {ref.name!r}; qualify it")
            return name
        return None


class SQLPlanner:
    """Plans parsed SQL statements against a catalog of schemas."""

    def __init__(
        self,
        schemas: dict[str, Schema],
        udfs: dict[str, UDF] | None = None,
    ):
        self.schemas = schemas
        self.udfs = udfs or {}

    def plan_sql(self, text: str) -> PlanNode:
        return self.plan(parse(text))

    def plan(self, stmt: ast.SelectStatement, outer: _Scope | None = None) -> PlanNode:
        scope = _Scope(parent=outer)
        where_conjuncts = _conjuncts(stmt.where) if stmt.where else []
        join_eqs, subquery_preds, filters = self._split_where(where_conjuncts)
        plan, leftover_eqs = self._plan_from(stmt, scope, join_eqs)
        filters = leftover_eqs + filters

        # Subquery predicates add joins to the plan, then become filters.
        for pred in subquery_preds:
            plan, rewritten = self._plan_subquery_predicate(plan, pred, scope)
            if rewritten is not None:
                filters.append(rewritten)

        if filters:
            plan = plan.select(conjoin([self._expr(f, scope) for f in filters]))

        plan = self._plan_aggregation(plan, stmt, scope)
        if stmt.distinct:
            plan = Distinct(plan, [self._item_name(it, i) for i, it in enumerate(stmt.items)])
        return plan

    # -- FROM clause -------------------------------------------------------------------

    def _plan_from(
        self,
        stmt: ast.SelectStatement,
        scope: _Scope,
        join_eqs: list[ast.BinaryOp],
    ) -> tuple[PlanNode, list[ast.SqlExpr]]:
        """Left-deep join of the FROM list, consuming WHERE equalities
        that connect each new table to the tables already planned. Unused
        equalities are returned to become ordinary filters (e.g. the
        dimension-dimension equality of TPC-H Q5)."""
        remaining = list(join_eqs)
        plan: PlanNode | None = None
        for table in stmt.tables:
            keys: list[tuple[str, str]] = []
            if plan is not None:
                keys, remaining = self._keys_for(table, remaining, scope)
            plan = self._join_table(plan, table, scope, keys=keys)
        for join in stmt.joins:
            keys = self._explicit_join_keys(join, scope)
            plan = self._join_table(plan, join.table, scope, keys=keys)
        assert plan is not None
        return plan, remaining

    def _keys_for(
        self,
        table: ast.TableRef,
        eqs: list[ast.BinaryOp],
        scope: _Scope,
    ) -> tuple[list[tuple[str, str]], list[ast.BinaryOp]]:
        schema = self.schemas.get(table.name)
        if schema is None:
            raise SQLError(f"unknown table {table.name!r}")
        keys: list[tuple[str, str]] = []
        leftover: list[ast.BinaryOp] = []
        for eq in eqs:
            pair = self._link(eq, table, schema, scope)
            if pair is None:
                leftover.append(eq)
            else:
                keys.append(pair)
        return keys, leftover

    def _link(
        self,
        eq: ast.BinaryOp,
        table: ast.TableRef,
        schema,
        scope: _Scope,
    ) -> tuple[str, str] | None:
        """Match ``planned.col = newtable.col`` (either orientation)."""

        def binds_new(ref: ast.ColumnRef) -> bool:
            if ref.table is not None:
                return ref.table == table.binding and ref.name in schema
            return ref.name in schema and scope._resolve_local(ref) is None

        left, right = eq.left, eq.right
        if binds_new(right) and not binds_new(left):
            inner, outer = right, left
        elif binds_new(left) and not binds_new(right):
            inner, outer = left, right
        else:
            return None
        resolved = scope._resolve_local(outer)
        if resolved is None:
            return None
        return resolved, inner.name

    def _join_table(
        self,
        plan: PlanNode | None,
        table: ast.TableRef,
        scope: _Scope,
        keys: list[tuple[str, str]],
        pending: ast.ExplicitJoin | None = None,
    ) -> PlanNode:
        if table.name not in self.schemas:
            raise SQLError(f"unknown table {table.name!r}")
        schema = self.schemas[table.name]
        node: PlanNode = Scan(table.name, schema)
        if plan is None:
            for column in schema.names:
                scope.add(table.binding, column, column)
            return node
        # Rename collisions on the incoming side (except join key columns,
        # which the join will drop anyway).
        existing = {p for p in scope.unqualified}
        mapping = {}
        key_cols = {rk for _, rk in keys}
        for column in schema.names:
            if column in existing and column not in key_cols:
                mapping[column] = f"{table.binding}_{column}"
        if mapping:
            node = Rename(node, mapping)
        for column in schema.names:
            if column in key_cols:
                continue
            scope.add(table.binding, column, mapping.get(column, column))
        for lk, rk in keys:
            scope.add(table.binding, rk, lk)
        return plan.join(node, keys=keys)

    def _explicit_join_keys(
        self, join: ast.ExplicitJoin, scope: _Scope
    ) -> list[tuple[str, str]]:
        keys = []
        for conj in _conjuncts(join.condition):
            if not (
                isinstance(conj, ast.BinaryOp)
                and conj.op == "="
                and isinstance(conj.left, ast.ColumnRef)
                and isinstance(conj.right, ast.ColumnRef)
            ):
                raise SQLError("JOIN ... ON supports only column equalities")
            left, right = conj.left, conj.right
            # The new table's column is whichever side binds to it.
            if right.table == join.table.binding or (
                right.table is None and right.name in self.schemas[join.table.name]
            ):
                outer_ref, inner_ref = left, right
            else:
                outer_ref, inner_ref = right, left
            outer_name, _ = scope.resolve(outer_ref)
            keys.append((outer_name, inner_ref.name))
        return keys

    # -- WHERE clause ----------------------------------------------------------------------

    def _split_where(
        self, conjuncts: list[ast.SqlExpr]
    ) -> tuple[list[ast.BinaryOp], list[ast.SqlExpr], list[ast.SqlExpr]]:
        join_eqs: list[ast.BinaryOp] = []
        subqueries: list[ast.SqlExpr] = []
        filters: list[ast.SqlExpr] = []
        for conj in conjuncts:
            if _contains_subquery(conj):
                subqueries.append(conj)
            elif (
                isinstance(conj, ast.BinaryOp)
                and conj.op == "="
                and isinstance(conj.left, ast.ColumnRef)
                and isinstance(conj.right, ast.ColumnRef)
            ):
                join_eqs.append(conj)
            else:
                filters.append(conj)
        return join_eqs, subqueries, filters

    # -- subqueries -------------------------------------------------------------------------

    def _plan_subquery_predicate(
        self, plan: PlanNode, pred: ast.SqlExpr, scope: _Scope
    ) -> tuple[PlanNode, ast.SqlExpr | None]:
        if isinstance(pred, ast.InSubquery):
            if pred.negated:
                raise SQLError(
                    "NOT IN (subquery) needs set difference, which is outside "
                    "the positive algebra the engine supports"
                )
            if not isinstance(pred.child, ast.ColumnRef):
                raise SQLError("IN (subquery) requires a plain column on the left")
            outer_col, _ = scope.resolve(pred.child)
            sub_plan, out_col = self._plan_membership(pred.query, scope)
            alias = f"__in{next(_fresh)}"
            sub_plan = Rename(sub_plan, {out_col: alias})
            return plan.join(sub_plan, keys=[(outer_col, alias)]), None

        # Scalar subqueries may be nested anywhere inside the predicate
        # expression (e.g. ``quantity < 0.7 * (SELECT AVG ...)``): attach
        # each one as a join and substitute a column reference in place.
        plan, rewritten = self._replace_scalar_subqueries(plan, pred, scope)
        return plan, rewritten

    def _replace_scalar_subqueries(
        self, plan: PlanNode, expr: ast.SqlExpr, scope: _Scope
    ) -> tuple[PlanNode, ast.SqlExpr]:
        if isinstance(expr, ast.ScalarSubquery):
            return self._attach_scalar_subquery(plan, expr.query, scope)
        if isinstance(expr, ast.InSubquery):
            raise SQLError(
                "IN (subquery) must be a top-level WHERE conjunct"
            )
        for attr in ("left", "right", "child", "low", "high"):
            if hasattr(expr, attr):
                plan, replaced = self._replace_scalar_subqueries(
                    plan, getattr(expr, attr), scope
                )
                setattr(expr, attr, replaced)
        if isinstance(expr, ast.FuncCall):
            new_args = []
            for arg in expr.args:
                plan, replaced = self._replace_scalar_subqueries(plan, arg, scope)
                new_args.append(replaced)
            expr.args = new_args
        return plan, expr

    def _attach_scalar_subquery(
        self, plan: PlanNode, sub: ast.SelectStatement, scope: _Scope
    ) -> tuple[PlanNode, ast.ColumnRef]:
        """Decorrelate and join a scalar aggregate subquery; returns the
        column reference standing in for its value."""
        if len(sub.items) != 1:
            raise SQLError("scalar subquery must select exactly one expression")
        # Pull correlation equalities out of the subquery's WHERE.
        sub_scope = _Scope(parent=scope)
        inner_tables = {t.binding for t in sub.tables}
        corr_keys: list[tuple[str, str]] = []  # (outer physical, inner column)
        remaining: list[ast.SqlExpr] = []
        for conj in _conjuncts(sub.where) if sub.where else []:
            pair = self._correlation_pair(conj, inner_tables, scope)
            if pair is not None:
                corr_keys.append(pair)
            else:
                remaining.append(conj)
        inner_stmt = ast.SelectStatement(
            items=sub.items,
            tables=sub.tables,
            joins=sub.joins,
            where=_conjoin_ast(remaining),
            group_by=[ast.ColumnRef(ic) for _, ic in corr_keys],
            having=sub.having,
        )
        value_alias = f"__sub{next(_fresh)}"
        inner_stmt.items = [ast.SelectItem(sub.items[0].expr, value_alias)] + [
            ast.SelectItem(ast.ColumnRef(ic), ic) for _, ic in corr_keys
        ]
        inner_plan = self.plan(inner_stmt, outer=scope)
        if corr_keys:
            mapping = {ic: f"__ck{next(_fresh)}_{ic}" for _, ic in corr_keys}
            inner_plan = Rename(inner_plan, mapping)
            keys = [(outer, mapping[ic]) for outer, ic in corr_keys]
            plan = plan.join(inner_plan, keys=keys)
        else:
            plan = plan.join(inner_plan, keys=[])
        scope.add("", value_alias, value_alias)
        return plan, ast.ColumnRef(value_alias)

    def _correlation_pair(
        self, conj: ast.SqlExpr, inner_tables: set[str], outer: _Scope
    ) -> tuple[str, str] | None:
        """Detect ``inner.col = outer.col`` equality; returns the pair."""
        if not (
            isinstance(conj, ast.BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.ColumnRef)
        ):
            return None
        left, right = conj.left, conj.right
        left_inner = left.table in inner_tables
        right_inner = right.table in inner_tables
        if left_inner == right_inner:
            return None
        inner_ref, outer_ref = (left, right) if left_inner else (right, left)
        try:
            outer_name, _ = outer.resolve(outer_ref)
        except SQLError:
            return None
        return outer_name, inner_ref.name

    def _plan_membership(
        self, sub: ast.SelectStatement, scope: _Scope
    ) -> tuple[PlanNode, str]:
        if len(sub.items) != 1:
            raise SQLError("IN subquery must select exactly one column")
        item = sub.items[0]
        if not isinstance(item.expr, ast.ColumnRef):
            raise SQLError("IN subquery must select a plain column")
        plan = self.plan(sub, outer=scope)
        out_col = item.alias or item.expr.name
        return Distinct(plan, [out_col]), out_col

    # -- aggregation ----------------------------------------------------------------------------

    def _plan_aggregation(
        self, plan: PlanNode, stmt: ast.SelectStatement, scope: _Scope
    ) -> PlanNode:
        aggs: list[AggSpec] = []
        rewritten_items: list[tuple[str, ast.SqlExpr]] = []
        for i, item in enumerate(stmt.items):
            name = self._item_name(item, i)
            rewritten_items.append((name, self._extract_aggs(item.expr, aggs, scope)))
        having_expr = (
            self._extract_aggs(stmt.having, aggs, scope) if stmt.having else None
        )

        if not aggs and not stmt.group_by:
            # Pure projection.
            return plan.project(
                [(name, self._expr(e, scope)) for name, e in rewritten_items]
            )

        group_cols = []
        for ref in stmt.group_by:
            physical, _ = scope.resolve(ref)
            group_cols.append(physical)
        plan = plan.aggregate(group_cols, aggs)
        agg_scope = _Scope(parent=scope.parent)
        for column in group_cols + [a.name for a in aggs]:
            agg_scope.add("", column, column)
        if having_expr is not None:
            plan = plan.select(self._expr(having_expr, agg_scope))
        return plan.project(
            [(name, self._expr(e, agg_scope)) for name, e in rewritten_items]
        )

    def _item_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name
        return f"col{index}"

    def _extract_aggs(
        self, expr: ast.SqlExpr, aggs: list[AggSpec], scope: _Scope
    ) -> ast.SqlExpr:
        """Replace aggregate calls with references to generated columns."""
        if isinstance(expr, ast.FuncCall) and expr.name in AGG_FUNCTIONS:
            func = AGG_FUNCTIONS[expr.name]()
            if expr.star or not expr.args:
                if not isinstance(func, Count):
                    raise SQLError(f"{expr.name.upper()} requires an argument")
                spec = AggSpec(f"__agg{next(_fresh)}", func)
            else:
                if len(expr.args) != 1:
                    raise SQLError(f"{expr.name.upper()} takes one argument")
                spec = AggSpec(
                    f"__agg{next(_fresh)}", func, self._expr(expr.args[0], scope)
                )
            aggs.append(spec)
            return ast.ColumnRef(spec.name)
        for attr in ("left", "right", "child"):
            if hasattr(expr, attr):
                setattr(
                    expr, attr, self._extract_aggs(getattr(expr, attr), aggs, scope)
                )
        if isinstance(expr, ast.FuncCall):
            expr.args = [self._extract_aggs(a, aggs, scope) for a in expr.args]
        return expr

    # -- expression lowering ----------------------------------------------------------------------

    def _expr(self, node: ast.SqlExpr, scope: _Scope) -> Expression:
        if isinstance(node, ast.ColumnRef):
            name, _ = scope.resolve(node)
            return Col(name)
        if isinstance(node, ast.NumberLit):
            return Literal(node.value)
        if isinstance(node, ast.StringLit):
            return Literal(node.value)
        if isinstance(node, ast.BoolLit):
            return Literal(node.value)
        if isinstance(node, ast.BinaryOp):
            left = self._expr(node.left, scope)
            right = self._expr(node.right, scope)
            if node.op in ("+", "-", "*", "/", "%"):
                return Arith(node.op, left, right)
            op = {"=": "==", "<>": "!=", "!=": "!="}.get(node.op, node.op)
            return Comparison(op, left, right)
        if isinstance(node, ast.BoolOp):
            left = self._expr(node.left, scope)
            right = self._expr(node.right, scope)
            return And(left, right) if node.op == "AND" else Or(left, right)
        if isinstance(node, ast.NotOp):
            return Not(self._expr(node.child, scope))
        if isinstance(node, ast.Between):
            child = self._expr(node.child, scope)
            low = self._expr(node.low, scope)
            high = self._expr(node.high, scope)
            return And(Comparison(">=", child, low), Comparison("<=", child, high))
        if isinstance(node, ast.InList):
            child = self._expr(node.child, scope)
            values = []
            for v in node.values:
                if not isinstance(v, (ast.NumberLit, ast.StringLit, ast.BoolLit)):
                    raise SQLError("IN list values must be literals")
                values.append(v.value)
            inner = EngineInList(child, values)
            return Not(inner) if node.negated else inner
        if isinstance(node, ast.FuncCall):
            if node.name in self.udfs:
                udf = self.udfs[node.name]
                args = [self._expr(a, scope) for a in node.args]
                return Func(node.name, udf.fn, args, udf.out_type, udf.vectorized)
            if node.name in AGG_FUNCTIONS:
                raise SQLError(
                    f"aggregate {node.name.upper()} is only allowed in SELECT "
                    "items, HAVING, or subqueries"
                )
            raise SQLError(f"unknown function {node.name!r}")
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
            raise SQLError(
                "subqueries are only supported as top-level WHERE conjuncts"
            )
        raise SQLError(f"cannot lower expression {node!r}")


def _conjuncts(expr: ast.SqlExpr | None) -> list[ast.SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BoolOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin_ast(parts: list[ast.SqlExpr]) -> ast.SqlExpr | None:
    if not parts:
        return None
    out = parts[0]
    for p in parts[1:]:
        out = ast.BoolOp("AND", out, p)
    return out


def _contains_subquery(expr: ast.SqlExpr) -> bool:
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery)):
        return True
    for attr in ("left", "right", "child", "low", "high"):
        if hasattr(expr, attr) and _contains_subquery(getattr(expr, attr)):
            return True
    if isinstance(expr, ast.FuncCall):
        return any(_contains_subquery(a) for a in expr.args)
    return False


def plan_sql(
    text: str,
    schemas: dict[str, Schema],
    udfs: dict[str, UDF] | None = None,
) -> PlanNode:
    """Parse and plan one SQL statement."""
    return SQLPlanner(schemas, udfs).plan_sql(text)
