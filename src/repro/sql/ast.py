"""Abstract syntax for the SQL subset (pre-planning representation)."""

from __future__ import annotations

from dataclasses import dataclass, field


class SqlExpr:
    """Base class of SQL expression AST nodes."""


@dataclass
class ColumnRef(SqlExpr):
    name: str
    table: str | None = None  # alias qualifier

    def __repr__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class NumberLit(SqlExpr):
    value: float | int


@dataclass
class StringLit(SqlExpr):
    value: str


@dataclass
class BoolLit(SqlExpr):
    value: bool


@dataclass
class BinaryOp(SqlExpr):
    op: str  # arithmetic or comparison
    left: SqlExpr
    right: SqlExpr


@dataclass
class BoolOp(SqlExpr):
    op: str  # 'AND' | 'OR'
    left: SqlExpr
    right: SqlExpr


@dataclass
class NotOp(SqlExpr):
    child: SqlExpr


@dataclass
class FuncCall(SqlExpr):
    """Aggregate or scalar function call (resolved during planning)."""

    name: str
    args: list[SqlExpr]
    star: bool = False  # COUNT(*)


@dataclass
class InList(SqlExpr):
    child: SqlExpr
    values: list[SqlExpr]
    negated: bool = False


@dataclass
class InSubquery(SqlExpr):
    child: SqlExpr
    query: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(SqlExpr):
    query: "SelectStatement"


@dataclass
class Between(SqlExpr):
    child: SqlExpr
    low: SqlExpr
    high: SqlExpr


@dataclass
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class ExplicitJoin:
    table: TableRef
    condition: SqlExpr


@dataclass
class SelectItem:
    expr: SqlExpr
    alias: str | None = None


@dataclass
class SelectStatement:
    items: list[SelectItem]
    tables: list[TableRef]
    joins: list[ExplicitJoin] = field(default_factory=list)
    where: SqlExpr | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    having: SqlExpr | None = None
    distinct: bool = False
