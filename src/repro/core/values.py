"""Uncertain values, variation ranges, and lineage references.

These are the cell-level building blocks of the online engine:

* :class:`VariationRange` — the interval ``R(u)`` of Section 5.1: all
  values an uncertain cell may take during the remaining online execution,
  approximated from bootstrap outputs. Supports the interval arithmetic
  needed to push ranges through projection expressions, and the
  containment/intersection operations used by the integrity monitor.
* :class:`LineageRef` — Definition 1's cross-block lineage: a pointer
  ``(block, group key, column)`` into an aggregate block output, resolved
  lazily (Section 6.2's broadcast-join lookup).
* :class:`UncertainValue` — a current point estimate plus the per-trial
  bootstrap values and the variation range. Arithmetic operators propagate
  all three, which is how PROJECT expressions over uncertain attributes
  keep classification sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ExpressionError

_INF = math.inf


@dataclass(frozen=True)
class VariationRange:
    """A closed interval ``[lo, hi]`` of possible values."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ExpressionError(f"invalid range [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, value: float) -> "VariationRange":
        v = float(value)
        return cls(v, v)

    @classmethod
    def everything(cls) -> "VariationRange":
        return cls(-_INF, _INF)

    @classmethod
    def from_trials(cls, trials: np.ndarray, slack: float) -> "VariationRange":
        """The paper's estimator: ``[min(û) − ε·σ(û), max(û) + ε·σ(û)]``.

        Degenerate-bootstrap guard (a deviation documented in DESIGN.md):
        when every trial output is identical — typically a group backed by
        a single sampled tuple, where Poisson resampling cannot expose any
        variance — the paper's formula collapses to a point range that
        would certify arbitrary pruning and then fail integrity as soon as
        a second tuple arrives. We instead widen such ranges to ±(|v|+1),
        keeping the cell non-deterministic until real resampling variance
        exists.
        """
        clean = np.asarray(trials, dtype=np.float64)
        clean = clean[np.isfinite(clean)]
        if len(clean) == 0:
            return cls.everything()
        lo, hi = float(clean.min()), float(clean.max())
        spread = float(np.std(clean)) * slack
        if hi - lo == 0.0 and spread == 0.0:
            pad = abs(hi) + 1.0
            return cls(lo - pad, hi + pad)
        return cls(lo - spread, hi + spread)

    # -- set operations ---------------------------------------------------------

    def contains(self, other: "VariationRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def contains_value(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def intersects(self, other: "VariationRange") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersect(self, other: "VariationRange") -> "VariationRange":
        return VariationRange(max(self.lo, other.lo), min(self.hi, other.hi))

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    # -- interval arithmetic ------------------------------------------------------

    def __add__(self, other: "VariationRange") -> "VariationRange":
        return VariationRange(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "VariationRange") -> "VariationRange":
        return VariationRange(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "VariationRange") -> "VariationRange":
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        finite = [p for p in products if not math.isnan(p)]
        return VariationRange(min(finite), max(finite))

    def __truediv__(self, other: "VariationRange") -> "VariationRange":
        if other.lo <= 0.0 <= other.hi:
            # Denominator may cross zero: the quotient is unbounded.
            return VariationRange.everything()
        return self * VariationRange(1.0 / other.hi, 1.0 / other.lo)

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


@dataclass(frozen=True)
class LineageRef:
    """Lineage of an uncertain attribute across a lineage-block boundary.

    ``block_id`` names the producing aggregate block, ``key`` its group-by
    key tuple, and ``column`` the aggregate output column. Matches the
    paper's ``L = {(rel(γ), t.key)}`` plus the accessed column.
    """

    block_id: int
    key: tuple
    column: str

    def __repr__(self) -> str:
        return f"Lineage(block={self.block_id}, key={self.key!r}, col={self.column})"


class UncertainValue:
    """A value that may change across batches.

    Carries the current point estimate, the vector of bootstrap-trial
    values, the variation range, and (optionally) the lineage reference it
    was resolved from. Arithmetic with scalars and other uncertain values
    propagates trials elementwise and ranges by interval arithmetic.
    """

    __iolap_uncertain__ = True
    __slots__ = ("value", "trials", "vrange", "lineage", "sources")

    def __init__(
        self,
        value: float,
        trials: np.ndarray,
        vrange: VariationRange | None = None,
        lineage: LineageRef | None = None,
        sources: tuple[LineageRef, ...] | None = None,
    ):
        self.value = float(value)
        self.trials = np.asarray(trials, dtype=np.float64)
        self.vrange = vrange if vrange is not None else VariationRange.everything()
        self.lineage = lineage
        if sources is not None:
            self.sources = sources
        else:
            # Provenance for range-arming: which block cells this value
            # derives from. Arithmetic unions the operands' sources.
            self.sources = (lineage,) if lineage is not None else ()

    # -- arithmetic ---------------------------------------------------------------

    def _combine(
        self, other: object, fn: Callable, rop: bool = False
    ) -> "UncertainValue":
        if isinstance(other, UncertainValue):
            a, b = (other, self) if rop else (self, other)
            return UncertainValue(
                fn(a.value, b.value),
                fn(a.trials, b.trials),
                fn(a.vrange, b.vrange),
                sources=tuple(dict.fromkeys(a.sources + b.sources)),
            )
        if isinstance(other, (int, float, np.integer, np.floating)):
            other_f = float(other)
            point = VariationRange.point(other_f)
            if rop:
                return UncertainValue(
                    fn(other_f, self.value),
                    fn(other_f, self.trials),
                    fn(point, self.vrange),
                    sources=self.sources,
                )
            return UncertainValue(
                fn(self.value, other_f),
                fn(self.trials, other_f),
                fn(self.vrange, point),
                sources=self.sources,
            )
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: object):
        return self._combine(other, lambda a, b: a + b)

    def __radd__(self, other: object):
        return self._combine(other, lambda a, b: a + b, rop=True)

    def __sub__(self, other: object):
        return self._combine(other, lambda a, b: a - b)

    def __rsub__(self, other: object):
        return self._combine(other, lambda a, b: a - b, rop=True)

    def __mul__(self, other: object):
        return self._combine(other, lambda a, b: a * b)

    def __rmul__(self, other: object):
        return self._combine(other, lambda a, b: a * b, rop=True)

    def __truediv__(self, other: object):
        return self._combine(other, lambda a, b: a / b)

    def __rtruediv__(self, other: object):
        return self._combine(other, lambda a, b: a / b, rop=True)

    def __float__(self) -> float:
        return self.value

    # -- error estimates (bootstrap) ------------------------------------------------

    def stdev(self) -> float:
        """Bootstrap standard error of the estimate."""
        clean = self.trials[np.isfinite(self.trials)]
        return float(np.std(clean)) if len(clean) else math.nan

    def relative_stdev(self) -> float:
        """Relative standard deviation (the paper's Fig. 7(a) y-axis)."""
        sd = self.stdev()
        if math.isnan(sd) or self.value == 0:
            return math.nan
        return abs(sd / self.value)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Percentile-bootstrap confidence interval."""
        clean = self.trials[np.isfinite(self.trials)]
        if len(clean) == 0:
            return (math.nan, math.nan)
        alpha = (1.0 - level) / 2.0
        return (
            float(np.quantile(clean, alpha)),
            float(np.quantile(clean, 1.0 - alpha)),
        )

    def __repr__(self) -> str:
        return f"≈{self.value:g} ±{self.stdev():.3g} {self.vrange!r}"


def range_of(value: object) -> VariationRange:
    """Variation range of a (possibly deterministic) cell value."""
    if isinstance(value, UncertainValue):
        return value.vrange
    return VariationRange.point(float(value))  # type: ignore[arg-type]


def trials_of(value: object, num_trials: int) -> np.ndarray:
    """Per-trial values of a cell (constant vector when deterministic)."""
    if isinstance(value, UncertainValue):
        return value.trials
    return np.full(num_trials, float(value))  # type: ignore[arg-type]


def point_of(value: object) -> float:
    if isinstance(value, UncertainValue):
        return value.value
    return float(value)  # type: ignore[arg-type]
