"""The iOLAP online engine: mini-batch incremental query processing."""

from repro.core.blocks import BlockOutput, GroupValue, OnlineConfig, RuntimeContext
from repro.core.compiler import CompiledQuery, compile_online
from repro.core.controller import OnlineQueryEngine
from repro.core.ranges import RangeMonitor
from repro.core.result import PartialResult
from repro.core.uncertainty import NodeTags, analyze
from repro.core.values import LineageRef, UncertainValue, VariationRange

__all__ = [
    "BlockOutput",
    "CompiledQuery",
    "GroupValue",
    "LineageRef",
    "NodeTags",
    "OnlineConfig",
    "OnlineQueryEngine",
    "PartialResult",
    "RangeMonitor",
    "RuntimeContext",
    "UncertainValue",
    "VariationRange",
    "analyze",
    "compile_online",
]
