"""The online query rewriter (Section 7, module 1).

Compiles a logical plan into an ordered list of executable *units*:

* static subplans (no streamed table below them) are evaluated once, at
  compile time, with the batch evaluator — these are the dimension sides
  of joins;
* each AGGREGATE over stream-derived input becomes a *stream pipeline*
  unit: a chain of online operators ending in the aggregate that publishes
  the lineage block's output;
* everything computed from block outputs (HAVING views, scalar
  comparisons, aggregates of aggregates, IN-membership sides) becomes a
  *small unit* interpreted per bootstrap trial;
* joins between the stream and uncertain small sides compile to
  :class:`~repro.core.operators.UncertainJoinOp`, with the side published
  as a joinable view under the join node's id.

Unit order is the block-topological order: producers always run before
consumers within a batch, so lineage references resolve to this batch's
values (the "aggregate runs first" ordering of Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import RuntimeContext
from repro.core.operators import (
    AggregateOp,
    FilterOp,
    ProjectOp,
    RenameOp,
    RowSinkOp,
    ScanOp,
    SpineOp,
    StaticEmitOp,
    StaticJoinOp,
    UncertainFilterOp,
    UncertainJoinOp,
    UnionOp,
    iter_ops,
)
from repro.core.smallplan import (
    SmallAggregate,
    SmallBlockLeaf,
    SmallDistinct,
    SmallJoin,
    SmallNode,
    SmallPlanUnit,
    SmallProject,
    SmallRename,
    SmallSelect,
    SmallStaticLeaf,
    URow,
    iter_small_nodes,
)
from repro.core.uncertainty import NodeTags, analyze
from repro.errors import UnsupportedQueryError
from repro.relational.aggregates import count
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.catalog import Catalog
from repro.relational.evaluator import evaluate
from repro.relational.expressions import Comparison, Expression, conjoin, conjuncts
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class ExecutionUnit:
    """One step of a batch iteration.

    Units declare the lineage-block ids they publish (``produces``) and
    read (``consumes``); the executor schedules units whose dependencies
    within a batch are satisfied — concurrently, if asked to.
    """

    label: str = "unit"
    #: Block ids this unit publishes into ``ctx.blocks`` each batch.
    produces: frozenset[int] = frozenset()
    #: Block ids this unit reads from ``ctx.blocks`` each batch.
    consumes: frozenset[int] = frozenset()

    def open(self, ctx: RuntimeContext) -> None:
        pass

    def run(self, ctx: RuntimeContext) -> None:
        # Matches the compiler's other rejection paths: reaching an
        # abstract unit at runtime means the plan compiled to something
        # the engine cannot actually execute.
        raise UnsupportedQueryError(
            f"execution unit {self.label!r} has no runnable implementation"
        )

    def close(self) -> None:
        pass

    def reset(self) -> None:
        pass


class StreamPipelineUnit(ExecutionUnit):
    """Drives one stream pipeline (an online operator chain) per batch."""

    def __init__(self, root_op: SpineOp):
        self.root_op = root_op
        self.label = f"pipeline:{root_op.label}"
        produces = set()
        consumes = set()
        for op in iter_ops(root_op):
            if isinstance(op, AggregateOp):
                produces.add(op.block_id)
            elif isinstance(op, UncertainJoinOp):
                consumes.add(op.side_id)
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)

    def open(self, ctx: RuntimeContext) -> None:
        self.root_op.open(ctx)

    def run(self, ctx: RuntimeContext) -> None:
        self.root_op.run(ctx)
        self.root_op.record_state(ctx)

    def close(self) -> None:
        self.root_op.close()

    def reset(self) -> None:
        self.root_op.reset()


class SmallSegmentUnit(ExecutionUnit):
    """Evaluates a small segment and publishes its view."""

    def __init__(self, unit: SmallPlanUnit):
        self.unit = unit
        produces = set()
        consumes = set()
        for node in iter_small_nodes(unit.root):
            if isinstance(node, SmallBlockLeaf):
                consumes.add(node.block_id)
            elif isinstance(node, SmallAggregate):
                produces.add(node.block_id)
        if unit.publish_id is not None:
            produces.add(unit.publish_id)
            self.label = f"small:{unit.publish_id}"
        else:
            self.label = "small:result"
        self.produces = frozenset(produces)
        self.consumes = frozenset(consumes)

    def run(self, ctx: RuntimeContext) -> None:
        self.unit.run(ctx)


@dataclass
class CompiledQuery:
    """An online-executable query."""

    units: list[ExecutionUnit]
    #: Where the result comes from: a small unit or a row sink.
    result_small: SmallPlanUnit | None
    result_sink: RowSinkOp | None
    result_schema: Schema
    streamed_table: str

    def open(self, ctx: RuntimeContext) -> None:
        """Run the operator ``open`` lifecycle (state registration)."""
        for unit in self.units:
            unit.open(ctx)

    def close(self) -> None:
        for unit in self.units:
            unit.close()

    def current_rows(self, ctx: RuntimeContext) -> list[URow]:
        if self.result_small is not None:
            return self.result_small.result_rows()
        assert self.result_sink is not None
        rel = self.result_sink.result(ctx)
        return [URow(rel.row(i)) for i in range(len(rel))]

    def reset(self) -> None:
        for unit in self.units:
            unit.reset()


# Internal compile-time value: exactly one of the three is set.
@dataclass
class _Ref:
    stream: SpineOp | None = None
    small: SmallNode | None = None
    static: Relation | None = None

    @property
    def kind(self) -> str:
        if self.stream is not None:
            return "stream"
        if self.small is not None:
            return "small"
        return "static"


class OnlineCompiler:
    """Compiles one logical plan for online execution."""

    def __init__(self, plan: PlanNode, catalog: Catalog, streamed_table: str):
        self.plan = plan
        self.catalog = catalog
        self.streamed_table = streamed_table
        self.tags: dict[int, NodeTags] = analyze(plan, {streamed_table})
        self.schemas = catalog.schemas()
        self.units: list[ExecutionUnit] = []
        #: node_id -> compiled ref, for plan nodes referenced more than
        #: once (a subquery bound to a variable and reused, e.g. the
        #: agg-of-agg pattern). Without this, a shared AGGREGATE would
        #: compile into two pipeline units racing to publish the same
        #: lineage block. Stream refs are never memoized: an operator
        #: chain is single-consumer, so each parent gets its own copy.
        self._memo: dict[int, _Ref] = {}

    # -- public API -------------------------------------------------------------------

    def compile(self) -> CompiledQuery:
        ref = self._compile(self.plan)
        result_schema = self.plan.output_schema(self.schemas)
        if ref.kind == "stream":
            sink = RowSinkOp(ref.stream)
            self.units.append(StreamPipelineUnit(sink))
            return CompiledQuery(
                self.units, None, sink, result_schema, self.streamed_table
            )
        if ref.kind == "small":
            unit = SmallPlanUnit(ref.small)
            self.units.append(SmallSegmentUnit(unit))
            return CompiledQuery(
                self.units, unit, None, result_schema, self.streamed_table
            )
        # Fully static query: expose the precomputed relation through a
        # trivial small unit so callers get a uniform interface.
        static_unit = SmallPlanUnit(SmallStaticLeaf(ref.static))
        self.units.append(SmallSegmentUnit(static_unit))
        return CompiledQuery(
            self.units, static_unit, None, result_schema, self.streamed_table
        )

    # -- recursion ---------------------------------------------------------------------

    def _compile(self, node: PlanNode) -> _Ref:
        memoized = self._memo.get(node.node_id)
        if memoized is not None:
            return memoized
        handler = {
            Scan: self._compile_scan,
            Select: self._compile_select,
            Project: self._compile_project,
            Rename: self._compile_rename,
            Distinct: self._compile_distinct,
            Union: self._compile_union,
            Join: self._compile_join,
            Aggregate: self._compile_aggregate,
        }.get(type(node))
        if handler is None:
            raise UnsupportedQueryError(
                f"cannot compile node {type(node).__name__} for online execution",
                node=node,
            )
        ref = handler(node)
        if ref.kind != "stream":
            self._memo[node.node_id] = ref
        return ref

    def _schema(self, node: PlanNode) -> Schema:
        return node.output_schema(self.schemas)

    def _is_static(self, node: PlanNode) -> bool:
        return self.streamed_table not in node.base_tables()

    def _compile_scan(self, node: Scan) -> _Ref:
        if node.table == self.streamed_table:
            return _Ref(stream=ScanOp(node.table, node.schema))
        return _Ref(static=self.catalog.get(node.table))

    def _compile_select(self, node: Select) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        child = self._compile(node.child)
        parts = conjuncts(node.predicate)
        if child.kind == "small":
            return _Ref(small=SmallSelect(child.small, parts))
        assert child.stream is not None
        det: list[Expression] = []
        uncertain: list[Comparison] = []
        for part in parts:
            if part.attrs() & child.stream.uncertain_cols:
                if not isinstance(part, Comparison):
                    raise UnsupportedQueryError(
                        f"predicate {part!r} over uncertain columns must be a "
                        "simple comparison (x ϑ y)",
                        node=node,
                    )
                uncertain.append(part)
            else:
                det.append(part)
        if not uncertain:
            return _Ref(stream=FilterOp(child.stream, conjoin(det)))
        return _Ref(
            stream=UncertainFilterOp(child.stream, det, uncertain, node.node_id)
        )

    def _compile_project(self, node: Project) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        child = self._compile(node.child)
        if child.kind == "small":
            return _Ref(small=SmallProject(child.small, node.outputs))
        return _Ref(stream=ProjectOp(child.stream, node, self._schema(node)))

    def _compile_rename(self, node: Rename) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        child = self._compile(node.child)
        if child.kind == "small":
            return _Ref(small=SmallRename(child.small, node.mapping))
        return _Ref(stream=RenameOp(child.stream, node.mapping, self._schema(node)))

    def _compile_distinct(self, node: Distinct) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        child = self._compile(node.child)
        if child.kind == "small":
            return _Ref(small=SmallDistinct(child.small, node.columns))
        # DISTINCT over the stream: lower to a counting aggregate block
        # (the paper expresses duplicate elimination via AGGREGATE), then
        # strip the count in a small projection.
        lowered = Aggregate(node.child, node.columns, [count("__dcount")])
        lowered.node_id = node.node_id  # keep state keyed by the original node
        ref = self._compile_aggregate(lowered, child=child)
        return _Ref(
            small=SmallProject(
                ref.small, [(c, _col(c)) for c in node.columns]
            )
        )

    def _compile_union(self, node: Union) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        left = self._compile(node.left)
        right = self._compile(node.right)
        kinds = {left.kind, right.kind}
        if kinds == {"stream"}:
            return _Ref(stream=UnionOp(left.stream, right.stream))
        if kinds == {"stream", "static"}:
            stream_side = left.stream or right.stream
            static_side = left.static if left.static is not None else right.static
            return _Ref(
                stream=UnionOp(stream_side, StaticEmitOp(static_side))
            )
        raise UnsupportedQueryError(
            "UNION between aggregate-derived inputs is not supported online",
            node=node,
        )

    def _compile_join(self, node: Join) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        left = self._compile(node.left)
        right = self._compile(node.right)
        schema = self._schema(node)

        if left.kind == "stream" or right.kind == "stream":
            stream_is_left = left.kind == "stream"
            stream_ref = left if stream_is_left else right
            side_ref = right if stream_is_left else left
            stream_keys = node.left_keys if stream_is_left else node.right_keys
            side_keys = node.right_keys if stream_is_left else node.left_keys
            side_node = node.right if stream_is_left else node.left
            if side_ref.kind == "static":
                return _Ref(
                    stream=StaticJoinOp(
                        stream_ref.stream,
                        side_ref.static,
                        node.keys,
                        schema,
                        stream_is_left,
                        node.node_id,
                    )
                )
            # Uncertain small side: publish it as a view keyed by the join
            # key, then attach lazily on the stream side.
            side_schema = side_node.output_schema(self.schemas)
            side_tags = self.tags[side_node.node_id]
            attach_names = [
                c for c in side_schema.names if c not in side_keys
            ]
            # Dropped key columns differ by orientation: the output always
            # drops the RIGHT side's keys.
            if stream_is_left:
                attach_cols = [
                    (c, c in side_tags.uncertain_cols) for c in attach_names
                ]
            else:
                attach_cols = [
                    (c, c in side_tags.uncertain_cols)
                    for c in side_schema.names
                ]
            unit = SmallPlanUnit(
                side_ref.small,
                publish_id=node.node_id,
                key_cols=list(side_keys),
                value_cols=[c for c, _ in attach_cols],
            )
            self.units.append(SmallSegmentUnit(unit))
            return _Ref(
                stream=UncertainJoinOp(
                    stream_ref.stream,
                    node.node_id,
                    list(stream_keys),
                    attach_cols,
                    schema,
                    node.node_id,
                )
            )

        # No stream side: a small-small or small-static join.
        left_small = left.small if left.small is not None else SmallStaticLeaf(left.static)
        right_small = (
            right.small if right.small is not None else SmallStaticLeaf(right.static)
        )
        return _Ref(small=SmallJoin(left_small, right_small, node.keys))

    def _compile_aggregate(self, node: Aggregate, child: _Ref | None = None) -> _Ref:
        if self._is_static(node):
            return _Ref(static=evaluate(node, self.catalog))
        if child is None:
            child = self._compile(node.child)
        if child.kind == "small":
            return _Ref(
                small=SmallAggregate(
                    child.small, node.group_by, node.aggs, node.node_id
                )
            )
        child_tags = self.tags[node.child.node_id]
        op = AggregateOp(
            child.stream,
            node.group_by,
            node.aggs,
            self._schema(node),
            block_id=node.node_id,
            sample_weighted=child_tags.sample_weighted,
        )
        self.units.append(StreamPipelineUnit(op))
        return _Ref(small=SmallBlockLeaf(node.node_id))


def _col(name: str):
    from repro.relational.expressions import Col

    return Col(name)


def compile_online(
    plan: PlanNode, catalog: Catalog, streamed_table: str
) -> CompiledQuery:
    """Compile ``plan`` for online execution over ``streamed_table``."""
    return OnlineCompiler(plan, catalog, streamed_table).compile()
