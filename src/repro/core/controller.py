"""The query controller (Section 7, module 3) — iOLAP's public entry point.

Partitions the streamed input into mini-batches, schedules the compiled
delta query on each batch (through a pluggable batch executor), collects
partial results with error estimates, monitors variation-range integrity,
and runs the failure-recovery replay when a check fails.

Typical use::

    engine = OnlineQueryEngine(catalog, streamed_table="sessions")
    for partial in engine.run(plan, num_batches=20):
        print(partial.batch_no, partial.to_plain_rows(),
              partial.max_relative_stdev())
        if partial.max_relative_stdev() < 0.02:
            break    # the user is satisfied — stop any time

The final partial result (all batches consumed) equals the exact answer
of the batch evaluator on the full dataset (Theorem 1), which the test
suite verifies query by query.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.batching.partitioner import Partitioner
from repro.core.blocks import OnlineConfig, RuntimeContext
from repro.core.compiler import CompiledQuery, compile_online
from repro.core.result import PartialResult
from repro.core.values import UncertainValue
from repro.engine.executor import BatchExecutor, make_executor
from repro.errors import RangeIntegrityError, ReproError, UnsupportedQueryError
from repro.kernels.stats import STATS as KERNEL_STATS
from repro.metrics.stats import BatchMetrics, RunMetrics
from repro.obs.session import NULL_OBS
from repro.relational.algebra import PlanNode
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.state import CheckpointManager

#: Safety valve: recoveries per run before pruning is disabled outright.
_MAX_RECOVERIES = 8


class OnlineQueryEngine:
    """Runs queries online over one streamed table, batch by batch."""

    def __init__(
        self,
        catalog: Catalog,
        streamed_table: str,
        config: OnlineConfig | None = None,
        partition_mode: str = "shuffle",
        executor: str | BatchExecutor = "serial",
        obs=None,
    ):
        self.catalog = catalog
        self.streamed_table = streamed_table
        self.config = config if config is not None else OnlineConfig()
        self.partitioner = Partitioner(mode=partition_mode, seed=self.config.seed)
        self.executor = make_executor(executor)
        #: Observability session (tracing + metrics registry); the inert
        #: NULL_OBS unless the caller wants a trace.
        self.obs = obs if obs is not None else NULL_OBS
        #: Metrics of the most recent (or in-progress) run.
        self.metrics = RunMetrics()
        #: Periodic state checkpoints; re-armed from the config per run.
        self._checkpoints = CheckpointManager(0)
        #: Continuous profiler of the current run
        #: (``OnlineConfig(profile=True)``), or None.
        self.profiler = None
        #: Identity-keyed result-row projection cache (rollup runs only):
        #: ``id(urow) -> (urow, projected dict)``, rebuilt every batch.
        self._result_rows_cache: dict[int, tuple[object, dict]] = {}

    #: Tag recorded on the per-run CheckpointManager; shard workers set
    #: theirs to ``shard<i>`` so recovery logs and snapshots are
    #: attributable to one shard's namespace.
    checkpoint_namespace = ""

    def run(
        self,
        plan: PlanNode,
        num_batches: int,
        batch_rows: int | None = None,
    ) -> Iterator[PartialResult]:
        """Execute ``plan`` online; yields one partial result per batch."""
        session = self.open_run(plan, num_batches, batch_rows=batch_rows)
        try:
            for i in range(1, session.num_batches + 1):
                yield session.process(i)
        finally:
            session.close()

    def open_run(
        self,
        plan: PlanNode,
        num_batches: int,
        batch_rows: int | None = None,
    ) -> "RunSession":
        """Set up one online run and hand back its batch driver.

        ``run`` drives the session start to finish; external schedulers
        (the shard workers of :mod:`repro.engine.shards`) call this
        directly and drive one batch at a time.
        """
        streamed = self.catalog.get(self.streamed_table)
        if batch_rows is not None:
            from repro.batching.partitioner import num_batches_for

            num_batches = num_batches_for(len(streamed), batch_rows)
        batches = self.partitioner.partition(streamed, num_batches)

        obs = self.obs
        profiler = None
        if self.config.profile:
            from repro.obs.profile import ContinuousProfiler
            from repro.obs.session import MetricsObservability

            if not obs.enabled:
                # The profiler feeds on registry gauges (nd.rows, per-op
                # rows). A metrics-only session makes exactly those live
                # without span allocation or event emission.
                obs = MetricsObservability()
            profiler = ContinuousProfiler.for_run(self.config, plan)
        self.profiler = profiler
        tracer = obs.tracer
        try:
            compiled = compile_online(plan, self.catalog, self.streamed_table)
        except UnsupportedQueryError as exc:
            # Rejections belong on the trace timeline, not only in the
            # raised exception: a saved trace should show *why* a run
            # produced no batches.
            tracer.warning(
                "unsupported-query",
                message=str(exc),
                node=type(exc.node).__name__ if exc.node is not None else None,
            )
            obs.flush()
            raise
        ctx = self._make_context(len(streamed))
        ctx.attach_obs(obs)
        if ctx.sanitizer is not None:
            # Install the Relation.slice / DiskTable chunk-view aliasing
            # hooks for the duration of this run (removed on close).
            ctx.sanitizer.activate()
        self.metrics = RunMetrics()
        self._result_rows_cache = {}

        compiled.open(ctx)
        # Pristine-state snapshot: failure recovery rewinds every operator
        # store to this point when no newer checkpoint can serve.
        baseline = ctx.stores.checkpoint()
        self._checkpoints = CheckpointManager(
            self.config.checkpoint_interval,
            keep=self.config.checkpoint_keep,
            budget_bytes=self.config.checkpoint_budget_bytes,
            namespace=self.checkpoint_namespace,
        )

        run_span = tracer.span(
            "run", cat="run",
            streamed_table=self.streamed_table,
            num_batches=len(batches),
            total_rows=len(streamed),
            executor=self.executor.name,
        ) if tracer.enabled else None
        if run_span:
            run_span.__enter__()
        return RunSession(self, compiled, ctx, batches, baseline, obs, run_span)

    def _make_context(self, total_rows: int) -> RuntimeContext:
        """Build the run's context (shard workers substitute their own)."""
        return RuntimeContext(
            self.catalog, self.streamed_table, total_rows, self.config
        )

    def run_to_completion(
        self,
        plan: PlanNode,
        num_batches: int,
        batch_rows: int | None = None,
    ) -> PartialResult:
        """Convenience: run all batches, return the final (exact) result."""
        last: PartialResult | None = None
        for last in self.run(plan, num_batches, batch_rows=batch_rows):
            pass
        if last is None:
            raise ReproError("streamed table is empty")
        return last

    # -- internals ---------------------------------------------------------------------

    def _process_batch(
        self,
        compiled: CompiledQuery,
        ctx: RuntimeContext,
        batches: list[Relation],
        batch_no: int,
        delta: Relation,
        bm: BatchMetrics,
        baseline: dict[str, object],
    ) -> None:
        attempts = 0
        while True:
            try:
                ctx.begin_batch(batch_no, delta, bm)
                # Controller-level fault seam: fires before any unit runs.
                ctx.fault("batch")
                self.executor.execute(compiled.units, ctx)
                return
            except RangeIntegrityError as failure:
                bm.recovered = True
                attempts += 1
                ctx.obs.metrics.counter("recovery.failures").inc()
                if attempts > _MAX_RECOVERIES:
                    if not ctx.monitor.enabled:
                        # A conservative replay cannot record sentinels, so
                        # a second failure here is a logic error, not a
                        # pruning mistake — don't loop forever on it.
                        raise
                    # Safety valve: conservative mode (no pruning) is always
                    # correct; disable ranges for the rest of the run, then
                    # replay and re-run this batch one more time.
                    ctx.monitor.enabled = False
                    self.metrics.pruning_disabled = True
                    ctx.obs.tracer.warning(
                        "pruning-disabled", batch=batch_no,
                        message="recovery budget exhausted; finishing the "
                        "run in conservative (no-pruning) mode",
                    )
                # The failed attempt's per-batch counters are about to be
                # earned again by the re-run; zero them so recovered
                # batches are not double-counted in the run totals.
                bm.reset_attempt()
                self._replay(
                    compiled,
                    ctx,
                    batches,
                    batch_no,
                    failure.recover_from_batch,
                    bm,
                    baseline,
                )

    def _replay(
        self,
        compiled: CompiledQuery,
        ctx: RuntimeContext,
        batches: list[Relation],
        failed_batch: int,
        recover_from: int,
        bm: BatchMetrics,
        baseline: dict[str, object],
    ) -> None:
        """Failure recovery (Section 5.1): restore operator state to the
        newest valid checkpoint taken at or before ``recover_from`` (the
        last batch whose resolved pruning decisions all still hold),
        falling back to the pristine baseline, then rebuild the rest by
        replaying only the suffix of processed batches conservatively.

        During the replay the monitor publishes unbounded ranges, so no
        pruning happens and no sentinels are created — the rebuilt state
        is unconditionally correct (Theorem 1 holds exactly as it does
        for a full replay). The failed batch is then re-processed live:
        pruning resumes with fresh ranges, whose sentinels are recorded
        from the *current* estimates and therefore cannot flip within
        the same batch, guaranteeing recovery terminates.
        """
        obs = ctx.obs
        tracer = obs.tracer
        # In conservative mode (valve tripped) checkpoints embed pruning
        # decisions the engine no longer tracks; only the baseline is safe.
        ckpt = (
            self._checkpoints.best_for(recover_from)
            if ctx.monitor.enabled else None
        )
        start_from = ckpt.batch_no if ckpt is not None else 0
        replayed = failed_batch - 1 - start_from
        obs.metrics.counter("recovery.replays").inc()
        obs.metrics.histogram("recovery.depth").observe(replayed)
        span = tracer.span(
            "recovery-replay", cat="recovery", batch=failed_batch,
            replayed_batches=replayed, recover_from=recover_from,
            start_from=start_from,
        ) if tracer.enabled else None
        if span:
            span.__enter__()
        started = time.perf_counter()
        ctx.monitor.replaying = True
        ctx.monitor.reset()
        # CheckpointManager.restore demotes every restored rollup entry
        # back into its sketch: the replayed suffix cannot trust state
        # migrated past the restore point.
        if ckpt is not None:
            demoted = self._checkpoints.restore(ctx.stores, ckpt.snapshot)
            ctx.reset_for_replay(
                batch_no=ckpt.batch_no, seen_rows=ckpt.seen_rows
            )
        else:
            demoted = self._checkpoints.restore(ctx.stores, baseline)
            ctx.reset_for_replay()
        if demoted:
            obs.metrics.counter("rollup.restore_demotions").inc(demoted)
        # Checkpoints newer than the restore point contain the decisions
        # the failure just invalidated; they must never be restored.
        self._checkpoints.drop_after(start_from)
        scratch = BatchMetrics(0)
        saved = ctx.metrics
        try:
            for b in range(start_from + 1, failed_batch):
                ctx.begin_batch(b, batches[b - 1], scratch)
                self.executor.execute(compiled.units, ctx)
        finally:
            ctx.metrics = saved
            ctx.monitor.replaying = False
            if span:
                span.__exit__(None, None, None)
        bm.recovery_seconds += time.perf_counter() - started

    def _maybe_checkpoint(self, ctx: RuntimeContext, batch_no: int) -> None:
        """Take a periodic state checkpoint after a successful batch.

        Skipped in conservative mode: with pruning disabled a restore is
        never allowed to resurrect pruning-era sentinel state, so new
        snapshots would be dead weight.
        """
        if not ctx.monitor.enabled or not self._checkpoints.due(batch_no):
            return
        tracer = ctx.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "checkpoint", cat="recovery", batch=batch_no
            ) as span:
                ckpt = self._checkpoints.take(
                    ctx.stores, batch_no, ctx.seen_rows
                )
                span.set(nbytes=ckpt.nbytes, kept=len(self._checkpoints))
        else:
            self._checkpoints.take(ctx.stores, batch_no, ctx.seen_rows)
        if ctx.faults is not None and ctx.faults.claim("checkpoint", batch_no):
            self._checkpoints.corrupt(batch_no)
            tracer.warning(
                "checkpoint-corrupted", batch=batch_no,
                message="injected checkpoint corruption; recovery will "
                "fall back to an older snapshot",
            )

    def _sample_metrics(self, ctx: RuntimeContext, bm: BatchMetrics, batch_no: int) -> None:
        """Per-batch sampling of engine-level gauges + the full registry.

        Runs on the controller thread between batches, so the snapshot is
        a consistent cut: every unit of batch ``batch_no`` has merged.
        """
        reg = ctx.obs.metrics
        reg.gauge("state.total_bytes").set(ctx.stores.total_bytes())
        reg.gauge("engine.seen_rows").set(ctx.seen_rows)
        reg.gauge("engine.range_failures").set(ctx.monitor.failures)
        reg.counter("engine.recomputed_tuples").inc(bm.recomputed_tuples)
        reg.counter("engine.shipped_bytes").inc(bm.shipped_bytes)
        if self._checkpoints.enabled:
            reg.gauge("checkpoint.count").set(len(self._checkpoints))
            reg.gauge("checkpoint.bytes").set(self._checkpoints.total_bytes())
        for name, value in KERNEL_STATS.snapshot().items():
            reg.gauge(f"kernel.{name}").set(value)
        ctx.obs.emit_metrics(batch=batch_no)

    def _sample_cost_metrics(
        self, ctx: RuntimeContext, bm: BatchMetrics, profiler, batch_rows: int
    ) -> None:
        """Publish the cost model's predictions-vs-actuals gauges.

        Live-exporter feed (Prometheus scrapes read the registry
        directly); with tracing on, the values also land in the next
        batch's counter-event sample.
        """
        reg = ctx.obs.metrics
        if not reg.enabled:
            return
        reg.gauge("costmodel.predicted_seconds").set(bm.predicted_seconds)
        reg.gauge("costmodel.actual_seconds").set(
            bm.wall_seconds - bm.recovery_seconds
        )
        cal = profiler.calibration()
        reg.gauge("costmodel.mape").set(cal["mape"])
        reg.gauge("costmodel.predictions").set(cal["predictions"])
        target = self.config.target_rsd
        if target:
            remaining = profiler.predict_batches_to_ci(
                target, batch_rows, ctx.seen_rows
            )
            if remaining is not None:
                reg.gauge("costmodel.batches_to_target").set(remaining)

    def _make_result(
        self,
        compiled: CompiledQuery,
        ctx: RuntimeContext,
        batch_no: int,
        num_batches: int,
        bm: BatchMetrics,
    ) -> PartialResult:
        rows = []
        names = compiled.result_schema.names
        if self.config.rollup:
            # Result rows of rollup-tier groups are the *same* URow
            # objects batch over batch (the small-plan leaves reuse them
            # for unchanged GroupValues); projecting them into the
            # result dict again would put the per-row cost back on the
            # total group count. Identity-keyed, so any recomputed URow
            # misses and projects fresh.
            cache = self._result_rows_cache
            fresh: dict[int, tuple[object, dict]] = {}
            for urow in compiled.current_rows(ctx):
                hit = cache.get(id(urow))
                if hit is not None and hit[0] is urow:
                    row = hit[1]
                else:
                    row = {name: urow.values[name] for name in names}
                fresh[id(urow)] = (urow, row)
                rows.append(row)
            self._result_rows_cache = fresh
        else:
            for urow in compiled.current_rows(ctx):
                rows.append({name: urow.values[name] for name in names})
        is_final = batch_no == num_batches
        if is_final:
            rows = [_finalize_row(r) for r in rows]
        return PartialResult(
            batch_no=batch_no,
            num_batches=num_batches,
            fraction_processed=ctx.seen_rows / max(ctx.total_rows, 1),
            schema=compiled.result_schema,
            rows=rows,
            metrics=bm,
            is_final=is_final,
        )


class RunSession:
    """One in-progress online run, driven one batch at a time.

    Owns everything ``open_run`` acquired and releases it in :meth:`close`
    — including the engine's executor pool, which previously leaked its
    worker threads when a run ended, raised, or its generator was
    abandoned mid-stream.
    """

    def __init__(
        self,
        engine: OnlineQueryEngine,
        compiled: CompiledQuery,
        ctx: RuntimeContext,
        batches: list[Relation],
        baseline: dict[str, object],
        obs,
        run_span,
    ):
        self.engine = engine
        self.compiled = compiled
        self.ctx = ctx
        self.batches = batches
        self.baseline = baseline
        self.obs = obs
        self.run_span = run_span
        self.num_batches = len(batches)
        self._closed = False

    def process(self, batch_no: int) -> PartialResult:
        """Run mini-batch ``batch_no`` (1-based) and build its result."""
        engine = self.engine
        compiled, ctx, obs = self.compiled, self.ctx, self.obs
        profiler = engine.profiler
        tracer = obs.tracer
        i = batch_no
        delta = self.batches[i - 1]
        bm = engine.metrics.start_batch(i)
        if profiler is not None:
            t0 = time.perf_counter()
            bm.predicted_seconds = profiler.predict_batch_seconds(len(delta))
            engine.metrics.profile_seconds += time.perf_counter() - t0
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "batch", cat="exec", batch=i, rows=len(delta)
            ) as batch_span:
                engine._process_batch(
                    compiled, ctx, self.batches, i, delta, bm, self.baseline
                )
                batch_span.set(
                    recovered=bm.recovered,
                    recomputed_tuples=bm.recomputed_tuples,
                )
        else:
            engine._process_batch(
                compiled, ctx, self.batches, i, delta, bm, self.baseline
            )
        bm.wall_seconds = time.perf_counter() - started
        if ctx.sanitizer is not None:
            engine.metrics.sanitize_seconds = ctx.sanitizer.seconds
        engine._maybe_checkpoint(ctx, i)
        if obs.enabled:
            engine._sample_metrics(ctx, bm, i)
            obs.flush()
        partial = engine._make_result(compiled, ctx, i, self.num_batches, bm)
        if profiler is not None:
            t0 = time.perf_counter()
            profiler.observe_batch(ctx, bm, partial)
            engine._sample_cost_metrics(ctx, bm, profiler, len(delta))
            engine.metrics.cost_calibration = profiler.calibration()
            engine.metrics.profile_seconds += time.perf_counter() - t0
        return partial

    def close(self) -> None:
        """Release everything the run acquired (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.run_span:
            self.run_span.__exit__(None, None, None)
        if self.ctx.sanitizer is not None:
            self.ctx.sanitizer.deactivate()
        if self.engine.profiler is not None:
            self.engine.profiler.finish()
        self.compiled.close()
        self.obs.flush()
        # The run owns the executor pool's lifecycle: a ParallelExecutor
        # re-creates its pool lazily on the next run, so closing here is
        # safe for engine reuse while guaranteeing no stranded threads.
        self.engine.executor.close()


def _finalize_row(row: dict[str, object]) -> dict[str, object]:
    """At the final batch estimates are exact; collapse them to scalars."""
    return {
        k: (v.value if isinstance(v, UncertainValue) else v)
        for k, v in row.items()
    }
