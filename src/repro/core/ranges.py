"""Variation ranges and integrity failure bookkeeping (Section 5.1).

The :class:`RangeMonitor` publishes, for every uncertain cell at a
lineage-block boundary, the paper's variation-range estimate

``R(u) = [min(û) − ε·σ(û), max(û) + ε·σ(û)]``

hulled with the running point estimate (whose side classification's point
decisions depend on) and guarded against degenerate bootstraps (see
:meth:`VariationRange.from_trials`). Classifiers prune near-deterministic
tuples against these ranges.

Integrity of the pruning decisions is enforced where the decisions live:
each online operator records a *sentinel* for every decision it resolved
(the det-side value and the expected outcome) and re-checks the tightest
sentinels against the current point estimates every batch
(:mod:`repro.core.sentinels`). A violated sentinel raises
:class:`~repro.errors.RangeIntegrityError`; the controller then rebuilds
all operator state by replaying the processed batches conservatively
(ranges frozen to "everything" → no pruning during the replay), after
which pruning resumes with fresh ranges. This protects exactly the
Theorem-1 property — the delivered partial result equals ``Q(D_i)`` —
while avoiding spurious recoveries for cells whose ranges are never used.
"""

from __future__ import annotations

import numpy as np

from repro.core.values import VariationRange
from repro.kernels.ranges import batched_range_bounds

#: Identifies one uncertain cell: (block id, group key tuple, column name).
CellKey = tuple[int, tuple, str]


class RangeMonitor:
    """Publishes variation ranges and counts integrity failures."""

    def __init__(self, slack: float = 2.0, enabled: bool = True):
        self.slack = slack
        self.enabled = enabled
        #: Count of integrity failures observed (drives Figure 9(d)).
        self.failures = 0
        #: While True (failure-recovery replay), published ranges are
        #: unbounded, so no pruning happens — which is what makes the
        #: replay unconditionally correct and recovery terminate.
        self.replaying = False
        self._current: dict[CellKey, VariationRange] = {}

    def observe(
        self, key: CellKey, batch_no: int, value: float, trials: np.ndarray
    ) -> VariationRange:
        """Publish this batch's range for one cell.

        With the monitor disabled (OPT1 off) or during a recovery replay,
        every cell keeps the unbounded range, so range-based pruning
        degenerates to "never prune".
        """
        if not self.enabled or self.replaying:
            return VariationRange.everything()
        fresh = VariationRange.from_trials(trials, self.slack)
        if np.isfinite(value):
            fresh = VariationRange(min(fresh.lo, value), max(fresh.hi, value))
        self._current[key] = fresh
        return fresh

    def observe_batch(
        self,
        block_id: int,
        column: str,
        keys: list[tuple],
        batch_no: int,
        points: np.ndarray,
        trials: np.ndarray,
    ) -> list[VariationRange]:
        """Vectorized :meth:`observe` over every group of one column.

        ``points`` is ``(G,)`` and ``trials`` is ``(G, T)``; entry ``i``
        publishes cell ``(block_id, keys[i], column)``. Produces the exact
        ranges the per-cell loop would (see
        :func:`repro.kernels.ranges.batched_range_bounds`), amortizing the
        NumPy reduction overhead across the whole group column.
        """
        if not self.enabled or self.replaying:
            return [VariationRange.everything()] * len(keys)
        lo, hi = batched_range_bounds(points, trials, self.slack)
        out = []
        for i, key in enumerate(keys):
            fresh = VariationRange(float(lo[i]), float(hi[i]))
            self._current[(block_id, key, column)] = fresh
            out.append(fresh)
        return out

    def range_for(self, key: CellKey) -> VariationRange:
        if not self.enabled or self.replaying:
            return VariationRange.everything()
        return self._current.get(key, VariationRange.everything())

    def record_failure(self) -> None:
        self.failures += 1

    def reset(self) -> None:
        """Drop published ranges (used before a recovery replay)."""
        self._current.clear()

    def __len__(self) -> int:
        return len(self._current)
