"""Partial query results delivered to the user each mini-batch."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.values import UncertainValue
from repro.metrics.stats import BatchMetrics
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass
class PartialResult:
    """The approximate answer after one mini-batch (Section 2 semantics).

    ``rows`` hold plain Python scalars for deterministic cells and
    :class:`UncertainValue` for approximate ones, so both the estimate and
    its bootstrap error are available per cell.
    """

    batch_no: int
    num_batches: int
    fraction_processed: float
    schema: Schema
    rows: list[dict[str, object]]
    metrics: BatchMetrics
    #: True for the final batch: the answer equals the exact batch result.
    is_final: bool = False

    def to_plain_rows(self) -> list[dict[str, object]]:
        """Rows with uncertain cells collapsed to their point estimates."""
        out = []
        for row in self.rows:
            out.append(
                {
                    k: (v.value if isinstance(v, UncertainValue) else v)
                    for k, v in row.items()
                }
            )
        return out

    def to_relation(self) -> Relation:
        """Materialize the point estimates as a relation (for comparison
        against the batch baseline)."""
        return Relation.from_rows(self.schema, self.to_plain_rows())

    def max_relative_stdev(self) -> float:
        """Worst relative standard deviation across all uncertain cells —
        the paper's Figure 7(a) accuracy measure (NaN when nothing is
        uncertain or no estimate is available)."""
        worst = float("nan")
        for row in self.rows:
            for v in row.values():
                if isinstance(v, UncertainValue):
                    rsd = v.relative_stdev()
                    if math.isnan(rsd):
                        continue
                    if math.isnan(worst) or rsd > worst:
                        worst = rsd
        return worst

    def confidence_intervals(self, level: float = 0.95) -> list[dict[str, tuple]]:
        """Per-row confidence intervals for every uncertain cell."""
        out = []
        for row in self.rows:
            ci = {
                k: v.confidence_interval(level)
                for k, v in row.items()
                if isinstance(v, UncertainValue)
            }
            out.append(ci)
        return out

    def sorted_plain_rows(self) -> list[dict[str, object]]:
        rows = self.to_plain_rows()
        names = self.schema.names
        rows.sort(key=lambda r: tuple(_key(r[c]) for c in names))
        return rows


def _key(value: object) -> tuple:
    if isinstance(value, (int, float, np.integer, np.floating)):
        f = float(value)
        return ("0num", -math.inf if math.isnan(f) else f)
    return (type(value).__name__, str(value))
