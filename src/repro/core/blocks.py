"""Lineage blocks, block outputs, and the per-batch runtime context.

Section 6.1 divides a query plan into maximal SPJA *lineage blocks*, each
ending at an AGGREGATE. iOLAP propagates fine-grained lineage within a
block and only ``(relation, group key)`` references across block
boundaries. This module holds the runtime datastructures that make that
work:

* :class:`GroupValue` / :class:`BlockOutput` — the published output of an
  aggregate block: per group key, the uncertain aggregate values (point
  estimate + bootstrap trials + variation range) and the group's own
  existence uncertainty (a group backed only by non-deterministic tuples
  may still disappear from some bootstrap trials);
* :class:`RuntimeContext` — everything an operator needs during one
  mini-batch: the batch number and scale factor, this batch's delta
  relations (with their Poisson trial multiplicities), the block registry
  for lazy lineage resolution, the range monitor, metrics, and the
  feature flags for the Figure 9(a) ablations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.bootstrap.poisson import trial_multiplicities
from repro.core.ranges import RangeMonitor
from repro.core.values import LineageRef, UncertainValue
from repro.errors import ReproError
from repro.metrics.stats import BatchMetrics
from repro.obs.session import NULL_OBS
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.state import StateRegistry

GroupKey = tuple


#: Membership status codes (aligned with repro.core.classify constants).
MEMBER_FALSE, MEMBER_TRUE, MEMBER_UNKNOWN = 0, 1, 2


@dataclass
class GroupValue:
    """One group's published state in a block output.

    Besides the aggregate values, a group carries its *membership* state
    for consumers that join against the block: plain aggregate blocks
    publish every group as a member, while filtered views (HAVING /
    IN-subquery sides) classify membership against variation ranges —
    ``MEMBER_TRUE``/``MEMBER_FALSE`` are stable decisions, and
    ``MEMBER_UNKNOWN`` groups expose their current point decision and the
    per-bootstrap-trial decisions.
    """

    key: GroupKey
    #: column name -> UncertainValue (aggregates) or scalar (group keys).
    values: dict[str, object]
    #: The group contains at least one tuple without tuple uncertainty, so
    #: its existence is settled (the AGGREGATE ``u#`` rule of Section 4.1).
    certain: bool
    #: Range-classified membership: MEMBER_TRUE / MEMBER_FALSE / MEMBER_UNKNOWN.
    member_status: int = MEMBER_TRUE
    #: Current point decision of the membership predicate.
    member_point: bool = True
    #: Per-bootstrap-trial existence/membership (None = all trials).
    exist_trials: np.ndarray | None = None

    def exist_in_trial(self, num_trials: int) -> np.ndarray:
        if self.exist_trials is None:
            return np.ones(num_trials, dtype=bool)
        return self.exist_trials

    @property
    def certainly_in(self) -> bool:
        return self.certain and self.member_status == MEMBER_TRUE

    @property
    def certainly_out(self) -> bool:
        return self.member_status == MEMBER_FALSE


class BlockOutput:
    """The (small) current output relation of a lineage block."""

    #: ``estimate_nbytes`` threads its seen-set through ``estimated_bytes``
    #: so groups shared with a rollup store are not double-counted.
    nbytes_seen_aware = True

    def __init__(self, block_id: int, key_cols: list[str], value_cols: list[str]):
        self.block_id = block_id
        self.key_cols = key_cols
        self.value_cols = value_cols
        self.groups: dict[GroupKey, GroupValue] = {}
        #: Keys first published this batch (delta of the block boundary).
        self.new_keys: list[GroupKey] = []
        #: Bumped once per publish cycle when the output object persists
        #: across batches (the rollup publish path); derived caches keyed
        #: on output identity (e.g. the kernel group tables) must compare
        #: versions, not just identity.
        self.version = 0
        #: Keys published behind the hot tier's stable prefix (tombstones
        #: and keys not yet in the sketch); the next publish cycle pops
        #: and re-appends them so hot groups keep their first-published
        #: positions.
        self.tail_keys: list[GroupKey] = []

    def get(self, key: GroupKey) -> GroupValue | None:
        return self.groups.get(key)

    def publish(self, group: GroupValue, is_new: bool) -> None:
        self.groups[group.key] = group
        if is_new:
            self.new_keys.append(group.key)

    def __len__(self) -> int:
        return len(self.groups)

    def __deepcopy__(self, memo: dict) -> "BlockOutput":
        """Checkpoint copy: fresh containers, shared ``GroupValue`` leaves.

        Published groups are replaced, never mutated in place (each
        publish cycle builds new ``GroupValue`` objects), so a snapshot
        only needs its own dict/list structure. This keeps checkpoints of
        the persistent rollup-path output O(groups) pointer copies
        instead of deep-copying every trials array in the block.
        """
        clone = BlockOutput(self.block_id, self.key_cols, self.value_cols)
        memo[id(self)] = clone
        clone.groups = dict(self.groups)
        clone.new_keys = list(self.new_keys)
        clone.tail_keys = list(self.tail_keys)
        clone.version = self.version
        return clone

    def estimated_bytes(self, seen: set[int] | None = None) -> int:
        if not self.groups:
            return 0
        sample = next(iter(self.groups.values()))
        per_group = 32
        for v in sample.values.values():
            per_group += 8
            if isinstance(v, UncertainValue):
                per_group += 8 * len(v.trials)
        if seen is None:
            return per_group * len(self.groups)
        # Count only groups not already measured under another entry (a
        # rollup tier referencing the same GroupValue objects), marking
        # them so the dedup is symmetric whichever entry sizes first.
        fresh = 0
        for group in self.groups.values():
            if id(group) not in seen:
                seen.add(id(group))
                fresh += 1
        return per_group * fresh


@dataclass
class OnlineConfig:
    """Tunable knobs of an online execution (paper Sections 5, 7, 8.4)."""

    #: Bootstrap trials used for error estimation / variation ranges.
    num_trials: int = 100
    #: Slack parameter ε of the variation-range estimator.
    slack: float = 2.0
    #: OPT1 — tuple-uncertainty partitioning via variation ranges. Off =
    #: the conservative Section 4 algorithm (everything touched by an
    #: uncertain predicate stays non-deterministic forever).
    prune_with_ranges: bool = True
    #: OPT2 — lineage propagation + lazy evaluation. Off = regenerate
    #: non-deterministic tuples from their source rows through the full
    #: upstream operator chain every batch.
    lazy_lineage: bool = True
    #: RNG seed for partitioning and bootstrap draws.
    seed: int = 0
    #: Use the vectorized hot-path kernels (``repro.kernels``). Off = the
    #: row-wise reference implementations; results are bit-identical
    #: either way (enforced by tests), so this is a perf escape hatch and
    #: an A/B lever for the kernel benchmarks, not a semantics switch.
    vectorize: bool = True
    #: Contract-check mode: cross-check the static analyzer's claims at
    #: runtime (input fingerprints around each ``process`` call, state-key
    #: snapshots per batch, cross-thread store-write detection). Purely
    #: observational — results are bit-identical to a non-verify run.
    verify: bool = False
    #: Take a state checkpoint every N batches (Section 5.1 recovery):
    #: failure recovery restores the newest checkpoint at or before the
    #: failure's ``recover_from_batch`` and replays only the suffix. 0
    #: disables periodic checkpoints (recovery replays from the pristine
    #: pre-run snapshot, the pre-checkpoint behavior).
    checkpoint_interval: int = 8
    #: Ring-buffer capacity: at most this many checkpoints are retained
    #: (oldest evicted first; the pristine baseline is kept separately).
    checkpoint_keep: int = 4
    #: Byte budget across retained checkpoints (``estimate_nbytes`` of
    #: each snapshot); oldest checkpoints are evicted to stay under it.
    checkpoint_budget_bytes: int = 256 * 1024 * 1024
    #: Deterministic fault-injection plan: a spec string like
    #: ``"sentinel@16,unit@5:aggregate*2,checkpoint@12"`` (see
    #: :mod:`repro.faults`), an already-parsed ``FaultPlan``, or None
    #: (no faults — the production setting).
    faults: object = None
    #: Executor retries per unit for transient failures (errors carrying
    #: ``transient = True``, e.g. injected unit faults); anything else
    #: propagates immediately.
    unit_retry_attempts: int = 2
    #: Base backoff seconds between unit retries (doubled per retry); 0
    #: retries immediately (the test/benchmark setting).
    unit_retry_backoff: float = 0.0
    #: Run the TSan-style buffer sanitizer
    #: (:class:`repro.analysis.sanitize.BufferSanitizer`): freeze every
    #: buffer handed to ``process`` and every zero-copy view base, track
    #: view provenance, and cross-check per-batch access logs between
    #: ParallelExecutor threads. Off by default (zero cost when off).
    sanitize: bool = False
    #: Continuous profiling (:mod:`repro.obs.profile`): fold every batch
    #: into a rolling per-operator EWMA profile and fit the predictive
    #: cost model from it. Purely observational — results are
    #: bit-identical to an unprofiled run (enforced by tests); zero cost
    #: when off (one ``is None`` test per batch).
    profile: bool = False
    #: Path of the ``profiles.json`` artifact: loaded (if present) at
    #: run start so predictions warm-start from prior runs of the same
    #: plan shape, saved at run end. None keeps profiles in memory only.
    profile_path: str | None = None
    #: Also run the sampling stack profiler (daemon thread reading
    #: ``sys._current_frames()`` of the controller thread); implies the
    #: same bit-identical guarantee — it only reads frames.
    profile_stack: bool = False
    #: Batches of samples the cost model needs before it starts issuing
    #: predictions (calibration counts only scored predictions).
    profile_warmup_batches: int = 5
    #: Accuracy target (worst relative stdev) the telemetry layer
    #: reports distance-to-convergence against (the
    #: ``costmodel.batches_to_target`` gauge and ``iolap top``'s ETA);
    #: None disables the gauge. Does not stop the run — early stopping
    #: stays the caller's decision, as in the paper's interaction model.
    target_rsd: float | None = None
    #: Two-tier aggregation (:mod:`repro.rollup`): migrate groups whose
    #: pruning decisions the sentinel layer has resolved out of the
    #: per-batch hot loop into a finalized rollup tier, so batch cost
    #: scales with the live ND set instead of the total group count.
    #: Results are bit-identical to a rollup-off run (enforced by tests).
    rollup: bool = False
    #: Consecutive batches a resolved group must go untouched (no new
    #: certain or ND contribution) before it migrates to the rollup tier.
    #: Higher = more conservative (fewer demotions on late arrivals).
    rollup_quiesce: int = 2
    #: Process-level scale-out (:mod:`repro.engine.shards`): hash-partition
    #: the streamed table across this many worker processes, each running
    #: the full delta algorithm over its shard with shared-nothing state,
    #: merging per-batch results deterministically at the sink. 0/1 = off
    #: (single-process execution). Plans without a fact-column group key
    #: fall back to single-process execution automatically.
    shards: int = 0


class RuntimeContext:
    """Mutable per-execution state threaded through all online operators."""

    def __init__(
        self,
        statics: Catalog,
        streamed_table: str,
        total_rows: int,
        config: OnlineConfig,
    ):
        self.statics = statics
        self.streamed_table = streamed_table
        self.total_rows = total_rows
        self.config = config
        self.monitor = RangeMonitor(slack=config.slack, enabled=config.prune_with_ranges)
        self.blocks: dict[int, BlockOutput] = {}
        self.batch_no = 0
        self.seen_rows = 0
        #: Operator state stores, registered by ``SpineOp.open``; the
        #: engine checkpoints/restores through this registry.
        self.stores = StateRegistry()
        self._metrics: BatchMetrics = BatchMetrics(0)
        #: Per-thread metrics override (parallel executor workers record
        #: into private scratch metrics merged deterministically later).
        self._metrics_local = threading.local()
        self._delta: Relation | None = None
        #: True while replaying batches during failure recovery: range
        #: observations neither check integrity nor tighten ranges.
        self.replaying = False
        #: Runtime contract verifier (``--verify`` mode), or None. Imported
        #: lazily: repro.analysis must stay optional on the hot path.
        self.verifier = None
        if config.verify:
            from repro.analysis.verify import ContractVerifier

            self.verifier = ContractVerifier()
        #: Runtime buffer sanitizer (``config.sanitize``), or None. Like
        #: the verifier, imported lazily so the analysis layer stays off
        #: the engine's import path unless requested.
        self.sanitizer = None
        if config.sanitize:
            from repro.analysis.sanitize import BufferSanitizer

            self.sanitizer = BufferSanitizer()
        #: Observability session (tracer + metrics registry + event bus).
        #: The inert NULL_OBS by default; the engine attaches a real one.
        self.obs = NULL_OBS
        #: Deterministic fault injector (``config.faults``), or None. The
        #: operators and executors poke :meth:`fault` at their designated
        #: injection points; with no plan configured that is one attribute
        #: test per point.
        self.faults = None
        if config.faults:
            from repro.faults import FaultInjector, as_plan

            self.faults = FaultInjector(as_plan(config.faults))

    def fault(self, point: str, label: str | None = None) -> None:
        """Fault-injection hook: raises if an armed fault matches
        ``point`` at the current batch (no-op without a fault plan)."""
        if self.faults is not None:
            self.faults.fire(point, self, label=label)

    def attach_obs(self, obs) -> None:
        """Install an observability session (and wire the verifier's
        warning emitter into its trace timeline)."""
        self.obs = obs
        if self.verifier is not None and obs.enabled:
            self.verifier.emit = obs.tracer.warning
        if self.sanitizer is not None and obs.enabled:
            self.sanitizer.emit = obs.tracer.warning

    # -- metrics routing -----------------------------------------------------------

    @property
    def metrics(self) -> BatchMetrics:
        override = getattr(self._metrics_local, "stack", None)
        if override:
            return override[-1]
        return self._metrics

    @metrics.setter
    def metrics(self, value: BatchMetrics) -> None:
        self._metrics = value

    def push_metrics(self, metrics: BatchMetrics) -> None:
        """Route this thread's metric writes to ``metrics`` until popped."""
        stack = getattr(self._metrics_local, "stack", None)
        if stack is None:
            stack = self._metrics_local.stack = []
        stack.append(metrics)

    def pop_metrics(self) -> BatchMetrics:
        return self._metrics_local.stack.pop()

    # -- per-batch lifecycle -------------------------------------------------------

    def begin_batch(
        self, batch_no: int, delta: Relation, metrics: BatchMetrics
    ) -> None:
        """Install this batch's streamed delta (tagging bootstrap trials)."""
        self.batch_no = batch_no
        self.metrics = metrics
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "bootstrap", cat="bootstrap", batch=batch_no,
                rows=len(delta), trials=self.config.num_trials,
            ):
                trials = trial_multiplicities(
                    len(delta),
                    self.config.num_trials,
                    self.config.seed,
                    self.streamed_table,
                    batch_no,
                )
        else:
            trials = trial_multiplicities(
                len(delta),
                self.config.num_trials,
                self.config.seed,
                self.streamed_table,
                batch_no,
            )
        self._delta = delta.with_mult(delta.mult, trials)
        self.seen_rows += len(delta)
        metrics.new_tuples += len(delta)

    @property
    def delta(self) -> Relation:
        if self._delta is None:
            raise ReproError("no delta installed; call begin_batch first")
        return self._delta

    @property
    def scale(self) -> float:
        """The extrapolation factor ``m_i = |D| / |D_i|``."""
        if self.seen_rows == 0:
            return 1.0
        return self.total_rows / self.seen_rows

    @property
    def num_trials(self) -> int:
        return self.config.num_trials

    # -- lineage resolution (Section 6.2's broadcast-join lookup) -------------------

    def block(self, block_id: int) -> BlockOutput:
        try:
            return self.blocks[block_id]
        except KeyError:
            raise ReproError(f"block {block_id} has not published output yet") from None

    def resolve(self, ref: LineageRef) -> object | None:
        """Current value of a lineage reference (None if group unseen)."""
        output = self.blocks.get(ref.block_id)
        if output is None:
            return None
        group = output.groups.get(ref.key)
        if group is None:
            return None
        return group.values.get(ref.column)

    def reset_for_replay(self, batch_no: int = 0, seen_rows: int = 0) -> None:
        """Rewind the batch cursor before a recovery replay.

        Published block outputs are dropped (the first replayed batch
        republishes every block: producers run before consumers within a
        batch); ``batch_no``/``seen_rows`` rewind to the restored
        checkpoint's position so ``ctx.scale`` extrapolates correctly
        through the replayed suffix.
        """
        self.blocks.clear()
        self.seen_rows = seen_rows
        self.batch_no = batch_no
        self._delta = None
