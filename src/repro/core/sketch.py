"""Sketch states for online AGGREGATE operators (Section 4.2).

Decomposable aggregates maintain, per group, the weighted feature sums
``S_k = Σ w·f_k(x)`` and the weight sum ``W = Σ w`` — once for the actual
multiplicities and once per bootstrap trial. Folding a mini-batch into the
sketch is the delta update; finalizing is a pure function of the sums, so
partial results can be published every batch at sketch cost instead of
data cost.

:class:`AggBundle` is one such table of sums. The persistent operator
state (:class:`GroupedSketch`) folds batches in place with capacity
doubling; transient bundles are also built from the volatile
(non-deterministic) input rows each batch and merged at finalize time
without touching the persistent sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.relational.aggregates import AggSpec
from repro.relational.groupby import group_ids
from repro.relational.relation import Relation

GroupKey = tuple


@dataclass
class SketchRow:
    """One group's sum row, detached from the bundle's tables.

    The unit of tier migration: :meth:`AggBundle.extract_groups` hands
    these to the rollup store, and :meth:`AggBundle.reinsert_groups`
    folds them back verbatim on demotion, so a migrate/demote round trip
    is bit-exact.
    """

    weight: float
    trial_weight: np.ndarray  # (T,)
    sums: list[np.ndarray]  # per spec, (k,)
    trial_sums: list[np.ndarray]  # per spec, (T, k)

    def estimated_bytes(self) -> int:
        nbytes = 8 + int(self.trial_weight.nbytes)
        nbytes += sum(int(a.nbytes) for a in self.sums)
        nbytes += sum(int(a.nbytes) for a in self.trial_sums)
        return nbytes


class AggBundle:
    """Per-group (actual + per-trial) weighted feature sums."""

    def __init__(self, specs: Sequence[AggSpec], num_trials: int):
        self.specs = list(specs)
        self.num_trials = num_trials
        self.keys: list[GroupKey] = []
        self.key_to_gid: dict[GroupKey, int] = {}
        g = 0
        self.weight = np.zeros(g, dtype=np.float64)
        self.trial_weight = np.zeros((g, num_trials), dtype=np.float64)
        self.sums = [
            np.zeros((g, s.func.num_features), dtype=np.float64) for s in self.specs
        ]
        self.trial_sums = [
            np.zeros((g, num_trials, s.func.num_features), dtype=np.float64)
            for s in self.specs
        ]

    def __len__(self) -> int:
        return len(self.keys)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        rel: Relation,
        group_by: Sequence[str],
        specs: Sequence[AggSpec],
        num_trials: int,
    ) -> "AggBundle":
        """One-shot bundle from a relation (used for volatile inputs)."""
        bundle = cls(specs, num_trials)
        bundle.fold(rel, group_by)
        return bundle

    def _ensure_groups(self, keys: Sequence[GroupKey]) -> np.ndarray:
        """Map keys to gids, allocating rows for unseen groups."""
        gids = np.empty(len(keys), dtype=np.intp)
        fresh = 0
        for i, key in enumerate(keys):
            gid = self.key_to_gid.get(key)
            if gid is None:
                gid = len(self.keys)
                self.key_to_gid[key] = gid
                self.keys.append(key)
                fresh += 1
            gids[i] = gid
        if fresh:
            self._grow(len(self.keys))
        return gids

    def _grow(self, size: int) -> None:
        def grown(arr: np.ndarray) -> np.ndarray:
            if arr.shape[0] >= size:
                return arr
            extra = np.zeros((size - arr.shape[0],) + arr.shape[1:], dtype=np.float64)
            return np.concatenate([arr, extra], axis=0)

        self.weight = grown(self.weight)
        self.trial_weight = grown(self.trial_weight)
        self.sums = [grown(a) for a in self.sums]
        self.trial_sums = [grown(a) for a in self.trial_sums]

    # -- delta update ---------------------------------------------------------------

    def fold(self, rel: Relation, group_by: Sequence[str]) -> None:
        """Fold a mini-batch of rows into the sums (the delta update)."""
        if len(rel) == 0:
            return
        local_keys, local_gids = group_ids(rel, list(group_by))
        gids = self._ensure_groups(local_keys)[local_gids]
        # Deterministic-mult batches never materialize the (n, T) copy:
        # the broadcast view is read-only, and every use below either
        # reduces over it or fancy-indexes (which copies).
        trial_w = (
            rel.trial_mults
            if rel.trial_mults is not None
            else np.broadcast_to(rel.mult[:, None], (len(rel), self.num_trials))
        )
        np.add.at(self.weight, gids, rel.mult)
        np.add.at(self.trial_weight, gids, trial_w)
        for s, spec in enumerate(self.specs):
            k = spec.func.num_features
            if k == 0:
                continue
            feats = spec.func.features(spec.arg_values(rel))  # (k, n)
            np.add.at(self.sums[s], gids, (feats * rel.mult).T)
            np.add.at(
                self.trial_sums[s], gids, feats.T[:, None, :] * trial_w[:, :, None]
            )

    def fold_values(
        self,
        keys: Sequence[GroupKey],
        spec_index: int,
        values: np.ndarray,
        trial_values: np.ndarray,
        mult: np.ndarray,
        trial_mults: np.ndarray,
    ) -> None:
        """Fold rows whose aggregate argument is itself uncertain.

        ``values`` holds the per-row point arguments, ``trial_values`` the
        (n, T) per-trial arguments. Only single-feature functions support
        uncertain arguments (SUM/AVG-style; features = identity), which is
        checked at compile time.
        """
        gids = self._ensure_groups(list(keys))
        np.add.at(self.weight, gids, mult)
        np.add.at(self.trial_weight, gids, trial_mults)
        np.add.at(self.sums[spec_index], gids, (values * mult)[:, None])
        np.add.at(
            self.trial_sums[spec_index],
            gids,
            (trial_values * trial_mults)[:, :, None],
        )

    def fold_values_coded(
        self,
        keys: Sequence[GroupKey],
        gids: np.ndarray,
        spec_index: int,
        values: np.ndarray,
        trial_values: np.ndarray,
        mult: np.ndarray,
        trial_mults: np.ndarray,
    ) -> None:
        """Vectorized :meth:`fold_values`: rows arrive pre-factorized.

        ``keys`` lists the distinct group keys in first-appearance order
        and ``gids`` codes each row into that list (the key codec's
        output), replacing the per-row dict probe. Accumulation order is
        identical to :meth:`fold_values`, so the sums are bit-identical.
        """
        base = self._ensure_groups(list(keys))
        g = base[gids] if len(base) else np.zeros(0, dtype=np.intp)
        np.add.at(self.weight, g, mult)
        np.add.at(self.trial_weight, g, trial_mults)
        np.add.at(self.sums[spec_index], g, (values * mult)[:, None])
        np.add.at(
            self.trial_sums[spec_index],
            g,
            (trial_values * trial_mults)[:, :, None],
        )

    # -- tier migration ----------------------------------------------------------------

    def extract_groups(
        self, keys: Sequence[GroupKey]
    ) -> dict[GroupKey, "SketchRow"]:
        """Remove ``keys`` from the sketch, returning their sum rows.

        The extracted rows are private copies (the rollup tier owns them
        across batches); the surviving groups are compacted in key order,
        so re-folding never scatters into a hole. Inverse:
        :meth:`reinsert_groups`.
        """
        wanted = set(keys)
        rows: dict[GroupKey, SketchRow] = {}
        for key in keys:
            gid = self.key_to_gid[key]
            rows[key] = SketchRow(
                weight=float(self.weight[gid]),
                trial_weight=self.trial_weight[gid].copy(),
                sums=[a[gid].copy() for a in self.sums],
                trial_sums=[a[gid].copy() for a in self.trial_sums],
            )
        g = len(self.keys)
        keep = np.array(
            [k not in wanted for k in self.keys], dtype=bool
        )
        self.keys = [k for k in self.keys if k not in wanted]
        self.key_to_gid = {k: i for i, k in enumerate(self.keys)}
        self.weight = self.weight[:g][keep]
        self.trial_weight = self.trial_weight[:g][keep]
        self.sums = [a[:g][keep] for a in self.sums]
        self.trial_sums = [a[:g][keep] for a in self.trial_sums]
        return rows

    def reinsert_groups(self, rows: dict[GroupKey, "SketchRow"]) -> None:
        """Put extracted sum rows back (demotion from the rollup tier).

        Assignment, not accumulation: the sketch must not already hold
        the keys (they were extracted, and demotion runs before the
        batch's fold touches them again).
        """
        if not rows:
            return
        gids = self._ensure_groups(list(rows))
        for gid, row in zip(gids, rows.values()):
            self.weight[gid] = row.weight
            self.trial_weight[gid] = row.trial_weight
            for s in range(len(self.specs)):
                self.sums[s][gid] = row.sums[s]
                self.trial_sums[s][gid] = row.trial_sums[s]

    # -- finalize ----------------------------------------------------------------------

    def merged_with(self, other: "AggBundle | None") -> "AggBundle":
        """A new bundle summing this one with ``other`` (keys unioned)."""
        if other is None or len(other) == 0:
            return self
        out = AggBundle(self.specs, self.num_trials)
        out._ensure_groups(self.keys)
        out._ensure_groups(other.keys)
        for bundle in (self, other):
            if len(bundle) == 0:
                continue
            gids = np.array(
                [out.key_to_gid[k] for k in bundle.keys], dtype=np.intp
            )
            np.add.at(out.weight, gids, bundle.weight[: len(bundle)])
            np.add.at(out.trial_weight, gids, bundle.trial_weight[: len(bundle)])
            for s in range(len(self.specs)):
                np.add.at(out.sums[s], gids, bundle.sums[s][: len(bundle)])
                np.add.at(out.trial_sums[s], gids, bundle.trial_sums[s][: len(bundle)])
        return out

    def finalize(
        self, spec_index: int, scale: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-group results: ``(values (G,), trial_values (G, T))``."""
        g = len(self.keys)
        spec = self.specs[spec_index]
        values = np.asarray(
            spec.func.finalize(self.sums[spec_index][:g], self.weight[:g]),
            dtype=np.float64,
        )
        trial_values = np.asarray(
            spec.func.finalize(
                self.trial_sums[spec_index][:g], self.trial_weight[:g]
            ),
            dtype=np.float64,
        )
        if spec.func.scales_with_m and scale != 1.0:
            values = values * scale
            trial_values = trial_values * scale
        return values, trial_values

    def estimated_bytes(self) -> int:
        g = len(self.keys)
        per_group = 8 * (1 + self.num_trials)
        for spec in self.specs:
            per_group += 8 * spec.func.num_features * (1 + self.num_trials)
        return per_group * g + 48 * g  # sums + key dict overhead
