"""Static uncertainty propagation analysis (Section 4.1).

Given a logical plan and the set of streamed tables, this pass computes
for every plan node the paper's compile-time uncertainty tags:

* ``tuple_uncertain`` — whether tuples in the node's output can change
  their multiplicity in later batches (``u#`` may be ``T``);
* ``uncertain_cols`` — output columns whose values can change
  (``uA`` may be ``T``);
* ``sample_weighted`` — whether the node's rows are a uniform sample of
  the eventual full output, so aggregates above it must extrapolate
  SUM/COUNT-style results by ``m_i``;
* ``raw_stream`` — whether the node's rows derive row-for-row from a
  streamed scan *without* an intervening aggregate (used to reject
  stream-stream joins, which the paper does not stream).

The pass also enforces the supported-query restrictions of Section 3.3:
no uncertain join or group-by keys ("approximate keys under sampling"),
and only Hadamard-differentiable aggregate functions over sampled data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)


@dataclass(frozen=True)
class NodeTags:
    """Compile-time uncertainty annotation of one plan node's output."""

    tuple_uncertain: bool
    uncertain_cols: frozenset[str]
    sample_weighted: bool
    raw_stream: bool

    @property
    def deterministic(self) -> bool:
        return not self.tuple_uncertain and not self.uncertain_cols


STATIC_TAGS = NodeTags(False, frozenset(), False, False)


def analyze(
    plan: PlanNode, streamed_tables: set[str]
) -> dict[int, NodeTags]:
    """Tag every node in ``plan``; returns ``{node_id: NodeTags}``.

    Raises :class:`UnsupportedQueryError` for queries outside the online
    engine's supported class.
    """
    tags: dict[int, NodeTags] = {}
    _tag(plan, streamed_tables, tags)
    return tags


def _tag(
    node: PlanNode, streamed: set[str], tags: dict[int, NodeTags]
) -> NodeTags:
    result = _tag_inner(node, streamed, tags)
    tags[node.node_id] = result
    return result


def _tag_inner(
    node: PlanNode, streamed: set[str], tags: dict[int, NodeTags]
) -> NodeTags:
    if isinstance(node, Scan):
        if node.table in streamed:
            # Streamed leaf: all attributes deterministic, multiplicities
            # follow the accumulated sampling function s(t; i).
            return NodeTags(True, frozenset(), True, True)
        return STATIC_TAGS

    if isinstance(node, Select):
        child = _tag(node.child, streamed, tags)
        touches_uncertain = bool(node.predicate.attrs() & child.uncertain_cols)
        return NodeTags(
            child.tuple_uncertain or touches_uncertain,
            child.uncertain_cols,
            child.sample_weighted,
            child.raw_stream,
        )

    if isinstance(node, Project):
        child = _tag(node.child, streamed, tags)
        out_uncertain = frozenset(
            name
            for name, expr in node.outputs
            if expr.attrs() & child.uncertain_cols
        )
        return NodeTags(
            child.tuple_uncertain,
            out_uncertain,
            child.sample_weighted,
            child.raw_stream,
        )

    if isinstance(node, Rename):
        child = _tag(node.child, streamed, tags)
        renamed = frozenset(
            node.mapping.get(c, c) for c in child.uncertain_cols
        )
        return NodeTags(
            child.tuple_uncertain, renamed, child.sample_weighted, child.raw_stream
        )

    if isinstance(node, Join):
        left = _tag(node.left, streamed, tags)
        right = _tag(node.right, streamed, tags)
        for lk, rk in node.keys:
            if lk in left.uncertain_cols or rk in right.uncertain_cols:
                raise UnsupportedQueryError(
                    f"join key {lk!r}={rk!r} is uncertain under sampling; "
                    "approximate join keys are not supported (Section 3.3)",
                    node=node,
                )
        if left.raw_stream and right.raw_stream:
            raise UnsupportedQueryError(
                "both join inputs stream the raw fact table; stream only one "
                "input relation and read the others in entirety (Section 2)",
                node=node,
            )
        kept_right = right.uncertain_cols - set(node.right_keys)
        return NodeTags(
            left.tuple_uncertain or right.tuple_uncertain,
            left.uncertain_cols | kept_right,
            left.sample_weighted or right.sample_weighted,
            left.raw_stream or right.raw_stream,
        )

    if isinstance(node, Union):
        left = _tag(node.left, streamed, tags)
        right = _tag(node.right, streamed, tags)
        return NodeTags(
            left.tuple_uncertain or right.tuple_uncertain,
            left.uncertain_cols | right.uncertain_cols,
            left.sample_weighted or right.sample_weighted,
            left.raw_stream or right.raw_stream,
        )

    if isinstance(node, Aggregate):
        child = _tag(node.child, streamed, tags)
        for g in node.group_by:
            if g in child.uncertain_cols:
                raise UnsupportedQueryError(
                    f"group-by key {g!r} is uncertain under sampling; "
                    "approximate group-by keys are not supported (Section 3.3)",
                    node=node,
                )
        agg_uncertain: set[str] = set()
        for spec in node.aggs:
            input_changes = (
                child.tuple_uncertain
                or child.sample_weighted
                or bool(spec.attrs() & child.uncertain_cols)
            )
            if input_changes and not spec.func.hadamard_differentiable:
                raise UnsupportedQueryError(
                    f"aggregate {spec.func.name.upper()} is not Hadamard "
                    "differentiable and cannot be approximated under "
                    "sampling (Section 3.3)",
                    node=node,
                )
            if input_changes:
                agg_uncertain.add(spec.name)
        # A group's multiplicity is uncertain only if every contributing
        # tuple is uncertain; statically that collapses to "the input has
        # tuple uncertainty at all" (new groups may still appear).
        return NodeTags(
            child.tuple_uncertain, frozenset(agg_uncertain), False, False
        )

    if isinstance(node, Distinct):
        child = _tag(node.child, streamed, tags)
        for c in node.columns:
            if c in child.uncertain_cols:
                raise UnsupportedQueryError(
                    f"distinct over uncertain column {c!r} is not supported",
                    node=node,
                )
        return NodeTags(child.tuple_uncertain, frozenset(), False, False)

    raise UnsupportedQueryError(
        f"cannot analyze node {type(node).__name__}", node=node
    )
