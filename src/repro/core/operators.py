"""Online operator implementations (Sections 4.2, 5.2, 6.2).

These operators form the *stream pipelines* of a compiled online query:
the incremental dataflow over the streamed fact table. Each operator
consumes and produces a :class:`DeltaBatch` per mini-batch:

* ``certain`` — rows emitted *permanently* this batch. Their multiplicity
  can only be confirmed, never revoked (modulo failure recovery), so
  downstream aggregates fold them into sketches and forget them.
* ``volatile`` — the full current contribution of non-deterministic rows,
  recomputed every batch. Downstream operators recompute whatever depends
  on them, which is exactly the recomputation iOLAP's optimizations keep
  small.

Row-level bootstrap state rides along as the relation's ``mult`` (current
point decision) and ``trial_mults`` (per-trial decisions), so a single
mechanism covers both partial-result semantics and error estimation.

State kept between batches follows the paper's delta-update principle:
tuple uncertainty is resolved as early as possible (SELECT/JOIN
non-deterministic stores, re-classified each batch against variation
ranges), attribute uncertainty as late as possible (lineage references
resolved lazily at use sites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BlockOutput, GroupKey, GroupValue, RuntimeContext
from repro.core.classify import (
    FALSE,
    PENDING,
    TRUE,
    UNKNOWN,
    ClassifyResult,
    classify_comparison,
    combine_conjuncts,
    evaluate_side,
)
from repro.core.sentinels import MembershipSentinels, SentinelStore
from repro.core.sketch import AggBundle
from repro.core.values import LineageRef, UncertainValue
from repro.errors import UnsupportedQueryError
from repro.relational.aggregates import AggSpec
from repro.relational.algebra import Project
from repro.relational.evaluator import join_relations, project_relation
from repro.relational.expressions import Comparison, Expression
from repro.relational.groupby import group_ids
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass
class DeltaBatch:
    """Per-batch dataflow message between online operators."""

    certain: Relation
    volatile: Relation

    @property
    def total_rows(self) -> int:
        return len(self.certain) + len(self.volatile)


def empty_relation(schema: Schema, uncertain_cols: set[str], num_trials: int) -> Relation:
    """Empty relation whose uncertain columns use object dtype (refs)."""
    cols = {}
    for c in schema:
        dtype = np.dtype(object) if c.name in uncertain_cols else c.ctype.dtype
        cols[c.name] = np.empty(0, dtype=dtype)
    return Relation(
        schema, cols, np.empty(0), np.empty((0, num_trials), dtype=np.float64)
    )


class SpineOp:
    """Base class of online operators in a stream pipeline."""

    def __init__(self, label: str, schema: Schema, uncertain_cols: set[str]):
        self.label = label
        self.schema = schema
        self.uncertain_cols = set(uncertain_cols)

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all inter-batch state (used by failure recovery)."""

    def record_state(self, ctx: RuntimeContext) -> None:
        """Report current state footprint into the batch metrics."""

    def empty(self, ctx: RuntimeContext) -> Relation:
        return empty_relation(self.schema, self.uncertain_cols, ctx.num_trials)


class ScanOp(SpineOp):
    """Leaf of a stream pipeline: this batch's delta of the streamed table."""

    def __init__(self, table: str, schema: Schema):
        super().__init__(f"scan:{table}", schema, set())
        self.table = table

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        return DeltaBatch(ctx.delta, self.empty(ctx))


class FilterOp(SpineOp):
    """SELECT with a fully deterministic predicate — pure delta rule."""

    def __init__(self, child: SpineOp, predicate: Expression):
        super().__init__(f"filter:{id(predicate):x}", child.schema, child.uncertain_cols)
        self.child = child
        self.predicate = predicate

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        return DeltaBatch(
            _filter_det(inp.certain, self.predicate),
            _filter_det(inp.volatile, self.predicate),
        )

    def reset(self) -> None:
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        self.child.record_state(ctx)


def _filter_det(rel: Relation, predicate: Expression) -> Relation:
    if len(rel) == 0:
        return rel
    mask = np.asarray(predicate.evaluate(rel), dtype=bool)
    return rel.filter(mask)


class ProjectOp(SpineOp):
    """PROJECT over a stream. Uncertain columns may only pass through
    unchanged (computation over uncertain attributes is deferred to the
    use sites — the lazy-evaluation principle)."""

    def __init__(self, child: SpineOp, node: Project, schema: Schema):
        uncertain_out = set()
        from repro.relational.expressions import Col

        for name, expr in node.outputs:
            touched = expr.attrs() & child.uncertain_cols
            if touched:
                if not isinstance(expr, Col):
                    raise UnsupportedQueryError(
                        f"projection {name!r} computes over uncertain columns "
                        f"{sorted(touched)}; move the computation into the "
                        "consuming predicate or aggregate (lazy evaluation)"
                    )
                uncertain_out.add(name)
        super().__init__(f"project:{node.node_id}", schema, uncertain_out)
        self.child = child
        self.node = node

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        return DeltaBatch(self._project(inp.certain), self._project(inp.volatile))

    def _project(self, rel: Relation) -> Relation:
        cols: dict[str, np.ndarray] = {}
        for (name, expr), column in zip(self.node.outputs, self.schema):
            values = expr.evaluate(rel)
            if name in self.uncertain_cols:
                cols[name] = np.asarray(values, dtype=object)
            else:
                cols[name] = np.asarray(values, dtype=column.ctype.dtype)
        return Relation(self.schema, cols, rel.mult, rel.trial_mults)

    def reset(self) -> None:
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        self.child.record_state(ctx)


class RenameOp(SpineOp):
    def __init__(self, child: SpineOp, mapping: dict[str, str], schema: Schema):
        renamed = {mapping.get(c, c) for c in child.uncertain_cols}
        super().__init__("rename", schema, renamed)
        self.child = child
        self.mapping = mapping

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        return DeltaBatch(
            inp.certain.rename(self.mapping), inp.volatile.rename(self.mapping)
        )

    def reset(self) -> None:
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        self.child.record_state(ctx)


class UnionOp(SpineOp):
    def __init__(self, left: SpineOp, right: SpineOp):
        super().__init__("union", left.schema, left.uncertain_cols | right.uncertain_cols)
        self.left = left
        self.right = right

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        a = self.left.process(ctx)
        b = self.right.process(ctx)
        return DeltaBatch(a.certain.concat(b.certain), a.volatile.concat(b.volatile))

    def reset(self) -> None:
        self.left.reset()
        self.right.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        self.left.record_state(ctx)
        self.right.record_state(ctx)


class StaticEmitOp(SpineOp):
    """Emits a precomputed static relation once, at the first batch.

    Used for the static branch of a UNION with a stream: the static rows
    are all certain and appear exactly once.
    """

    def __init__(self, relation: Relation, label: str = "static"):
        super().__init__(label, relation.schema, set())
        self.relation = relation
        self._emitted = False

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        if self._emitted:
            return DeltaBatch(self.empty(ctx), self.empty(ctx))
        self._emitted = True
        return DeltaBatch(self.relation, self.empty(ctx))

    def reset(self) -> None:
        self._emitted = False


class StaticJoinOp(SpineOp):
    """JOIN of the stream with a static (dimension) side.

    The paper's JOIN state rule: when only the fact table is streamed, the
    operator state is just the dimension side, kept in memory from batch 1
    (and reported as join state for the Figure 9(b) accounting).
    """

    def __init__(
        self,
        child: SpineOp,
        side: Relation,
        keys: list[tuple[str, str]],
        schema: Schema,
        stream_is_left: bool,
        node_id: int,
    ):
        super().__init__(f"join:{node_id}", schema, child.uncertain_cols)
        self.child = child
        self.side = side
        self.keys = keys
        self.stream_is_left = stream_is_left
        self._announced = False

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        if not self._announced:
            # Broadcasting the dimension table is a one-time shipping cost.
            ctx.metrics.shipped_bytes += self.side.estimated_bytes()
            self._announced = True
        return DeltaBatch(self._join(inp.certain), self._join(inp.volatile))

    def _join(self, rel: Relation) -> Relation:
        if self.stream_is_left:
            return join_relations(rel, self.side, self.keys)
        flipped = [(rk, lk) for lk, rk in self.keys]
        joined = join_relations(self.side, rel, flipped)
        return _reorder_columns(joined, self.schema)

    def reset(self) -> None:
        self.child.reset()
        self._announced = False

    def record_state(self, ctx: RuntimeContext) -> None:
        ctx.metrics.add_state(self.label, self.side.estimated_bytes())
        self.child.record_state(ctx)


def _reorder_columns(rel: Relation, schema: Schema) -> Relation:
    """Project columns into the compiler's expected order, tolerating the
    key-drop asymmetry of flipped joins."""
    cols = {name: rel.columns[name] for name in schema.names}
    return Relation(schema, cols, rel.mult, rel.trial_mults)


class UncertainFilterOp(SpineOp):
    """SELECT whose predicate touches uncertain attributes (Section 5.2).

    Maintains the non-deterministic store ``U_i``; classifies new rows and
    re-classifies the store against current variation ranges each batch.
    Rows resolve to TRUE (emitted permanently), FALSE (dropped forever),
    or stay non-deterministic and contribute to the volatile output with
    their current point decision and per-trial decisions.
    """

    def __init__(
        self,
        child: SpineOp,
        det_conjuncts: list[Expression],
        uncertain_conjuncts: list[Comparison],
        node_id: int,
    ):
        super().__init__(f"select:{node_id}", child.schema, child.uncertain_cols)
        self.child = child
        self.det_conjuncts = det_conjuncts
        self.uncertain_conjuncts = uncertain_conjuncts
        self.nd_store: Relation | None = None
        self.sentinels = SentinelStore(uncertain_conjuncts, set(child.uncertain_cols))

    # -- helpers ---------------------------------------------------------------

    def _classify(
        self, rel: Relation, ctx: RuntimeContext
    ) -> tuple[ClassifyResult, list[ClassifyResult]]:
        results = [
            classify_comparison(cmp, rel, self.uncertain_cols, ctx)
            for cmp in self.uncertain_conjuncts
        ]
        return combine_conjuncts(results, ctx.num_trials), results

    def _record_sentinels(
        self,
        rel: Relation,
        combined: ClassifyResult,
        per_conjunct: list[ClassifyResult],
    ) -> None:
        """Guard every permanent action with a sentinel (see sentinels.py).

        Emitted rows needed ALL conjuncts stably true; dropped rows needed
        the specific conjuncts that were stably false."""
        emitted = np.flatnonzero(combined.status == TRUE)
        dropped = combined.status == FALSE
        for idx, res in enumerate(per_conjunct):
            if len(emitted):
                self.sentinels.record(
                    idx, rel, emitted, np.ones(len(emitted), dtype=bool)
                )
            conj_false = np.flatnonzero(dropped & (res.status == FALSE))
            if len(conj_false):
                self.sentinels.record(
                    idx, rel, conj_false, np.zeros(len(conj_false), dtype=bool)
                )

    def _apply_det(self, rel: Relation) -> Relation:
        for pred in self.det_conjuncts:
            rel = _filter_det(rel, pred)
        return rel

    # -- processing ---------------------------------------------------------------

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        new_rows = self._apply_det(inp.certain)
        vol_in = self._apply_det(inp.volatile)

        if not ctx.config.lazy_lineage and self.nd_store is not None:
            # OPT2 off: regenerate cached rows from scratch — re-run the
            # deterministic conjuncts over the store as well, modelling the
            # re-execution of the upstream chain for each cached tuple.
            self.nd_store = self._apply_det(
                Relation(
                    self.nd_store.schema,
                    {n: a.copy() for n, a in self.nd_store.columns.items()},
                    self.nd_store.mult.copy(),
                    None
                    if self.nd_store.trial_mults is None
                    else self.nd_store.trial_mults.copy(),
                )
            )

        # Integrity: every previously pruned decision must still hold for
        # the current estimates; a flip triggers failure recovery.
        self.sentinels.check(ctx)

        res_new, per_new = self._classify(new_rows, ctx)
        self._record_sentinels(new_rows, res_new, per_new)

        store = self.nd_store if self.nd_store is not None else self.empty(ctx)
        ctx.metrics.recomputed_tuples += len(store) + len(vol_in)
        if len(store):
            res_old, per_old = self._classify(store, ctx)
            self._record_sentinels(store, res_old, per_old)
        else:
            res_old = None

        certain_parts = [new_rows.filter(res_new.status == TRUE)]
        keep_new = new_rows.filter(
            (res_new.status == UNKNOWN) | (res_new.status == PENDING)
        )
        masks_new = _subset_masks(res_new, (res_new.status == UNKNOWN) | (res_new.status == PENDING), ctx)

        if res_old is not None:
            certain_parts.append(store.filter(res_old.status == TRUE))
            undecided = (res_old.status == UNKNOWN) | (res_old.status == PENDING)
            keep_old = store.filter(undecided)
            masks_old = _subset_masks(res_old, undecided, ctx)
        else:
            keep_old = self.empty(ctx)
            masks_old = None

        self.nd_store = keep_old.concat(keep_new)

        volatile_parts = []
        if len(keep_old) and masks_old is not None:
            volatile_parts.append(_mask_contribution(keep_old, masks_old))
        if len(keep_new):
            volatile_parts.append(_mask_contribution(keep_new, masks_new))
        if len(vol_in):
            res_vol, _ = self._classify(vol_in, ctx)
            volatile_parts.append(
                _mask_contribution(vol_in, (res_vol.point, res_vol.trial_matrix(ctx.num_trials)))
            )

        certain = certain_parts[0]
        for part in certain_parts[1:]:
            certain = certain.concat(part)
        volatile = self.empty(ctx)
        for part in volatile_parts:
            volatile = volatile.concat(part)
        return DeltaBatch(certain, volatile)

    def reset(self) -> None:
        self.nd_store = None
        self.sentinels.reset()
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        nbytes = self.sentinels.estimated_bytes()
        if self.nd_store is not None:
            nbytes += self.nd_store.estimated_bytes()
        ctx.metrics.add_state(self.label, nbytes)
        self.child.record_state(ctx)


def _subset_masks(
    res: ClassifyResult, keep: np.ndarray, ctx: RuntimeContext
) -> tuple[np.ndarray, np.ndarray]:
    return res.point[keep], res.trial_matrix(ctx.num_trials)[keep]


def _mask_contribution(
    rel: Relation, masks: tuple[np.ndarray, np.ndarray]
) -> Relation:
    """Volatile contribution of ND rows: zero out failed decisions."""
    point, trials = masks
    mult = rel.mult * point
    trial_mults = (
        rel.trial_mults * trials
        if rel.trial_mults is not None
        else rel.mult[:, None] * trials
    )
    keep = point | trials.any(axis=1)
    return Relation(
        rel.schema,
        {n: a[keep] for n, a in rel.columns.items()},
        mult[keep],
        trial_mults[keep],
    )


class UncertainJoinOp(SpineOp):
    """JOIN of the stream with an uncertain small side (a lineage-block
    boundary, Section 6).

    Each stream row looks up its group in the side view and attaches the
    side's columns — uncertain ones as :class:`LineageRef` so their values
    stay lazily up to date, deterministic ones by value. Rows whose group
    membership is unresolved form this operator's non-deterministic store;
    rows whose group has not been published at all wait in the pending
    store (re-tried every batch).
    """

    def __init__(
        self,
        child: SpineOp,
        side_id: int,
        stream_keys: list[str],
        attach_cols: list[tuple[str, bool]],
        schema: Schema,
        node_id: int,
    ):
        uncertain = child.uncertain_cols | {
            name for name, is_uncertain in attach_cols if is_uncertain
        }
        super().__init__(f"join:{node_id}", schema, uncertain)
        self.child = child
        self.side_id = side_id
        self.stream_keys = stream_keys
        self.attach_cols = attach_cols
        self.nd_store: Relation | None = None
        self.pending: Relation | None = None
        self.member_sentinels = MembershipSentinels()

    # -- helpers -----------------------------------------------------------------

    def _keys_of(self, rel: Relation) -> list[GroupKey]:
        if not self.stream_keys:
            return [() for _ in range(len(rel))]
        return rel.key_tuples(self.stream_keys)

    def _attach(self, rel: Relation, groups: list[GroupValue]) -> Relation:
        """Append side columns for rows whose group is known."""
        n = len(rel)
        cols = dict(rel.columns)
        for name, is_uncertain in self.attach_cols:
            if is_uncertain:
                arr = np.empty(n, dtype=object)
                for i, g in enumerate(groups):
                    arr[i] = LineageRef(self.side_id, g.key, name)
            else:
                arr = np.empty(n, dtype=self.schema.type_of(name).dtype)
                for i, g in enumerate(groups):
                    arr[i] = g.values[name]
            cols[name] = arr
        return Relation(self.schema, cols, rel.mult, rel.trial_mults)

    def _partition_new(
        self,
        rel: Relation,
        view: BlockOutput | None,
        ctx: RuntimeContext,
        record: bool = False,
    ) -> tuple[Relation, Relation, Relation]:
        """Split incoming certain rows into (certain-out, nd, pending).

        With ``record=True`` (permanent actions: the certain input path),
        every stable membership decision leaves a sentinel so later flips
        trigger recovery."""
        n = len(rel)
        if n == 0:
            return self._empty_out(ctx), self._empty_out(ctx), rel
        keys = self._keys_of(rel)
        status = np.empty(n, dtype=np.int8)
        groups: list[GroupValue | None] = [None] * n
        for i, key in enumerate(keys):
            group = view.get(key) if view is not None else None
            groups[i] = group
            if group is None:
                status[i] = PENDING
            elif group.certainly_in:
                status[i] = TRUE
                if record:
                    self.member_sentinels.record(key, True)
            elif group.certainly_out:
                status[i] = FALSE
                if record:
                    self.member_sentinels.record(key, False)
            else:
                status[i] = UNKNOWN
        sure = status == TRUE
        unknown = status == UNKNOWN
        waiting = status == PENDING
        certain_out = self._attach(
            rel.filter(sure), [g for g, s in zip(groups, sure) if s]
        )
        nd = self._attach(
            rel.filter(unknown), [g for g, s in zip(groups, unknown) if s]
        )
        return certain_out, nd, rel.filter(waiting)

    def _volatile_of(self, rel: Relation, ctx: RuntimeContext) -> Relation:
        """Current contribution of attached-but-unresolved rows."""
        view = ctx.blocks.get(self.side_id)
        n = len(rel)
        if n == 0 or view is None:
            return self._empty_out(ctx)
        keys = self._keys_of(rel)
        point = np.zeros(n, dtype=bool)
        trials = np.zeros((n, ctx.num_trials), dtype=bool)
        for i, key in enumerate(keys):
            group = view.get(key)
            if group is None:
                continue
            point[i] = group.member_point
            trials[i] = group.exist_in_trial(ctx.num_trials)
        return _mask_contribution(rel, (point, trials))

    def _empty_out(self, ctx: RuntimeContext) -> Relation:
        return empty_relation(self.schema, self.uncertain_cols, ctx.num_trials)

    # -- processing -----------------------------------------------------------------

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        view = ctx.blocks.get(self.side_id)
        # Integrity: previously resolved memberships must not have flipped.
        self.member_sentinels.check(ctx, view)
        inp = self.child.process(ctx)

        certain_new, nd_new, pending_new = self._partition_new(
            inp.certain, view, ctx, record=True
        )

        # Retry rows that were waiting for their group to be published.
        if self.pending is not None and len(self.pending):
            ctx.metrics.recomputed_tuples += len(self.pending)
            certain_retry, nd_retry, still_pending = self._partition_new(
                self.pending, view, ctx, record=True
            )
            certain_new = certain_new.concat(certain_retry)
            nd_new = nd_new.concat(nd_retry)
            self.pending = still_pending.concat(pending_new)
        else:
            self.pending = pending_new

        # Re-examine the non-deterministic store against fresh membership.
        nd_old = self.nd_store if self.nd_store is not None else self._empty_out(ctx)
        ctx.metrics.recomputed_tuples += len(nd_old)
        if not ctx.config.lazy_lineage and len(nd_old) and view is not None:
            # OPT2 off: regenerate cached tuples instead of updating them
            # in place — re-do the join lookup and rebuild every attached
            # column for the whole store (the paper's "re-generating the
            # tuple from scratch" cost that lineage + lazy evaluation
            # avoids).
            groups = [view.get(key) for key in self._keys_of(nd_old)]
            keep = np.array(
                [g is not None for g in groups], dtype=bool
            )
            nd_old = self._attach(
                nd_old.filter(keep), [g for g in groups if g is not None]
            )
        if len(nd_old) and view is not None:
            keys = self._keys_of(nd_old)
            status = np.empty(len(nd_old), dtype=np.int8)
            for i, key in enumerate(keys):
                group = view.get(key)
                if group is None:
                    status[i] = UNKNOWN
                elif group.certainly_in:
                    status[i] = TRUE
                    self.member_sentinels.record(key, True)
                elif group.certainly_out:
                    status[i] = FALSE
                    self.member_sentinels.record(key, False)
                else:
                    status[i] = UNKNOWN
            certain_new = certain_new.concat(nd_old.filter(status == TRUE))
            nd_old = nd_old.filter(status == UNKNOWN)
        self.nd_store = nd_old.concat(nd_new)

        volatile = self._volatile_of(self.nd_store, ctx)
        if len(inp.volatile):
            vol_view = ctx.blocks.get(self.side_id)
            v_certain, v_nd, _ = self._partition_new(inp.volatile, vol_view, ctx)
            # Upstream volatile rows are never stored here; they contribute
            # whatever their current membership allows.
            volatile = volatile.concat(v_certain)
            volatile = volatile.concat(self._volatile_of(v_nd, ctx))
        return DeltaBatch(certain_new, volatile)

    def reset(self) -> None:
        self.nd_store = None
        self.pending = None
        self.member_sentinels.reset()
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        nbytes = self.member_sentinels.estimated_bytes()
        if self.nd_store is not None:
            nbytes += self.nd_store.estimated_bytes()
        if self.pending is not None:
            nbytes += self.pending.estimated_bytes()
        if nbytes:
            ctx.metrics.add_state(self.label, nbytes)
        self.child.record_state(ctx)


class AggregateOp(SpineOp):
    """Online AGGREGATE (Section 4.2's state rules + Section 5's pruning).

    Certain input rows with deterministic aggregate arguments fold into
    per-group per-trial sketches and are forgotten. Rows whose argument is
    uncertain go to a row store and are lazily re-evaluated each batch
    through their lineage references; volatile input rows are re-aggregated
    from scratch each batch (they are few — that is the point). The
    combined result is published as this lineage block's output.
    """

    def __init__(
        self,
        child: SpineOp,
        group_by: list[str],
        specs: list[AggSpec],
        schema: Schema,
        block_id: int,
        sample_weighted: bool,
    ):
        super().__init__(f"aggregate:{block_id}", schema, set())
        self.child = child
        self.group_by = group_by
        self.specs = specs
        self.block_id = block_id
        self.sample_weighted = sample_weighted

        self.sketch_specs: list[AggSpec] = []
        self.lazy_specs: list[AggSpec] = []
        self.holistic_specs: list[AggSpec] = []
        for spec in specs:
            arg_uncertain = bool(spec.attrs() & child.uncertain_cols)
            if arg_uncertain and not spec.func.decomposable:
                raise UnsupportedQueryError(
                    f"aggregate {spec.name!r}: holistic UDAF over an "
                    "uncertain argument is not supported online"
                )
            if arg_uncertain:
                if spec.func.num_features != 1:
                    raise UnsupportedQueryError(
                        f"aggregate {spec.name!r} over an uncertain argument "
                        "requires a single identity feature (SUM/AVG-style)"
                    )
                self.lazy_specs.append(spec)
            elif spec.func.decomposable:
                self.sketch_specs.append(spec)
            else:
                self.holistic_specs.append(spec)

        self.sketch = AggBundle(self.sketch_specs, 0)  # re-created on first batch
        self._sketch_ready = False
        self.row_store: Relation | None = None
        self.certain_groups: set[GroupKey] = set()
        self._published_keys: set[GroupKey] = set()
        self._tombstones: dict[GroupKey, GroupValue] = {}

    @property
    def needs_row_store(self) -> bool:
        return bool(self.lazy_specs or self.holistic_specs)

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        if not self._sketch_ready:
            self.sketch = AggBundle(self.sketch_specs, ctx.num_trials)
            self._sketch_ready = True
            if not self.group_by:
                # A scalar aggregate always yields one row, even if no
                # input ever arrives (COUNT -> 0, AVG -> NaN) — matching
                # the batch evaluator.
                self.sketch._ensure_groups([()])
                self.certain_groups.add(())
        inp = self.child.process(ctx)
        cin, vin = inp.certain, inp.volatile
        ctx.metrics.shipped_bytes += cin.estimated_bytes() + vin.estimated_bytes()

        self.sketch.fold(cin, self.group_by)
        if self.needs_row_store and len(cin):
            store = self.row_store
            self.row_store = cin if store is None else store.concat(cin)
        if len(cin):
            self.certain_groups.update(
                cin.key_tuples(self.group_by) if self.group_by else [()]
            )

        volatile_bundle = None
        if len(vin):
            ctx.metrics.recomputed_tuples += len(vin)
            volatile_bundle = AggBundle.from_relation(
                vin, self.group_by, self.sketch_specs, ctx.num_trials
            )
        combined = self.sketch.merged_with(volatile_bundle)

        scale = ctx.scale if self.sample_weighted else 1.0
        per_group: dict[GroupKey, dict[str, object]] = {}
        exist_trials: dict[GroupKey, np.ndarray] = {}
        exist_point: dict[GroupKey, bool] = {}
        g = len(combined)
        finals = [combined.finalize(s, scale) for s in range(len(self.sketch_specs))]
        trial_weight = combined.trial_weight[:g]
        weight = combined.weight[:g]
        for gi, key in enumerate(combined.keys):
            vals: dict[str, object] = {}
            for s, spec in enumerate(self.sketch_specs):
                vals[spec.name] = (finals[s][0][gi], finals[s][1][gi])
            per_group[key] = vals
            exist_trials[key] = trial_weight[gi] > 0
            exist_point[key] = bool(weight[gi] > 0)

        if self.lazy_specs or self.holistic_specs:
            self._add_lazy_and_holistic(
                ctx, vin, scale, per_group, exist_trials, exist_point
            )

        self._publish(ctx, per_group, exist_trials, exist_point)
        return DeltaBatch(self.empty(ctx), self.empty(ctx))

    # -- lazy / holistic paths ---------------------------------------------------------

    def _lazy_input(self, ctx: RuntimeContext, vin: Relation) -> Relation:
        store = self.row_store
        if store is None:
            return vin
        return store.concat(vin) if len(vin) else store

    def _add_lazy_and_holistic(
        self,
        ctx: RuntimeContext,
        vin: Relation,
        scale: float,
        per_group: dict[GroupKey, dict[str, object]],
        exist_trials: dict[GroupKey, np.ndarray],
        exist_point: dict[GroupKey, bool],
    ) -> None:
        rows = self._lazy_input(ctx, vin)
        ctx.metrics.recomputed_tuples += len(rows)
        keys = rows.key_tuples(self.group_by) if self.group_by else [()] * len(rows)
        trial_w = (
            rows.trial_mults
            if rows.trial_mults is not None
            else np.repeat(rows.mult[:, None], ctx.num_trials, axis=1)
        )
        for spec in self.lazy_specs:
            side = evaluate_side(spec.arg, rows, self.child.uncertain_cols, ctx)
            ok = ~side.pending
            bundle = AggBundle([spec], ctx.num_trials)
            bundle.fold_values(
                [k for k, good in zip(keys, ok) if good],
                0,
                side.point[ok],
                side.trial_matrix(ctx.num_trials)[ok],
                rows.mult[ok],
                trial_w[ok],
            )
            values, trial_values = bundle.finalize(0, scale)
            for gi, key in enumerate(bundle.keys):
                vals = per_group.setdefault(key, {})
                vals[spec.name] = (values[gi], trial_values[gi])
                exist_trials.setdefault(key, bundle.trial_weight[gi] > 0)
                exist_point.setdefault(key, bool(bundle.weight[gi] > 0))
        for spec in self.holistic_specs:
            values_arr = spec.arg_values(rows)
            by_group: dict[GroupKey, list[int]] = {}
            for i, key in enumerate(keys):
                by_group.setdefault(key, []).append(i)
            for key, idx in by_group.items():
                ix = np.asarray(idx, dtype=np.intp)
                point = spec.func.compute(values_arr[ix], rows.mult[ix]) * (
                    scale if spec.func.scales_with_m else 1.0
                )
                trials = np.empty(ctx.num_trials)
                for j in range(ctx.num_trials):
                    trials[j] = spec.func.compute(values_arr[ix], trial_w[ix, j])
                if spec.func.scales_with_m:
                    trials = trials * scale
                vals = per_group.setdefault(key, {})
                vals[spec.name] = (point, trials)
                exist_trials.setdefault(key, trial_w[ix].sum(axis=0) > 0)
                exist_point.setdefault(key, bool(rows.mult[ix].sum() > 0))

    # -- publishing ------------------------------------------------------------------

    def _publish(
        self,
        ctx: RuntimeContext,
        per_group: dict[GroupKey, dict[str, object]],
        exist_trials: dict[GroupKey, np.ndarray],
        exist_point: dict[GroupKey, bool],
    ) -> None:
        value_cols = [s.name for s in self.specs]
        output = BlockOutput(self.block_id, self.group_by, value_cols)
        for key, raw in per_group.items():
            values: dict[str, object] = {}
            for gi, col_name in enumerate(self.group_by):
                values[col_name] = key[gi]
            for spec in self.specs:
                point, trials = raw[spec.name]  # type: ignore[misc]
                vrange = ctx.monitor.observe(
                    (self.block_id, key, spec.name), ctx.batch_no, float(point), trials
                )
                values[spec.name] = UncertainValue(
                    float(point),
                    trials,
                    vrange,
                    LineageRef(self.block_id, key, spec.name),
                )
            certain = key in self.certain_groups
            group = GroupValue(
                key,
                values,
                certain,
                member_point=certain or exist_point.get(key, True),
                exist_trials=None if certain else exist_trials.get(key),
            )
            output.publish(group, is_new=key not in self._published_keys)
            self._published_keys.add(key)
        # Groups that vanished (all their volatile contributors currently
        # excluded) stay visible with empty existence, so downstream
        # lineage references keep resolving.
        for key in self._published_keys - set(per_group):
            tomb = self._tombstones.get(key)
            if tomb is None:
                values = {c: k for c, k in zip(self.group_by, key)}
                for spec in self.specs:
                    values[spec.name] = UncertainValue(
                        float("nan"),
                        np.full(ctx.num_trials, np.nan),
                        lineage=LineageRef(self.block_id, key, spec.name),
                    )
                tomb = GroupValue(
                    key,
                    values,
                    certain=False,
                    member_point=False,
                    exist_trials=np.zeros(ctx.num_trials, dtype=bool),
                )
                self._tombstones[key] = tomb
            output.groups[key] = tomb
        ctx.blocks[self.block_id] = output

    def reset(self) -> None:
        self._sketch_ready = False
        self.row_store = None
        self.certain_groups = set()
        self._published_keys = set()
        self._tombstones = {}
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        nbytes = self.sketch.estimated_bytes()
        if self.row_store is not None:
            nbytes += self.row_store.estimated_bytes()
        ctx.metrics.add_state(self.label, nbytes)
        self.child.record_state(ctx)


class RowSinkOp(SpineOp):
    """Virtual SINK for aggregate-free pipelines (plain SPJ queries).

    Accumulates permanently emitted rows; the current result is the
    accumulation plus this batch's volatile contribution.
    """

    def __init__(self, child: SpineOp):
        super().__init__("sink", child.schema, child.uncertain_cols)
        self.child = child
        self.accumulated: Relation | None = None
        self.current_volatile: Relation | None = None

    def process(self, ctx: RuntimeContext) -> DeltaBatch:
        inp = self.child.process(ctx)
        if self.accumulated is None:
            self.accumulated = inp.certain
        else:
            self.accumulated = self.accumulated.concat(inp.certain)
        self.current_volatile = inp.volatile
        return DeltaBatch(inp.certain, inp.volatile)

    def result(self, ctx: RuntimeContext) -> Relation:
        acc = self.accumulated if self.accumulated is not None else self.empty(ctx)
        if self.current_volatile is None or len(self.current_volatile) == 0:
            return acc
        return acc.concat(self.current_volatile)

    def reset(self) -> None:
        self.accumulated = None
        self.current_volatile = None
        self.child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        if self.accumulated is not None:
            ctx.metrics.add_state(self.label, self.accumulated.estimated_bytes())
        self.child.record_state(ctx)
