"""Sentinels: operator-level integrity guards for pruned decisions.

When an online operator resolves a tuple near-deterministically (Section
5.1's set ``C_i``), that tuple leaves the operator's state forever: it is
either folded into downstream sketches (stable TRUE) or dropped (stable
FALSE). Theorem 1 then rests on the resolved decision never flipping.

The variation-range estimate can be wrong, so each operator records a
*sentinel* per resolved decision: the deterministic comparison value and
the expected outcome, keyed by the uncertain entity the decision compared
against (the lineage cells of its uncertain side). Only the *tightest*
sentinel per direction needs keeping — if the closest resolved value
still classifies the same way, every farther one does too. Each batch the
operator re-evaluates its sentinels against the current point estimates;
a flip raises :class:`~repro.errors.RangeIntegrityError` and the
controller replays conservatively.

This is the loosest sound check: it fails exactly when a pruned tuple's
contribution to the current partial result would have changed, rather
than whenever a range drifts.

Recovery depth: each (entity, direction) keeps its monotone *tightening
history* — the batch at which each successively tighter binding value was
resolved. On a violation the store computes the earliest batch whose
recorded decision flips under the current estimates; every strictly
earlier decision still holds, so ``RangeIntegrityError.recover_from_batch``
is that batch minus one and the controller only replays the suffix. The
history suffices: a flipped decision that was folded away (looser than
the staircase step active when it was recorded) implies the tighter step
recorded at or before its batch flips too, so the minimum over the
staircase is the true earliest flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.values import LineageRef, UncertainValue, point_of
from repro.errors import RangeIntegrityError
from repro.relational.expressions import Comparison, Expression

#: Identity of the uncertain side of one resolved decision: the raw
#: lineage cells it compared against (hashable).
Entity = tuple


#: One (entity, direction) tightening history: ``[(batch_no, det), ...]``
#: in batch order, each entry strictly tighter than the previous.
History = list


@dataclass
class _ConjunctSentinels:
    """Sentinels of one uncertain conjunct, keyed by entity."""

    #: entity -> tightening history of det values resolved TRUE
    true_side: dict[Entity, History] = field(default_factory=dict)
    #: entity -> tightening history of det values resolved FALSE
    false_side: dict[Entity, History] = field(default_factory=dict)
    #: entity -> ref cells by column (to re-evaluate the uncertain side)
    ref_rows: dict[Entity, dict[str, object]] = field(default_factory=dict)


def _tighter(op: str, expected: bool, old: float, new: float) -> float:
    """The binding (hardest to keep satisfied) of two resolved det values."""
    if op in (">", ">="):
        # det > unc resolved TRUE: smallest det value is binding;
        # resolved FALSE (det <= unc): largest det value is binding.
        return min(old, new) if expected else max(old, new)
    if op in ("<", "<="):
        return max(old, new) if expected else min(old, new)
    return new  # ==/!=: keep the most recent


def _push(op: str, expected: bool, hist: History, batch_no: int, value: float) -> None:
    """Fold ``value`` into a tightening history, stamping the batch."""
    if not hist:
        hist.append((batch_no, value))
        return
    last_batch, last_value = hist[-1]
    tight = _tighter(op, expected, last_value, value)
    if tight == last_value:
        return
    if op in ("==", "!="):
        # Equality sentinels guard only the most recent decision; the
        # superseded history cannot flip independently of it.
        hist[:] = [(batch_no, tight)]
    elif last_batch == batch_no:
        hist[-1] = (batch_no, tight)
    else:
        hist.append((batch_no, tight))


class SentinelStore:
    """All sentinels of one online operator."""

    def __init__(self, conjuncts: list[Comparison], uncertain_cols: set[str]):
        self.conjuncts = conjuncts
        self.uncertain_cols = uncertain_cols
        self._per_conjunct = [_ConjunctSentinels() for _ in conjuncts]
        # Compile: which side is deterministic; which uncertain columns
        # each conjunct touches (entity identity).
        self._sides: list[tuple[Expression | None, Expression | None, list[str]]] = []
        for cmp_ in conjuncts:
            left_u = bool(cmp_.left.attrs() & uncertain_cols)
            right_u = bool(cmp_.right.attrs() & uncertain_cols)
            cols = sorted(cmp_.attrs() & uncertain_cols)
            if left_u and right_u:
                self._sides.append((None, None, cols))
            elif right_u:
                self._sides.append((cmp_.left, cmp_.right, cols))
            else:
                self._sides.append((cmp_.right, cmp_.left, cols))

    def __len__(self) -> int:
        return sum(
            len(c.true_side) + len(c.false_side) for c in self._per_conjunct
        )

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        conjunct_idx: int,
        rel,
        row_indices: np.ndarray,
        expected: np.ndarray,
        vectorize: bool = False,
        batch_no: int = 0,
    ) -> None:
        """Record sentinels for rows just resolved by conjunct ``conjunct_idx``.

        ``row_indices`` are positions in ``rel``; ``expected`` the resolved
        boolean per row; ``batch_no`` stamps the tightening history (used
        to compute the recovery depth on a later flip). With
        ``vectorize=True``, ordered comparisons fold the batch per entity
        with array min/max before touching the dicts (bit-identical:
        min/max folds commute, and entity equality is by value either
        way).
        """
        det_expr, unc_expr, cols = self._sides[conjunct_idx]
        store = self._per_conjunct[conjunct_idx]
        cmp_ = self.conjuncts[conjunct_idx]
        op = cmp_.op if det_expr is cmp_.left or det_expr is None else _flip(cmp_.op)
        det_values = (
            np.asarray(det_expr.evaluate(rel), dtype=np.float64)
            if det_expr is not None
            else None
        )
        if (
            vectorize
            and det_values is not None
            and op in ("<", "<=", ">", ">=")
            and len(row_indices)
            # Python's min/max are order-sensitive under NaN; keep the
            # sequential reference fold there.
            and not np.isnan(det_values[row_indices]).any()
        ):
            self._record_batched(
                store, op, rel, row_indices, expected, cols, det_values, batch_no
            )
            return
        columns = {c: rel.columns[c] for c in cols}
        for i, exp in zip(row_indices, expected):
            entity = tuple(columns[c][i] for c in cols)
            store.ref_rows.setdefault(
                entity, {c: columns[c][i] for c in cols}
            )
            d = float(det_values[i]) if det_values is not None else 0.0
            side = store.true_side if exp else store.false_side
            _push(op, bool(exp), side.setdefault(entity, []), batch_no, d)

    def _record_batched(
        self,
        store: _ConjunctSentinels,
        op: str,
        rel,
        row_indices: np.ndarray,
        expected: np.ndarray,
        cols: list[str],
        det_values: np.ndarray,
        batch_no: int,
    ) -> None:
        """Fold one batch per (entity, direction) before the dict merge."""
        idx = np.asarray(row_indices, dtype=np.intp)
        m = len(idx)
        exp = np.asarray(expected, dtype=bool)
        cell_cols = [np.asarray(rel.columns[c], dtype=object)[idx] for c in cols]
        # Entity codes by cell identity. Equal-but-distinct cells land in
        # different codes; the dict merge below re-unifies them by value,
        # and min/max folds commute, so the result is unchanged. A column
        # with a structured lineage sidecar yields identity codes straight
        # from its int32 slots (slot-distinctness equals identity-
        # distinctness, and intermediate code order is immaterial — the
        # final iteration below is by first appearance either way).
        codes = np.zeros(m, dtype=np.intp)
        for c, arr in zip(cols, cell_cols):
            lin = rel.lineage.get(c)
            if lin is not None and len(lin) == len(rel.mult) and lin.all_refs:
                _, inv = np.unique(lin.slots[idx], return_inverse=True)
            else:
                ids = np.frompyfunc(id, 1, 1)(arr).astype(np.int64)
                _, inv = np.unique(ids, return_inverse=True)
            inv = inv.reshape(m).astype(np.intp, copy=False)
            radix = int(inv.max()) + 1
            _, codes = np.unique(codes * radix + inv, return_inverse=True)
            codes = codes.reshape(m).astype(np.intp, copy=False)
        num = int(codes.max()) + 1
        d = det_values[idx]
        for flag, side in ((True, store.true_side), (False, store.false_side)):
            mask = exp if flag else ~exp
            if not mask.any():
                continue
            sub_codes = codes[mask]
            sub_rows = np.flatnonzero(mask)
            use_min = (op in (">", ">=")) == flag
            fold = np.full(num, np.inf if use_min else -np.inf)
            (np.minimum if use_min else np.maximum).at(fold, sub_codes, d[mask])
            first = np.full(num, m, dtype=np.intp)
            np.minimum.at(first, sub_codes, sub_rows)
            present = np.unique(sub_codes)
            for code in present[np.argsort(first[present], kind="stable")]:
                row = first[code]
                entity = tuple(col[row] for col in cell_cols)
                store.ref_rows.setdefault(
                    entity, {c: col[row] for c, col in zip(cols, cell_cols)}
                )
                value = float(fold[code])
                _push(op, flag, side.setdefault(entity, []), batch_no, value)

    # -- checking -------------------------------------------------------------------

    def check(self, ctx: RuntimeContext) -> None:
        """Re-evaluate all tightest sentinels against current estimates.

        Skipped during a recovery replay: restored sentinels are known to
        hold at the restore point, the replayed suffix prunes nothing, and
        a raise here would escape the controller's recovery handler.
        """
        if ctx.monitor.replaying:
            return
        tracer = ctx.obs.tracer
        if not tracer.enabled:
            self._check(ctx)
            return
        with tracer.span(
            "range-check", cat="range", batch=ctx.batch_no, sentinels=len(self)
        ):
            try:
                self._check(ctx)
            except RangeIntegrityError as failure:
                tracer.warning(
                    "range-integrity-failure", batch=ctx.batch_no,
                    message=str(failure),
                )
                raise

    def _check(self, ctx: RuntimeContext) -> None:
        #: (recover_from_batch, reason) per violated (entity, direction);
        #: collected exhaustively so one raise carries the deepest
        #: (minimum) recovery point of the whole store.
        violations: list[tuple[int, str]] = []
        for idx, store in enumerate(self._per_conjunct):
            if not store.ref_rows:
                continue
            det_expr, unc_expr, cols = self._sides[idx]
            cmp_ = self.conjuncts[idx]
            for entity, refs in store.ref_rows.items():
                resolved = self._resolve_row(refs, ctx)
                for expected, side in (
                    (True, store.true_side),
                    (False, store.false_side),
                ):
                    hist = side.get(entity)
                    if not hist:
                        continue
                    if resolved is None:
                        violations.append((
                            max(hist[0][0] - 1, 0),
                            f"entity vanished (first resolved at batch "
                            f"{hist[0][0]})",
                        ))
                        continue
                    # The tightest (latest) entry flips first: if it still
                    # holds, every looser entry of the staircase does too.
                    tight = hist[-1][1]
                    if self._evaluate(cmp_, det_expr, tight, resolved) == expected:
                        continue
                    flipped = [
                        batch
                        for batch, det in hist
                        if self._evaluate(cmp_, det_expr, det, resolved) != expected
                    ]
                    first = min(flipped)
                    violations.append((
                        max(first - 1, 0),
                        f"resolved decision flipped: {cmp_!r} expected "
                        f"{expected} for det value {tight!r} (earliest flip "
                        f"resolved at batch {first})",
                    ))
        if violations:
            raise self._violation(ctx, violations)

    def _resolve_row(
        self, refs: dict[str, object], ctx: RuntimeContext
    ) -> dict[str, object] | None:
        out: dict[str, object] = {}
        for col_name, cell in refs.items():
            value = ctx.resolve(cell) if isinstance(cell, LineageRef) else cell
            if value is None:
                return None
            out[col_name] = value
        return out

    def _evaluate(
        self,
        cmp_: Comparison,
        det_expr: Expression | None,
        det_value: float,
        resolved: dict[str, object],
    ) -> bool:
        if det_expr is None:
            # Both sides uncertain: re-evaluate both on the ref row.
            left = point_of_safe(cmp_.left.evaluate_row(resolved))
            right = point_of_safe(cmp_.right.evaluate_row(resolved))
            return bool(_compare(cmp_.op, left, right))
        unc = point_of_safe(
            (cmp_.right if det_expr is cmp_.left else cmp_.left).evaluate_row(resolved)
        )
        if det_expr is cmp_.left:
            return bool(_compare(cmp_.op, det_value, unc))
        return bool(_compare(cmp_.op, unc, det_value))

    def _violation(
        self, ctx: RuntimeContext, violations: list[tuple[int, str]]
    ) -> RangeIntegrityError:
        ctx.monitor.record_failure()
        recover_from = min(batch for batch, _ in violations)
        reason = violations[0][1]
        if len(violations) > 1:
            reason += f" (+{len(violations) - 1} more)"
        return RangeIntegrityError(
            f"sentinel violation at batch {ctx.batch_no}: {reason}; "
            f"state is consistent through batch {recover_from}",
            recover_from_batch=recover_from,
        )

    def reset(self) -> None:
        self._per_conjunct = [_ConjunctSentinels() for _ in self.conjuncts]

    def estimated_bytes(self) -> int:
        total = 0
        for store in self._per_conjunct:
            for side in (store.true_side, store.false_side):
                for hist in side.values():
                    total += 40 + 24 * len(hist)
            total += 96 * len(store.ref_rows)
        return total


class MembershipSentinels:
    """Sentinels for resolved join-side membership decisions.

    The uncertain join emits or drops stream tuples permanently once a
    side group's membership is stable. The sentinel per group is simply
    the expected membership; a flip of the group's current point
    membership invalidates those emissions.
    """

    def __init__(self) -> None:
        self.expected: dict[tuple, bool] = {}
        #: key -> batch at which the membership was first resolved; drives
        #: ``recover_from_batch`` when the decision later flips.
        self.resolved_at: dict[tuple, int] = {}

    def record(self, key: tuple, member: bool, batch_no: int = 0) -> None:
        if key not in self.expected:
            self.expected[key] = member
            self.resolved_at[key] = batch_no

    def check(self, ctx: RuntimeContext, view) -> None:
        if ctx.monitor.replaying:
            return
        tracer = ctx.obs.tracer
        if not tracer.enabled:
            self._check(ctx, view)
            return
        with tracer.span(
            "range-check", cat="range", batch=ctx.batch_no, sentinels=len(self)
        ):
            try:
                self._check(ctx, view)
            except RangeIntegrityError as failure:
                tracer.warning(
                    "range-integrity-failure", batch=ctx.batch_no,
                    message=str(failure),
                )
                raise

    def _check(self, ctx: RuntimeContext, view) -> None:
        flipped = [
            key
            for key, expected in self.expected.items()
            if (
                view is not None
                and (group := view.get(key)) is not None
                and group.member_point
            ) != expected
        ]
        if not flipped:
            return
        ctx.monitor.record_failure()
        recover_from = min(
            max(self.resolved_at.get(key, 0) - 1, 0) for key in flipped
        )
        key = min(flipped, key=lambda k: self.resolved_at.get(k, 0))
        more = f" (+{len(flipped) - 1} more)" if len(flipped) > 1 else ""
        raise RangeIntegrityError(
            f"membership of group {key!r} flipped (expected "
            f"{self.expected[key]}) at batch {ctx.batch_no}{more}; "
            f"state is consistent through batch {recover_from}",
            recover_from_batch=recover_from,
        )

    def reset(self) -> None:
        self.expected.clear()
        self.resolved_at.clear()

    def __len__(self) -> int:
        return len(self.expected)

    def estimated_bytes(self) -> int:
        return 56 * len(self.expected)


class QuiescenceTracker:
    """Last-contribution clocks guarding rollup-tier migration.

    The sentinel layer's job is to guard resolved pruning decisions; this
    tracker plays the same role for the rollup tier's *migration*
    decision. A group may leave the hot path only once it is quiescent —
    no certain or volatile contribution for ``rollup_quiesce``
    consecutive batches — at which point its finalized value is a fixed
    point of the per-batch recompute (the sums are untouched and
    ``finalize`` is a pure function of them). The flip-detection analog
    is structural rather than statistical: any later touch demotes the
    group back to the sketch *before* the batch folds, so a migrated
    value can never silently drift. Lives as the "quiesce" state entry
    beside the rollup store and rides checkpoints with it.
    """

    def __init__(self) -> None:
        self.last_touched: dict[tuple, int] = {}

    def __deepcopy__(self, memo: dict) -> "QuiescenceTracker":
        # Keys are immutable tuples and values are ints: a shallow dict
        # copy is a correct snapshot, and checkpoint-sized faster.
        clone = QuiescenceTracker()
        memo[id(self)] = clone
        clone.last_touched = dict(self.last_touched)
        return clone

    def touch(self, keys: "Iterable[tuple]", batch_no: int) -> None:
        for key in keys:
            self.last_touched[key] = batch_no

    def candidates(
        self, keys: "Iterable[tuple]", batch_no: int, quiesce: int
    ) -> list[tuple]:
        """Keys of ``keys`` untouched for ``quiesce`` whole batches."""
        cutoff = batch_no - quiesce
        return [
            key for key in keys if self.last_touched.get(key, 0) <= cutoff
        ]

    def forget(self, keys: "Iterable[tuple]") -> None:
        """Reset the clocks of demoted keys: they must re-quiesce."""
        for key in keys:
            self.last_touched.pop(key, None)

    def reset(self) -> None:
        self.last_touched.clear()

    def __len__(self) -> int:
        return len(self.last_touched)

    def estimated_bytes(self) -> int:
        return 56 * len(self.last_touched)


def point_of_safe(value: object) -> float:
    if isinstance(value, UncertainValue):
        return value.value
    return float(value)  # type: ignore[arg-type]


def _compare(op: str, a: float, b: float) -> bool:
    with np.errstate(invalid="ignore"):
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == "==":
            return a == b
        return a != b


def _flip(op: str) -> str:
    return {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
