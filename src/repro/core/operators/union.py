"""UNION of two streams (stateless concat of both delta channels)."""

from __future__ import annotations

from repro.core.blocks import RuntimeContext
from repro.core.operators.base import DeltaBatch, SpineOp


class UnionOp(SpineOp):
    def __init__(self, left: SpineOp, right: SpineOp):
        super().__init__(
            "union",
            left.schema,
            left.uncertain_cols | right.uncertain_cols,
            (left, right),
        )
        self.left = left
        self.right = right

    def process(self, delta: list[DeltaBatch], ctx: RuntimeContext) -> DeltaBatch:
        a, b = delta
        return DeltaBatch(a.certain.concat(b.certain), a.volatile.concat(b.volatile))
