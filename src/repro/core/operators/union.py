"""UNION of two streams (stateless concat of both delta channels)."""

from __future__ import annotations

from repro.core.blocks import RuntimeContext
from repro.core.operators.base import DeltaBatch, SpineOp, StateRule, TagRule


class UnionOp(SpineOp):
    #: Stateless pure delta rule: UNION of the certain channels and the
    #: volatile channels independently (bag-union tags from both inputs).
    tag_rule = TagRule(consumes_uncertain="allowed")
    state_rule = StateRule()

    def __init__(self, left: SpineOp, right: SpineOp):
        super().__init__(
            "union",
            left.schema,
            left.uncertain_cols | right.uncertain_cols,
            (left, right),
        )
        self.left = left
        self.right = right

    def process(self, delta: list[DeltaBatch], ctx: RuntimeContext) -> DeltaBatch:
        a, b = delta
        return DeltaBatch(a.certain.concat(b.certain), a.volatile.concat(b.volatile))
