"""JOIN operators: static dimension sides and uncertain small sides."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockOutput, GroupKey, GroupValue, RuntimeContext
from repro.core.classify import FALSE, PENDING, TRUE, UNKNOWN
from repro.core.operators.base import (
    DeltaBatch,
    SpineOp,
    StateRule,
    TagRule,
    empty_relation,
    mask_contribution,
)
from repro.core.sentinels import MembershipSentinels
from repro.core.values import LineageRef
from repro.kernels.codec import factorize_keys
from repro.kernels.joins import SideIndex, vectorized_join
from repro.kernels.stats import STATS
from repro.kernels.views import GroupTable, group_table
from repro.relational.evaluator import join_relations
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.lineage import lineage_from_refs


class StaticJoinOp(SpineOp):
    """JOIN of the stream with a static (dimension) side.

    The paper's JOIN state rule: when only the fact table is streamed, the
    operator state is just the dimension side, kept in memory from batch 1
    (and reported as join state for the Figure 9(b) accounting). With the
    vectorized kernels the dimension side's hash index is built once into
    the state store ("side_index", accounted in state bytes) and reused
    every batch.
    """

    #: The paper's JOIN state rule with a certain side: state is exactly
    #: the broadcast dimension side (plus its derived hash index); no
    #: non-deterministic set can arise.
    tag_rule = TagRule(consumes_uncertain="forbidden")
    state_rule = StateRule(frozenset({"side", "side_index", "announced"}))

    def __init__(
        self,
        child: SpineOp,
        side: Relation,
        keys: list[tuple[str, str]],
        schema: Schema,
        stream_is_left: bool,
        node_id: int,
    ):
        super().__init__(f"join:{node_id}", schema, child.uncertain_cols, (child,))
        self.child = child
        self.side = side
        self.keys = keys
        self.stream_is_left = stream_is_left
        self._init_state()

    def _init_state(self) -> None:
        # The broadcast side is immutable configuration, but it *is* the
        # operator's state footprint, so it lives in the store (as a
        # static entry: accounted, checkpointed by reference). The derived
        # hash index is built lazily on the first vectorized join.
        self.state.put("side", self.side, static=True)
        self.state.put("side_index", None, static=True)
        self.state.put("announced", False)

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        if not self.state.get("announced"):
            # Broadcasting the dimension table is a one-time shipping cost.
            ctx.metrics.shipped_bytes += self.side.estimated_bytes()
            self.state.put("announced", True)
        return DeltaBatch(
            self._join(delta.certain, ctx), self._join(delta.volatile, ctx)
        )

    def _side_index(self) -> SideIndex:
        """Cross-batch cached hash index over the dimension side."""
        index = self.state.get("side_index")
        if index is None:
            STATS.inc("side_index_misses")
            index = SideIndex(self.side, [rk for _, rk in self.keys])
            self.state.put("side_index", index, static=True)
        else:
            STATS.inc("side_index_hits")
        return index

    def _join(self, rel: Relation, ctx: RuntimeContext) -> Relation:
        if self.stream_is_left:
            if ctx.config.vectorize and self.keys:
                return vectorized_join(rel, self.side, self.keys, self._side_index())
            return join_relations(rel, self.side, self.keys)
        flipped = [(rk, lk) for lk, rk in self.keys]
        if ctx.config.vectorize and self.keys:
            # Stream on the probe side: the per-batch index is over the
            # stream delta, so there is nothing to cache — but the build
            # and probe are still vectorized.
            joined = vectorized_join(self.side, rel, flipped)
        else:
            joined = join_relations(self.side, rel, flipped)
        return _reorder_columns(joined, self.schema)


def _reorder_columns(rel: Relation, schema: Schema) -> Relation:
    """Project columns into the compiler's expected order, tolerating the
    key-drop asymmetry of flipped joins."""
    cols = {name: rel.columns[name] for name in schema.names}
    return Relation._from_parts(
        schema,
        cols,
        rel.mult,
        rel.trial_mults,
        encodings={n: e for n, e in rel.encodings.items() if n in cols} or None,
        lineage={n: s for n, s in rel.lineage.items() if n in cols} or None,
    )


class UncertainJoinOp(SpineOp):
    """JOIN of the stream with an uncertain small side (a lineage-block
    boundary, Section 6).

    Each stream row looks up its group in the side view and attaches the
    side's columns — uncertain ones as :class:`LineageRef` so their values
    stay lazily up to date, deterministic ones by value. Rows whose group
    membership is unresolved form this operator's non-deterministic store;
    rows whose group has not been published at all wait in the pending
    store (re-tried every batch).
    """

    #: JOIN against an uncertain block output: unresolved-membership rows
    #: form the non-deterministic set ("nd"), unpublished-group rows wait
    #: in "pending", and resolved memberships are sentinel-guarded — the
    #: §4.2 JOIN rule when the other input carries uncertainty.
    tag_rule = TagRule(consumes_uncertain="required", introduces_nd=True)
    state_rule = StateRule(
        frozenset({"nd", "pending", "member_sentinels"}), nd_entry="nd"
    )

    def __init__(
        self,
        child: SpineOp,
        side_id: int,
        stream_keys: list[str],
        attach_cols: list[tuple[str, bool]],
        schema: Schema,
        node_id: int,
    ):
        uncertain = child.uncertain_cols | {
            name for name, is_uncertain in attach_cols if is_uncertain
        }
        super().__init__(f"join:{node_id}", schema, uncertain, (child,))
        self.child = child
        self.side_id = side_id
        self.stream_keys = stream_keys
        self.attach_cols = attach_cols
        self._init_state()

    def _init_state(self) -> None:
        self.state.put("nd", None)
        self.state.put("pending", None)
        self.state.put("member_sentinels", MembershipSentinels())

    @property
    def nd_store(self) -> Relation | None:
        return self.state.get("nd")

    @nd_store.setter
    def nd_store(self, value: Relation | None) -> None:
        self.state.put("nd", value)

    @property
    def pending(self) -> Relation | None:
        return self.state.get("pending")

    @pending.setter
    def pending(self, value: Relation | None) -> None:
        self.state.put("pending", value)

    @property
    def member_sentinels(self) -> MembershipSentinels:
        return self.state.get("member_sentinels")

    # -- helpers -----------------------------------------------------------------

    def _keys_of(self, rel: Relation) -> list[GroupKey]:
        if not self.stream_keys:
            return [() for _ in range(len(rel))]
        return rel.key_tuples(self.stream_keys)

    def _probe_table(
        self, rel: Relation, view: BlockOutput | None
    ) -> tuple[object, GroupTable | None, np.ndarray | None]:
        """Factorize stream keys and probe the side view once per
        *distinct* key: ``(codes, table, slot-per-distinct-key)``."""
        kc = factorize_keys(rel, self.stream_keys)
        if view is None:
            return kc, None, None
        table = group_table(view)
        return kc, table, table.probe(kc.keys)

    def _attach_coded(
        self, rel: Relation, table: GroupTable | None, slot_rows: np.ndarray
    ) -> Relation:
        """Vectorized :meth:`_attach`: gather side columns from the group
        table's per-column pools instead of filling row by row.

        Uncertain columns additionally get a structured
        :class:`~repro.storage.lineage.LineageColumn` sidecar — the slot
        rows *are* the ``(block_id, row_idx)`` lineage, so downstream
        resolve/sentinel passes consume int32 slots and the ND bitmask
        instead of re-factorizing the ref objects by identity."""
        n = len(rel)
        cols = dict(rel.columns)
        lineage = dict(rel.lineage)
        for name, is_uncertain in self.attach_cols:
            if n == 0:
                dtype = (
                    np.dtype(object) if is_uncertain else self.schema.type_of(name).dtype
                )
                cols[name] = np.empty(0, dtype=dtype)
            elif is_uncertain:
                pool = table.ref_pool(self.side_id, name, LineageRef)
                cols[name] = pool[slot_rows]
                lineage[name] = lineage_from_refs(str(self.side_id), pool, slot_rows)
            else:
                cols[name] = table.value_pool(name, self.schema.type_of(name).dtype)[
                    slot_rows
                ]
        return Relation._from_parts(
            self.schema,
            cols,
            rel.mult,
            rel.trial_mults,
            encodings=rel.encodings or None,
            lineage=lineage or None,
        )

    def _attach(self, rel: Relation, groups: list[GroupValue]) -> Relation:
        """Append side columns for rows whose group is known."""
        n = len(rel)
        cols = dict(rel.columns)
        for name, is_uncertain in self.attach_cols:
            if is_uncertain:
                arr = np.empty(n, dtype=object)
                for i, g in enumerate(groups):
                    arr[i] = LineageRef(self.side_id, g.key, name)
            else:
                arr = np.empty(n, dtype=self.schema.type_of(name).dtype)
                for i, g in enumerate(groups):
                    arr[i] = g.values[name]
            cols[name] = arr
        return Relation(self.schema, cols, rel.mult, rel.trial_mults)

    def _partition_new(
        self,
        rel: Relation,
        view: BlockOutput | None,
        ctx: RuntimeContext,
        record: bool = False,
    ) -> tuple[Relation, Relation, Relation]:
        """Split incoming certain rows into (certain-out, nd, pending).

        With ``record=True`` (permanent actions: the certain input path),
        every stable membership decision leaves a sentinel so later flips
        trigger recovery."""
        n = len(rel)
        if n == 0:
            return self._empty_out(ctx), self._empty_out(ctx), rel
        if ctx.config.vectorize:
            return self._partition_new_vec(rel, view, record, ctx.batch_no)
        keys = self._keys_of(rel)
        status = np.empty(n, dtype=np.int8)
        groups: list[GroupValue | None] = [None] * n
        for i, key in enumerate(keys):
            group = view.get(key) if view is not None else None
            groups[i] = group
            if group is None:
                status[i] = PENDING
            elif group.certainly_in:
                status[i] = TRUE
                if record:
                    self.member_sentinels.record(key, True, batch_no=ctx.batch_no)
            elif group.certainly_out:
                status[i] = FALSE
                if record:
                    self.member_sentinels.record(key, False, batch_no=ctx.batch_no)
            else:
                status[i] = UNKNOWN
        sure = status == TRUE
        unknown = status == UNKNOWN
        waiting = status == PENDING
        certain_out = self._attach(
            rel.filter(sure), [g for g, s in zip(groups, sure) if s]
        )
        nd = self._attach(
            rel.filter(unknown), [g for g, s in zip(groups, unknown) if s]
        )
        return certain_out, nd, rel.filter(waiting)

    def _partition_new_vec(
        self,
        rel: Relation,
        view: BlockOutput | None,
        record: bool,
        batch_no: int = 0,
    ) -> tuple[Relation, Relation, Relation]:
        """Vectorized :meth:`_partition_new` body: one view probe per
        distinct key, then status/slot gathers."""
        kc, table, slots_u = self._probe_table(rel, view)
        if table is None or not len(table.status):
            status_u = np.full(kc.num_keys, PENDING, dtype=np.int8)
            slots_u = np.full(kc.num_keys, -1, dtype=np.intp)
        else:
            status_u = np.where(
                slots_u < 0, np.int8(PENDING), table.status[np.maximum(slots_u, 0)]
            ).astype(np.int8, copy=False)
        if record:
            # Sentinel recording is setdefault-idempotent and keyed by
            # group, so once per distinct key matches once per row.
            for u in np.flatnonzero(status_u == TRUE):
                self.member_sentinels.record(kc.keys[u], True, batch_no=batch_no)
            for u in np.flatnonzero(status_u == FALSE):
                self.member_sentinels.record(kc.keys[u], False, batch_no=batch_no)
        status = status_u[kc.codes]
        slots = slots_u[kc.codes]
        sure = status == TRUE
        unknown = status == UNKNOWN
        waiting = status == PENDING
        certain_out = self._attach_coded(rel.filter(sure), table, slots[sure])
        nd = self._attach_coded(rel.filter(unknown), table, slots[unknown])
        return certain_out, nd, rel.filter(waiting)

    def _volatile_of(self, rel: Relation, ctx: RuntimeContext) -> Relation:
        """Current contribution of attached-but-unresolved rows."""
        view = ctx.blocks.get(self.side_id)
        n = len(rel)
        if n == 0 or view is None:
            return self._empty_out(ctx)
        if ctx.config.vectorize:
            kc, table, slots_u = self._probe_table(rel, view)
            slots = slots_u[kc.codes]
            present = slots >= 0
            point = np.zeros(n, dtype=bool)
            trials = np.zeros((n, ctx.num_trials), dtype=bool)
            if len(table.status) and present.any():
                point[present] = table.member_point[slots[present]]
                trials[present] = table.exist_matrix(ctx.num_trials)[slots[present]]
            return mask_contribution(rel, (point, trials))
        keys = self._keys_of(rel)
        point = np.zeros(n, dtype=bool)
        trials = np.zeros((n, ctx.num_trials), dtype=bool)
        for i, key in enumerate(keys):
            group = view.get(key)
            if group is None:
                continue
            point[i] = group.member_point
            trials[i] = group.exist_in_trial(ctx.num_trials)
        return mask_contribution(rel, (point, trials))

    def _empty_out(self, ctx: RuntimeContext) -> Relation:
        return empty_relation(self.schema, self.uncertain_cols, ctx.num_trials)

    # -- processing -----------------------------------------------------------------

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        view = ctx.blocks.get(self.side_id)
        # Integrity: previously resolved memberships must not have flipped.
        ctx.fault("sentinel", self.label)
        self.member_sentinels.check(ctx, view)

        certain_new, nd_new, pending_new = self._partition_new(
            delta.certain, view, ctx, record=True
        )

        # Retry rows that were waiting for their group to be published.
        if self.pending is not None and len(self.pending):
            ctx.metrics.recomputed_tuples += len(self.pending)
            certain_retry, nd_retry, still_pending = self._partition_new(
                self.pending, view, ctx, record=True
            )
            certain_new = certain_new.concat(certain_retry)
            nd_new = nd_new.concat(nd_retry)
            self.pending = still_pending.concat(pending_new)
        else:
            self.pending = pending_new

        # Re-examine the non-deterministic store against fresh membership.
        nd_old = self.nd_store if self.nd_store is not None else self._empty_out(ctx)
        ctx.metrics.recomputed_tuples += len(nd_old)
        if not ctx.config.lazy_lineage and len(nd_old) and view is not None:
            # OPT2 off: regenerate cached tuples instead of updating them
            # in place — re-do the join lookup and rebuild every attached
            # column for the whole store (the paper's "re-generating the
            # tuple from scratch" cost that lineage + lazy evaluation
            # avoids).
            groups = [view.get(key) for key in self._keys_of(nd_old)]
            keep = np.array(
                [g is not None for g in groups], dtype=bool
            )
            nd_old = self._attach(
                nd_old.filter(keep), [g for g in groups if g is not None]
            )
        if len(nd_old) and view is not None:
            if ctx.config.vectorize:
                kc, table, slots_u = self._probe_table(nd_old, view)
                if table is None or not len(table.status):
                    status_u = np.full(kc.num_keys, UNKNOWN, dtype=np.int8)
                else:
                    status_u = np.where(
                        slots_u < 0,
                        np.int8(UNKNOWN),
                        table.status[np.maximum(slots_u, 0)],
                    ).astype(np.int8, copy=False)
                for u in np.flatnonzero(status_u == TRUE):
                    self.member_sentinels.record(
                        kc.keys[u], True, batch_no=ctx.batch_no
                    )
                for u in np.flatnonzero(status_u == FALSE):
                    self.member_sentinels.record(
                        kc.keys[u], False, batch_no=ctx.batch_no
                    )
                status = status_u[kc.codes]
            else:
                keys = self._keys_of(nd_old)
                status = np.empty(len(nd_old), dtype=np.int8)
                for i, key in enumerate(keys):
                    group = view.get(key)
                    if group is None:
                        status[i] = UNKNOWN
                    elif group.certainly_in:
                        status[i] = TRUE
                        self.member_sentinels.record(
                            key, True, batch_no=ctx.batch_no
                        )
                    elif group.certainly_out:
                        status[i] = FALSE
                        self.member_sentinels.record(
                            key, False, batch_no=ctx.batch_no
                        )
                    else:
                        status[i] = UNKNOWN
            certain_new = certain_new.concat(nd_old.filter(status == TRUE))
            nd_old = nd_old.filter(status == UNKNOWN)
        self.nd_store = nd_old.concat(nd_new)

        volatile = self._volatile_of(self.nd_store, ctx)
        if len(delta.volatile):
            vol_view = ctx.blocks.get(self.side_id)
            v_certain, v_nd, _ = self._partition_new(delta.volatile, vol_view, ctx)
            # Upstream volatile rows are never stored here; they contribute
            # whatever their current membership allows.
            volatile = volatile.concat(v_certain)
            volatile = volatile.concat(self._volatile_of(v_nd, ctx))
        if ctx.obs.enabled:
            reg = ctx.obs.metrics
            nd, pending = self.nd_store, self.pending
            reg.gauge("nd.rows", op=self.label).set(0 if nd is None else len(nd))
            reg.gauge("pending.rows", op=self.label).set(
                0 if pending is None else len(pending)
            )
            reg.gauge("sentinels", op=self.label).set(len(self.member_sentinels))
        return DeltaBatch(certain_new, volatile)
