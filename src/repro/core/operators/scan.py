"""Leaf operators: the streamed delta and one-shot static emission."""

from __future__ import annotations

from repro.core.blocks import RuntimeContext
from repro.core.operators.base import DeltaBatch, SpineOp, StateRule, TagRule
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class ScanOp(SpineOp):
    """Leaf of a stream pipeline: this batch's delta of the streamed table."""

    #: Stateless leaf: emits the installed streamed delta as certain rows
    #: (tuple-uncertainty of the stream is carried by the sampling
    #: multiplicities, not by an ND set here).
    tag_rule = TagRule(consumes_uncertain="forbidden")
    state_rule = StateRule()

    def __init__(self, table: str, schema: Schema):
        super().__init__(f"scan:{table}", schema, set())
        self.table = table

    def process(self, delta: None, ctx: RuntimeContext) -> DeltaBatch:
        return DeltaBatch(ctx.delta, self.empty(ctx))


class StaticEmitOp(SpineOp):
    """Emits a precomputed static relation once, at the first batch.

    Used for the static branch of a UNION with a stream: the static rows
    are all certain and appear exactly once.
    """

    #: One bit of state: whether the one-shot emission already happened.
    tag_rule = TagRule(consumes_uncertain="forbidden")
    state_rule = StateRule(frozenset({"emitted"}))

    def __init__(self, relation: Relation, label: str = "static"):
        super().__init__(label, relation.schema, set())
        self.relation = relation
        self._init_state()

    def _init_state(self) -> None:
        self.state.put("emitted", False)

    def process(self, delta: None, ctx: RuntimeContext) -> DeltaBatch:
        if self.state.get("emitted"):
            return DeltaBatch(self.empty(ctx), self.empty(ctx))
        self.state.put("emitted", True)
        return DeltaBatch(self.relation, self.empty(ctx))
